//! The paper's future-work experiment (§8): score the collected tweets
//! with a Perspective-API-style toxicity analyzer and compare prevalence
//! across platforms.
//!
//! ```sh
//! cargo run --release --example toxicity_audit
//! ```

use chatlens::perspective::score_dataset;
use chatlens::report::table::{fmt_count, fmt_pct, Table};
use chatlens::workload::Vocabulary;
use chatlens::{run_study, ScenarioConfig};

fn main() {
    println!("running the campaign at scale 0.05...");
    let dataset = run_study(ScenarioConfig::at_scale(0.05));
    let vocab = Vocabulary::build();

    println!("scoring every English sharing tweet through the analyzer API");
    println!("(rate-limited service; the client paces itself)...\n");
    let reports = score_dataset(&dataset, &vocab, 50.0);

    let mut t = Table::new("Toxicity by platform (threshold 0.5)").header([
        "Platform",
        "tweets scored",
        "mean score",
        "p90",
        "share likely toxic",
    ]);
    for r in &reports {
        t.row([
            r.platform.name().to_string(),
            fmt_count(r.scored),
            format!("{:.3}", r.mean),
            format!("{:.3}", r.p90),
            fmt_pct(r.toxic_share),
        ]);
    }
    println!("{}", t.render());
    println!(
        "shape check: Telegram (sex-topic heavy, §4) > Discord (hentai \
         servers) > WhatsApp (crypto/money spam) — the ordering the paper \
         predicted its Perspective follow-up would find."
    );
}
