//! Quickstart: build a small world, run the full 38-day campaign, print
//! the dataset roll-up.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use chatlens::platforms::id::PlatformKind;
use chatlens::report::table::{fmt_count, Table};
use chatlens::{run_study, ScenarioConfig};

fn main() {
    // 2% of the paper's scale: ~7K groups, ~80K tweets, runs in seconds.
    let config = ScenarioConfig::at_scale(0.02);
    println!("building the ecosystem and running the campaign (scale 0.02)...");
    let started = std::time::Instant::now();
    let dataset = run_study(config);
    println!("done in {:.1?}\n", started.elapsed());

    let mut table = Table::new("What the collector found").header([
        "Platform",
        "tweets",
        "group URLs",
        "joined",
        "messages",
    ]);
    for kind in PlatformKind::ALL {
        let s = dataset.summary(kind);
        table.row([
            kind.name().to_string(),
            fmt_count(s.tweets),
            fmt_count(s.group_urls),
            fmt_count(s.joined_groups),
            fmt_count(s.messages),
        ]);
    }
    println!("{}", table.render());

    println!(
        "control sample: {} tweets; PII: {} WhatsApp phone hashes, \
         {} Telegram profiles, {} Discord profiles",
        fmt_count(dataset.control.len() as u64),
        fmt_count(dataset.pii.wa_total_phones() as u64),
        fmt_count(dataset.pii.tg_users_observed.len() as u64),
        fmt_count(dataset.pii.dc_users_observed.len() as u64),
    );
    println!(
        "the Discord bot-join probe was {}",
        if dataset.bot_join_rejected {
            "rejected, as §3.3 reports"
        } else {
            "accepted (unexpected!)"
        }
    );
}
