//! Drive the discovery component by hand for the first three campaign
//! days to show why the paper merges the Search and Streaming APIs: the
//! two feeds disagree, and the union beats either alone.
//!
//! ```sh
//! cargo run --release --example discovery_campaign
//! ```

use chatlens::core::discovery::Discovery;
use chatlens::core::net::Net;
use chatlens::platforms::id::PlatformKind;
use chatlens::simnet::time::SimDuration;
use chatlens::workload::{Ecosystem, ScenarioConfig};

fn main() {
    let mut eco = Ecosystem::build(ScenarioConfig::at_scale(0.02));
    let start = eco.window.start_time();
    let mut net = Net::reliable(42, start);
    let mut disco = Discovery::new(start);

    println!("hour-by-hour discovery, first 3 days (scale 0.02):\n");
    for day in 0..3u64 {
        for hour in 0..24u64 {
            let now = start + SimDuration::days(day) + SimDuration::hours(hour);
            disco.run_search(&mut net, &mut eco, now).expect("search");
            disco.drain_stream(&mut net, &mut eco, now).expect("stream");
        }
        let (mut both, mut search_only, mut stream_only) = (0u64, 0u64, 0u64);
        for t in &disco.tweets {
            match (t.via_search, t.via_stream) {
                (true, true) => both += 1,
                (true, false) => search_only += 1,
                (false, true) => stream_only += 1,
                (false, false) => unreachable!("tweet with no provenance"),
            }
        }
        println!(
            "after day {day}: {} tweets ({both} via both feeds, \
             {search_only} search-only, {stream_only} stream-only), {} groups",
            disco.tweets.len(),
            disco.group_count()
        );
    }

    println!("\ndiscovered groups per platform so far:");
    for kind in PlatformKind::ALL {
        println!("  {:<8} {}", kind.name(), disco.groups_of(kind).count());
    }
    println!(
        "\nURL extraction: {} URLs inspected, {} valid invites, {} rejected \
         (shorteners, non-invite discord.com pages, ...)",
        disco.stats.urls_seen, disco.stats.invites, disco.stats.rejected
    );
    println!(
        "day-0 note: the first search pulls the 7-day backlog, which is why \
         the paper's Fig 1c spikes on its first day — so does ours."
    );
}
