//! PII exposure audit (§6): what each platform leaks, measured through
//! the collection pipeline — with the ethics protocol (hash-on-arrival)
//! demonstrated on the way.
//!
//! ```sh
//! cargo run --release --example pii_audit
//! ```

use chatlens::analysis::pii;
use chatlens::core::pii::hash_phone;
use chatlens::platforms::id::PlatformKind;
use chatlens::report::table::{fmt_count, fmt_pct, Table};
use chatlens::{run_study, ScenarioConfig};

fn main() {
    println!("ethics first: phone numbers never survive collection —");
    let demo = "+5511987654321";
    println!("  {} -> {}\n", demo, hash_phone(demo));

    println!("running the campaign at scale 0.02...\n");
    let dataset = run_study(ScenarioConfig::at_scale(0.02));

    let mut t = Table::new("Table 4-style exposure audit").header([
        "Platform",
        "users observed",
        "phones exposed",
        "rate",
        "linked accounts",
    ]);
    for row in pii::exposure_table(&dataset) {
        t.row([
            row.platform.name().to_string(),
            fmt_count(row.users_observed),
            row.phones.map(fmt_count).unwrap_or_else(|| "-".into()),
            row.phone_rate.map(fmt_pct).unwrap_or_else(|| "-".into()),
            row.linked_users
                .map(|n| {
                    format!(
                        "{} ({})",
                        fmt_count(n),
                        fmt_pct(row.link_rate.unwrap_or(0.0))
                    )
                })
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", t.render());

    println!(
        "WhatsApp detail: {} creator phones were harvested from landing \
         pages WITHOUT joining any group; joining added {} member phones.",
        fmt_count(dataset.pii.wa_creator_hashes.len() as u64),
        fmt_count(dataset.pii.wa_member_hashes.len() as u64),
    );

    println!("\nDiscord connected accounts (Table 5):");
    for (platform, users, share) in pii::linked_accounts_table(&dataset).into_iter().take(6) {
        println!(
            "  {platform:<18} {:>8}  {}",
            fmt_count(users),
            fmt_pct(share)
        );
    }

    // The structural guarantee: nothing in the dataset can reproduce a
    // phone number.
    let mut hashes = 0usize;
    for jg in &dataset.joined {
        for m in &jg.members {
            if let Some(h) = &m.phone_hash {
                assert_eq!(h.len(), 64, "only SHA-256 hex in the store");
                hashes += 1;
            }
        }
    }
    let _ = PlatformKind::ALL;
    println!(
        "\naudit: {hashes} member phone records checked — all stored as \
         one-way hashes, none as numbers."
    );
}
