//! Quality ablations for the design choices DESIGN.md calls out: what the
//! collected dataset *loses* when a design decision is changed.
//!
//! ```sh
//! cargo run --release --example ablation_study
//! ```

use chatlens::analysis::lifecycle;
use chatlens::analysis::topics::english_corpus;
use chatlens::analysis::{LdaConfig, LdaModel};
use chatlens::core::joiner::JoinStrategy;
use chatlens::platforms::id::PlatformKind;
use chatlens::report::table::{fmt_count, fmt_pct, Table};
use chatlens::workload::Vocabulary;
use chatlens::{run_study_with, CampaignConfig, ScenarioConfig};

const SCALE: f64 = 0.02;

fn scenario() -> ScenarioConfig {
    ScenarioConfig::at_scale(SCALE)
}

fn main() {
    ablate_discovery_feeds();
    ablate_monitor_cadence();
    ablate_join_strategy();
    ablate_lda_k();
}

/// §3.1 merges the Search and Streaming APIs because each is incomplete.
fn ablate_discovery_feeds() {
    let mut t = Table::new("Ablation 1: discovery feeds (why the paper merges both)").header([
        "Feed(s)",
        "tweets",
        "group URLs",
    ]);
    for (name, use_search, use_stream) in [
        ("search + stream", true, true),
        ("search only", true, false),
        ("stream only", false, true),
    ] {
        let ds = run_study_with(
            scenario(),
            CampaignConfig {
                use_search,
                use_stream,
                ..CampaignConfig::default()
            },
        );
        let tot = ds.totals();
        t.row([
            name.to_string(),
            fmt_count(tot.tweets),
            fmt_count(tot.group_urls),
        ]);
    }
    println!("{}", t.render());
}

/// §3.2 monitors daily; slower cadence misses short-lived URLs entirely
/// and blurs the lifetime distribution.
fn ablate_monitor_cadence() {
    let mut t = Table::new("Ablation 2: monitoring cadence (Fig 6 under-counting)").header([
        "Cadence",
        "Discord revoked",
        "dead on arrival",
        "median lifetime (days)",
    ]);
    for days in [1u32, 3, 7] {
        let ds = run_study_with(
            scenario(),
            CampaignConfig {
                monitor_interval_days: days,
                ..CampaignConfig::default()
            },
        );
        let s = lifecycle::revocation_stats(&ds, PlatformKind::Discord);
        t.row([
            format!("every {days}d"),
            fmt_pct(s.revoked_fraction),
            fmt_pct(s.dead_on_arrival_fraction),
            s.lifetime_days
                .median()
                .map(|d| format!("{d:.0}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", t.render());
}

/// §3.3 joins uniformly; size-biased joining inflates per-group message
/// and member statistics.
fn ablate_join_strategy() {
    let mut t = Table::new("Ablation 3: join sampling (uniform vs size-biased)").header([
        "Strategy",
        "TG members in joined groups",
        "TG messages",
        "DC messages",
    ]);
    for (name, strategy) in [
        ("uniform (paper)", JoinStrategy::Uniform),
        ("size-biased", JoinStrategy::SizeBiased),
    ] {
        let ds = run_study_with(
            scenario(),
            CampaignConfig {
                join_strategy: strategy,
                ..CampaignConfig::default()
            },
        );
        let tg = ds.summary(PlatformKind::Telegram);
        let dc = ds.summary(PlatformKind::Discord);
        t.row([
            name.to_string(),
            fmt_count(tg.platform_users),
            fmt_count(tg.messages),
            fmt_count(dc.messages),
        ]);
    }
    println!("{}", t.render());
}

/// §4 footnote 1: the paper re-ran LDA with up to 50 topics and found no
/// politics topic; we sweep K and report perplexity.
fn ablate_lda_k() {
    let ds = run_study_with(scenario(), CampaignConfig::default());
    let vocab = Vocabulary::build();
    let docs = english_corpus(&ds, PlatformKind::Telegram, &vocab);
    let mut t = Table::new(format!(
        "Ablation 4: LDA topic count over {} Telegram English tweets",
        docs.len()
    ))
    .header(["K", "perplexity"]);
    for k in [2usize, 5, 10, 20, 50] {
        let model = LdaModel::fit(
            &docs,
            vocab.len(),
            LdaConfig {
                k,
                iterations: 40,
                seed: 11,
                ..LdaConfig::default()
            },
        );
        t.row([k.to_string(), format!("{:.1}", model.perplexity(&docs))]);
    }
    println!("{}", t.render());
    println!(
        "(K=10 sits near the elbow — larger K buys little, matching the \
         paper's choice of ten topics per platform.)"
    );
}
