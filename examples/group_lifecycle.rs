//! Group ephemerality: run the campaign and show how quickly invite URLs
//! die on each platform (the paper's Fig 6 finding that 68% of Discord
//! URLs are gone within the study, most before the first daily check).
//!
//! ```sh
//! cargo run --release --example group_lifecycle
//! ```

use chatlens::analysis::lifecycle;
use chatlens::platforms::id::PlatformKind;
use chatlens::report::series::sparkline;
use chatlens::report::table::{fmt_pct, Table};
use chatlens::{run_study, ScenarioConfig};

fn main() {
    println!("running the campaign at scale 0.02...\n");
    let dataset = run_study(ScenarioConfig::at_scale(0.02));

    let mut table = Table::new("URL ephemerality (paper: 27.3% / 20.4% / 68.4% revoked)").header([
        "Platform",
        "observed",
        "revoked",
        "dead on arrival",
        "median lifetime (days)",
    ]);
    for kind in PlatformKind::ALL {
        let s = lifecycle::revocation_stats(&dataset, kind);
        table.row([
            kind.name().to_string(),
            s.observed.to_string(),
            fmt_pct(s.revoked_fraction),
            fmt_pct(s.dead_on_arrival_fraction),
            s.lifetime_days
                .median()
                .map(|d| format!("{d:.0}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", table.render());

    println!("revocations observed per study day:");
    for kind in PlatformKind::ALL {
        let s = lifecycle::revocation_stats(&dataset, kind);
        println!("  {:<8} {}", kind.name(), sparkline(&s.revoked_per_day));
    }

    println!("\nstaleness (age when first shared; paper Fig 5):");
    for kind in PlatformKind::ALL {
        let e = lifecycle::staleness_days(&dataset, kind);
        if e.is_empty() {
            continue;
        }
        println!(
            "  {:<8} same-day {}  >1 year {}  oldest {:.0} days",
            kind.name(),
            fmt_pct(e.fraction_at_most(0.0)),
            fmt_pct(e.fraction_above(365.0)),
            e.max().unwrap_or(0.0)
        );
    }
    println!(
        "\ntakeaway: WhatsApp groups are shared fresh and last; Discord \
         invites are usually dead before anyone checks — studies that crawl \
         such URLs must collect in near-real-time."
    );
}
