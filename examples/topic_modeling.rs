//! Table 3 end-to-end: collect tweets, keep the English ones, remove
//! stopwords, fit LDA (collapsed Gibbs, from scratch) and label the
//! recovered topics against the paper's vocabulary.
//!
//! ```sh
//! cargo run --release --example topic_modeling [platform]
//! ```
//! `platform` is `whatsapp`, `telegram`, or `discord` (default).

use chatlens::analysis::topics::{analyze_topics, share_by_label};
use chatlens::analysis::LdaConfig;
use chatlens::platforms::id::PlatformKind;
use chatlens::report::table::fmt_pct;
use chatlens::workload::Vocabulary;
use chatlens::{run_study, ScenarioConfig};

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("whatsapp") => PlatformKind::WhatsApp,
        Some("telegram") => PlatformKind::Telegram,
        _ => PlatformKind::Discord,
    };
    println!("running the campaign at scale 0.02...");
    let dataset = run_study(ScenarioConfig::at_scale(0.02));
    let vocab = Vocabulary::build();

    println!(
        "fitting 10-topic LDA over {}'s English tweets...\n",
        kind.name()
    );
    let analysis = analyze_topics(
        &dataset,
        kind,
        &vocab,
        LdaConfig {
            k: 10,
            iterations: 60,
            seed: 1,
            ..LdaConfig::default()
        },
    );
    println!(
        "{} English tweets went into the model; recovered topics:\n",
        analysis.num_docs
    );
    let mut sorted = analysis.topics.clone();
    sorted.sort_by(|a, b| b.tweet_share.partial_cmp(&a.tweet_share).unwrap());
    for t in &sorted {
        println!(
            "  {:<30} {:>6}  match {:.2}",
            t.label,
            fmt_pct(t.tweet_share),
            t.match_score
        );
        println!("      terms: {}", t.top_terms.join(", "));
    }
    println!("\naggregated by label (cf. Table 3's repeated labels):");
    for (label, share) in share_by_label(&analysis) {
        println!("  {:<30} {}", label, fmt_pct(share));
    }
}
