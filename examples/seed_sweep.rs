//! Seed-robustness sweep: run the full campaign under several world seeds
//! in parallel (the `simnet::par` deterministic worker pool) and report
//! how stable each headline quantity is — the reproducibility check
//! behind EXPERIMENTS.md's "seed robustness" section.
//!
//! ```sh
//! cargo run --release --example seed_sweep [n_seeds] [scale] [threads]
//! ```

use chatlens::analysis::lifecycle::revocation_stats;
use chatlens::analysis::{content, discovery};
use chatlens::platforms::id::PlatformKind;
use chatlens::simnet::par::Pool;
use chatlens::{run_study, ScenarioConfig};

/// One run's headline quantities.
#[derive(Debug, Clone, Copy)]
struct Headline {
    seed: u64,
    discord_revoked: f64,
    telegram_retweets: f64,
    whatsapp_share_once: f64,
    group_urls: u64,
}

fn main() {
    let n_seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.01);
    let threads: usize = std::env::args()
        .nth(3)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    println!("sweeping {n_seeds} seeds at scale {scale} on {threads} thread(s)...\n");

    // One campaign per chunk: the pool keeps results in seed order, so no
    // mutex + sort dance is needed — and the output is identical at any
    // thread count.
    let pool = Pool::new(threads);
    let seeds: Vec<u64> = (0..n_seeds).map(|i| 1000 + i * 7919).collect();
    let rows: Vec<Headline> = pool.par_map_chunked(1, &seeds, |&seed| {
        let mut config = ScenarioConfig::at_scale(scale);
        config.seed = seed;
        let ds = run_study(config);
        Headline {
            seed,
            discord_revoked: revocation_stats(&ds, PlatformKind::Discord).revoked_fraction,
            telegram_retweets: content::platform_features(&ds, PlatformKind::Telegram).retweets,
            whatsapp_share_once: discovery::share_once_fraction(&ds, PlatformKind::WhatsApp),
            group_urls: ds.totals().group_urls,
        }
    });

    println!("seed     DC revoked  TG retweets  WA share-once  group URLs");
    for h in &rows {
        println!(
            "{:<8} {:>9.3}  {:>10.3}  {:>12.3}  {:>10}",
            h.seed, h.discord_revoked, h.telegram_retweets, h.whatsapp_share_once, h.group_urls
        );
    }
    let spread = |f: fn(&Headline) -> f64| {
        let vals: Vec<f64> = rows.iter().map(f).collect();
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        max - min
    };
    println!(
        "\nspreads across seeds: DC revoked {:.3}, TG retweets {:.3}, WA share-once {:.3}",
        spread(|h| h.discord_revoked),
        spread(|h| h.telegram_retweets),
        spread(|h| h.whatsapp_share_once)
    );
    println!("every quantity above is a paper headline; small spreads mean the");
    println!("reproduction's shapes are properties of the model, not of a lucky seed.");
}
