//! # chatlens — reproducing *Demystifying the Messaging Platforms'
//! Ecosystem Through the Lens of Twitter* (IMC 2020)
//!
//! This crate ties the workspace together and re-exports the pieces a
//! downstream user needs:
//!
//! ```
//! use chatlens::{run_study, ScenarioConfig};
//!
//! // A ~1%-scale world: build the ecosystem, run the 38-day campaign.
//! let dataset = run_study(ScenarioConfig::tiny());
//! assert!(dataset.groups.len() > 1_000);
//! ```
//!
//! The layer cake, bottom-up:
//!
//! * [`simnet`] — deterministic simulation substrate (virtual time,
//!   seeded RNG + distributions, discrete-event engine, simulated
//!   transport with faults/rate limits/backoff, SHA-256, tracing).
//! * [`platforms`] — WhatsApp / Telegram / Discord simulators with each
//!   platform's real quirks (§2 of the paper).
//! * [`twitter`] — the tweet store plus Search / Streaming / 1%-sample
//!   APIs with realistic incompleteness (§3.1).
//! * [`workload`] — generative models calibrated to the paper's published
//!   distributions; [`workload::Ecosystem`] builds the whole world.
//! * [`checkpoint`] — versioned, checksummed campaign snapshots for
//!   crash-safe long runs with bit-identical resume.
//! * [`core`] — the paper's measurement pipeline: discovery, daily
//!   monitoring, join-budgeted collection, PII accounting (§3).
//! * [`analysis`] — one module per results section: Figs 1–9,
//!   Tables 3–5 (§4–§6), including a from-scratch LDA.
//! * [`report`] — tables, CDF summaries, CSV, paper-vs-measured records.
//!
//! The `repro` binary regenerates **every table and figure** of the paper
//! and prints paper-vs-measured comparisons; see EXPERIMENTS.md for the
//! recorded results.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use chatlens_analysis as analysis;
pub use chatlens_checkpoint as checkpoint;
pub use chatlens_core as core;
pub use chatlens_perspective as perspective;
pub use chatlens_platforms as platforms;
pub use chatlens_report as report;
pub use chatlens_simnet as simnet;
pub use chatlens_twitter as twitter;
pub use chatlens_workload as workload;

pub use chatlens_core::{run_study, run_study_with, CampaignConfig, Dataset};
pub use chatlens_workload::{Ecosystem, ScenarioConfig};
