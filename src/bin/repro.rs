//! Regenerates every table and figure of the paper and prints
//! paper-vs-measured comparisons.
//!
//! ```text
//! repro [--scale 0.1] [--seed 20200408] [--threads 1] [--timings] [artifact]
//! ```
//!
//! `artifact` is one of `table1 table2 table3 table4 table5 fig1 fig2 fig3
//! fig4 fig5 fig6 fig7 fig8 fig9 extras all` (default `all`). At the end a
//! markdown comparison table (the EXPERIMENTS.md body) is printed.
//!
//! `--threads N` sizes the deterministic parallel runtime
//! ([`chatlens::simnet::par::Pool`]): every table and figure — and the
//! campaign dataset itself — is bit-identical at any thread count; only
//! wall-clock time changes. `--timings` prints the per-stage wall-clock
//! table recorded in [`chatlens::simnet::metrics::Metrics`].

use chatlens::analysis::LdaConfig;
use chatlens::analysis::{
    content, discovery, lifecycle, membership, messages, pii, standard_folds, topics,
};
use chatlens::checkpoint::{chain, load_from_file, CheckpointError, RealVfs, Vfs};
use chatlens::core::audit_dataset;
use chatlens::core::budget::{BudgetLimit, BudgetPolicy};
use chatlens::core::net::SERVICE_NAMES;
use chatlens::core::{
    recover_latest_state, resume_study, resume_study_budgeted, resume_study_budgeted_checkpointed,
    resume_study_checkpointed, resume_study_folded, resume_study_folded_checkpointed,
    run_study_budgeted, run_study_budgeted_checkpointed, run_study_checkpointed,
    run_study_days_budgeted, run_study_days_checkpointed, run_study_folded,
    run_study_folded_checkpointed, BudgetedRun, CampaignConfig, CampaignState, CheckpointPolicy,
    FoldDriver,
};
use chatlens::perspective::score_dataset;
use chatlens::platforms::id::PlatformKind;
use chatlens::platforms::spec::PlatformSpec;
use chatlens::report::compare::{holding, markdown_table, Comparison};
use chatlens::report::fold::{fold_summary, FoldSummaryRow};
use chatlens::report::series::{cdf_summary, days_csv, sparkline, to_csv};
use chatlens::report::table::{fmt_bytes, fmt_count, fmt_pct, Table};
use chatlens::simnet::fault::{CorruptionProfile, DiskFaultProfile, FaultProfile, OutageSpec};
use chatlens::simnet::hash::sha256_hex;
use chatlens::simnet::metrics::{keys, Metrics};
use chatlens::simnet::par::Pool;
use chatlens::twitter::Lang;
use chatlens::workload::Vocabulary;
use chatlens::{run_study_with, Dataset, ScenarioConfig};

const PLATFORMS: [PlatformKind; 3] = PlatformKind::ALL;

const HELP: &str = "\
repro — regenerate the paper's tables and figures from a simulated campaign

USAGE:
    repro [OPTIONS] [ARTIFACT]

ARTIFACT:
    one of: table1 table2 table3 table4 table5 fig1..fig9 extras
    extensions dump-config run all    (default: all)
    `run` executes the campaign and prints the dataset totals without
    regenerating the analyses — pair it with the checkpoint options
    and `--analysis incremental` for the per-day folded pipeline

SUBCOMMANDS:
    lint [--stats] [--format <text|json>] [--out <path>]
                     run the determinism & concurrency static-analysis
                     pass (chatlens-lint) over the workspace sources and
                     exit nonzero on any finding; --stats prints the
                     per-rule and per-crate summary tables (see DESIGN.md
                     §Determinism lint for the rule catalog D1..D14);
                     --format json prints the machine-readable
                     chatlens-lint/v1 report instead of diagnostics and
                     --out <path> writes that report to a file as well
    lint --validate <file>
                     check a previously emitted JSON report against the
                     chatlens-lint/v1 schema; exits 1 if it is malformed
    checkpoint inspect <file|dir>
                     decode a campaign snapshot and print its summary as
                     JSON (format version, day, clock, collection counts,
                     quarantine ledger sizes, deterministic metric
                     counters); exits 2 with a diagnostic on corrupt,
                     truncated, or version-skewed files. Given a
                     checkpoint directory instead, prints the per-day
                     chain status plus the persisted recovery ledger
    checkpoint verify [--all] <file|dir>
                     classify snapshots without touching them: a single
                     file loads (exit 0) or prints its typed error (exit
                     1); a directory (or --all) walks the whole chain,
                     prints one status line per day plus a counter
                     summary, and exits 0 as long as at least one valid
                     resume point survives
    checkpoint repair <dir>
                     quarantine every invalid snapshot and orphaned .tmp
                     file into <dir>/quarantine/ (recorded in the
                     recovery ledger) so the remaining chain verifies
                     clean
    audit <file>     resume the campaign from a snapshot to a finished
                     dataset and run the invariant auditor over it
                     (timeline monotonicity, membership/population
                     containment, gap- and quarantine-ledger consistency,
                     terminal revocations, message/timeline coherence);
                     prints one line per violation and exits 1 on any

OPTIONS:
    --scale <f64|paper|10x>
                     world scale relative to the paper (default 0.1);
                     `paper` is the full-size world (1.0) and `10x` a
                     ten-fold stress preset (10.0) for the memory-budget
                     acceptance runs
    --seed <u64>     world seed (default 20200408)
    --threads <n>    worker threads for the deterministic parallel runtime
                     (default 1). Output is bit-identical for a given seed
                     at ANY thread count — parallelism only changes
                     wall-clock time, never a table, figure, or the
                     collected dataset.
    --analysis <batch|incremental>
                     analysis pipeline mode (default batch). `incremental`
                     folds every completed study day into compact per-
                     analysis state (the DayFold pipeline) instead of
                     replaying history at campaign end: checkpoints carry
                     folded state (smaller snapshots, audited on resume)
                     and a per-fold state-size/timing summary is printed
                     after the run. Fold output is byte-identical to the
                     batch analyses — locked by tests/fold_parity.rs.
    --checkpoint-dir <dir>
                     save a campaign snapshot (day<NNN>.ckpt) into <dir>
                     at day boundaries during the run
    --checkpoint-every <n>
                     snapshot interval in study days (default 1; needs
                     --checkpoint-dir)
    --resume <file|dir>
                     resume the campaign from a snapshot instead of
                     starting fresh (--scale/--seed are then taken from
                     the snapshot, not the command line); the finished
                     dataset is bit-identical to an uninterrupted run.
                     Given a checkpoint directory (or a damaged file),
                     chain recovery walks the per-day chain backwards
                     past invalid snapshots to the newest valid one,
                     records every skip in the recovery ledger, and
                     replays the lost days; if nothing survives the
                     campaign restarts from scratch
    --fault-profile <calm|bursty|outage>
                     fault regime for the campaign's transport clients
                     (default calm). `bursty` layers a Gilbert-Elliott
                     burst chain over the i.i.d. faults; `outage` adds
                     scheduled service blackouts/bans (the built-in storm
                     unless --outage/--ban override it). Deterministic:
                     same profile + seed => byte-identical dataset.
    --outage <svc:start:days>
                     schedule a full blackout of one service, e.g.
                     `--outage whatsapp:12:3` (svc one of twitter,
                     whatsapp, telegram, discord; start is a 0-based
                     study day). Repeatable, one window per service.
    --ban <svc:start:days>
                     like --outage but the service answers instantly
                     with 403 Forbidden (credential suspension) instead
                     of dropping requests
    --corruption <calm|noisy|hostile>
                     payload-corruption regime for the campaign's wire
                     bodies (default calm). Orthogonal to the fault
                     profile: faults shape whether responses arrive,
                     corruption mangles what arrives inside successful
                     ones. Every rejected body lands in the dataset's
                     quarantine ledger with a typed error and provenance.
                     Deterministic: same profile + seed => byte-identical
                     dataset at any thread count.
    --disk-fault <calm|flaky|torn>
                     storage fault regime for snapshot I/O (default
                     calm). `flaky` injects occasional torn/short writes,
                     bit-rot, ENOSPC and rename failures; `torn` is a
                     torn-write-heavy storm. Injected faults cost
                     durability (holes in the checkpoint chain that
                     resume-time chain recovery walks past), never the
                     run. Deterministic: driven by the registered
                     (checkpoint, disk) RNG stream off the campaign
                     seed.
    --halt-after-day <n>
                     run a fresh checkpointed batch campaign but stop
                     cleanly after <n> completed study days, leaving the
                     snapshot chain on disk (the deterministic kill at a
                     day boundary used by the crash-storm CI smoke);
                     needs --checkpoint-dir
    --mem-budget <bytes|min>
                     run the campaign under a hard memory budget (the
                     `run` artifact only): the accountant tracks the
                     encoded-size resident bytes of the big stores and
                     spills cold day-partitions — coldest day first,
                     deterministically — through the (possibly
                     fault-injected, see --disk-fault) spill filesystem
                     whenever the ceiling is exceeded, then streams the
                     campaign report from disk. The report is
                     byte-identical to the unbudgeted run's; a ceiling
                     the spiller cannot satisfy is refused with a typed
                     error, never an abort. `min` evicts everything
                     eligible (the tightest deterministic residency).
                     Budgeted snapshots carry the accountant (format
                     v6) and must be resumed with the same --mem-budget
    --spill-dir <dir>
                     where spill partitions (day<NNN>.part) and the
                     spill ledger live (default: <checkpoint-dir>/spill)
    --report-out <path>
                     write the canonical campaign report bytes to
                     <path> after a `run` (budgeted or not) — the CI
                     budget smoke byte-compares the two
    --timings        print per-stage wall-clock timings (campaign stages
                     and per-artifact analysis stages) to stderr
    --csv <dir>      export figure series as CSV files into <dir>
    -h, --help       show this help";

fn main() {
    let mut scale = 0.1f64;
    let mut seed = 20_200_408u64;
    let mut threads = 1usize;
    let mut timings = false;
    let mut stats = false;
    let mut lint_json = false;
    let mut lint_out: Option<std::path::PathBuf> = None;
    let mut artifact = "all".to_string();
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut ckpt_dir: Option<std::path::PathBuf> = None;
    let mut ckpt_every = 1u32;
    let mut resume: Option<std::path::PathBuf> = None;
    let mut incremental = false;
    let mut profile = FaultProfile::Calm;
    let mut outages: [Option<OutageSpec>; 4] = [None; 4];
    let mut corruption = CorruptionProfile::Calm;
    let mut disk_fault = DiskFaultProfile::Calm;
    let mut halt_after: Option<u32> = None;
    let mut mem_budget: Option<BudgetLimit> = None;
    let mut spill_dir: Option<std::path::PathBuf> = None;
    let mut report_out: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "checkpoint" => {
                let sub = args.next();
                let result = match sub.as_deref() {
                    Some("inspect") => match args.next() {
                        Some(file) => checkpoint_inspect(std::path::Path::new(&file)),
                        None => Err(CliError::usage(
                            "checkpoint inspect needs a snapshot file or directory",
                        )),
                    },
                    Some("verify") => {
                        let mut all = false;
                        let mut target: Option<String> = None;
                        for v in args.by_ref() {
                            match v.as_str() {
                                "--all" => all = true,
                                other => target = Some(other.to_string()),
                            }
                        }
                        match target {
                            Some(t) => checkpoint_verify(std::path::Path::new(&t), all),
                            None => Err(CliError::usage(
                                "checkpoint verify needs a snapshot file or directory",
                            )),
                        }
                    }
                    Some("repair") => match args.next() {
                        Some(dir) => checkpoint_repair(std::path::Path::new(&dir)),
                        None => Err(CliError::usage(
                            "checkpoint repair needs a checkpoint directory",
                        )),
                    },
                    other => Err(CliError::usage(format!(
                        "unknown checkpoint subcommand {:?} (expected inspect, verify, or repair)",
                        other.unwrap_or("")
                    ))),
                };
                if let Err(e) = result {
                    exit_with(e);
                }
                return;
            }
            "audit" => {
                let result = match args.next() {
                    Some(file) => audit_snapshot(std::path::Path::new(&file)),
                    None => Err(CliError::usage("audit needs a snapshot file")),
                };
                if let Err(e) = result {
                    exit_with(e);
                }
                return;
            }
            "--scale" => {
                let v = args.next().expect("--scale <f64|paper|10x>");
                scale = match v.as_str() {
                    "paper" => 1.0,
                    "10x" => 10.0,
                    other => other.parse().unwrap_or_else(|_| {
                        eprintln!(
                            "error: bad scale {other:?} (expected a positive number, `paper`, or `10x`)"
                        );
                        std::process::exit(2);
                    }),
                };
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed <u64>");
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads <usize>");
            }
            "--analysis" => {
                let v = args.next().expect("--analysis <batch|incremental>");
                incremental = match v.as_str() {
                    "batch" => false,
                    "incremental" => true,
                    other => {
                        eprintln!(
                            "error: unknown analysis mode {other:?} (expected batch|incremental)"
                        );
                        std::process::exit(2);
                    }
                };
            }
            "--timings" => timings = true,
            "--stats" => stats = true,
            "--format" => {
                let v = args.next().expect("--format <text|json>");
                match v.as_str() {
                    "json" => lint_json = true,
                    "text" => lint_json = false,
                    other => {
                        eprintln!("error: unknown format {other:?} (expected text or json)");
                        std::process::exit(2);
                    }
                }
            }
            "--out" => {
                lint_out = Some(std::path::PathBuf::from(args.next().expect("--out <path>")));
            }
            "--validate" => {
                let file = args.next().expect("--validate <file>");
                if let Err(e) = validate_lint_json(std::path::Path::new(&file)) {
                    exit_with(e);
                }
                return;
            }
            "--csv" => {
                csv_dir = Some(std::path::PathBuf::from(args.next().expect("--csv <dir>")));
            }
            "--checkpoint-dir" => {
                ckpt_dir = Some(std::path::PathBuf::from(
                    args.next().expect("--checkpoint-dir <dir>"),
                ));
            }
            "--checkpoint-every" => {
                ckpt_every = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--checkpoint-every <days>");
            }
            "--resume" => {
                resume = Some(std::path::PathBuf::from(
                    args.next().expect("--resume <file>"),
                ));
            }
            "--fault-profile" => {
                let v = args.next().expect("--fault-profile <calm|bursty|outage>");
                profile = FaultProfile::parse(&v).unwrap_or_else(|| {
                    eprintln!(
                        "error: unknown fault profile {v:?} (expected calm, bursty, or outage)"
                    );
                    std::process::exit(2);
                });
            }
            "--corruption" => {
                let v = args.next().expect("--corruption <calm|noisy|hostile>");
                corruption = CorruptionProfile::parse(&v).unwrap_or_else(|| {
                    eprintln!(
                        "error: unknown corruption profile {v:?} (expected calm, noisy, or hostile)"
                    );
                    std::process::exit(2);
                });
            }
            "--disk-fault" => {
                let v = args.next().expect("--disk-fault <calm|flaky|torn>");
                disk_fault = DiskFaultProfile::parse(&v).unwrap_or_else(|| {
                    eprintln!(
                        "error: unknown disk-fault profile {v:?} (expected calm, flaky, or torn)"
                    );
                    std::process::exit(2);
                });
            }
            "--halt-after-day" => {
                halt_after = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--halt-after-day <days>"),
                );
            }
            "--mem-budget" => {
                let v = args.next().expect("--mem-budget <bytes|min>");
                mem_budget = Some(match v.as_str() {
                    "min" => BudgetLimit::Min,
                    other => BudgetLimit::Bytes(other.parse().unwrap_or_else(|_| {
                        eprintln!("error: bad budget {other:?} (expected a byte count or `min`)");
                        std::process::exit(2);
                    })),
                });
            }
            "--spill-dir" => {
                spill_dir = Some(std::path::PathBuf::from(
                    args.next().expect("--spill-dir <dir>"),
                ));
            }
            "--report-out" => {
                report_out = Some(std::path::PathBuf::from(
                    args.next().expect("--report-out <path>"),
                ));
            }
            "--outage" | "--ban" => {
                let spec = args.next().expect("--outage/--ban <svc:start_day:days>");
                let (idx, spec) = parse_outage(&spec, a == "--ban");
                outages[idx] = Some(spec);
            }
            "--help" | "-h" => {
                println!("{HELP}");
                return;
            }
            other => artifact = other.to_string(),
        }
    }
    if artifact == "lint" {
        run_lint(stats, lint_json, lint_out.as_deref());
        return;
    }
    let pool = Pool::new(threads);
    let mut config = ScenarioConfig::at_scale(scale);
    config.seed = seed;
    if artifact == "dump-config" {
        println!(
            "{}",
            chatlens::workload::config_io::to_json(&config).expect("config serializes")
        );
        return;
    }
    eprintln!("# chatlens repro — scale {scale}, seed {seed}, threads {threads}");
    if profile != FaultProfile::Calm || outages.iter().any(Option::is_some) {
        eprintln!("# fault profile: {}", profile.name());
        for (name, spec) in SERVICE_NAMES.iter().zip(&outages) {
            if let Some(s) = spec {
                eprintln!(
                    "#   {} {} days {}..{}",
                    name,
                    if s.ban { "banned" } else { "down" },
                    s.start_day,
                    s.start_day + s.days
                );
            }
        }
    }
    // lint:allow(D1) stderr progress timing for the operator; no artifact reads it
    let t0 = std::time::Instant::now();
    if corruption != CorruptionProfile::Calm {
        eprintln!("# corruption profile: {}", corruption.name());
    }
    let campaign = CampaignConfig {
        threads,
        profile,
        outages,
        corruption,
        ..CampaignConfig::default()
    };
    if disk_fault != DiskFaultProfile::Calm {
        eprintln!("# disk-fault profile: {}", disk_fault.name());
    }
    let policy = ckpt_dir.as_ref().map(|dir| CheckpointPolicy {
        dir: dir.clone(),
        every_days: ckpt_every.max(1),
        on_drop: true,
        disk_fault,
    });
    // `--mem-budget`: the budgeted campaign. Only the `run` artifact is
    // supported — the analyses need the fully assembled dataset, while a
    // budgeted campaign streams its report from spilled partitions.
    if let Some(limit) = mem_budget {
        if artifact != "run" {
            exit_with(CliError::usage(
                "--mem-budget only supports the `run` artifact (analyses need the full dataset)",
            ));
        }
        if incremental {
            exit_with(CliError::usage(
                "--mem-budget does not combine with --analysis incremental",
            ));
        }
        let dir = spill_dir
            .or_else(|| ckpt_dir.as_ref().map(|d| d.join("spill")))
            .unwrap_or_else(|| {
                exit_with(CliError::usage(
                    "--mem-budget needs --spill-dir (or --checkpoint-dir, \
                     whose spill/ subdirectory is the default)",
                ))
            });
        // lint:allow(D6, D13) operator-addressed spill scratch dir; the Vfs owns every byte inside it
        if let Err(e) = std::fs::create_dir_all(&dir) {
            exit_with(CliError::failed(format!("{}: {e}", dir.display())));
        }
        let budget = BudgetPolicy {
            limit,
            dir,
            disk_fault,
        };
        eprintln!(
            "# memory budget: {} (spill dir {})",
            match limit {
                BudgetLimit::Bytes(b) => fmt_bytes(b),
                BudgetLimit::Min => "min".to_string(),
            },
            budget.dir.display()
        );
        if let Some(days) = halt_after {
            let Some(p) = &policy else {
                exit_with(CliError::usage("--halt-after-day needs --checkpoint-dir"));
            };
            if resume.is_some() {
                exit_with(CliError::usage(
                    "--halt-after-day only applies to a fresh run",
                ));
            }
            match run_study_days_budgeted(config, campaign, p, &budget, days) {
                Ok(done) => {
                    println!(
                        "campaign halted after day {done} (snapshots in {}, spills in {})",
                        p.dir.display(),
                        budget.dir.display()
                    );
                    return;
                }
                Err(e) => exit_with(CliError::failed(format!("{e}"))),
            }
        }
        let result = if let Some(path) = &resume {
            let state = match load_resume_state(path, campaign.seed, disk_fault) {
                Ok(Some(mut state)) => {
                    eprintln!(
                        "# resuming budgeted campaign from {} (day {}, threads {threads})",
                        path.display(),
                        state.day
                    );
                    state.campaign.threads = threads;
                    Some(state)
                }
                Ok(None) => {
                    eprintln!(
                        "# no valid snapshot in {}; restarting the campaign from scratch",
                        path.display()
                    );
                    None
                }
                Err(e) => exit_with(e),
            };
            match (state, &policy) {
                (Some(state), Some(p)) => resume_study_budgeted_checkpointed(&state, p, &budget),
                (Some(state), None) => resume_study_budgeted(&state, &budget),
                (None, Some(p)) => run_study_budgeted_checkpointed(config, campaign, p, &budget),
                (None, None) => run_study_budgeted(config, campaign, &budget),
            }
        } else {
            eprintln!("# building ecosystem and running the 38-day budgeted campaign...");
            match &policy {
                Some(p) => run_study_budgeted_checkpointed(config, campaign, p, &budget),
                None => run_study_budgeted(config, campaign, &budget),
            }
        };
        let run = result.unwrap_or_else(|e| exit_with(CliError::failed(format!("{e}"))));
        eprintln!("# campaign done in {:.1?}\n", t0.elapsed());
        print_budgeted_run(&run, report_out.as_deref());
        return;
    }
    // `--halt-after-day N`: the deterministic mid-campaign kill. Runs the
    // checkpointed batch campaign to the requested day boundary, leaves
    // the snapshot chain on disk, and stops before final assembly.
    if let Some(days) = halt_after {
        let Some(p) = &policy else {
            exit_with(CliError::usage("--halt-after-day needs --checkpoint-dir"));
        };
        if resume.is_some() || incremental {
            exit_with(CliError::usage(
                "--halt-after-day only applies to a fresh batch run",
            ));
        }
        match run_study_days_checkpointed(config, campaign, p, days) {
            Ok(done) => {
                println!(
                    "campaign halted after day {done} (snapshots in {})",
                    p.dir.display()
                );
                return;
            }
            Err(e) => exit_with(CliError::usage(format!("snapshot save failed: {e}"))),
        }
    }
    // `--analysis incremental`: fold every completed day into the
    // standard analyses; checkpoints then carry folded state.
    let mut driver = incremental.then(|| FoldDriver::new(standard_folds(), threads));
    let ds = if let Some(path) = &resume {
        let state = match load_resume_state(path, campaign.seed, disk_fault) {
            Ok(s) => s,
            Err(e) => exit_with(e),
        };
        match state {
            Some(mut state) => {
                if state.budget.is_some() {
                    exit_with(CliError::usage(
                        "snapshot was written under --mem-budget; resume it with the \
                         same --mem-budget (and the original --spill-dir)",
                    ));
                }
                eprintln!(
                    "# resuming campaign from {} (day {}, threads {threads})",
                    path.display(),
                    state.day,
                );
                state.campaign.threads = threads;
                run_resumed_campaign(&state, policy.as_ref(), driver.as_mut()).unwrap_or_else(|e| {
                    exit_with(CliError::usage(format!("snapshot save failed: {e}")))
                })
            }
            None => {
                eprintln!(
                    "# no valid snapshot in {}; restarting the campaign from scratch",
                    path.display()
                );
                run_fresh_campaign(config, campaign, policy.as_ref(), driver.as_mut())
                    .unwrap_or_else(|e| {
                        exit_with(CliError::usage(format!("snapshot save failed: {e}")))
                    })
            }
        }
    } else {
        eprintln!("# building ecosystem and running the 38-day campaign...");
        run_fresh_campaign(config, campaign, policy.as_ref(), driver.as_mut())
            .unwrap_or_else(|e| exit_with(CliError::usage(format!("snapshot save failed: {e}"))))
    };
    eprintln!("# campaign done in {:.1?}\n", t0.elapsed());
    if let Some(p) = &policy {
        eprintln!("# snapshots in {}", p.dir.display());
    }
    if let Some(d) = &mut driver {
        let outcome = d.finish();
        let rows: Vec<FoldSummaryRow> = outcome
            .fragments
            .iter()
            .map(|(name, fragment)| FoldSummaryRow {
                name: (*name).to_string(),
                state_bytes: outcome
                    .state_sizes
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, b)| *b)
                    .unwrap_or(0),
                fold_micros: outcome
                    .metrics
                    .stage_micros(&format!("{}.{name}", keys::STAGE_FOLD)),
                finish_micros: outcome
                    .metrics
                    .stage_micros(&format!("{}.{name}", keys::STAGE_FOLD_FINISH)),
                digest: sha256_hex(fragment.as_bytes())[..12].to_string(),
            })
            .collect();
        println!(
            "{}",
            fold_summary(&rows, outcome.peak_state_bytes, outcome.days_folded).render()
        );
    }
    if artifact == "run" {
        if let Some(path) = &report_out {
            // lint:allow(D6, D13) operator-requested report export, outside the durability domain
            if let Err(e) = std::fs::write(path, ds.campaign_report().as_bytes()) {
                exit_with(CliError::failed(format!("{}: {e}", path.display())));
            }
            eprintln!("# report written to {}", path.display());
        }
        let tot = ds.totals();
        println!(
            "campaign complete: {} tweets, {} group URLs, {} joined groups, {} messages",
            fmt_count(tot.tweets),
            fmt_count(tot.group_urls),
            fmt_count(tot.joined_groups),
            fmt_count(tot.messages)
        );
        if !ds.gaps.is_empty() {
            println!(
                "gap ledger: {} group(s) with {} censored observation day(s)",
                fmt_count(ds.gaps.group_count() as u64),
                fmt_count(ds.gaps.total_days())
            );
        }
        if !ds.quarantine.is_empty() {
            println!(
                "quarantine ledger: {} rejected bodies ({} corrupted in flight)",
                fmt_count(ds.quarantine.len() as u64),
                fmt_count(ds.metrics.get("transport.corrupted"))
            );
        }
        return;
    }

    let mut cmp: Vec<Comparison> = Vec::new();
    // Analysis-side stage timings, reported next to the campaign's
    // (`stage.*` counters inside `ds.metrics`) under `--timings`.
    let mut stages = Metrics::new();
    let all = artifact == "all";
    if all || artifact == "table1" {
        table1();
    }
    if all || artifact == "table2" {
        stages.time_stage(keys::STAGE_TABLE2, || table2(&ds, scale, &mut cmp));
    }
    if all || artifact == "fig1" {
        stages.time_stage(keys::STAGE_FIG1, || fig1(&ds, &pool, scale, &mut cmp));
    }
    if all || artifact == "fig2" {
        stages.time_stage(keys::STAGE_FIG2, || fig2(&ds, &pool, &mut cmp));
    }
    if all || artifact == "fig3" {
        stages.time_stage(keys::STAGE_FIG3, || fig3(&ds, &mut cmp));
    }
    if all || artifact == "fig4" {
        stages.time_stage(keys::STAGE_FIG4, || fig4(&ds, &mut cmp));
    }
    if all || artifact == "table3" {
        stages.time_stage(keys::STAGE_LDA, || table3(&ds, threads, &mut cmp));
    }
    if all || artifact == "fig5" {
        stages.time_stage(keys::STAGE_FIG5, || fig5(&ds, &pool, &mut cmp));
    }
    if all || artifact == "fig6" {
        stages.time_stage(keys::STAGE_FIG6, || fig6(&ds, &pool, &mut cmp));
    }
    if all || artifact == "fig7" {
        stages.time_stage(keys::STAGE_FIG7, || fig7(&ds, &mut cmp));
    }
    if all || artifact == "fig8" {
        stages.time_stage(keys::STAGE_FIG8, || fig8(&ds, &mut cmp));
    }
    if all || artifact == "fig9" {
        stages.time_stage(keys::STAGE_FIG9, || fig9(&ds, &pool, &mut cmp));
    }
    if all || artifact == "table4" {
        stages.time_stage(keys::STAGE_TABLE4, || table4(&ds, &pool, &mut cmp));
    }
    if all || artifact == "table5" {
        stages.time_stage(keys::STAGE_TABLE5, || table5(&ds, &mut cmp));
    }
    if all || artifact == "extras" {
        stages.time_stage(keys::STAGE_EXTRAS, || extras(&ds, &mut cmp));
    }
    if all || artifact == "extensions" {
        stages.time_stage(keys::STAGE_EXTENSIONS, || {
            extensions(&ds, threads, &mut cmp)
        });
    }
    if let Some(dir) = &csv_dir {
        if let Err(e) = export_csv(&ds, &pool, dir) {
            exit_with(CliError::usage(format!("CSV export failed: {e}")));
        }
        eprintln!("# figure series written to {}", dir.display());
    }
    if timings {
        eprintln!("# campaign stage timings (wall-clock, nondeterministic):");
        for (name, v) in ds.metrics.stages() {
            eprintln!("#   {name} = {v}");
        }
        eprintln!("# analysis stage timings:");
        for (name, v) in stages.stages() {
            eprintln!("#   {name} = {v}");
        }
    }
    if !cmp.is_empty() {
        println!("\n## Paper vs measured (scale {scale}, seed {seed})\n");
        println!("{}", markdown_table(&cmp));
        println!(
            "{} of {} comparisons within tolerance",
            holding(&cmp),
            cmp.len()
        );
    }
}

fn pname(k: PlatformKind) -> &'static str {
    k.name()
}

/// Parse an `--outage`/`--ban` operand of the form `svc:start_day:days`
/// into the service's [`SERVICE_NAMES`] index and its [`OutageSpec`].
fn parse_outage(arg: &str, ban: bool) -> (usize, OutageSpec) {
    let bail = |what: &str| -> ! {
        eprintln!("error: bad outage spec {arg:?}: {what} (expected <svc:start_day:days>)");
        std::process::exit(2);
    };
    let mut parts = arg.split(':');
    let (Some(svc), Some(start), Some(days), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        bail("need exactly three `:`-separated fields")
    };
    let Some(idx) = SERVICE_NAMES.iter().position(|&n| n == svc) else {
        bail("unknown service (expected twitter, whatsapp, telegram, or discord)")
    };
    let (Ok(start_day), Ok(days)) = (start.parse::<u32>(), days.parse::<u32>()) else {
        bail("start day and length must be unsigned integers")
    };
    if days == 0 {
        bail("outage length must be at least one day")
    }
    (
        idx,
        OutageSpec {
            start_day,
            days,
            ban,
        },
    )
}

/// A typed CLI failure: the diagnostic for stderr plus the process exit
/// code — `1` when the requested check found problems, `2` on usage or
/// I/O errors. Threaded back to [`exit_with`] through `Result` so the
/// subcommand bodies stay ordinary fallible functions instead of
/// sprinkling `process::exit` through every filesystem touch.
/// Print the budgeted `run` summary: Table 2 totals, the accountant's
/// final statistics, and (optionally) the canonical report bytes to a
/// file for byte-comparison against an unbudgeted run.
fn print_budgeted_run(run: &BudgetedRun, report_out: Option<&std::path::Path>) {
    if let Some(path) = report_out {
        // lint:allow(D6, D13) operator-requested report export, outside the durability domain
        if let Err(e) = std::fs::write(path, run.report.as_bytes()) {
            exit_with(CliError::failed(format!("{}: {e}", path.display())));
        }
        eprintln!("# report written to {}", path.display());
    }
    let tot = run.totals;
    println!(
        "campaign complete: {} tweets, {} group URLs, {} joined groups, {} messages",
        fmt_count(tot.tweets),
        fmt_count(tot.group_urls),
        fmt_count(tot.joined_groups),
        fmt_count(tot.messages)
    );
    let s = &run.stats;
    let limit = match s.limit {
        Some(b) => fmt_bytes(b),
        None => "min".to_string(),
    };
    println!(
        "budget: limit {limit}, floor {}, resident peak {}, spilled {} partition(s) ({}), \
         evictions {}, faults {}, torn detected {}",
        fmt_bytes(s.floor),
        fmt_bytes(s.resident_peak),
        fmt_count(s.partitions),
        fmt_bytes(s.spilled_bytes),
        fmt_count(s.evictions),
        fmt_count(s.faults),
        fmt_count(s.torn_detected),
    );
}

struct CliError {
    message: String,
    code: i32,
}

impl CliError {
    /// Usage / environment error (exit 2).
    fn usage(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: 2,
        }
    }

    /// The requested check ran and failed (exit 1).
    fn failed(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: 1,
        }
    }
}

/// Print a [`CliError`] diagnostic and terminate with its exit code.
fn exit_with(err: CliError) -> ! {
    eprintln!("error: {}", err.message);
    std::process::exit(err.code);
}

/// Dispatch a fresh campaign across the four policy × analysis modes.
fn run_fresh_campaign(
    config: ScenarioConfig,
    campaign: CampaignConfig,
    policy: Option<&CheckpointPolicy>,
    driver: Option<&mut FoldDriver>,
) -> Result<Dataset, CheckpointError> {
    match (policy, driver) {
        (Some(p), Some(d)) => run_study_folded_checkpointed(config, campaign, p, d),
        (Some(p), None) => run_study_checkpointed(config, campaign, p),
        (None, Some(d)) => Ok(run_study_folded(config, campaign, d)),
        (None, None) => Ok(run_study_with(config, campaign)),
    }
}

/// Dispatch a resumed campaign across the four policy × analysis modes.
fn run_resumed_campaign(
    state: &CampaignState,
    policy: Option<&CheckpointPolicy>,
    driver: Option<&mut FoldDriver>,
) -> Result<Dataset, CheckpointError> {
    match (policy, driver) {
        (Some(p), Some(d)) => resume_study_folded_checkpointed(state, p, d),
        (Some(p), None) => resume_study_checkpointed(state, p),
        (None, Some(d)) => Ok(resume_study_folded(state, d)),
        (None, None) => Ok(resume_study(state)),
    }
}

/// Resolve `--resume <path>` into a campaign state. A single readable
/// snapshot file loads directly; a checkpoint directory — or a file that
/// turns out to be damaged — goes through chain recovery: walk the
/// per-day chain backwards past invalid links to the newest valid
/// snapshot, appending every skip to the directory's recovery ledger.
/// `Ok(None)` means no link survived anywhere in the chain and the
/// caller should start fresh.
fn load_resume_state(
    path: &std::path::Path,
    seed: u64,
    disk_fault: DiskFaultProfile,
) -> Result<Option<CampaignState>, CliError> {
    if path.is_file() {
        match load_from_file::<CampaignState>(path) {
            Ok(state) => return Ok(Some(state)),
            Err(e) => eprintln!(
                "# snapshot {} is unusable ({e}); walking the checkpoint chain",
                path.display()
            ),
        }
    }
    let dir = if path.is_dir() {
        path.to_path_buf()
    } else {
        match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => {
                return Err(CliError::usage(format!(
                    "{}: no checkpoint directory to recover from",
                    path.display()
                )))
            }
        }
    };
    let policy = CheckpointPolicy {
        dir: dir.clone(),
        every_days: 0,
        on_drop: false,
        disk_fault,
    };
    let recovered = recover_latest_state(&policy, seed, None)
        .map_err(|e| CliError::usage(format!("{}: chain recovery failed: {e}", dir.display())))?;
    for skip in &recovered.skipped {
        eprintln!(
            "# chain recovery skipped {} (day {}): {}",
            skip.file,
            skip.day,
            skip.reason.label()
        );
    }
    Ok(recovered.state)
}

/// `repro lint --validate <file>`: parse a previously emitted lint
/// report and check it against the `chatlens-lint/v1` JSON schema.
/// Exits 0 when the document is well-formed and schema-valid.
fn validate_lint_json(path: &std::path::Path) -> Result<(), CliError> {
    let body = RealVfs
        .read(path)
        .map_err(|e| CliError::usage(format!("cannot read {e}")))?;
    let body = String::from_utf8(body)
        .map_err(|_| CliError::failed(format!("{} is not UTF-8", path.display())))?;
    match chatlens_lint::json::validate(&body) {
        Ok(()) => {
            eprintln!("# chatlens-lint: {} is schema-valid", path.display());
            Ok(())
        }
        Err(e) => Err(CliError::failed(format!(
            "{} fails schema validation: {e}",
            path.display()
        ))),
    }
}

/// `repro lint [--stats] [--format json] [--out <path>]`: run the
/// determinism & concurrency static-analysis pass over the workspace
/// and exit nonzero on findings. `--format json` prints the machine
/// readable `chatlens-lint/v1` report instead of diagnostics; `--out`
/// additionally writes that report to a file (useful in CI, where the
/// human diagnostics still go to stdout).
fn run_lint(stats: bool, json: bool, out: Option<&std::path::Path>) {
    // Prefer the invocation directory when it looks like the workspace
    // root (so the binary works from a checkout), falling back to the
    // compile-time manifest dir for `cargo run` from a subdirectory.
    let cwd = std::path::PathBuf::from(".");
    let root = if cwd.join("crates").is_dir() {
        cwd
    } else {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
    };
    let report = chatlens_lint::check_workspace(&root).expect("workspace sources readable");
    if json || out.is_some() {
        let body = chatlens_lint::json::report_json(&report);
        debug_assert!(chatlens_lint::json::validate(&body).is_ok());
        if let Some(path) = out {
            if let Err(e) = RealVfs.write_atomic(path, body.as_bytes()) {
                exit_with(CliError::usage(format!("cannot write report: {e}")));
            }
        }
        if json {
            println!("{body}");
        }
    }
    if !json {
        for f in &report.findings {
            println!("{f}");
        }
    }
    if stats {
        println!("\n## chatlens-lint --stats\n\n{}", report.stats_table());
    } else if !json {
        eprintln!(
            "# chatlens-lint: {} file(s), {} finding(s), {} suppressed",
            report.files_scanned,
            report.findings.len(),
            report.suppressed
        );
    }
    if !report.is_clean() {
        std::process::exit(1);
    }
}

/// `repro checkpoint inspect <file|dir>`: decode a snapshot and print
/// its summary as JSON, or exit 2 with a diagnostic if the file is
/// corrupt, truncated, or written by a different format version. Given
/// a checkpoint directory, prints the per-day chain status and the
/// persisted recovery ledger instead.
fn checkpoint_inspect(path: &std::path::Path) -> Result<(), CliError> {
    if path.is_dir() {
        let entries = chain::verify_chain::<CampaignState>(&mut RealVfs, path)
            .map_err(|e| CliError::usage(format!("{e}")))?;
        if entries.is_empty() {
            println!("no snapshots in {}", path.display());
        }
        for e in &entries {
            match &e.outcome {
                Ok(()) => println!("{}  day {:3}  ok", e.file, e.day),
                Err(err) => println!("{}  day {:3}  INVALID: {err}", e.file, e.day),
            }
        }
        let ledger = chain::load_ledger(path);
        if ledger.entries.is_empty() {
            println!("recovery ledger: empty");
        } else {
            println!("recovery ledger ({} entries):", ledger.entries.len());
            for e in &ledger.entries {
                println!(
                    "  day {:3}  {}  {}  {}",
                    e.day,
                    e.file,
                    e.reason.label(),
                    e.action.label()
                );
            }
        }
        return Ok(());
    }
    match load_from_file::<CampaignState>(path) {
        Ok(state) => {
            println!(
                "{}",
                chatlens::workload::config_io::to_json(&state.summary())
                    .expect("summary serializes")
            );
            Ok(())
        }
        Err(e) => Err(CliError::usage(format!("{}: {e}", path.display()))),
    }
}

/// `repro checkpoint verify [--all] <file|dir>`: classify snapshots
/// without touching them. A directory (or `--all`) walks the whole
/// chain and prints a counter summary; success means at least one valid
/// resume point survives.
fn checkpoint_verify(path: &std::path::Path, all: bool) -> Result<(), CliError> {
    if all || path.is_dir() {
        let dir = if path.is_dir() {
            path
        } else {
            path.parent()
                .filter(|p| !p.as_os_str().is_empty())
                .ok_or_else(|| {
                    CliError::usage(format!("{}: not a checkpoint directory", path.display()))
                })?
        };
        let entries = chain::verify_chain::<CampaignState>(&mut RealVfs, dir)
            .map_err(|e| CliError::usage(format!("{e}")))?;
        let mut metrics = Metrics::new();
        for e in &entries {
            match &e.outcome {
                Ok(()) => {
                    metrics.add(keys::CHECKPOINT_CHAIN_VALID, 1);
                    println!("{}  day {:3}  ok", e.file, e.day);
                }
                Err(err) => {
                    metrics.add(keys::CHECKPOINT_CHAIN_INVALID, 1);
                    println!("{}  day {:3}  INVALID: {err}", e.file, e.day);
                }
            }
        }
        println!("{metrics}");
        if metrics.get(keys::CHECKPOINT_CHAIN_VALID) == 0 {
            return Err(CliError::failed(format!(
                "{}: no valid resume point in the chain",
                dir.display()
            )));
        }
        return Ok(());
    }
    match load_from_file::<CampaignState>(path) {
        Ok(state) => {
            println!("{}  day {:3}  ok", path.display(), state.day);
            Ok(())
        }
        Err(e) => Err(CliError::failed(format!("{}: {e}", path.display()))),
    }
}

/// `repro checkpoint repair <dir>`: quarantine every invalid snapshot
/// and orphaned `.tmp` file into `<dir>/quarantine/` (recorded in the
/// recovery ledger) so the remaining chain verifies clean.
fn checkpoint_repair(dir: &std::path::Path) -> Result<(), CliError> {
    if !dir.is_dir() {
        return Err(CliError::usage(format!(
            "{}: not a checkpoint directory",
            dir.display()
        )));
    }
    let report = chain::repair_chain::<CampaignState>(&mut RealVfs, dir)
        .map_err(|e| CliError::usage(format!("{e}")))?;
    for e in &report.quarantined {
        println!(
            "quarantined {}  day {:3}  {}",
            e.file,
            e.day,
            e.reason.label()
        );
    }
    let mut metrics = Metrics::new();
    metrics.add(keys::CHECKPOINT_CHAIN_VALID, u64::from(report.kept));
    metrics.add(
        keys::CHECKPOINT_QUARANTINED,
        report.quarantined.len() as u64,
    );
    println!("{metrics}");
    Ok(())
}

/// `repro audit <file>`: resume a snapshot to a finished dataset and run
/// the invariant auditor over it. Exit 0 (clean) or 1 (violations);
/// exit 2 when the snapshot itself cannot be decoded.
fn audit_snapshot(path: &std::path::Path) -> Result<(), CliError> {
    let state: CampaignState =
        load_from_file(path).map_err(|e| CliError::usage(format!("{}: {e}", path.display())))?;
    eprintln!(
        "# resuming campaign from {} (day {}) for audit...",
        path.display(),
        state.day
    );
    let ds = resume_study(&state);
    let violations = audit_dataset(&ds);
    println!(
        "audited {} groups, {} timelines, {} quarantined bodies",
        fmt_count(ds.groups.len() as u64),
        fmt_count(ds.timelines.len() as u64),
        fmt_count(ds.quarantine.len() as u64)
    );
    if violations.is_empty() {
        println!("audit clean: every dataset invariant holds");
        return Ok(());
    }
    for v in &violations {
        println!("violation: {}", v.render());
    }
    Err(CliError::failed(format!(
        "{} invariant violation(s)",
        violations.len()
    )))
}

/// Write every figure's plottable series as CSV files into `dir`, each
/// through the VFS tmp+rename path so a crash never leaves a truncated
/// report file.
fn export_csv(ds: &Dataset, pool: &Pool, dir: &std::path::Path) -> Result<(), CheckpointError> {
    let mut vfs = RealVfs;
    vfs.create_dir_all(dir)?;
    let mut write = |name: String, body: String| vfs.write_atomic(&dir.join(name), body.as_bytes());
    let daily = discovery::daily_discovery_all(ds, pool);
    let per_url = discovery::tweets_per_url_all(ds, pool);
    let staleness = lifecycle::staleness_days_all(ds, pool);
    let revocations = lifecycle::revocation_stats_all(ds, pool);
    for kind in PLATFORMS {
        let tag = pname(kind).to_lowercase();
        let d = daily[kind.index()].clone();
        write(
            format!("fig1_{tag}.csv"),
            days_csv(&["all", "unique", "new"], &[d.all, d.unique, d.new]),
        )?;
        write(
            format!("fig2_tweets_per_url_{tag}.csv"),
            to_csv(("tweets_per_url", "cdf"), &per_url[kind.index()].series()),
        )?;
        write(
            format!("fig5_staleness_{tag}.csv"),
            to_csv(("age_days", "cdf"), &staleness[kind.index()].series()),
        )?;
        let r = &revocations[kind.index()];
        write(
            format!("fig6_lifetime_{tag}.csv"),
            to_csv(("days_accessible", "cdf"), &r.lifetime_days.series()),
        )?;
        write(
            format!("fig6_revoked_per_day_{tag}.csv"),
            to_csv(
                ("day", "revoked_share"),
                &r.revoked_per_day
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (i as f64, v))
                    .collect::<Vec<_>>(),
            ),
        )?;
        write(
            format!("fig7_members_{tag}.csv"),
            to_csv(
                ("members", "cdf"),
                &membership::member_counts(ds, kind).series(),
            ),
        )?;
        write(
            format!("fig7_online_{tag}.csv"),
            to_csv(
                ("online_fraction", "cdf"),
                &membership::online_fractions(ds, kind).series(),
            ),
        )?;
        write(
            format!("fig7_growth_{tag}.csv"),
            to_csv(
                ("delta_members", "cdf"),
                &membership::growth(ds, kind).deltas.series(),
            ),
        )?;
        write(
            format!("fig9_msgs_per_group_day_{tag}.csv"),
            to_csv(
                ("msgs_per_day", "cdf"),
                &messages::msgs_per_group_day(ds, kind).series(),
            ),
        )?;
        write(
            format!("fig9_msgs_per_user_{tag}.csv"),
            to_csv(
                ("msgs_per_user", "cdf"),
                &messages::user_activity(ds, kind).volumes.series(),
            ),
        )?;
    }
    Ok(())
}

// ---- Extensions: §4 multilingual topics, §8 toxicity, Table 2 overlap ----

fn extensions(ds: &Dataset, threads: usize, cmp: &mut Vec<Comparison>) {
    println!("Extensions (paper's omitted-for-space / future-work analyses)");
    // Cross-platform co-shares: the Table 2 rows-vs-total gap.
    let cross = discovery::cross_platform_tweets(ds);
    println!(
        "  {} tweets advertise groups on more than one platform — the gap \
         between Table 2's per-platform rows and its printed total",
        fmt_count(cross)
    );
    cmp.push(Comparison {
        artifact: "Ext".into(),
        quantity: "cross-platform tweets exist".into(),
        paper: 1.0,
        measured: cross as f64,
        direction: chatlens::report::Direction::AtLeast,
        tolerance: 0.0,
    });

    // Multilingual LDA (§4's closing remark): COVID-19 in Spanish,
    // politics in Spanish/Portuguese.
    let vocab = Vocabulary::build();
    for (kind, lang, want) in [
        (PlatformKind::WhatsApp, Lang::Es, "COVID-19"),
        (PlatformKind::Telegram, Lang::Es, "Politics (es)"),
        (PlatformKind::WhatsApp, Lang::Pt, "Politics (pt)"),
    ] {
        let Some(analysis) = topics::analyze_topics_lang(
            ds,
            kind,
            lang,
            &vocab,
            // K above the reference-set size gives LDA room to split a
            // viral group's flood off from the thematic topics.
            chatlens::analysis::LdaConfig {
                k: 8,
                iterations: 60,
                seed: 13,
                threads,
                ..chatlens::analysis::LdaConfig::default()
            },
        ) else {
            continue;
        };
        let found = analysis.topics.iter().any(|t| t.label == want);
        let shares = topics::share_by_label(&analysis);
        println!(
            "  {} {} tweets ({} docs): {}",
            pname(kind),
            lang,
            analysis.num_docs,
            shares
                .iter()
                .map(|(l, s)| format!("{l} {}", fmt_pct(*s)))
                .collect::<Vec<_>>()
                .join(", ")
        );
        cmp.push(Comparison {
            artifact: "Ext".into(),
            quantity: format!("{kind} {lang}: \"{want}\" topic recovered"),
            paper: 1.0,
            measured: f64::from(found),
            direction: chatlens::report::Direction::AtLeast,
            tolerance: 0.0,
        });
    }

    // §8 future work: toxicity via the Perspective-style analyzer.
    let reports = score_dataset(ds, &vocab, 50.0);
    for r in &reports {
        println!(
            "  toxicity {:<8} scored {:<7} mean {:.3}  likely-toxic {}",
            pname(r.platform),
            fmt_count(r.scored),
            r.mean,
            fmt_pct(r.toxic_share)
        );
    }
    let share = |k: PlatformKind| {
        reports
            .iter()
            .find(|r| r.platform == k)
            .map(|r| r.toxic_share)
            .unwrap_or(0.0)
    };
    cmp.push(Comparison {
        artifact: "Ext".into(),
        quantity: "toxicity ordering TG > DC > WA".into(),
        paper: share(PlatformKind::Discord).max(share(PlatformKind::WhatsApp)),
        measured: share(PlatformKind::Telegram),
        direction: chatlens::report::Direction::AtLeast,
        tolerance: 0.0,
    });
    println!();
}

// ---- Table 1 -------------------------------------------------------------

fn table1() {
    let mut t = Table::new("Table 1: Platform characteristics").header([
        "Characteristic",
        "WhatsApp",
        "Telegram",
        "Discord",
    ]);
    let specs = PlatformSpec::all();
    let row = |label: &str, f: &dyn Fn(&PlatformSpec) -> String| -> Vec<String> {
        let mut cells = vec![label.to_string()];
        cells.extend(specs.iter().map(f));
        cells
    };
    t.row(row("Initial release", &|s| s.release.to_string()));
    t.row(row("User base", &|s| fmt_count(s.user_base)));
    t.row(row("Registration", &|s| s.registration.label().to_string()));
    t.row(row("Public chats", &|s| s.public_chat_options.to_string()));
    t.row(row("Max members", &|s| fmt_count(u64::from(s.max_members))));
    t.row(row("Data API", &|s| {
        if s.has_data_api { "Yes" } else { "No" }.to_string()
    }));
    t.row(row("Forward limit", &|s| match s.forward_limit {
        Some(n) => format!("up to {n}"),
        None => "-".to_string(),
    }));
    t.row(row("E2E encryption", &|s| s.e2ee.label().to_string()));
    t.row(row("Invite TTL (days)", &|s| match s.invite_ttl_days {
        Some(d) => d.to_string(),
        None => "-".to_string(),
    }));
    println!("{}", t.render());
}

// ---- Table 2 -------------------------------------------------------------

fn table2(ds: &Dataset, scale: f64, cmp: &mut Vec<Comparison>) {
    let paper_rows: [(PlatformKind, [f64; 6]); 3] = [
        (
            PlatformKind::WhatsApp,
            [239_807.0, 88_119.0, 45_718.0, 416.0, 476_059.0, 20_906.0],
        ),
        (
            PlatformKind::Telegram,
            [
                1_224_540.0,
                398_816.0,
                78_105.0,
                100.0,
                3_148_826.0,
                688_343.0,
            ],
        ),
        (
            PlatformKind::Discord,
            [
                779_685.0,
                340_702.0,
                227_712.0,
                100.0,
                4_630_184.0,
                52_463.0,
            ],
        ),
    ];
    let mut t = Table::new(format!("Table 2: Dataset overview (scale {scale})")).header([
        "Platform",
        "#Tweets",
        "#TwUsers",
        "#GroupURLs",
        "#Joined",
        "#Messages",
        "#Users",
    ]);
    for (kind, paper) in paper_rows {
        let s = ds.summary(kind);
        t.row([
            pname(kind).to_string(),
            fmt_count(s.tweets),
            fmt_count(s.twitter_users),
            fmt_count(s.group_urls),
            fmt_count(s.joined_groups),
            fmt_count(s.messages),
            fmt_count(s.platform_users),
        ]);
        // Linear-scaled quantities compare against paper×scale; join
        // budgets scale as sqrt(scale) and message/member totals follow
        // them.
        let budget_scale = scale.powf(0.25);
        // Tweet totals are dominated by a heavy share-count tail (14 of
        // the paper's Telegram URLs account for >100K tweets), so small
        // scales fluctuate hard; the tolerance reflects that.
        cmp.push(Comparison::near(
            "Table 2",
            format!("{kind} tweets"),
            paper[0] * scale,
            s.tweets as f64,
            if kind == PlatformKind::Telegram {
                0.6
            } else {
                0.45
            },
        ));
        cmp.push(Comparison::near(
            "Table 2",
            format!("{kind} group URLs"),
            paper[2] * scale,
            s.group_urls as f64,
            0.15,
        ));
        cmp.push(Comparison::near(
            "Table 2",
            format!("{kind} joined groups"),
            paper[3] * budget_scale,
            s.joined_groups as f64,
            0.15,
        ));
        // Joined-group message totals are dominated by whether the join
        // sample caught one of the few giant rooms, so this is the widest
        // band in the suite.
        cmp.push(Comparison::near(
            "Table 2",
            format!("{kind} messages"),
            paper[4] * budget_scale,
            s.messages as f64,
            0.85,
        ));
    }
    let tot = ds.totals();
    t.row([
        "Total".to_string(),
        fmt_count(tot.tweets),
        fmt_count(tot.twitter_users),
        fmt_count(tot.group_urls),
        fmt_count(tot.joined_groups),
        fmt_count(tot.messages),
        fmt_count(tot.platform_users),
    ]);
    println!("{}", t.render());
}

// ---- Fig 1 ---------------------------------------------------------------

fn fig1(ds: &Dataset, pool: &Pool, scale: f64, cmp: &mut Vec<Comparison>) {
    println!("Fig 1: group URLs discovered per day (collection-day axis)");
    // Paper medians: all (TG 33,864 / DC 19,970), unique (DC 8,090 /
    // TG 4,661), new (WA 1,111 / TG 1,817 / DC 5,664).
    let paper_new = [1_111.0, 1_817.0, 5_664.0];
    let daily = discovery::daily_discovery_all(ds, pool);
    for kind in PLATFORMS {
        let d = &daily[kind.index()];
        println!(
            "  {:<8} all/day    {}",
            pname(kind),
            sparkline(&d.all.iter().map(|&x| x as f64).collect::<Vec<_>>())
        );
        println!(
            "  {:<8} unique/day {}",
            "",
            sparkline(&d.unique.iter().map(|&x| x as f64).collect::<Vec<_>>())
        );
        println!(
            "  {:<8} new/day    {}",
            "",
            sparkline(&d.new.iter().map(|&x| x as f64).collect::<Vec<_>>())
        );
        println!(
            "  {:<8} medians: all {:.0}, unique {:.0}, new {:.0}",
            "",
            d.median_all(),
            d.median_unique(),
            d.median_new()
        );
        cmp.push(Comparison::near(
            "Fig 1",
            format!("{kind} median new URLs/day"),
            paper_new[kind.index()] * scale,
            d.median_new(),
            0.35,
        ));
    }
    let [wa, tg, dc] = &daily;
    cmp.push(Comparison {
        artifact: "Fig 1".into(),
        quantity: "Telegram has most URL mentions/day".into(),
        paper: dc.median_all(),
        measured: tg.median_all(),
        direction: chatlens::report::Direction::AtLeast,
        tolerance: 0.0,
    });
    cmp.push(Comparison {
        artifact: "Fig 1".into(),
        quantity: "WhatsApp discovers fewest new URLs/day".into(),
        paper: wa.median_new(),
        measured: tg.median_new().min(dc.median_new()),
        direction: chatlens::report::Direction::AtLeast,
        tolerance: 0.0,
    });
    println!();
}

// ---- Fig 2 ---------------------------------------------------------------

fn fig2(ds: &Dataset, pool: &Pool, cmp: &mut Vec<Comparison>) {
    println!("Fig 2: tweets per group URL");
    let per_url = discovery::tweets_per_url_all(ds, pool);
    let [wa, tg, dc] = &per_url;
    println!(
        "{}",
        chatlens::report::plot::plot_cdfs(
            "  Fig 2: tweets per URL (CDF, log x)",
            &[("WhatsApp", wa), ("Telegram", tg), ("Discord", dc)],
            64,
            10,
            true,
        )
    );
    let paper_once = [0.50, 0.50, 0.62];
    for kind in PLATFORMS {
        let e = &per_url[kind.index()];
        println!("  {}", cdf_summary(pname(kind), e).trim_end());
        let once = e.fraction_at_most(1.0);
        println!("  {:<8} shared once: {}", "", fmt_pct(once));
        cmp.push(Comparison::near(
            "Fig 2",
            format!("{kind} URLs shared once"),
            paper_once[kind.index()],
            once,
            0.12,
        ));
    }
    println!();
}

// ---- Fig 3 ---------------------------------------------------------------

fn fig3(ds: &Dataset, cmp: &mut Vec<Comparison>) {
    let mut t = Table::new("Fig 3: tweet features").header([
        "Population",
        ">=1 hashtag",
        ">=2 hashtags",
        ">=1 mention",
        ">=2 mentions",
        "retweets",
    ]);
    // Paper: hashtags 13/24/14/13 (>1: 4/10/7/5), mentions 73/84/68/76
    // (>1: 20/14/15/12), RT 33/76/50.
    let paper = [(0.13, 0.73, 0.33), (0.24, 0.84, 0.76), (0.14, 0.68, 0.50)];
    let paper_multi = [(0.04, 0.20), (0.10, 0.14), (0.07, 0.15)];
    for kind in PLATFORMS {
        let f = content::platform_features(ds, kind);
        t.row([
            pname(kind).to_string(),
            fmt_pct(f.with_hashtag),
            fmt_pct(f.with_multi_hashtag),
            fmt_pct(f.with_mention),
            fmt_pct(f.with_multi_mention),
            fmt_pct(f.retweets),
        ]);
        let (mh, mm) = paper_multi[kind.index()];
        cmp.push(Comparison::near(
            "Fig 3",
            format!("{kind} multi-hashtag rate"),
            mh,
            f.with_multi_hashtag,
            0.3,
        ));
        cmp.push(Comparison::near(
            "Fig 3",
            format!("{kind} multi-mention rate"),
            mm,
            f.with_multi_mention,
            0.3,
        ));
        let (ph, pm, pr) = paper[kind.index()];
        cmp.push(Comparison::near(
            "Fig 3",
            format!("{kind} hashtag rate"),
            ph,
            f.with_hashtag,
            0.2,
        ));
        cmp.push(Comparison::near(
            "Fig 3",
            format!("{kind} mention rate"),
            pm,
            f.with_mention,
            0.1,
        ));
        cmp.push(Comparison::near(
            "Fig 3",
            format!("{kind} retweet rate"),
            pr,
            f.retweets,
            0.2,
        ));
    }
    let c = content::control_features(ds);
    t.row([
        "control".to_string(),
        fmt_pct(c.with_hashtag),
        fmt_pct(c.with_multi_hashtag),
        fmt_pct(c.with_mention),
        fmt_pct(c.with_multi_mention),
        fmt_pct(c.retweets),
    ]);
    cmp.push(Comparison::near(
        "Fig 3",
        "control hashtag rate",
        0.13,
        c.with_hashtag,
        0.2,
    ));
    println!("{}", t.render());
}

// ---- Fig 4 ---------------------------------------------------------------

fn fig4(ds: &Dataset, cmp: &mut Vec<Comparison>) {
    let mut t = Table::new("Fig 4: tweet languages").header(["Platform", "top languages (share)"]);
    let paper_en = [0.26, 0.35, 0.47];
    for kind in PLATFORMS {
        let mut shares = content::language_shares(ds, kind);
        shares.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        let top: Vec<String> = shares
            .iter()
            .take(4)
            .map(|(l, s)| format!("{l} {}", fmt_pct(*s)))
            .collect();
        t.row([pname(kind).to_string(), top.join(", ")]);
        cmp.push(Comparison::near(
            "Fig 4",
            format!("{kind} English share"),
            paper_en[kind.index()],
            content::language_share(ds, kind, Lang::En),
            0.25,
        ));
    }
    cmp.push(Comparison::near(
        "Fig 4",
        "Discord Japanese share",
        0.27,
        content::language_share(ds, PlatformKind::Discord, Lang::Ja),
        0.3,
    ));
    cmp.push(Comparison::near(
        "Fig 4",
        "Telegram Arabic share",
        0.15,
        content::language_share(ds, PlatformKind::Telegram, Lang::Ar),
        0.3,
    ));
    println!("{}", t.render());
}

// ---- Table 3 -------------------------------------------------------------

fn table3(ds: &Dataset, threads: usize, cmp: &mut Vec<Comparison>) {
    println!("Table 3: LDA topics over English tweets (10 per platform)");
    let vocab = Vocabulary::build();
    for kind in PLATFORMS {
        let analysis = topics::analyze_topics(
            ds,
            kind,
            &vocab,
            LdaConfig {
                k: 10,
                iterations: 60,
                seed: 3,
                threads,
                ..LdaConfig::default()
            },
        );
        println!("  {} ({} English tweets)", pname(kind), analysis.num_docs);
        let mut sorted = analysis.topics.clone();
        sorted.sort_by(|a, b| b.tweet_share.partial_cmp(&a.tweet_share).expect("finite"));
        for topic in &sorted {
            println!(
                "    {:<32} {:>6}  match {:.2}  [{}]",
                topic.label,
                fmt_pct(topic.tweet_share),
                topic.match_score,
                topic.top_terms[..5.min(topic.top_terms.len())].join(", ")
            );
        }
        let matched_well = analysis
            .topics
            .iter()
            .filter(|t| t.match_score >= 0.5)
            .count();
        cmp.push(Comparison {
            artifact: "Table 3".into(),
            quantity: format!("{kind} topics matching reference vocab (of 10)"),
            paper: 8.0,
            measured: matched_well as f64,
            direction: chatlens::report::Direction::AtLeast,
            tolerance: 0.0,
        });
        // Signature label shares: WhatsApp's advertising topic is 30% of
        // Table 3, Telegram's sex topics 23%.
        let shares = topics::share_by_label(&analysis);
        let share_of = |label: &str| {
            shares
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, s)| *s)
                .unwrap_or(0.0)
        };
        match kind {
            PlatformKind::WhatsApp => cmp.push(Comparison::near(
                "Table 3",
                "WhatsApp advertising-label share",
                0.30,
                share_of("WhatsApp group advertisement"),
                0.5,
            )),
            PlatformKind::Telegram => cmp.push(Comparison::near(
                "Table 3",
                "Telegram sex-label share",
                0.23,
                share_of("Sex"),
                0.6,
            )),
            PlatformKind::Discord => {}
        }
    }
    // Signature platform-specific topics must be recovered.
    let vocab2 = Vocabulary::build();
    let dc = topics::analyze_topics(
        ds,
        PlatformKind::Discord,
        &vocab2,
        LdaConfig {
            k: 10,
            iterations: 60,
            seed: 3,
            threads,
            ..LdaConfig::default()
        },
    );
    let shares = topics::share_by_label(&dc);
    let adv = shares
        .iter()
        .find(|(l, _)| l == "Advertising Discord groups")
        .map(|(_, s)| *s)
        .unwrap_or(0.0);
    cmp.push(Comparison::near(
        "Table 3",
        "Discord advertising-label share",
        0.47,
        adv,
        0.5,
    ));
    println!();
}

// ---- Fig 5 ---------------------------------------------------------------

fn fig5(ds: &Dataset, pool: &Pool, cmp: &mut Vec<Comparison>) {
    println!("Fig 5: staleness (group age in days at first share)");
    let staleness = lifecycle::staleness_days_all(ds, pool);
    let [wa, tg, dc] = &staleness;
    println!(
        "{}",
        chatlens::report::plot::plot_cdfs(
            "  Fig 5: group age at first share, days (CDF, log x)",
            &[("WhatsApp", wa), ("Telegram", tg), ("Discord", dc)],
            64,
            10,
            true,
        )
    );
    let paper_same_day = [0.76, 0.28, 0.27];
    let paper_over_year = [0.10, 0.29, 0.256];
    for kind in PLATFORMS {
        let e = &staleness[kind.index()];
        let same_day = e.fraction_at_most(0.0);
        let over_year = e.fraction_above(365.0);
        println!(
            "  {:<8} n={:<6} same-day {}  >1 year {}  max {:.0}d",
            pname(kind),
            e.len(),
            fmt_pct(same_day),
            fmt_pct(over_year),
            e.max().unwrap_or(0.0)
        );
        // WhatsApp/Telegram samples are small (joined groups only), so
        // tolerances widen there.
        let tol = if kind == PlatformKind::Discord {
            0.2
        } else {
            0.5
        };
        cmp.push(Comparison::near(
            "Fig 5",
            format!("{kind} same-day share"),
            paper_same_day[kind.index()],
            same_day,
            tol,
        ));
        cmp.push(Comparison::near(
            "Fig 5",
            format!("{kind} >1-year share"),
            paper_over_year[kind.index()],
            over_year,
            0.6,
        ));
    }
    println!();
}

// ---- Fig 6 ---------------------------------------------------------------

fn fig6(ds: &Dataset, pool: &Pool, cmp: &mut Vec<Comparison>) {
    println!("Fig 6: URL lifetime and revocation");
    let paper_revoked = [0.273, 0.204, 0.684];
    let paper_doa = [0.064, 0.163, 0.674];
    let revocations = lifecycle::revocation_stats_all(ds, pool);
    for kind in PLATFORMS {
        let s = &revocations[kind.index()];
        println!(
            "  {:<8} observed {:<6} revoked {}  dead-on-arrival {}",
            pname(kind),
            s.observed,
            fmt_pct(s.revoked_fraction),
            fmt_pct(s.dead_on_arrival_fraction),
        );
        println!(
            "  {:<8} lifetime: {}",
            "",
            cdf_summary("days accessible", &s.lifetime_days).trim_end()
        );
        cmp.push(Comparison::near(
            "Fig 6",
            format!("{kind} revoked share"),
            paper_revoked[kind.index()],
            s.revoked_fraction,
            0.25,
        ));
        cmp.push(Comparison::near(
            "Fig 6",
            format!("{kind} dead-on-arrival share"),
            paper_doa[kind.index()],
            s.dead_on_arrival_fraction,
            0.35,
        ));
    }
    println!();
}

// ---- Fig 7 ---------------------------------------------------------------

fn fig7(ds: &Dataset, cmp: &mut Vec<Comparison>) {
    println!("Fig 7: members, online share, growth");
    let wa_sizes = membership::member_counts(ds, PlatformKind::WhatsApp);
    let tg_sizes = membership::member_counts(ds, PlatformKind::Telegram);
    let dc_sizes = membership::member_counts(ds, PlatformKind::Discord);
    println!(
        "{}",
        chatlens::report::plot::plot_cdfs(
            "  Fig 7a: members per group (CDF, log x)",
            &[
                ("WhatsApp", &wa_sizes),
                ("Telegram", &tg_sizes),
                ("Discord", &dc_sizes),
            ],
            64,
            12,
            true,
        )
    );
    let paper_grew = [0.51, 0.53, 0.54];
    let paper_shrank = [0.38, 0.24, 0.19];
    for kind in PLATFORMS {
        let sizes = membership::member_counts(ds, kind);
        println!("  {}", cdf_summary(pname(kind), &sizes).trim_end());
        let online = membership::online_fractions(ds, kind);
        if !online.is_empty() && online.max().unwrap_or(0.0) > 0.0 {
            println!(
                "  {:<8} online>50%: {}",
                "",
                fmt_pct(online.fraction_above(0.5))
            );
        }
        let g = membership::growth(ds, kind);
        println!(
            "  {:<8} grew {} shrank {} flat {}  max |Δ| {:.0}",
            "",
            fmt_pct(g.grew),
            fmt_pct(g.shrank),
            fmt_pct(g.flat),
            g.deltas
                .max()
                .unwrap_or(0.0)
                .abs()
                .max(g.deltas.min().unwrap_or(0.0).abs())
        );
        cmp.push(Comparison::near(
            "Fig 7",
            format!("{kind} grew share"),
            paper_grew[kind.index()],
            g.grew,
            0.2,
        ));
        cmp.push(Comparison::near(
            "Fig 7",
            format!("{kind} shrank share"),
            paper_shrank[kind.index()],
            g.shrank,
            0.35,
        ));
    }
    let wa = membership::member_counts(ds, PlatformKind::WhatsApp);
    cmp.push(Comparison {
        artifact: "Fig 7".into(),
        quantity: "WhatsApp max members <= 257".into(),
        paper: 257.0,
        measured: wa.max().unwrap_or(0.0),
        direction: chatlens::report::Direction::AtMost,
        tolerance: 0.0,
    });
    let dc_small = membership::member_counts(ds, PlatformKind::Discord).fraction_at_most(100.0);
    let tg_small = membership::member_counts(ds, PlatformKind::Telegram).fraction_at_most(100.0);
    cmp.push(Comparison::near(
        "Fig 7",
        "Discord <100 members",
        0.60,
        dc_small,
        0.25,
    ));
    cmp.push(Comparison::near(
        "Fig 7",
        "Telegram <100 members",
        0.40,
        tg_small,
        0.3,
    ));
    println!();
}

// ---- Fig 8 ---------------------------------------------------------------

fn fig8(ds: &Dataset, cmp: &mut Vec<Comparison>) {
    let mut t = Table::new("Fig 8: message types").header([
        "Platform", "text", "image", "video", "audio", "sticker", "doc", "contact", "loc", "other",
    ]);
    let paper_text = [0.78, 0.85, 0.96];
    for kind in PLATFORMS {
        let shares = messages::kind_shares(ds, kind);
        let mut row = vec![pname(kind).to_string()];
        row.extend(shares.iter().map(|(_, s)| fmt_pct(*s)));
        t.row(row);
        cmp.push(Comparison::near(
            "Fig 8",
            format!("{kind} text share"),
            paper_text[kind.index()],
            shares[0].1,
            0.08,
        ));
    }
    cmp.push(Comparison::near(
        "Fig 8",
        "WhatsApp sticker share",
        0.10,
        messages::kind_shares(ds, PlatformKind::WhatsApp)
            .iter()
            .find(|(k, _)| k.label() == "sticker")
            .map(|(_, s)| *s)
            .unwrap_or(0.0),
        0.35,
    ));
    cmp.push(Comparison::near(
        "Fig 8",
        "WhatsApp multimedia share",
        0.21,
        messages::multimedia_share(ds, PlatformKind::WhatsApp),
        0.3,
    ));
    println!("{}", t.render());
}

// ---- Fig 9 ---------------------------------------------------------------

fn fig9(ds: &Dataset, pool: &Pool, cmp: &mut Vec<Comparison>) {
    println!("Fig 9: message volumes");
    let per_group_day = messages::msgs_per_group_day_all(ds, pool);
    let activity = messages::user_activity_all(ds, pool);
    let [wa, tg, dc] = &per_group_day;
    println!(
        "{}",
        chatlens::report::plot::plot_cdfs(
            "  Fig 9a: mean messages per group per day (CDF, log x)",
            &[("WhatsApp", wa), ("Telegram", tg), ("Discord", dc)],
            64,
            10,
            true,
        )
    );
    let paper_busy = [0.60, 0.25, 0.60]; // share of groups >10 msgs/day
    let paper_low = [0.658, 0.829, 0.701]; // senders with <=10 messages
    let paper_top1 = [0.31, 0.60, 0.63];
    for kind in PLATFORMS {
        let per_day = &per_group_day[kind.index()];
        let ua = &activity[kind.index()];
        println!(
            "  {:<8} groups>10 msg/day {}  senders {}  <=10 msgs {}  top1% {}",
            pname(kind),
            fmt_pct(per_day.fraction_above(10.0)),
            fmt_count(ua.senders),
            fmt_pct(ua.low_volume_share),
            fmt_pct(ua.top1_share),
        );
        // Per-group activity is read off a ~50-group join sample at the
        // default scale; the band is wide accordingly.
        cmp.push(Comparison::near(
            "Fig 9",
            format!("{kind} groups >10 msgs/day"),
            paper_busy[kind.index()],
            per_day.fraction_above(10.0),
            0.5,
        ));
        cmp.push(Comparison::near(
            "Fig 9",
            format!("{kind} low-volume sender share"),
            paper_low[kind.index()],
            ua.low_volume_share,
            0.25,
        ));
        cmp.push(Comparison::near(
            "Fig 9",
            format!("{kind} top-1% sender share"),
            paper_top1[kind.index()],
            ua.top1_share,
            0.6,
        ));
    }
    println!();
}

// ---- Table 4 -------------------------------------------------------------

fn table4(ds: &Dataset, pool: &Pool, cmp: &mut Vec<Comparison>) {
    let mut t = Table::new("Table 4: PII exposure").header([
        "Platform",
        "users observed",
        "phones",
        "phone rate",
        "linked users",
        "link rate",
    ]);
    let rows = pii::exposure_table_par(ds, pool);
    for row in &rows {
        t.row([
            pname(row.platform).to_string(),
            fmt_count(row.users_observed),
            row.phones.map(fmt_count).unwrap_or_else(|| "-".into()),
            row.phone_rate.map(fmt_pct).unwrap_or_else(|| "-".into()),
            row.linked_users
                .map(fmt_count)
                .unwrap_or_else(|| "-".into()),
            row.link_rate.map(fmt_pct).unwrap_or_else(|| "-".into()),
        ]);
    }
    let [wa, tg, dc] = &rows;
    cmp.push(Comparison::near(
        "Table 4",
        "WhatsApp phone rate (all observed users)",
        1.0,
        wa.phone_rate.unwrap_or(0.0),
        0.001,
    ));
    cmp.push(Comparison::near(
        "Table 4",
        "Telegram phone opt-in rate",
        0.0068,
        tg.phone_rate.unwrap_or(0.0),
        0.8,
    ));
    cmp.push(Comparison::near(
        "Table 4",
        "Discord linked-account rate",
        0.30,
        dc.link_rate.unwrap_or(0.0),
        0.2,
    ));
    println!("{}", t.render());
}

// ---- Table 5 -------------------------------------------------------------

fn table5(ds: &Dataset, cmp: &mut Vec<Comparison>) {
    let mut t = Table::new("Table 5: Discord linked platforms").header([
        "Platform",
        "#Users",
        "share of observed",
    ]);
    let rows = pii::linked_accounts_table(ds);
    for (label, n, share) in &rows {
        t.row([label.clone(), fmt_count(*n), fmt_pct(*share)]);
    }
    println!("{}", t.render());
    let paper: [(&str, f64); 5] = [
        ("Twitch", 0.204),
        ("Steam", 0.122),
        ("Twitter", 0.089),
        ("Spotify", 0.080),
        ("Facebook", 0.005),
    ];
    for (label, rate) in paper {
        let measured = rows
            .iter()
            .find(|(l, _, _)| l == label)
            .map(|(_, _, s)| *s)
            .unwrap_or(0.0);
        cmp.push(Comparison::near(
            "Table 5",
            format!("Discord {label} link rate"),
            rate,
            measured,
            0.45,
        ));
    }
}

// ---- §5 extras -----------------------------------------------------------

fn extras(ds: &Dataset, cmp: &mut Vec<Comparison>) {
    println!("§5 extras: creators, countries, active members");
    for kind in PLATFORMS {
        let c = membership::creators(ds, kind);
        println!(
            "  {:<8} creators {:<7} groups {:<7} single-group {}  max {}",
            pname(kind),
            fmt_count(c.creators),
            fmt_count(c.groups),
            fmt_pct(c.single_group_share),
            c.max_groups
        );
    }
    let wa = membership::creators(ds, PlatformKind::WhatsApp);
    cmp.push(Comparison::near(
        "§5",
        "WhatsApp single-group creator share",
        0.927,
        wa.single_group_share,
        0.05,
    ));
    cmp.push(Comparison::near(
        "§5",
        "WhatsApp groups per creator",
        45_718.0 / 34_078.0,
        wa.groups as f64 / wa.creators.max(1) as f64,
        0.15,
    ));
    let countries = membership::whatsapp_countries(ds);
    let top: Vec<String> = countries
        .iter()
        .take(7)
        .map(|(c, n)| format!("{c} {}", fmt_count(*n)))
        .collect();
    println!("  WhatsApp creator countries: {}", top.join(", "));
    cmp.push(Comparison {
        artifact: "§5".into(),
        quantity: "Brazil leads WhatsApp creator countries".into(),
        paper: 1.0,
        measured: f64::from(countries.first().map(|(c, _)| c == "BR").unwrap_or(false)),
        direction: chatlens::report::Direction::AtLeast,
        tolerance: 0.0,
    });
    // Active-member shares are dominated by whether the join sample
    // caught one of the giant rooms, so the robust check is the paper's
    // qualitative finding: Telegram's share is far below the others.
    let shares: Vec<f64> = PLATFORMS
        .iter()
        .map(|&k| messages::active_member_share(ds, k))
        .collect();
    for (kind, share) in PLATFORMS.iter().zip(&shares) {
        println!(
            "  {:<8} active members (senders/members): {}",
            pname(*kind),
            fmt_pct(*share)
        );
    }
    cmp.push(Comparison {
        artifact: "§5".into(),
        quantity: "Telegram has the lowest active-member share".into(),
        paper: shares[1],
        measured: shares[0].min(shares[2]),
        direction: chatlens::report::Direction::AtLeast,
        tolerance: 0.0,
    });
    cmp.push(Comparison {
        artifact: "§5".into(),
        quantity: "Telegram active-member share below 45%".into(),
        paper: 0.45,
        measured: shares[1],
        direction: chatlens::report::Direction::AtMost,
        tolerance: 0.0,
    });
    println!(
        "  accounts used: WA {}, TG {}, DC {}; Discord bot-join rejected: {}",
        ds.accounts_used[0], ds.accounts_used[1], ds.accounts_used[2], ds.bot_join_rejected
    );
    println!(
        "  extraction: {} URLs seen, {} invites, {} rejected; {} failed requests",
        fmt_count(ds.extraction.urls_seen),
        fmt_count(ds.extraction.invites),
        fmt_count(ds.extraction.rejected),
        ds.failed_requests
    );
    println!();
}
