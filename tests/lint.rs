//! Integration tests for the determinism lint (`chatlens-lint`): every
//! rule firing on a fixture snippet, every rule silenced by its
//! `lint:allow` pragma, and the real workspace tree scanning clean.

use chatlens_lint::{check_source, check_source_counting, check_workspace, Rule};

fn rules_of(path: &str, src: &str) -> Vec<Rule> {
    check_source(path, src)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

/// `(rule, fixture path, violating snippet, suppressed variant)` — one row
/// per rule; the suppressed variant carries the pragma plus justification.
fn fixtures() -> Vec<(Rule, &'static str, &'static str, &'static str)> {
    vec![
        (
            Rule::D1,
            "crates/core/src/fixture.rs",
            "fn f() -> u64 { SystemTime::now().elapsed().as_secs() }",
            "// lint:allow(D1) fixture: operator-facing timestamp\nfn f() -> u64 { SystemTime::now().elapsed().as_secs() }",
        ),
        (
            Rule::D2,
            "crates/analysis/src/fixture.rs",
            "fn f(m: &HashMap<u32, u64>) -> u64 { let mut s = 0; for v in m.values() { s += v; } s }",
            "fn f(m: &HashMap<u32, u64>) -> u64 {\n let mut s = 0;\n // lint:allow(D2) fixture: sum is order-insensitive\n for v in m.values() { s += v; }\n s }",
        ),
        (
            Rule::D3,
            "crates/workload/src/fixture.rs",
            "fn f() -> u64 { thread_rng().next() }",
            "// lint:allow(D3) fixture: entropy is fine in this fixture\nfn f() -> u64 { thread_rng().next() }",
        ),
        (
            Rule::D4,
            "crates/analysis/src/fixture.rs",
            "fn f(pool: &Pool) { pool.par_map(&xs, |x| { shared.lock().push(*x); 0 }); }",
            "fn f(pool: &Pool) {\n // lint:allow(D4) fixture: lock is chunk-local here\n pool.par_map(&xs, |x| { shared.lock().push(*x); 0 });\n}",
        ),
        (
            Rule::D5,
            "crates/simnet/src/fixture.rs",
            "fn f(m: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap() }",
            "fn f(m: &std::sync::Mutex<u32>) -> u32 {\n // lint:allow(D5) fixture: std mutex on purpose\n *m.lock().unwrap()\n}",
        ),
        (
            Rule::D6,
            "crates/core/src/fixture.rs",
            "fn f() { std::fs::write(\"out.txt\", \"data\").unwrap(); }",
            "// lint:allow(D6, D13) fixture: operator-requested export path\nfn f() { std::fs::write(\"out.txt\", \"data\").unwrap(); }",
        ),
        (
            Rule::D7,
            "crates/core/src/fixture.rs",
            "fn f(net: &mut Net) { let _ = net.twitter(eco, now, &req); }",
            "fn f(net: &mut Net) {\n // lint:allow(D7) fixture: warm-up call, outcome intentionally unused\n let _ = net.twitter(eco, now, &req);\n}",
        ),
        (
            Rule::D8,
            "crates/core/src/fixture.rs",
            "fn f(doc: &WireDoc) -> u64 { doc.req_u64(\"size\").unwrap() }",
            "fn f(doc: &WireDoc) -> u64 {\n // lint:allow(D8) fixture: body rendered two lines up, cannot fail\n doc.req_u64(\"size\").unwrap()\n}",
        ),
        (
            Rule::D9,
            "crates/checkpoint/src/fixture.rs",
            "struct S { a: u32, b: u32 }\nimpl Persist for S {\n fn save(&self, w: &mut Writer) { w.put_u64(self.a as u64); }\n fn load(r: &mut Reader) -> S { S { a: r.u64() as u32, b: 0 } }\n}",
            "struct S { a: u32, b: u32 }\n// lint:allow(D9) fixture: `b` is derived at load time, never persisted\nimpl Persist for S {\n fn save(&self, w: &mut Writer) { w.put_u64(self.a as u64); }\n fn load(r: &mut Reader) -> S { S { a: r.u64() as u32, b: 0 } }\n}",
        ),
        (
            Rule::D10,
            "crates/core/src/dataset.rs",
            "fn f(x: u32) -> String { x.to_string() }",
            "fn f(x: u32) -> String {\n // lint:allow(D10) fixture: cold path, runs once per report\n x.to_string()\n}",
        ),
        (
            Rule::D11,
            "crates/simnet/src/fixture.rs",
            "fn f(rng: &mut Rng) -> Rng { rng.fork(\"unregistered-stream\") }",
            "fn f(rng: &mut Rng) -> Rng {\n // lint:allow(D11) fixture: scratch stream local to this fixture\n rng.fork(\"unregistered-stream\")\n}",
        ),
        (
            Rule::D12,
            "crates/core/src/fixture.rs",
            "fn f(m: &Metrics) { m.incr(\"ad_hoc_key\", 1); }",
            "fn f(m: &Metrics) {\n // lint:allow(D12) fixture: one-off probe counter, not part of the schema\n m.incr(\"ad_hoc_key\", 1);\n}",
        ),
        (
            Rule::D13,
            "crates/core/src/fixture.rs",
            "fn f() -> String { std::fs::read_to_string(\"in.json\").unwrap() }",
            "// lint:allow(D13) fixture: diagnostic read outside the durability domain\nfn f() -> String { std::fs::read_to_string(\"in.json\").unwrap() }",
        ),
        (
            Rule::D14,
            "crates/core/src/fixture.rs",
            "fn f(doc: &WireDoc) -> Vec<u8> { Vec::with_capacity(doc.req_u64(\"n\").unwrap_or(0) as usize) }",
            "fn f(doc: &WireDoc) -> Vec<u8> {\n // lint:allow(D14) fixture: page size capped by the transport frame limit upstream\n Vec::with_capacity(doc.req_u64(\"n\").unwrap_or(0) as usize)\n}",
        ),
    ]
}

#[test]
fn every_rule_fires_on_its_fixture() {
    for (rule, path, bad, _) in fixtures() {
        let got = rules_of(path, bad);
        // A direct fs *write* trips both the artifact rule (D6) and the
        // VFS-confinement rule (D13) — distinct contracts, one site.
        let want = match rule {
            Rule::D6 => vec![Rule::D6, Rule::D13],
            _ => vec![rule],
        };
        assert_eq!(got, want, "{rule} fixture at {path}: {got:?}");
    }
}

#[test]
fn every_rule_is_suppressed_by_its_pragma() {
    for (rule, path, _, allowed) in fixtures() {
        let (findings, suppressed) = check_source_counting(path, allowed);
        assert!(
            findings.is_empty(),
            "{rule} pragma fixture still fires: {findings:?}"
        );
        let want = if rule == Rule::D6 { 2 } else { 1 };
        assert_eq!(suppressed, want, "{rule} pragma fixture suppression count");
    }
}

#[test]
fn findings_carry_file_line_and_rule_id() {
    let src = "fn f() {}\nfn g() -> u64 { SystemTime::now().elapsed().as_secs() }";
    let findings = check_source("crates/core/src/fixture.rs", src);
    assert_eq!(findings.len(), 1);
    let f = &findings[0];
    assert_eq!((f.line, f.rule), (2, Rule::D1));
    let rendered = f.to_string();
    assert!(
        rendered.starts_with("crates/core/src/fixture.rs:2:"),
        "{rendered}"
    );
    assert!(rendered.contains("[D1]"), "{rendered}");
}

#[test]
fn wrong_rule_pragma_does_not_suppress() {
    // The D1 finding survives the mismatched pragma, and the pragma itself
    // becomes a finding: a `lint:allow` that suppresses nothing is dead
    // weight that hides drift, so the audit flags it (attributed to the
    // rule it names, at the pragma's own line).
    let src = "// lint:allow(D3) wrong rule on purpose\nfn f() -> u64 { SystemTime::now().elapsed().as_secs() }";
    assert_eq!(
        rules_of("crates/core/src/fixture.rs", src),
        vec![Rule::D3, Rule::D1]
    );
}

#[test]
fn the_real_workspace_tree_is_clean() {
    let report = check_workspace(env!("CARGO_MANIFEST_DIR")).expect("workspace scan");
    assert!(
        report.is_clean(),
        "the tree must lint clean; findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The walk actually visited the workspace (all crates + src/).
    assert!(report.files_scanned >= 50, "{} files", report.files_scanned);
    // Every pragma in the tree is intentional: these are the justified
    // allowances documented in DESIGN.md §Determinism lint. Growing this
    // number requires a justification comment at the new site. The audit
    // rules guarantee each one both suppresses a real finding and carries
    // a justification, so the count is exact, not a ceiling.
    assert_eq!(report.suppressed, 65, "unexpected lint:allow pragma count");
}

#[test]
fn stats_table_reports_all_rules_on_real_tree() {
    let report = check_workspace(env!("CARGO_MANIFEST_DIR")).expect("workspace scan");
    let table = report.stats_table();
    for rule in Rule::ALL {
        assert!(table.contains(rule.id()), "missing {rule} in:\n{table}");
    }
    assert!(table.contains("suppressed"), "{table}");
}

#[test]
fn repro_lint_exits_zero_on_clean_tree_and_nonzero_on_violation() {
    use std::process::Command;
    // Clean tree: the workspace itself.
    let ok = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("lint")
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("run repro lint");
    assert!(
        ok.status.success(),
        "repro lint failed on clean tree:\n{}",
        String::from_utf8_lossy(&ok.stdout)
    );

    // Seeded violation fixture: a minimal workspace layout whose one
    // source file calls a banned API.
    let fixture_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("lint-violation-fixture");
    let src_dir = fixture_root.join("crates").join("bad").join("src");
    std::fs::create_dir_all(&src_dir).expect("fixture dirs");
    std::fs::create_dir_all(fixture_root.join("src")).expect("fixture src dir");
    std::fs::write(
        src_dir.join("lib.rs"),
        "pub fn now() -> u64 { SystemTime::now().elapsed().as_secs() }\n",
    )
    .expect("fixture file");
    let bad = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("lint")
        .current_dir(&fixture_root)
        .output()
        .expect("run repro lint on fixture");
    assert!(
        !bad.status.success(),
        "repro lint must exit nonzero on the violation fixture"
    );
    let out = String::from_utf8_lossy(&bad.stdout);
    assert!(out.contains("[D1]"), "diagnostic names the rule: {out}");
    assert!(
        out.contains("crates/bad/src/lib.rs:1:"),
        "diagnostic names file and line: {out}"
    );
}
