//! Crash-safety: the campaign can be killed at *any* day boundary and
//! resumed from its snapshot with a bit-identical outcome, at any worker
//! thread count; damaged snapshot files are rejected with a diagnostic,
//! never a panic or a silently wrong dataset.
//!
//! The exhaustive guarantee is built from two facts proved here:
//!
//! 1. For every study day `d`, loading snapshot `S_d`, stepping exactly
//!    one day, and re-encoding yields the *bytes* of `S_{d+1}` (after
//!    stripping the wall-clock timing counters, the only nondeterministic
//!    state). By induction, a run resumed at any boundary walks the same
//!    snapshot chain as the uninterrupted run.
//! 2. A full resume from representative boundaries (early / middle /
//!    last) produces a final [`Dataset`] equal to the uninterrupted
//!    run's, at 1, 2 and 8 threads.

use std::path::PathBuf;

use chatlens::checkpoint::{encode_snapshot, load_from_file, CheckpointError, FORMAT_VERSION};
use chatlens::core::{
    resume_study, run_study_checkpointed, run_study_with, CampaignState, CheckpointPolicy,
};
use chatlens::core::{resume_study_days, CampaignConfig};
use chatlens::{Dataset, ScenarioConfig};

/// Small world: ~75 groups per platform, still exercising every stage
/// (discovery, monitoring, joins, messages) across the full 38 days.
fn scenario() -> ScenarioConfig {
    ScenarioConfig::at_scale(0.002)
}

/// Per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chatlens-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Run the campaign once with a daily checkpoint policy, returning the
/// snapshot directory and the final dataset.
fn run_with_daily_snapshots(tag: &str, threads: usize) -> (PathBuf, Dataset) {
    let dir = scratch(tag);
    let policy = CheckpointPolicy::daily(dir.clone());
    let ds = run_study_checkpointed(
        scenario(),
        CampaignConfig {
            threads,
            ..CampaignConfig::default()
        },
        &policy,
    )
    .expect("snapshots save");
    (dir, ds)
}

/// Normalize a state for byte comparison: wall-clock stage timings are
/// the only nondeterministic content of a snapshot.
fn normalized_bytes(mut state: CampaignState) -> Vec<u8> {
    state.metrics.strip_wall_clock();
    encode_snapshot(&state)
}

#[test]
fn every_day_boundary_chains_to_the_next() {
    let (dir, _) = run_with_daily_snapshots("chain", 1);
    let days: Vec<PathBuf> = (1..=38)
        .map(|d| dir.join(format!("day{d:03}.ckpt")))
        .collect();
    for w in days.windows(2) {
        let here: CampaignState = load_from_file(&w[0]).expect("snapshot loads");
        let next: CampaignState = load_from_file(&w[1]).expect("snapshot loads");
        let day = here.day;
        let stepped = resume_study_days(&here, 1);
        assert_eq!(stepped.day, day + 1);
        assert_eq!(
            normalized_bytes(stepped),
            normalized_bytes(next),
            "snapshot resumed at day {day} and stepped one day must \
             re-encode to the bytes of the day-{} snapshot",
            day + 1
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_is_bit_identical_at_any_thread_count() {
    let mut uninterrupted = run_study_with(
        scenario(),
        CampaignConfig {
            threads: 1,
            ..CampaignConfig::default()
        },
    );
    uninterrupted.metrics.strip_wall_clock();
    let (dir, _) = run_with_daily_snapshots("threads", 1);
    // Kill points: just after the first boundary, mid-campaign, and at
    // the last boundary before the closing partial day.
    for kill_day in [1u32, 19, 38] {
        let path = dir.join(format!("day{kill_day:03}.ckpt"));
        for threads in [1usize, 2, 8] {
            let mut state: CampaignState = load_from_file(&path).expect("snapshot loads");
            state.campaign.threads = threads;
            let mut resumed = resume_study(&state);
            resumed.metrics.strip_wall_clock();
            assert_eq!(
                resumed, uninterrupted,
                "resume from day {kill_day} at {threads} thread(s) must equal \
                 the uninterrupted dataset"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpointed_run_matches_plain_run() {
    let mut plain = run_study_with(scenario(), CampaignConfig::default());
    plain.metrics.strip_wall_clock();
    let (dir, mut checkpointed) = run_with_daily_snapshots("overhead", 1);
    checkpointed.metrics.strip_wall_clock();
    assert_eq!(
        checkpointed, plain,
        "saving snapshots must not perturb the campaign"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn damaged_snapshots_are_rejected_never_panic() {
    let (dir, _) = run_with_daily_snapshots("damage", 1);
    let path = dir.join("day002.ckpt");
    let good = std::fs::read(&path).expect("snapshot readable");

    // A single flipped bit anywhere before the checksum trips it.
    for &pos in &[0usize, 9, 13, good.len() / 2, good.len() - 40] {
        let mut bad = good.clone();
        bad[pos] ^= 0x40;
        let err = load_after_writing(&dir, &bad);
        match pos {
            0 => assert!(matches!(err, CheckpointError::BadMagic)),
            9 => assert!(matches!(
                err,
                CheckpointError::VersionMismatch {
                    expected: FORMAT_VERSION,
                    ..
                }
            )),
            13 => assert!(
                // The length field disagrees with the file either way the
                // bit flips: too long reads as truncated, too short leaves
                // trailing bytes.
                !matches!(err, CheckpointError::Io(_)),
                "length-field flip gave {err}"
            ),
            _ => assert!(
                matches!(err, CheckpointError::ChecksumMismatch),
                "payload bit flip at {pos} gave {err}"
            ),
        }
        assert!(!err.to_string().is_empty());
    }

    // Truncation at every byte length is an error, never a panic. (The
    // encoder/decoder pair gets the same treatment with random payloads
    // in the checkpoint crate's proptest suite; this covers a real
    // campaign snapshot end to end.)
    for len in 0..good.len() {
        let err = load_after_writing(&dir, &good[..len]);
        assert!(
            !matches!(err, CheckpointError::Io(_)),
            "truncation to {len} bytes must be a format error, got {err}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_header_byte_flip_is_a_typed_error() {
    let (dir, _) = run_with_daily_snapshots("headerflip", 1);
    let good = std::fs::read(dir.join("day003.ckpt")).expect("snapshot readable");

    // The 20-byte header is magic (8) + version (4) + payload length (8).
    // Flipping any single header byte must surface as the matching typed
    // error through `load_from_file` — never a panic, never `Io`.
    for pos in 0..20 {
        let mut bad = good.clone();
        bad[pos] ^= 0x01;
        let err = load_after_writing(&dir, &bad);
        match pos {
            0..=7 => assert!(
                matches!(err, CheckpointError::BadMagic),
                "magic flip at byte {pos} gave {err}"
            ),
            8..=11 => assert!(
                matches!(
                    err,
                    CheckpointError::VersionMismatch {
                        expected: FORMAT_VERSION,
                        ..
                    }
                ),
                "version flip at byte {pos} gave {err}"
            ),
            _ => assert!(
                !matches!(err, CheckpointError::Io(_)),
                "length flip at byte {pos} gave {err}"
            ),
        }
        assert!(!err.to_string().is_empty());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Write `bytes` as a snapshot file and return the load error.
fn load_after_writing(dir: &std::path::Path, bytes: &[u8]) -> CheckpointError {
    let path = dir.join("tampered.ckpt");
    std::fs::write(&path, bytes).expect("scratch writable");
    match load_from_file::<CampaignState>(&path) {
        Ok(_) => panic!("damaged snapshot must not load"),
        Err(e) => e,
    }
}
