//! The crash storm: a torn-write disk-fault campaign killed at *every*
//! day boundary must resume — through chain recovery, walking backwards
//! past the injected damage — to a dataset bit-identical to the
//! fault-free run, at 1, 2 and 8 worker threads, with every skipped
//! snapshot accounted for in the directory's persisted recovery ledger.
//!
//! This is the tentpole durability guarantee: under the `torn` profile a
//! quarter of saves silently lose their rename (the classic
//! crash-after-ack torn write), a tenth land truncated, and reads see
//! occasional bit-rot — yet no kill point loses data, because some valid
//! ancestor always survives and replaying the lost days is deterministic.

use std::path::PathBuf;

use chatlens::checkpoint::chain::{load_ledger, RecoveryEntry};
use chatlens::core::{
    recover_latest_state, resume_study, run_study_checkpointed, CampaignConfig, CheckpointPolicy,
};
use chatlens::simnet::fault::DiskFaultProfile;
use chatlens::{run_study_with, Dataset, ScenarioConfig};

/// Small world, full 38-day window — the same scale the checkpoint
/// suite uses, so every stage still fires.
fn scenario() -> ScenarioConfig {
    ScenarioConfig::at_scale(0.002)
}

/// Per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chatlens-storm-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn baseline() -> Dataset {
    let mut ds = run_study_with(scenario(), CampaignConfig::default());
    ds.metrics.strip_wall_clock();
    ds
}

#[test]
fn torn_storm_survives_a_kill_at_every_day_boundary() {
    let fault_free = baseline();

    // The torn-profile campaign itself: injected save failures are
    // tolerated (logged, not fatal) and must not perturb the dataset.
    let dir = scratch("torn");
    let policy = CheckpointPolicy {
        dir: dir.clone(),
        every_days: 1,
        on_drop: false,
        disk_fault: DiskFaultProfile::Torn,
    };
    let mut torn = run_study_checkpointed(scenario(), CampaignConfig::default(), &policy)
        .expect("torn-profile saves are tolerated, not fatal");
    torn.metrics.strip_wall_clock();
    assert_eq!(
        torn, fault_free,
        "injected disk faults must never perturb the campaign itself"
    );

    let seed = CampaignConfig::default().seed;
    let threads = [1usize, 2, 8];
    let mut all_skipped: Vec<RecoveryEntry> = Vec::new();
    let mut recovered_behind_kill = 0u32;
    for kill_day in 1..=38u32 {
        // Simulate `kill -9` right after the day-`kill_day` boundary:
        // the newest snapshot evidence is day `kill_day`, possibly torn.
        let recovered = recover_latest_state(&policy, seed, Some(kill_day))
            .expect("chain walk itself never hard-fails");
        all_skipped.extend(recovered.skipped.iter().cloned());
        let state = recovered
            .state
            .expect("some valid ancestor must survive the torn profile");
        assert_eq!(state.day, recovered.day);
        assert!(
            recovered.day <= kill_day,
            "recovery may only walk backwards from the kill point"
        );
        if recovered.day < kill_day {
            recovered_behind_kill += 1;
        }

        let mut state = state;
        state.campaign.threads = threads[kill_day as usize % threads.len()];
        let mut resumed = resume_study(&state);
        resumed.metrics.strip_wall_clock();
        assert_eq!(
            resumed, fault_free,
            "kill at day {kill_day} resumed from day {} at {} thread(s) \
             must replay to the fault-free dataset",
            recovered.day, state.campaign.threads
        );
    }

    // Storm shape for the EXPERIMENTS.md recovery matrix (visible with
    // `--nocapture`).
    println!(
        "crash storm: {recovered_behind_kill}/38 kill points walked back; \
         {} skip records",
        all_skipped.len()
    );

    // The torn profile is aggressive enough (deterministically, for the
    // default seed) that at least one kill point lands on a damaged
    // snapshot and recovery has to walk past it.
    assert!(
        recovered_behind_kill > 0,
        "torn profile produced no damaged day boundaries — fault injection is dead"
    );
    assert!(!all_skipped.is_empty());

    // Every snapshot skipped during recovery is in the persisted ledger.
    let ledger = load_ledger(&dir);
    for skip in &all_skipped {
        assert!(
            ledger.entries.contains(skip),
            "skip of {} (day {}) missing from the recovery ledger",
            skip.file,
            skip.day
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn whole_chain_damaged_falls_back_to_fresh_start() {
    let dir = scratch("fallback");
    // Fabricate a chain where every link is garbage: recovery must
    // report "start fresh" (state: None), record every skip in the
    // ledger, and never panic.
    for day in 1..=3u32 {
        std::fs::write(
            dir.join(format!("day{day:03}.ckpt")),
            b"definitely not a snapshot",
        )
        .expect("scratch writable");
    }
    let policy = CheckpointPolicy {
        dir: dir.clone(),
        every_days: 1,
        on_drop: false,
        disk_fault: DiskFaultProfile::Calm,
    };
    let recovered = recover_latest_state(&policy, CampaignConfig::default().seed, None)
        .expect("chain walk never hard-fails");
    assert!(recovered.state.is_none(), "garbage must not load");
    assert_eq!(recovered.skipped.len(), 3);
    let ledger = load_ledger(&dir);
    assert_eq!(ledger.entries.len(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}
