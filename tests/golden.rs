//! Golden-output differential suite.
//!
//! The hot-path rewrite (interned ids, columnar timelines, zero-copy wire
//! parsing) is allowed to change *how* the campaign computes, never *what*
//! it computes. This suite locks the contract with committed fixtures
//! under `tests/golden/`:
//!
//! - `<profile>.report.txt` — the full canonical campaign report
//!   ([`Dataset::campaign_report`]) for the calm, bursty and hostile
//!   profiles. These bytes were recorded from the **pre-rewrite** build
//!   and must never be regenerated casually: they are the differential
//!   baseline proving the optimised pipeline produces byte-identical
//!   output.
//! - `<profile>.ckpt.sha256` — SHA-256 of the final-day checkpoint,
//!   canonicalized: the snapshot is loaded, wall-clock stage timings are
//!   stripped (they vary run-to-run by construction), and the state is
//!   re-encoded with the same codec before hashing. Checkpoint bytes are
//!   tied to the snapshot format version, so these fixtures are
//!   re-recorded at every format bump (they lock cross-thread and resume
//!   stability, and catch unintended drift in checkpoint encoding).
//!
//! Every profile is asserted at 1, 2 and 8 worker threads.
//!
//! To refresh fixtures after an *intentional* output change (a new
//! collected datum, a checkpoint format bump), run:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --release --test golden
//! ```
//!
//! and justify the new bytes in the PR description.

use chatlens::checkpoint::{encode_snapshot, load_from_file};
use chatlens::core::{run_study_checkpointed, CampaignState, CheckpointPolicy};
use chatlens::simnet::fault::{CorruptionProfile, FaultProfile};
use chatlens::simnet::hash::sha256_hex;
use chatlens::{run_study_with, CampaignConfig, ScenarioConfig};
use std::path::PathBuf;

/// Same scale the Byzantine-hardening suite uses: large enough that all
/// three platforms discover, join and quarantine, small enough to run
/// three profiles × three thread counts in CI.
const GOLDEN_SCALE: f64 = 0.002;

const PROFILES: [&str; 3] = ["calm", "bursty", "hostile"];

fn campaign_for(profile: &str) -> CampaignConfig {
    match profile {
        "calm" => CampaignConfig::default(),
        "bursty" => CampaignConfig {
            profile: FaultProfile::Bursty,
            ..CampaignConfig::default()
        },
        "hostile" => CampaignConfig {
            corruption: CorruptionProfile::Hostile,
            ..CampaignConfig::default()
        },
        other => panic!("unknown golden profile {other:?}"),
    }
}

fn fixture_path(profile: &str, what: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{profile}.{what}"))
}

fn update_mode() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Compare `actual` against the committed fixture, or record it when
/// `UPDATE_GOLDEN` is set.
fn check_fixture(profile: &str, what: &str, actual: &str) {
    let path = fixture_path(profile, what);
    if update_mode() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, actual).expect("record fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); record with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    if what == "report.txt" {
        // Byte-level diff with a readable first-divergence message.
        if expected != actual {
            for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
                assert_eq!(
                    e,
                    a,
                    "{profile} report diverged from golden at line {}",
                    i + 1
                );
            }
            panic!(
                "{profile} report diverged from golden in length: {} vs {} bytes",
                expected.len(),
                actual.len()
            );
        }
    } else {
        assert_eq!(
            expected.trim_end(),
            actual.trim_end(),
            "{profile} {what} diverged from golden"
        );
    }
}

/// Run one profile checkpointed at exactly 1 thread (pinned, not
/// inherited from `CHATLENS_THREADS`: the snapshot persists the
/// `threads` knob, so checkpoint *bytes* — unlike the dataset — are
/// tied to the thread count the run used), returning the campaign
/// report and the hex SHA-256 of the final-day checkpoint bytes.
fn run_profile_checkpointed(profile: &str) -> (String, String) {
    let dir =
        std::env::temp_dir().join(format!("chatlens-golden-{profile}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let policy = CheckpointPolicy::daily(dir.clone());
    let scenario = ScenarioConfig::at_scale(GOLDEN_SCALE);
    let num_days = 38u32;
    let campaign = CampaignConfig {
        threads: 1,
        ..campaign_for(profile)
    };
    let ds =
        run_study_checkpointed(scenario, campaign, &policy).expect("checkpointed run completes");
    let report = ds.campaign_report();
    let last = (0..num_days)
        .rev()
        .map(|d| policy.snapshot_path(d))
        .find(|p| p.exists())
        .expect("at least one snapshot written");
    // Stage timing counters inside the snapshot are wall-clock (they vary
    // run to run by construction), so the fixture hashes the snapshot
    // re-encoded after `strip_wall_clock` — everything else in the file
    // is deterministic and any encoding or state drift changes the hash.
    let mut state: CampaignState = load_from_file(&last).expect("final snapshot loads");
    state.metrics.strip_wall_clock();
    let ckpt_sha = format!(
        "{} {}\n",
        sha256_hex(&encode_snapshot(&state)),
        last.file_name().expect("snapshot name").to_string_lossy()
    );
    let _ = std::fs::remove_dir_all(&dir);
    (report, ckpt_sha)
}

/// The tentpole guarantee: for every profile, the campaign report matches
/// the pre-rewrite golden bytes, the final-day checkpoint hash matches
/// its fixture, and re-running at 2 and 8 threads reproduces the same
/// report byte-for-byte.
#[test]
fn golden_reports_and_checkpoints_across_profiles_and_threads() {
    for profile in PROFILES {
        let (report, ckpt_sha) = run_profile_checkpointed(profile);
        check_fixture(profile, "report.txt", &report);
        check_fixture(profile, "ckpt.sha256", &ckpt_sha);
        for threads in [2usize, 8] {
            let ds = run_study_with(
                ScenarioConfig::at_scale(GOLDEN_SCALE),
                CampaignConfig {
                    threads,
                    ..campaign_for(profile)
                },
            );
            let rerun = ds.campaign_report();
            assert_eq!(
                rerun, report,
                "{profile} report at {threads} thread(s) diverged from 1-thread run"
            );
        }
    }
}

/// The report itself is deterministic: rendering twice from the same
/// dataset yields identical bytes, and the report embeds no wall-clock
/// values (stripping timings changes nothing).
#[test]
fn campaign_report_is_deterministic_and_wall_clock_free() {
    let mut ds = run_study_with(
        ScenarioConfig::at_scale(GOLDEN_SCALE),
        CampaignConfig::default(),
    );
    let a = ds.campaign_report();
    let b = ds.campaign_report();
    assert_eq!(a, b);
    ds.metrics.strip_wall_clock();
    assert_eq!(ds.campaign_report(), a, "report depends on wall-clock");
}
