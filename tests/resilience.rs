//! Fault-injection resilience: the campaign must degrade gracefully, not
//! collapse, under an unreliable network — the smoltcp-style "adverse
//! conditions" discipline of the networking guides applied to the whole
//! pipeline.

use chatlens::platforms::id::PlatformKind;
use chatlens::simnet::fault::FaultInjector;
use chatlens::{run_study_with, CampaignConfig, ScenarioConfig};

fn scenario() -> ScenarioConfig {
    ScenarioConfig::at_scale(0.005)
}

#[test]
fn campaign_survives_heavy_faults() {
    // 15% drops + 10% server errors — the guides' "good starting value"
    // for fault injection. Retries absorb most of it.
    let ds = run_study_with(
        scenario(),
        CampaignConfig {
            faults: FaultInjector::new(0.15, 0.10),
            ..CampaignConfig::default()
        },
    );
    for kind in PlatformKind::ALL {
        let s = ds.summary(kind);
        assert!(s.group_urls > 0, "{kind}: discovery must survive");
        assert!(s.joined_groups > 0, "{kind}: joining must survive");
    }
    assert!(!ds.control.is_empty());
}

#[test]
fn faults_only_shrink_coverage_never_corrupt() {
    let clean = run_study_with(
        scenario(),
        CampaignConfig {
            faults: FaultInjector::none(),
            ..CampaignConfig::default()
        },
    );
    let faulty = run_study_with(
        scenario(),
        CampaignConfig {
            faults: FaultInjector::new(0.20, 0.10),
            ..CampaignConfig::default()
        },
    );
    // Coverage shrinks...
    assert!(faulty.failed_requests > 0, "faults must actually bite");
    assert!(
        faulty.tweets.len() <= clean.tweets.len(),
        "faults cannot create data"
    );
    // ...but everything collected is a real tweet from the same world.
    let clean_ids: std::collections::HashSet<u64> =
        clean.tweets.iter().map(|t| t.tweet.id.0).collect();
    let missing = faulty
        .tweets
        .iter()
        .filter(|t| !clean_ids.contains(&t.tweet.id.0))
        .count();
    assert_eq!(
        missing, 0,
        "faulty run produced tweets the clean run never saw"
    );
    // Discovered groups are a subset too.
    let clean_groups: std::collections::HashSet<String> =
        clean.groups.iter().map(|g| g.invite.dedup_key()).collect();
    assert!(faulty
        .groups
        .iter()
        .all(|g| clean_groups.contains(&g.invite.dedup_key())));
}

#[test]
fn degraded_campaign_still_reproduces_the_shape() {
    // Even at 15% drops the headline orderings of the paper hold.
    let ds = run_study_with(
        scenario(),
        CampaignConfig {
            faults: FaultInjector::new(0.15, 0.05),
            ..CampaignConfig::default()
        },
    );
    use chatlens::analysis::lifecycle::revocation_stats;
    let wa = revocation_stats(&ds, PlatformKind::WhatsApp);
    let tg = revocation_stats(&ds, PlatformKind::Telegram);
    let dc = revocation_stats(&ds, PlatformKind::Discord);
    assert!(dc.revoked_fraction > wa.revoked_fraction);
    assert!(wa.revoked_fraction > tg.revoked_fraction);
    // Failed fetches show up as Failed observations, not phantom
    // revocations: revoked share under faults stays in the clean band.
    assert!(dc.revoked_fraction > 0.5 && dc.revoked_fraction < 0.85);
}

/// A compact, fully deterministic digest of everything in the dataset
/// that counts as "data" — deliberately excluding `metrics`, which holds
/// wall-clock stage timings and may differ between runs.
fn dataset_fingerprint(ds: &chatlens::Dataset) -> String {
    let mut out = String::new();
    out.push_str(&format!("failed_requests={}\n", ds.failed_requests));
    out.push_str(&format!("accounts={:?}\n", ds.accounts_used));
    out.push_str(&format!("extraction={:?}\n", ds.extraction));
    for t in &ds.tweets {
        out.push_str(&format!("tweet={}\n", t.tweet.id.0));
    }
    for g in &ds.groups {
        out.push_str(&format!("group={}\n", g.invite.dedup_key()));
    }
    let mut keys: Vec<&String> = ds.timelines.keys().collect();
    keys.sort();
    for k in keys {
        out.push_str(&format!("timeline {k}: {:?}\n", ds.timelines[k]));
    }
    for j in &ds.joined {
        out.push_str(&format!(
            "joined={} members={} msgs={}\n",
            j.key,
            j.members.len(),
            j.messages.len()
        ));
    }
    out
}

#[test]
fn fault_sweep_never_breaks_dataset_determinism() {
    // Sweep transport drop-chance from 0% to 20%. At every level the
    // dataset must be a pure function of (seed, fault level): repeated
    // runs — and runs at different thread counts — are identical. Only
    // the retry counters in `simnet::metrics` move as faults bite.
    let mut attempts_by_level = Vec::new();
    for drop_chance in [0.0, 0.05, 0.10, 0.20] {
        let run = |threads: usize| {
            run_study_with(
                scenario(),
                CampaignConfig {
                    faults: FaultInjector::new(drop_chance, 0.0),
                    threads,
                    ..CampaignConfig::default()
                },
            )
        };
        let first = run(1);
        let fingerprint = dataset_fingerprint(&first);
        for (label, ds) in [("repeat", run(1)), ("8 threads", run(8))] {
            assert_eq!(
                dataset_fingerprint(&ds),
                fingerprint,
                "{label} run diverged at drop chance {drop_chance}"
            );
            // The retry accounting is deterministic too, for a fixed
            // fault level — it varies only *across* levels.
            assert_eq!(
                ds.metrics.get("transport.attempts"),
                first.metrics.get("transport.attempts"),
                "attempts diverged at drop chance {drop_chance}"
            );
        }
        attempts_by_level.push((drop_chance, first.metrics.get("transport.attempts")));
    }
    // More drops => more retries. The clean run must be the floor, and
    // the heaviest fault level must visibly cost extra attempts.
    let clean = attempts_by_level[0].1;
    for &(p, attempts) in &attempts_by_level[1..] {
        assert!(
            attempts > clean,
            "drop chance {p} should force retries ({attempts} vs {clean} clean)"
        );
    }
}

#[test]
fn campaign_metrics_account_for_the_work() {
    let ds = run_study_with(scenario(), CampaignConfig::default());
    let m = &ds.metrics;
    assert_eq!(m.get("campaign.search_rounds"), 38 * 24);
    assert_eq!(m.get("campaign.monitor_rounds"), 38);
    assert_eq!(m.get("campaign.sample_drains"), 38);
    assert!(m.get("transport.attempts") > m.get("discovery.tweets_collected"));
    assert_eq!(m.get("join.joined_groups"), ds.joined.len() as u64);
    let h = m.histogram("discovery.groups_known").expect("histogram");
    assert_eq!(h.count(), 38 * 24);
    assert!(h.max().unwrap() >= h.min().unwrap());
}
