//! Fault-injection resilience: the campaign must degrade gracefully, not
//! collapse, under an unreliable network — the smoltcp-style "adverse
//! conditions" discipline of the networking guides applied to the whole
//! pipeline.

use chatlens::platforms::id::PlatformKind;
use chatlens::simnet::fault::FaultInjector;
use chatlens::{run_study_with, CampaignConfig, ScenarioConfig};

fn scenario() -> ScenarioConfig {
    ScenarioConfig::at_scale(0.005)
}

#[test]
fn campaign_survives_heavy_faults() {
    // 15% drops + 10% server errors — the guides' "good starting value"
    // for fault injection. Retries absorb most of it.
    let ds = run_study_with(
        scenario(),
        CampaignConfig {
            faults: FaultInjector::new(0.15, 0.10),
            ..CampaignConfig::default()
        },
    );
    for kind in PlatformKind::ALL {
        let s = ds.summary(kind);
        assert!(s.group_urls > 0, "{kind}: discovery must survive");
        assert!(s.joined_groups > 0, "{kind}: joining must survive");
    }
    assert!(!ds.control.is_empty());
}

#[test]
fn faults_only_shrink_coverage_never_corrupt() {
    let clean = run_study_with(
        scenario(),
        CampaignConfig {
            faults: FaultInjector::none(),
            ..CampaignConfig::default()
        },
    );
    let faulty = run_study_with(
        scenario(),
        CampaignConfig {
            faults: FaultInjector::new(0.20, 0.10),
            ..CampaignConfig::default()
        },
    );
    // Coverage shrinks...
    assert!(faulty.failed_requests > 0, "faults must actually bite");
    assert!(
        faulty.tweets.len() <= clean.tweets.len(),
        "faults cannot create data"
    );
    // ...but everything collected is a real tweet from the same world.
    let clean_ids: std::collections::HashSet<u64> =
        clean.tweets.iter().map(|t| t.tweet.id.0).collect();
    let missing = faulty
        .tweets
        .iter()
        .filter(|t| !clean_ids.contains(&t.tweet.id.0))
        .count();
    assert_eq!(
        missing, 0,
        "faulty run produced tweets the clean run never saw"
    );
    // Discovered groups are a subset too.
    let clean_groups: std::collections::HashSet<String> =
        clean.groups.iter().map(|g| g.invite.dedup_key()).collect();
    assert!(faulty
        .groups
        .iter()
        .all(|g| clean_groups.contains(&g.invite.dedup_key())));
}

#[test]
fn degraded_campaign_still_reproduces_the_shape() {
    // Even at 15% drops the headline orderings of the paper hold.
    let ds = run_study_with(
        scenario(),
        CampaignConfig {
            faults: FaultInjector::new(0.15, 0.05),
            ..CampaignConfig::default()
        },
    );
    use chatlens::analysis::lifecycle::revocation_stats;
    let wa = revocation_stats(&ds, PlatformKind::WhatsApp);
    let tg = revocation_stats(&ds, PlatformKind::Telegram);
    let dc = revocation_stats(&ds, PlatformKind::Discord);
    assert!(dc.revoked_fraction > wa.revoked_fraction);
    assert!(wa.revoked_fraction > tg.revoked_fraction);
    // Failed fetches show up as Failed observations, not phantom
    // revocations: revoked share under faults stays in the clean band.
    assert!(dc.revoked_fraction > 0.5 && dc.revoked_fraction < 0.85);
}

#[test]
fn campaign_metrics_account_for_the_work() {
    let ds = run_study_with(scenario(), CampaignConfig::default());
    let m = &ds.metrics;
    assert_eq!(m.get("campaign.search_rounds"), 38 * 24);
    assert_eq!(m.get("campaign.monitor_rounds"), 38);
    assert_eq!(m.get("campaign.sample_drains"), 38);
    assert!(m.get("transport.attempts") > m.get("discovery.tweets_collected"));
    assert_eq!(m.get("join.joined_groups"), ds.joined.len() as u64);
    let h = m.histogram("discovery.groups_known").expect("histogram");
    assert_eq!(h.count(), 38 * 24);
    assert!(h.max().unwrap() >= h.min().unwrap());
}
