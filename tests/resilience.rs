//! Fault-injection resilience: the campaign must degrade gracefully, not
//! collapse, under an unreliable network — the smoltcp-style "adverse
//! conditions" discipline of the networking guides applied to the whole
//! pipeline.

use chatlens::core::monitor::ObservedStatus;
use chatlens::platforms::id::PlatformKind;
use chatlens::simnet::fault::{FaultInjector, FaultProfile, OutageSpec};
use chatlens::{run_study_with, CampaignConfig, Dataset, ScenarioConfig};

fn scenario() -> ScenarioConfig {
    ScenarioConfig::at_scale(0.005)
}

#[test]
fn campaign_survives_heavy_faults() {
    // 15% drops + 10% server errors — the guides' "good starting value"
    // for fault injection. Retries absorb most of it.
    let ds = run_study_with(
        scenario(),
        CampaignConfig {
            faults: FaultInjector::new(0.15, 0.10),
            ..CampaignConfig::default()
        },
    );
    for kind in PlatformKind::ALL {
        let s = ds.summary(kind);
        assert!(s.group_urls > 0, "{kind}: discovery must survive");
        assert!(s.joined_groups > 0, "{kind}: joining must survive");
    }
    assert!(!ds.control.is_empty());
}

#[test]
fn faults_only_shrink_coverage_never_corrupt() {
    let clean = run_study_with(
        scenario(),
        CampaignConfig {
            faults: FaultInjector::none(),
            ..CampaignConfig::default()
        },
    );
    let faulty = run_study_with(
        scenario(),
        CampaignConfig {
            faults: FaultInjector::new(0.20, 0.10),
            ..CampaignConfig::default()
        },
    );
    // Coverage shrinks...
    assert!(faulty.failed_requests > 0, "faults must actually bite");
    assert!(
        faulty.tweets.len() <= clean.tweets.len(),
        "faults cannot create data"
    );
    // ...but everything collected is a real tweet from the same world.
    let clean_ids: std::collections::HashSet<u64> =
        clean.tweets.iter().map(|t| t.tweet.id.0).collect();
    let missing = faulty
        .tweets
        .iter()
        .filter(|t| !clean_ids.contains(&t.tweet.id.0))
        .count();
    assert_eq!(
        missing, 0,
        "faulty run produced tweets the clean run never saw"
    );
    // Discovered groups are a subset too.
    let clean_groups: std::collections::HashSet<String> =
        clean.groups.iter().map(|g| g.invite.dedup_key()).collect();
    assert!(faulty
        .groups
        .iter()
        .all(|g| clean_groups.contains(&g.invite.dedup_key())));
}

#[test]
fn degraded_campaign_still_reproduces_the_shape() {
    // Even at 15% drops the headline orderings of the paper hold.
    let ds = run_study_with(
        scenario(),
        CampaignConfig {
            faults: FaultInjector::new(0.15, 0.05),
            ..CampaignConfig::default()
        },
    );
    use chatlens::analysis::lifecycle::revocation_stats;
    let wa = revocation_stats(&ds, PlatformKind::WhatsApp);
    let tg = revocation_stats(&ds, PlatformKind::Telegram);
    let dc = revocation_stats(&ds, PlatformKind::Discord);
    assert!(dc.revoked_fraction > wa.revoked_fraction);
    assert!(wa.revoked_fraction > tg.revoked_fraction);
    // Failed fetches show up as Failed observations, not phantom
    // revocations: revoked share under faults stays in the clean band.
    assert!(dc.revoked_fraction > 0.5 && dc.revoked_fraction < 0.85);
}

/// A compact, fully deterministic digest of everything in the dataset
/// that counts as "data" — deliberately excluding `metrics`, which holds
/// wall-clock stage timings and may differ between runs.
fn dataset_fingerprint(ds: &chatlens::Dataset) -> String {
    let mut out = String::new();
    out.push_str(&format!("failed_requests={}\n", ds.failed_requests));
    out.push_str(&format!("accounts={:?}\n", ds.accounts_used));
    out.push_str(&format!("extraction={:?}\n", ds.extraction));
    out.push_str(&format!("gaps={:?}\n", ds.gaps));
    for t in &ds.tweets {
        out.push_str(&format!("tweet={}\n", t.tweet.id.0));
    }
    for g in &ds.groups {
        out.push_str(&format!("group={}\n", g.invite.dedup_key()));
    }
    for (slot, tl) in ds.timelines.iter() {
        out.push_str(&format!("timeline {slot}: {tl:?}\n"));
    }
    for j in &ds.joined {
        out.push_str(&format!(
            "joined={} members={} msgs={}\n",
            j.key,
            j.members.len(),
            j.messages.len()
        ));
    }
    for q in &ds.quarantine {
        out.push_str(&format!(
            "quarantine={} {} day={} code={}\n",
            q.service,
            q.endpoint,
            q.day,
            q.code.label()
        ));
    }
    out
}

#[test]
fn fault_sweep_never_breaks_dataset_determinism() {
    // Sweep transport drop-chance from 0% to 20%. At every level the
    // dataset must be a pure function of (seed, fault level): repeated
    // runs — and runs at different thread counts — are identical. Only
    // the retry counters in `simnet::metrics` move as faults bite.
    let mut attempts_by_level = Vec::new();
    for drop_chance in [0.0, 0.05, 0.10, 0.20] {
        let run = |threads: usize| {
            run_study_with(
                scenario(),
                CampaignConfig {
                    faults: FaultInjector::new(drop_chance, 0.0),
                    threads,
                    ..CampaignConfig::default()
                },
            )
        };
        let first = run(1);
        let fingerprint = dataset_fingerprint(&first);
        for (label, ds) in [("repeat", run(1)), ("8 threads", run(8))] {
            assert_eq!(
                dataset_fingerprint(&ds),
                fingerprint,
                "{label} run diverged at drop chance {drop_chance}"
            );
            // The retry accounting is deterministic too, for a fixed
            // fault level — it varies only *across* levels.
            assert_eq!(
                ds.metrics.get("transport.attempts"),
                first.metrics.get("transport.attempts"),
                "attempts diverged at drop chance {drop_chance}"
            );
        }
        attempts_by_level.push((drop_chance, first.metrics.get("transport.attempts")));
    }
    // More drops => more retries. The clean run must be the floor, and
    // the heaviest fault level must visibly cost extra attempts.
    let clean = attempts_by_level[0].1;
    for &(p, attempts) in &attempts_by_level[1..] {
        assert!(
            attempts > clean,
            "drop chance {p} should force retries ({attempts} vs {clean} clean)"
        );
    }
}

// ---- correlated failures: scheduled outages, breakers, gap censoring ----

/// A campaign whose WhatsApp service is fully dark on study days 12..15.
fn wa_blackout_campaign() -> CampaignConfig {
    CampaignConfig {
        outages: [
            None,
            Some(OutageSpec {
                start_day: 12,
                days: 3,
                ban: false,
            }),
            None,
            None,
        ],
        ..CampaignConfig::default()
    }
}

/// Everything the dataset holds about one platform, as a comparable
/// digest: discovery records, timelines, gap-ledger entries, and joined
/// groups (members and messages included via `Debug`).
fn platform_slice(ds: &Dataset, kind: PlatformKind) -> String {
    let mut out = String::new();
    for (slot, g) in ds.groups.iter().enumerate() {
        if g.platform != kind {
            continue;
        }
        let key = g.invite.dedup_key();
        out.push_str(&format!("group={key}\n"));
        if let Some(tl) = ds.timelines.get(slot) {
            out.push_str(&format!("  timeline={tl:?}\n"));
        }
        if let Some(gaps) = ds.gaps.get(slot) {
            out.push_str(&format!("  gaps={gaps:?}\n"));
        }
    }
    for j in ds.joined_of(kind) {
        out.push_str(&format!("joined={j:?}\n"));
    }
    out
}

#[test]
fn three_day_blackout_censors_only_the_dark_platform() {
    let baseline = run_study_with(scenario(), CampaignConfig::default());
    assert!(
        baseline.gaps.is_empty(),
        "a calm campaign must not record censored days"
    );
    let outage = run_study_with(scenario(), wa_blackout_campaign());

    // The campaign completes and the outage left a censored record, never
    // fabricated observations: inside the window every WhatsApp fetch is
    // Failed, and the unrecoverable days landed in the gap ledger.
    assert!(!outage.gaps.is_empty(), "the blackout must leave gaps");
    let wa_keys: std::collections::HashSet<String> = outage
        .groups
        .iter()
        .filter(|g| g.platform == PlatformKind::WhatsApp)
        .map(|g| g.invite.dedup_key())
        .collect();
    for (slot, days) in outage.gaps.iter() {
        let key = outage.groups[slot].invite.dedup_key();
        assert!(wa_keys.contains(&key), "gap ledger leaked to {key}");
        for d in days {
            assert!((12..15).contains(d), "gap day {d} outside the outage");
        }
    }
    for g in outage
        .groups
        .iter()
        .filter(|g| g.platform == PlatformKind::WhatsApp)
    {
        let Some(tl) = outage.timeline_of(g) else {
            continue;
        };
        for o in tl.iter().filter(|o| (12..15).contains(&o.day)) {
            assert_eq!(
                o.status,
                ObservedStatus::Failed,
                "{}: day-{} observation fabricated during the blackout",
                g.invite.dedup_key(),
                o.day
            );
        }
    }

    // Everything the campaign collected about the *other* platforms — and
    // the Twitter side — is byte-identical to the no-outage run.
    for kind in [PlatformKind::Telegram, PlatformKind::Discord] {
        assert_eq!(
            platform_slice(&outage, kind),
            platform_slice(&baseline, kind),
            "{kind}: outputs perturbed by the WhatsApp outage"
        );
    }
    let tweet_ids = |ds: &Dataset| ds.tweets.iter().map(|t| t.tweet.id.0).collect::<Vec<_>>();
    assert_eq!(tweet_ids(&outage), tweet_ids(&baseline));
}

#[test]
fn service_recovers_to_baseline_after_outage_window() {
    let baseline = run_study_with(scenario(), CampaignConfig::default());
    let outage = run_study_with(scenario(), wa_blackout_campaign());

    // The storm was real: breakers opened and failed fast, and days were
    // censored.
    assert!(outage.metrics.get("transport.breaker_opened") > 0);
    assert!(outage.metrics.get("transport.breaker_fast_fails") > 0);
    assert!(outage.metrics.get("monitor.gap_days") > 0);
    assert_eq!(baseline.metrics.get("transport.breaker_opened"), 0);

    // After the window closes the breaker must fully recover — monitoring
    // resumes (not stuck open) and the per-day success profile returns to
    // the fault-free baseline: under calm faults a Failed observation
    // after day 15 would mean the breaker was still rejecting calls.
    let wa_obs = |ds: &Dataset, day: u32| {
        let mut alive = 0u64;
        let mut failed = 0u64;
        for g in ds
            .groups
            .iter()
            .filter(|g| g.platform == PlatformKind::WhatsApp)
        {
            let Some(tl) = ds.timeline_of(g) else {
                continue;
            };
            for o in tl.iter().filter(|o| o.day == day) {
                match o.status {
                    ObservedStatus::Alive { .. } => alive += 1,
                    ObservedStatus::Failed => failed += 1,
                    _ => {}
                }
            }
        }
        (alive, failed)
    };
    let (alive_day15, _) = wa_obs(&outage, 15);
    assert!(alive_day15 > 0, "monitoring must resume the day after");
    for day in 15..38 {
        let (alive, failed) = wa_obs(&outage, day);
        assert_eq!(failed, 0, "day {day}: breaker still rejecting calls");
        let (base_alive, _) = wa_obs(&baseline, day);
        // Same world, same fetch days: once the backlog of revocations
        // hidden by the gap has been caught up, the per-day alive counts
        // match the no-outage run exactly.
        if day >= 16 {
            assert_eq!(
                alive, base_alive,
                "day {day}: success rate did not return to baseline"
            );
        }
    }
}

#[test]
fn bursty_checkpoint_resume_is_bit_identical() {
    use chatlens::checkpoint::load_from_file;
    use chatlens::core::{resume_study, run_study_checkpointed, CampaignState, CheckpointPolicy};
    let small = ScenarioConfig::at_scale(0.002);
    let campaign = CampaignConfig {
        profile: FaultProfile::Bursty,
        ..CampaignConfig::default()
    };
    let mut uninterrupted = run_study_with(small.clone(), campaign);
    uninterrupted.metrics.strip_wall_clock();

    let dir = std::env::temp_dir().join(format!("chatlens-bursty-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    run_study_checkpointed(small, campaign, &CheckpointPolicy::daily(dir.clone()))
        .expect("snapshots save");
    // Kill mid-storm and resume at every thread count: the finished
    // dataset — burst phases, breaker states, backfill queues, gap ledger
    // and all — must be byte-identical to the uninterrupted run.
    let path = dir.join("day019.ckpt");
    for threads in [1usize, 2, 8] {
        let mut state: CampaignState = load_from_file(&path).expect("snapshot loads");
        state.campaign.threads = threads;
        let mut resumed = resume_study(&state);
        resumed.metrics.strip_wall_clock();
        assert_eq!(
            dataset_fingerprint(&resumed),
            dataset_fingerprint(&uninterrupted),
            "bursty resume at {threads} thread(s) diverged"
        );
        assert_eq!(
            resumed, uninterrupted,
            "bursty resume at {threads} thread(s)"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_metrics_account_for_the_work() {
    let ds = run_study_with(scenario(), CampaignConfig::default());
    let m = &ds.metrics;
    assert_eq!(m.get("campaign.search_rounds"), 38 * 24);
    assert_eq!(m.get("campaign.monitor_rounds"), 38);
    assert_eq!(m.get("campaign.sample_drains"), 38);
    assert!(m.get("transport.attempts") > m.get("discovery.tweets_collected"));
    assert_eq!(m.get("join.joined_groups"), ds.joined.len() as u64);
    let h = m.histogram("discovery.groups_known").expect("histogram");
    assert_eq!(h.count(), 38 * 24);
    assert!(h.max().unwrap() >= h.min().unwrap());
}
