//! Property-based tests (proptest) on the core data structures and
//! invariants that hold for *any* input, not just the calibrated
//! scenarios.

use chatlens::analysis::stats::{top_share, Ecdf};
use chatlens::platforms::id::PlatformKind;
use chatlens::platforms::invite::{parse_invite_url, InviteCode, UrlPattern};
use chatlens::platforms::phone::{parse_e164, PhoneNumber, COUNTRIES};
use chatlens::platforms::wire::{sanitize, WireDoc};
use chatlens::simnet::dist::{Categorical, Zipf};
use chatlens::simnet::hash::{sha256_hex, to_hex};
use chatlens::simnet::rng::Rng;
use chatlens::simnet::time::{Date, SimTime};
use chatlens::twitter::{Lang, Tweet, TweetId, TwitterUserId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn date_day_number_roundtrip(n in -1_000_000i64..1_000_000i64) {
        let d = Date::from_day_number(n);
        prop_assert_eq!(d.day_number(), n);
        prop_assert!((1..=12).contains(&d.month));
        prop_assert!((1..=31).contains(&d.day));
    }

    #[test]
    fn date_plus_days_is_additive(n in -100_000i64..100_000i64, k in -1000i64..1000i64) {
        let d = Date::from_day_number(n);
        prop_assert_eq!(d.plus_days(k).day_number(), n + k);
        prop_assert_eq!(d.plus_days(k).plus_days(-k), d);
    }

    #[test]
    fn invite_codes_roundtrip_for_any_seed(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        for platform in PlatformKind::ALL {
            let invite = InviteCode::generate(platform, &mut rng);
            let parsed = parse_invite_url(&invite.url());
            prop_assert_eq!(parsed.as_ref(), Some(&invite));
            prop_assert_eq!(invite.platform(), platform);
        }
    }

    #[test]
    fn invite_parse_never_panics(s in "\\PC*") {
        let _ = parse_invite_url(&s);
    }

    #[test]
    fn alphanumeric_codes_always_parse(code in "[A-Za-z0-9]{1,32}") {
        for pattern in [UrlPattern::WhatsAppChat, UrlPattern::TMe, UrlPattern::DiscordGg] {
            let invite = InviteCode { pattern, code: code.clone() };
            prop_assert_eq!(parse_invite_url(&invite.url()), Some(invite));
        }
    }

    #[test]
    fn phone_roundtrip_any_country(seed in any::<u64>(), idx in 0usize..20) {
        let mut rng = Rng::new(seed);
        let country = COUNTRIES[idx % COUNTRIES.len()];
        let phone = PhoneNumber::allocate(country, &mut rng);
        prop_assert_eq!(parse_e164(&phone.e164()), Some(phone));
    }

    #[test]
    fn phone_parse_never_panics(s in "\\PC*") {
        let _ = parse_e164(&s);
    }

    #[test]
    fn wire_doc_roundtrips_arbitrary_fields(
        kind in "[a-z][a-z-]{0,15}",
        fields in proptest::collection::vec(("[a-z_]{1,12}", "[^\\n\\r]{0,40}"), 0..8),
    ) {
        let mut doc = WireDoc::new(kind.clone());
        for (k, v) in &fields {
            doc = doc.field(k.clone(), sanitize(v));
        }
        let body = doc.render();
        let parsed = WireDoc::parse(&body).unwrap();
        prop_assert_eq!(&parsed.kind.to_string(), &kind);
        prop_assert_eq!(parsed.len(), fields.len());
        for (k, _) in &fields {
            // First value for each key matches the first inserted value.
            let first_inserted = fields
                .iter()
                .find(|(k2, _)| k2 == k)
                .map(|(_, v2)| sanitize(v2));
            let got = parsed.get(k).map(str::to_string);
            prop_assert_eq!(got, first_inserted);
        }
    }

    #[test]
    fn wire_parse_never_panics(s in "\\PC*") {
        let _ = WireDoc::parse(&s);
    }

    #[test]
    fn wire_render_parse_is_exact_identity(
        // Keys of length >= 2 sidestep the reserved count header `n`.
        kind in "[a-z][a-z-]{0,15}",
        fields in proptest::collection::vec(("[a-z_]{2,12}", "[^\\n\\r]{0,40}"), 0..8),
    ) {
        let mut doc = WireDoc::new(kind);
        for (k, v) in &fields {
            doc = doc.field(k.clone(), sanitize(v));
        }
        prop_assert_eq!(WireDoc::parse_owned(&doc.render()), Ok(doc));
    }

    #[test]
    fn wire_parse_then_render_equals_sanitize_then_render(
        kind in "[a-z][a-z-]{0,15}",
        fields in proptest::collection::vec(("[a-z_]{2,12}", "[^\\r]{0,40}"), 0..8),
    ) {
        // Raw values may contain newlines; the builder requires them
        // sanitized first. Rendering the sanitized doc, parsing it with
        // the zero-copy parser, and re-rendering the owned copy must
        // reproduce the sanitized rendering byte-for-byte.
        let mut doc = WireDoc::new(kind);
        for (k, v) in &fields {
            doc = doc.field(k.clone(), sanitize(v));
        }
        let rendered = doc.render();
        let reparsed = WireDoc::parse(&rendered).unwrap().to_doc();
        prop_assert_eq!(reparsed.render(), rendered);
    }

    #[test]
    fn sanitize_is_idempotent(s in "\\PC*") {
        let once = sanitize(&s);
        prop_assert!(!once.contains('\n') && !once.contains('\r'));
        prop_assert_eq!(sanitize(&once), once.clone());
    }

    #[test]
    fn tweet_encoding_roundtrips(
        id in any::<u32>(),
        author in any::<u32>(),
        secs in 0u64..10_000_000_000,
        lang_idx in 0usize..15,
        hashtags in any::<u8>(),
        mentions in any::<u8>(),
        rt in proptest::option::of(any::<u32>()),
        n_tokens in 0usize..20,
    ) {
        let tweet = Tweet {
            id: TweetId(u64::from(id)),
            author: TwitterUserId(author),
            at: SimTime::from_secs(secs),
            lang: Lang::ALL[lang_idx],
            hashtags,
            mentions,
            retweet_of: rt.map(|r| TweetId(u64::from(r))),
            urls: vec!["https://t.me/joinchat/Abc".into()],
            tokens: (0..n_tokens as u16).collect(),
            is_control: false,
        };
        prop_assert_eq!(Tweet::decode(&tweet.encode()), Some(tweet));
    }

    #[test]
    fn ecdf_is_monotone_and_bounded(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let e = Ecdf::new(samples.clone());
        let mut prev = 0.0;
        for x in [-1e7, -1e3, 0.0, 1e3, 1e7] {
            let f = e.fraction_at_most(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev);
            prev = f;
        }
        prop_assert_eq!(e.fraction_at_most(f64::MAX), 1.0);
        // Quantiles are sample values.
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = e.quantile(q).unwrap();
            prop_assert!(samples.contains(&v));
        }
    }

    #[test]
    fn ecdf_series_ends_at_one(samples in proptest::collection::vec(0u64..1000, 1..100)) {
        let e = Ecdf::from_ints(samples);
        let series = e.series();
        prop_assert!((series.last().unwrap().1 - 1.0).abs() < 1e-12);
        // Strictly increasing x.
        for w in series.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn top_share_bounds(values in proptest::collection::vec(0u64..10_000, 1..100), frac in 0.01f64..1.0) {
        let share = top_share(&values, frac);
        prop_assert!((0.0..=1.0).contains(&share));
        // Taking everything gives everything (when there is any mass).
        if values.iter().sum::<u64>() > 0 {
            prop_assert!((top_share(&values, 1.0) - 1.0).abs() < 1e-12);
            prop_assert!(share >= frac - 1.0 / values.len() as f64 - 1e-9,
                "top group can never hold less than its proportional share");
        }
    }

    #[test]
    fn categorical_never_samples_zero_weight(
        seed in any::<u64>(),
        weights in proptest::collection::vec(0.0f64..10.0, 2..20),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.1);
        let cat = Categorical::new(&weights);
        let mut rng = Rng::new(seed);
        for _ in 0..200 {
            let i = cat.sample(&mut rng);
            prop_assert!(weights[i] > 0.0, "sampled zero-weight category {i}");
        }
    }

    #[test]
    fn zipf_samples_in_range(seed in any::<u64>(), n in 1usize..500, s in 0.1f64..3.0) {
        let z = Zipf::new(n, s);
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            let r = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&r));
        }
    }

    #[test]
    fn sha256_hex_shape_and_determinism(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let h1 = sha256_hex(&data);
        let h2 = sha256_hex(&data);
        prop_assert_eq!(&h1, &h2);
        prop_assert_eq!(h1.len(), 64);
        prop_assert!(h1.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn hex_encoding_length(data in proptest::collection::vec(any::<u8>(), 0..100)) {
        prop_assert_eq!(to_hex(&data).len(), data.len() * 2);
    }

    #[test]
    fn rng_below_in_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn rng_sample_indices_invariants(seed in any::<u64>(), n in 0usize..200) {
        let mut rng = Rng::new(seed);
        let k = n / 2;
        let sample = rng.sample_indices(n, k);
        prop_assert_eq!(sample.len(), k);
        for w in sample.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for &i in &sample {
            prop_assert!(i < n);
        }
    }
}

// ---- substrate property tests (second block) ------------------------------

use chatlens::platforms::group::SizeTimeline;
use chatlens::platforms::message::MessageKind;
use chatlens::platforms::service::{encode_message, parse_message};
use chatlens::simnet::fault::{Backoff, FaultInjector, TokenBucket};
use chatlens::simnet::metrics::Histogram;
use chatlens::simnet::time::SimDuration;
use chatlens::simnet::transport::{
    Client, ClientConfig, Request, Response, Router, Service, Status, TransportError,
};
use chatlens::workload::config::{RevocationParams, ShareCountParams, StalenessParams};
use chatlens::workload::groups::{
    sample_revocation_offset, sample_share_count, sample_staleness_days,
};

/// A service that walks a scripted response list, one entry per dispatch.
struct ScriptedService {
    script: Vec<u8>,
    cursor: usize,
}

impl Service for ScriptedService {
    fn handle(&mut self, _now: SimTime, _req: &Request) -> Response {
        let k = self.script[self.cursor % self.script.len()];
        self.cursor += 1;
        match k % 5 {
            0 | 1 => Response::ok("ok"),
            2 => Response::status(Status::RateLimited(u32::from(k % 7) + 1), "slow down"),
            3 => Response::status(Status::ServerError, "injected"),
            _ => Response::status(Status::NotFound, "no such thing"),
        }
    }
}

/// A service that always answers 429 with a fixed retry-after.
struct AlwaysLimited(u32);

impl Service for AlwaysLimited {
    fn handle(&mut self, _now: SimTime, _req: &Request) -> Response {
        Response::status(Status::RateLimited(self.0), "busy")
    }
}

proptest! {
    #[test]
    fn size_timeline_lookup_always_in_stored_range(
        start in -1000i64..20_000,
        sizes in proptest::collection::vec(1u32..1_000_000, 1..80),
        probe in -2000i64..40_000,
    ) {
        let first = Date::from_day_number(start);
        let tl = SizeTimeline::new(first, sizes.clone());
        let got = tl.size_on(Date::from_day_number(probe));
        prop_assert!(sizes.contains(&got));
        prop_assert_eq!(tl.first(), sizes[0]);
        prop_assert_eq!(tl.last(), *sizes.last().unwrap());
    }

    #[test]
    fn token_bucket_wait_bounded_by_refill_math(
        capacity in 1.0f64..100.0,
        rate in 0.01f64..100.0,
        draws in 1usize..50,
    ) {
        let mut b = TokenBucket::new(capacity, rate, SimTime::EPOCH);
        let mut waited = SimDuration::ZERO;
        for _ in 0..draws {
            match b.acquire(SimTime::EPOCH) {
                Some(w) => waited = waited + w,
                None => break, // > 1h wait refused: fine for tiny rates
            }
        }
        // Total waiting can never exceed what refilling `draws` tokens at
        // `rate` requires (+1s/draw of ceil rounding).
        let bound = (draws as f64 / rate).ceil() as u64 + draws as u64;
        prop_assert!(waited.as_secs() <= bound, "waited {waited} > bound {bound}");
    }

    #[test]
    fn backoff_delays_never_exceed_cap(
        seed in any::<u64>(),
        base in 1u64..100,
        cap in 1u64..500,
        attempts in 1usize..20,
    ) {
        let mut rng = Rng::new(seed);
        let mut b = Backoff::new(SimDuration::secs(base), 2.0, SimDuration::secs(cap));
        for _ in 0..attempts {
            let d = b.next_delay(&mut rng);
            prop_assert!(d.as_secs() <= cap.max(1));
        }
        prop_assert_eq!(b.attempts(), attempts as u32);
    }

    #[test]
    fn histogram_counts_conserved(
        bounds_raw in proptest::collection::btree_set(1u32..1000, 1..8),
        values in proptest::collection::vec(0.0f64..2000.0, 0..200),
    ) {
        let bounds: Vec<f64> = bounds_raw.iter().map(|&b| f64::from(b)).collect();
        let mut h = Histogram::new(&bounds);
        for &v in &values {
            h.observe(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let bucket_total: u64 = h.buckets().map(|(_, c)| c).sum();
        prop_assert_eq!(bucket_total, values.len() as u64);
    }

    #[test]
    fn message_wire_roundtrip(
        secs in 0u64..10_000_000_000,
        sender in any::<u32>(),
        kind_idx in 0usize..9,
    ) {
        let m = chatlens::platforms::message::Message {
            sender: chatlens::platforms::id::UserId(sender),
            at: SimTime::from_secs(secs),
            kind: MessageKind::from_index(kind_idx),
        };
        prop_assert_eq!(parse_message(&encode_message(&m)), Some(m));
    }

    #[test]
    fn share_counts_respect_cap_and_min(
        seed in any::<u64>(),
        p_once in 0.0f64..1.0,
        alpha in 0.5f64..2.0,
        cap in 1u32..10_000,
    ) {
        let params = ShareCountParams { p_once, alpha, x_min: 1.0, cap };
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            let n = sample_share_count(&params, &mut rng);
            prop_assert!(n >= 1);
            prop_assert!(n <= cap.max(1));
        }
    }

    #[test]
    fn staleness_respects_platform_age(
        seed in any::<u64>(),
        p_same_day in 0.0f64..1.0,
        median in 1.0f64..1000.0,
        max_age in 0u64..5000,
    ) {
        let params = StalenessParams {
            p_same_day,
            tail_median_days: median,
            tail_sigma: 2.0,
        };
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            let age = sample_staleness_days(&params, max_age, &mut rng);
            prop_assert!(age <= max_age.max(1));
        }
    }

    #[test]
    fn revocation_offsets_nonnegative_and_partitioned(
        seed in any::<u64>(),
        p_ttl in 0.0f64..0.5,
        p_instant in 0.0f64..0.3,
        p_slow in 0.0f64..0.2,
    ) {
        let params = RevocationParams {
            p_ttl,
            ttl_days: 1.0,
            p_instant,
            instant_mean_days: 0.5,
            p_slow,
            slow_mean_days: 30.0,
        };
        let mut rng = Rng::new(seed);
        let mut revoked = 0u32;
        for _ in 0..200 {
            if sample_revocation_offset(&params, &mut rng).is_some() {
                revoked += 1;
            }
        }
        // Sampled revocation frequency near the configured total mass.
        let expect = p_ttl + p_instant + p_slow;
        let got = f64::from(revoked) / 200.0;
        prop_assert!((got - expect).abs() < 0.2, "got {got} expect {expect}");
    }

    #[test]
    fn lda_fit_conserves_tokens(
        seed in any::<u64>(),
        docs in proptest::collection::vec(
            proptest::collection::vec(0u16..30, 0..20), 1..30),
    ) {
        use chatlens::analysis::{LdaConfig, LdaModel};
        let total: usize = docs.iter().map(Vec::len).sum();
        let model = LdaModel::fit(&docs, 30, LdaConfig {
            k: 3,
            iterations: 3,
            seed,
            ..LdaConfig::default()
        });
        prop_assert_eq!(model.total_tokens(), total as u64);
        let share_sum: f64 = model.topic_token_shares().iter().sum();
        if total > 0 {
            prop_assert!((share_sum - 1.0).abs() < 1e-9);
        }
    }

    // ---- simnet::par: the parallel runtime IS the serial computation ----

    #[test]
    fn par_map_equals_serial_map(
        items in proptest::collection::vec(any::<u64>(), 0..200),
        chunk in 1usize..40,
        threads in 1usize..9,
    ) {
        use chatlens::simnet::par::Pool;
        let f = |x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(7);
        let serial: Vec<u64> = items.iter().map(f).collect();
        let pool = Pool::new(threads);
        prop_assert_eq!(pool.par_map_chunked(chunk, &items, f), serial.clone());
        // The default chunking must agree too.
        prop_assert_eq!(pool.par_map(&items, f), serial);
    }

    #[test]
    fn par_fold_equals_serial_fold_bitwise(
        items in proptest::collection::vec(0u32..1_000_000, 0..300),
        threads in 1usize..9,
    ) {
        use chatlens::simnet::par::Pool;
        // Floating-point accumulation: only an ordered merge makes the
        // result bit-identical at every thread count.
        let items: Vec<f64> = items.iter().map(|&x| 1.0 / f64::from(x + 1)).collect();
        let serial = Pool::new(1).par_fold(&items, || 0.0f64, |a, _, x| a + x, |a, b| a + b);
        let par = Pool::new(threads).par_fold(&items, || 0.0f64, |a, _, x| a + x, |a, b| a + b);
        prop_assert_eq!(par.to_bits(), serial.to_bits());
    }

    // ---- platforms::invite: URL render/parse round-trips ----

    #[test]
    fn client_call_never_exceeds_attempt_budget_and_accounts_every_wait(
        seed in any::<u64>(),
        max_attempts in 1u32..7,
        drop_p in 0.0f64..0.5,
        error_p in 0.0f64..0.4,
        breaker_threshold in 0u32..4,
        script in proptest::collection::vec(any::<u8>(), 1..40),
        calls in 1usize..25,
    ) {
        let mut svc = ScriptedService { script, cursor: 0 };
        let config = ClientConfig {
            max_attempts,
            breaker_threshold,
            ..ClientConfig::default()
        };
        let mut client = Client::new(
            config,
            FaultInjector::new(drop_p, error_p),
            Rng::new(seed),
            SimTime::EPOCH,
        );
        for i in 0..calls {
            let mut router = Router::new();
            router.mount("svc", &mut svc);
            let now = SimTime::EPOCH + SimDuration::secs(i as u64 * 900);
            let entries_before = client.trace().len();
            let waited_before = client.waited.as_secs();
            let result = client.call(&mut router, now, &Request::new("svc/op"));
            let new_entries = client.trace().len() - entries_before;
            let waited_delta = client.waited.as_secs() - waited_before;
            // A call never records more than `max_attempts` trace entries,
            // and the error-side attempt counts agree with the trace.
            prop_assert!(new_entries <= u64::from(max_attempts));
            match &result {
                Err(TransportError::Failed { attempts, .. })
                | Err(TransportError::Dropped { attempts }) => {
                    prop_assert!(*attempts <= max_attempts);
                    prop_assert_eq!(u64::from(*attempts), new_entries);
                }
                Ok(_) => prop_assert!(new_entries >= 1),
                Err(TransportError::BreakerOpen { .. }) => {
                    prop_assert_eq!(new_entries, 0);
                }
                Err(TransportError::RateBudgetExhausted) => {}
            }
            // `waited` accounts exactly the imposed waits: every charged
            // wait precedes a recorded attempt, so the delta equals the
            // gap between the call's start and its last attempt. (The old
            // over-counting bug charged the final retryable attempt's
            // retry-after even though no retry followed.)
            match &result {
                Err(TransportError::RateBudgetExhausted) => {}
                Err(TransportError::BreakerOpen { .. }) => prop_assert_eq!(waited_delta, 0),
                _ => {
                    let last_at = client.trace().entries().last().expect("attempted").at;
                    prop_assert_eq!(waited_delta, (last_at - now).as_secs());
                }
            }
        }
    }

    #[test]
    fn final_retryable_attempt_is_not_charged_as_wait(
        seed in any::<u64>(),
        max_attempts in 1u32..6,
        retry_after in 100u32..500,
    ) {
        let mut svc = AlwaysLimited(retry_after);
        let mut router = Router::new();
        router.mount("svc", &mut svc);
        let mut client = Client::new(
            ClientConfig { max_attempts, ..ClientConfig::default() },
            FaultInjector::none(),
            Rng::new(seed),
            SimTime::EPOCH,
        );
        let result = client.call(&mut router, SimTime::EPOCH, &Request::new("svc/op"));
        prop_assert!(matches!(
            result,
            Err(TransportError::Failed { status: Status::RateLimited(_), attempts })
                if attempts == max_attempts
        ));
        prop_assert_eq!(client.trace().len(), u64::from(max_attempts));
        let n = u64::from(max_attempts);
        let ra = u64::from(retry_after);
        prop_assert!(client.waited.as_secs() >= (n - 1) * ra);
        // Each of the n-1 served retries waits retry-after plus at most
        // the backoff cap; charging the final attempt too would land at
        // n * retry-after and break this bound.
        prop_assert!(
            client.waited.as_secs() <= (n - 1) * (ra + 61),
            "final retryable attempt charged as wait: {} secs after {n} attempts",
            client.waited.as_secs()
        );
    }

    #[test]
    fn parse_is_scheme_and_noise_insensitive(
        code in "[A-Za-z0-9]{1,22}",
        scheme in 0u8..3,
        query in proptest::option::of("[a-z]{1,8}"),
    ) {
        for host_path in [
            format!("chat.whatsapp.com/{code}"),
            format!("t.me/{code}"),
            format!("discord.gg/{code}"),
            format!("discord.com/invite/{code}"),
        ] {
            let mut url = match scheme {
                0 => format!("https://{host_path}"),
                1 => format!("http://{host_path}"),
                _ => host_path.clone(),
            };
            if let Some(q) = &query {
                url.push_str(&format!("?utm={q}"));
            }
            let parsed = parse_invite_url(&url);
            prop_assert!(parsed.is_some(), "failed to parse {url}");
            let invite = parsed.unwrap();
            prop_assert_eq!(&invite.code, &code, "code mangled in {url}");
            // Round-trip: rendering and reparsing is a fixed point.
            prop_assert_eq!(parse_invite_url(&invite.url()).as_ref(), Some(&invite));
        }
    }
}
