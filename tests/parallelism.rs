//! The deterministic-parallelism contract, end to end: for a fixed seed,
//! the campaign dataset and every derived paper artifact are
//! **byte-identical** whether the runtime uses 1, 2, or 8 worker threads.
//! Threads may only change wall-clock time (tracked separately through
//! `simnet::metrics` stage counters, which are never compared across
//! runs).

use chatlens::analysis::{lifecycle, pii, LdaConfig, LdaModel};
use chatlens::platforms::id::PlatformKind;
use chatlens::simnet::metrics::Metrics;
use chatlens::simnet::par::Pool;
use chatlens::{run_study_with, CampaignConfig, Dataset, ScenarioConfig};

fn scenario() -> ScenarioConfig {
    let mut c = ScenarioConfig::at_scale(0.004);
    c.seed = 99;
    c
}

fn collect(threads: usize) -> Dataset {
    run_study_with(
        scenario(),
        CampaignConfig {
            threads,
            ..CampaignConfig::default()
        },
    )
}

/// Render the three artifacts named by the acceptance criteria into one
/// byte string: Table 2 (dataset overview), Fig 6 (lifetime/revocation),
/// Table 4 (PII exposure).
fn artifact_bytes(ds: &Dataset, pool: &Pool) -> Vec<u8> {
    let mut out = String::new();
    // Table 2: per-platform rows plus the distinct total.
    for kind in PlatformKind::ALL {
        out.push_str(&format!("table2 {kind}: {:?}\n", ds.summary(kind)));
    }
    out.push_str(&format!("table2 total: {:?}\n", ds.totals()));
    // Fig 6: revocation stats, through the parallel fan-out.
    for stats in lifecycle::revocation_stats_all(ds, pool) {
        out.push_str(&format!("fig6: {stats:?}\n"));
    }
    // Table 4: PII exposure, through the parallel fan-out.
    for row in pii::exposure_table_par(ds, pool) {
        out.push_str(&format!("table4: {row:?}\n"));
    }
    out.into_bytes()
}

#[test]
fn artifacts_are_byte_identical_across_thread_counts() {
    let reference_ds = collect(1);
    let reference = artifact_bytes(&reference_ds, &Pool::new(1));
    assert!(!reference.is_empty());
    for threads in [2, 8] {
        let ds = collect(threads);
        let bytes = artifact_bytes(&ds, &Pool::new(threads));
        assert_eq!(
            bytes, reference,
            "{threads}-thread run diverged from the serial run"
        );
        // The dataset underneath matches too, not just the rendering.
        assert_eq!(ds.timelines, reference_ds.timelines);
        assert_eq!(ds.tweets.len(), reference_ds.tweets.len());
    }
}

#[test]
fn lda_model_is_identical_across_thread_counts() {
    // Several hundred docs so the corpus spans multiple Gibbs chunks.
    let docs: Vec<Vec<u16>> = (0..600)
        .map(|d| (0..12).map(|j| ((d * 7 + j * 3) % 40) as u16).collect())
        .collect();
    let fit = |threads: usize| {
        LdaModel::fit(
            &docs,
            40,
            LdaConfig {
                k: 6,
                iterations: 15,
                seed: 5,
                threads,
                ..LdaConfig::default()
            },
        )
    };
    let serial = fit(1);
    for threads in [2, 8] {
        let par = fit(threads);
        for t in 0..6 {
            assert_eq!(
                par.top_words(t, 10),
                serial.top_words(t, 10),
                "topic {t} at {threads} threads"
            );
        }
        assert_eq!(par.topic_doc_shares(), serial.topic_doc_shares());
    }
}

/// The LDA stage's wall-clock is recorded via `simnet::metrics`, and on a
/// machine with >= 4 cores the 4-thread fit of the default 1/10-scale
/// corpus must beat the serial fit by > 1.5x. Single-core runners (like
/// the CI container) still execute the timing plumbing, but skip the
/// speedup assertion — there is nothing to speed up.
#[test]
fn lda_timing_recorded_and_parallel_speedup_on_multicore() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // A corpus big enough that chunked scheduling overhead is noise. On
    // multicore machines, use the paper's default 1/10-scale scenario.
    let docs: Vec<Vec<u16>> = if cores >= 4 {
        let ds = run_study_with(
            {
                let mut c = ScenarioConfig::at_scale(0.1);
                c.seed = 20_200_408;
                c
            },
            CampaignConfig::default(),
        );
        let vocab = chatlens::workload::Vocabulary::build();
        chatlens::analysis::topics::english_corpus(&ds, PlatformKind::Telegram, &vocab)
    } else {
        (0..2_000)
            .map(|d| (0..20).map(|j| ((d * 11 + j * 5) % 60) as u16).collect())
            .collect()
    };
    let vocab_len = docs
        .iter()
        .flatten()
        .map(|&w| w as usize + 1)
        .max()
        .unwrap();
    let mut metrics = Metrics::new();
    let fit = |metrics: &mut Metrics, threads: usize| {
        let stage = format!("lda.t{threads}");
        metrics.time_stage(&stage, || {
            LdaModel::fit(
                &docs,
                vocab_len,
                LdaConfig {
                    k: 8,
                    iterations: 10,
                    seed: 3,
                    threads,
                    ..LdaConfig::default()
                },
            )
        });
        metrics.stage_micros(&stage)
    };
    let serial_us = fit(&mut metrics, 1);
    let four_us = fit(&mut metrics, 4);
    assert!(serial_us > 0, "serial LDA timing recorded");
    assert!(four_us > 0, "4-thread LDA timing recorded");
    assert_eq!(metrics.get("stage.lda.t1.runs"), 1);
    assert_eq!(metrics.get("stage.lda.t4.runs"), 1);
    if cores >= 4 {
        let speedup = serial_us as f64 / four_us as f64;
        assert!(
            speedup > 1.5,
            "LDA at 4 threads: {speedup:.2}x over serial ({serial_us}us vs {four_us}us)"
        );
    } else {
        eprintln!("skipping speedup assertion: only {cores} core(s) available");
    }
}
