//! The memory-budget tentpole: a campaign run under a hard byte ceiling
//! must degrade by spilling cold day-partitions to disk — never by
//! aborting — and still produce a campaign report byte-identical to the
//! unbudgeted run's.
//!
//! The composition matrix at the bottom is the acceptance gate: budget
//! enforcement × torn-write disk faults (on both the snapshot chain and
//! the spill files) × a kill at a day boundary with chain-recovery
//! resume, at 1, 2 and 8 worker threads — every combination must
//! converge on the same report bytes, and every detected torn spill
//! write must be ledgered.

use std::path::PathBuf;

use chatlens::core::budget::{load_spill_ledger, BudgetLimit, BudgetPolicy};
use chatlens::core::{
    recover_latest_state, resume_study_budgeted, run_study_budgeted,
    run_study_budgeted_checkpointed, run_study_days_budgeted, CampaignConfig, CheckpointPolicy,
};
use chatlens::simnet::fault::DiskFaultProfile;
use chatlens::{run_study_with, ScenarioConfig};

/// Same scale as the crash-storm and checkpoint suites: every pipeline
/// stage fires, runs stay CI-sized.
fn scenario() -> ScenarioConfig {
    ScenarioConfig::at_scale(0.002)
}

/// Per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chatlens-budget-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The unbudgeted reference report.
fn reference_report() -> String {
    run_study_with(scenario(), CampaignConfig::default()).campaign_report()
}

#[test]
fn min_mode_spills_everything_cold_and_reproduces_the_report() {
    let reference = reference_report();
    let dir = scratch("min");
    let budget = BudgetPolicy::new(BudgetLimit::Min, &dir);
    let run = run_study_budgeted(scenario(), CampaignConfig::default(), &budget)
        .expect("Min mode never refuses");
    assert_eq!(
        run.report, reference,
        "budgeted report must be byte-identical to the unbudgeted run's"
    );
    assert!(
        run.stats.partitions > 0 && run.stats.evictions > 0,
        "Min mode must actually evict cold partitions: {:?}",
        run.stats
    );
    assert!(
        run.stats.spilled_bytes > 0 && run.stats.faults >= run.stats.partitions,
        "streaming the report must fault every partition back: {:?}",
        run.stats
    );
    // Every spilled partition is on disk, named by day.
    for part in 0..run.stats.partitions {
        assert!(
            dir.join(format!("day{part:03}.part")).is_file(),
            "spill partition file for day {part} missing"
        );
    }
}

#[test]
fn a_byte_ceiling_below_the_unbounded_peak_holds_and_reproduces_the_report() {
    let reference = reference_report();

    // Probe the unbounded peak with a ceiling nothing can exceed.
    let probe_dir = scratch("probe");
    let probe = run_study_budgeted(
        scenario(),
        CampaignConfig::default(),
        &BudgetPolicy::new(BudgetLimit::Bytes(u64::MAX), &probe_dir),
    )
    .expect("an unreachable ceiling never refuses");
    assert_eq!(probe.stats.evictions, 0, "nothing to evict under u64::MAX");
    let peak = probe.stats.resident_peak;
    let floor = probe.stats.floor;
    assert!(peak > floor, "the campaign must accumulate above the floor");

    // A ceiling strictly below the unbounded peak forces spills.
    let limit = floor + (peak - floor) / 2;
    let dir = scratch("bytes");
    let run = run_study_budgeted(
        scenario(),
        CampaignConfig::default(),
        &BudgetPolicy::new(BudgetLimit::Bytes(limit), &dir),
    )
    .expect("spilling must satisfy this ceiling — refusal is a bug");
    assert_eq!(
        run.report, reference,
        "report must not depend on the budget"
    );
    assert!(
        run.stats.resident_peak <= limit,
        "budget.resident_peak {} exceeded the ceiling {}",
        run.stats.resident_peak,
        limit
    );
    assert!(run.stats.evictions > 0, "the ceiling must force evictions");
}

#[test]
fn a_ceiling_below_the_floor_is_a_typed_refusal() {
    let dir = scratch("floor");
    let err = run_study_budgeted(
        scenario(),
        CampaignConfig::default(),
        &BudgetPolicy::new(BudgetLimit::Bytes(1), &dir),
    )
    .expect_err("a 1-byte ceiling is below any floor");
    let msg = err.to_string();
    assert!(
        msg.contains("budget"),
        "refusal must be the typed budget error, got: {msg}"
    );
}

/// The composition matrix: `--mem-budget` × `--disk-fault torn` (both
/// the snapshot chain and the spill I/O ride the same fault-injected
/// filesystem) × a kill at the day-20 boundary with chain-recovery
/// resume — at 1, 2 and 8 worker threads. Every cell must converge on
/// the unbudgeted report's exact bytes, and every detected torn spill
/// write must appear in the spill ledger.
#[test]
fn budget_torn_kill_resume_matrix_converges_on_identical_reports() {
    let reference = reference_report();

    for threads in [1usize, 2, 8] {
        let campaign = CampaignConfig {
            threads,
            ..CampaignConfig::default()
        };

        // Uninterrupted budgeted run under torn spill I/O.
        let dir = scratch(&format!("torn-full-t{threads}"));
        let budget = BudgetPolicy {
            limit: BudgetLimit::Min,
            dir: dir.clone(),
            disk_fault: DiskFaultProfile::Torn,
        };
        let full = run_study_budgeted(scenario(), campaign, &budget)
            .expect("torn spill I/O is healed by verify-and-retry, never fatal");
        assert_eq!(
            full.report, reference,
            "torn spill I/O must not perturb the report (threads={threads})"
        );
        if full.stats.torn_detected > 0 {
            let ledger = load_spill_ledger(&dir);
            assert!(
                ledger.len() as u64 >= full.stats.torn_detected,
                "every detected torn spill write must be ledgered \
                 ({} detected, {} ledger entries)",
                full.stats.torn_detected,
                ledger.len()
            );
        }

        // Kill at the day-20 boundary, then chain-recover and resume
        // under the same budget — snapshots and spills both torn.
        let ckpt_dir = scratch(&format!("torn-kill-ckpt-t{threads}"));
        let spill_dir = scratch(&format!("torn-kill-spill-t{threads}"));
        let policy = CheckpointPolicy {
            dir: ckpt_dir.clone(),
            every_days: 1,
            on_drop: false,
            disk_fault: DiskFaultProfile::Torn,
        };
        let budget = BudgetPolicy {
            limit: BudgetLimit::Min,
            dir: spill_dir.clone(),
            disk_fault: DiskFaultProfile::Torn,
        };
        let halted = run_study_days_budgeted(scenario(), campaign, &policy, &budget, 20)
            .expect("halting a budgeted run at a boundary is clean");
        assert_eq!(halted, 20);
        let recovered = recover_latest_state(&policy, campaign.seed, Some(20))
            .expect("chain walk never hard-fails");
        let state = recovered
            .state
            .expect("some valid snapshot ancestor survives the torn profile");
        assert!(state.day <= 20);
        assert!(
            state.budget.is_some(),
            "a budgeted snapshot must carry the accountant's state"
        );
        let resumed = resume_study_budgeted(&state, &budget)
            .expect("resume under the same ceiling completes");
        assert_eq!(
            resumed.report, reference,
            "kill/resume under budget + torn faults must converge on the \
             unbudgeted report (threads={threads}, resumed from day {})",
            state.day
        );
    }
}

/// A budgeted, checkpointed, calm-disk campaign end to end: the ceiling
/// holds, the report matches, and the snapshot chain stays resumable.
#[test]
fn budgeted_checkpointed_run_reports_identically() {
    let reference = reference_report();
    let ckpt_dir = scratch("ckpt");
    let spill_dir = scratch("ckpt-spill");
    let policy = CheckpointPolicy {
        dir: ckpt_dir,
        every_days: 1,
        on_drop: false,
        disk_fault: DiskFaultProfile::Calm,
    };
    let budget = BudgetPolicy::new(BudgetLimit::Min, &spill_dir);
    let run =
        run_study_budgeted_checkpointed(scenario(), CampaignConfig::default(), &policy, &budget)
            .expect("calm budgeted checkpointed run completes");
    assert_eq!(run.report, reference);
    assert!(run.stats.partitions > 0);
}
