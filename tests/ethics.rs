//! The ethics protocol (§3.4), enforced structurally: no raw phone number
//! survives anywhere in a collected dataset.

use chatlens::{run_study, Dataset, ScenarioConfig};
use std::sync::OnceLock;

fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| run_study(ScenarioConfig::at_scale(0.005)))
}

fn is_sha256_hex(s: &str) -> bool {
    s.len() == 64 && s.chars().all(|c| c.is_ascii_hexdigit())
}

/// Sniff for E.164-looking strings (`+` followed by 8+ digits).
fn looks_like_phone(s: &str) -> bool {
    let Some(rest) = s.strip_prefix('+') else {
        return false;
    };
    rest.len() >= 8 && rest.bytes().all(|b| b.is_ascii_digit())
}

#[test]
fn pii_store_holds_only_hashes() {
    let ds = dataset();
    for h in ds
        .pii
        .wa_creator_hashes
        .iter()
        .chain(&ds.pii.wa_member_hashes)
        .chain(&ds.pii.tg_phone_hashes)
    {
        assert!(is_sha256_hex(h), "non-hash in PII store: {h:?}");
        assert!(!looks_like_phone(h));
    }
    assert!(!ds.pii.wa_creator_hashes.is_empty());
}

#[test]
fn member_records_hold_only_hashes() {
    let ds = dataset();
    let mut checked = 0;
    for jg in &ds.joined {
        for m in &jg.members {
            if let Some(h) = &m.phone_hash {
                assert!(is_sha256_hex(h));
                checked += 1;
            }
            // Country codes are two letters, never numbers.
            if let Some(c) = &m.country {
                assert_eq!(c.len(), 2, "country {c:?}");
                assert!(c.chars().all(|ch| ch.is_ascii_uppercase()));
            }
        }
    }
    assert!(checked > 50, "checked only {checked} phone records");
}

#[test]
fn no_phone_shaped_strings_anywhere() {
    // Scan every string the dataset retains.
    let ds = dataset();
    for (_, tl) in ds.timelines.iter() {
        if let Some(t) = &tl.title {
            assert!(!looks_like_phone(t));
        }
        if let Some(h) = &tl.wa_creator_hash {
            assert!(is_sha256_hex(h));
        }
        if let Some(cc) = &tl.wa_creator_cc {
            assert!(!looks_like_phone(cc));
        }
    }
    for g in &ds.groups {
        assert!(!looks_like_phone(&g.invite.code));
    }
}

#[test]
fn hashes_are_consistent_across_sources() {
    // A member who is also a creator hashes to the same value from both
    // collection paths (landing page vs member list): the union count is
    // at most the sum.
    let ds = dataset();
    let creators = ds.pii.wa_creator_hashes.len();
    let members = ds.pii.wa_member_hashes.len();
    let union = ds.pii.wa_total_phones();
    assert!(union <= creators + members);
    assert!(union >= creators.max(members));
    // Overlap exists: the creator of a joined group appears in its member
    // list and on its landing page.
    assert!(
        union < creators + members,
        "expected at least one creator to appear among joined members"
    );
}
