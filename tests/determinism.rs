//! Reproducibility guarantees: the same scenario yields bit-identical
//! results; different seeds yield different worlds; the campaign seed and
//! the world seed are independent knobs.

use chatlens::platforms::id::PlatformKind;
use chatlens::{run_study, run_study_with, CampaignConfig, ScenarioConfig};

fn scenario(seed: u64) -> ScenarioConfig {
    let mut c = ScenarioConfig::at_scale(0.005);
    c.seed = seed;
    c
}

#[test]
fn same_seed_same_dataset() {
    let a = run_study(scenario(1));
    let b = run_study(scenario(1));
    assert_eq!(a.totals(), b.totals());
    assert_eq!(a.tweets.len(), b.tweets.len());
    for (x, y) in a.tweets.iter().zip(&b.tweets).step_by(37) {
        assert_eq!(x.tweet, y.tweet);
        assert_eq!(x.seen_at, y.seen_at);
        assert_eq!(x.via_search, y.via_search);
    }
    assert_eq!(a.pii.wa_creator_hashes, b.pii.wa_creator_hashes);
    assert_eq!(a.pii.dc_linked_counts, b.pii.dc_linked_counts);
    for (x, y) in a.joined.iter().zip(&b.joined) {
        assert_eq!(x.key, y.key);
        assert_eq!(x.messages.len(), y.messages.len());
    }
}

#[test]
fn different_world_seeds_differ() {
    let a = run_study(scenario(1));
    let b = run_study(scenario(2));
    assert_ne!(
        a.pii.wa_creator_hashes, b.pii.wa_creator_hashes,
        "different worlds must have different users"
    );
    assert_ne!(a.totals().tweets, b.totals().tweets);
}

#[test]
fn campaign_seed_changes_collection_not_world() {
    // Re-collecting the same world with a different campaign seed joins a
    // different random sample of the same groups.
    let mk = |campaign_seed: u64| {
        run_study_with(
            scenario(7),
            CampaignConfig {
                seed: campaign_seed,
                ..CampaignConfig::default()
            },
        )
    };
    let a = mk(100);
    let b = mk(200);
    // The world is identical: same URLs discovered.
    assert_eq!(a.totals().group_urls, b.totals().group_urls);
    let keys_a: std::collections::BTreeSet<_> =
        a.groups.iter().map(|g| g.invite.dedup_key()).collect();
    let keys_b: std::collections::BTreeSet<_> =
        b.groups.iter().map(|g| g.invite.dedup_key()).collect();
    assert_eq!(keys_a, keys_b);
    // But the joined samples differ.
    let joined_a: std::collections::BTreeSet<_> = a.joined.iter().map(|j| j.key.clone()).collect();
    let joined_b: std::collections::BTreeSet<_> = b.joined.iter().map(|j| j.key.clone()).collect();
    assert_ne!(joined_a, joined_b);
}

#[test]
fn faultless_campaign_loses_nothing_to_transport() {
    let ds = run_study_with(
        scenario(3),
        CampaignConfig {
            faults: chatlens::simnet::fault::FaultInjector::none(),
            ..CampaignConfig::default()
        },
    );
    assert_eq!(ds.failed_requests, 0);
    for kind in PlatformKind::ALL {
        assert!(ds.summary(kind).group_urls > 0);
    }
}
