//! Cross-crate integration: one tiny campaign, the paper's qualitative
//! findings checked end-to-end through the public API.

use chatlens::analysis::{content, discovery, lifecycle, membership, messages, pii};
use chatlens::platforms::id::PlatformKind;
use chatlens::twitter::Lang;
use chatlens::{run_study, Dataset, ScenarioConfig};
use std::sync::OnceLock;

fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| run_study(ScenarioConfig::tiny()))
}

#[test]
fn finding_1_twitter_is_a_rich_source() {
    // Every platform yields a steady stream of new groups every day.
    let ds = dataset();
    for kind in PlatformKind::ALL {
        let d = discovery::daily_discovery(ds, kind);
        let days_with_new = d.new.iter().filter(|&&n| n > 0).count();
        assert!(
            days_with_new >= 30,
            "{kind}: new groups on only {days_with_new}/38 days"
        );
        assert!(ds.summary(kind).group_urls > 100, "{kind}");
    }
}

#[test]
fn finding_2_platform_content_differs() {
    // The tweet populations differ measurably across platforms: Telegram
    // is retweet- and hashtag-heavy, Discord skews Japanese.
    let ds = dataset();
    let wa = content::platform_features(ds, PlatformKind::WhatsApp);
    let tg = content::platform_features(ds, PlatformKind::Telegram);
    let dc = content::platform_features(ds, PlatformKind::Discord);
    assert!(tg.retweets > dc.retweets && dc.retweets > wa.retweets);
    assert!(tg.with_hashtag > wa.with_hashtag);
    let dc_ja = content::language_share(ds, PlatformKind::Discord, Lang::Ja);
    let wa_ja = content::language_share(ds, PlatformKind::WhatsApp, Lang::Ja);
    assert!(dc_ja > 0.10 && dc_ja > 3.0 * wa_ja.max(1e-9));
}

#[test]
fn finding_3_group_urls_are_ephemeral() {
    let ds = dataset();
    let wa = lifecycle::revocation_stats(ds, PlatformKind::WhatsApp);
    let tg = lifecycle::revocation_stats(ds, PlatformKind::Telegram);
    let dc = lifecycle::revocation_stats(ds, PlatformKind::Discord);
    // Paper finding 3: 27% / 20.4% / 68.4% become inaccessible.
    assert!(dc.revoked_fraction > 0.5, "DC {}", dc.revoked_fraction);
    assert!(wa.revoked_fraction > tg.revoked_fraction);
    assert!(wa.revoked_fraction < 0.45 && tg.revoked_fraction < 0.35);
    // Discord's deaths happen almost entirely before the first check.
    assert!(dc.dead_on_arrival_fraction / dc.revoked_fraction > 0.75);
}

#[test]
fn finding_4_pii_exposure_hierarchy() {
    let ds = dataset();
    let [wa, tg, dc] = pii::exposure_table(ds);
    // WhatsApp: every observed user's phone is exposed.
    assert_eq!(wa.phone_rate, Some(1.0));
    assert!(wa.phones.unwrap() as f64 >= wa.users_observed as f64 * 0.95);
    // Telegram: a sliver opted in.
    assert!(tg.phone_rate.unwrap() < 0.03);
    // Discord: no phones, but ~30% linked accounts.
    assert_eq!(dc.phones, None);
    assert!((dc.link_rate.unwrap() - 0.30).abs() < 0.12);
}

#[test]
fn whatsapp_limits_shape_everything() {
    // The 257-member cap explains three separate observations: small
    // groups, fresh sharing, multi-group creators.
    let ds = dataset();
    let sizes = membership::member_counts(ds, PlatformKind::WhatsApp);
    assert!(sizes.max().unwrap() <= 257.0);
    let stale = lifecycle::staleness_days(ds, PlatformKind::WhatsApp);
    assert!(stale.fraction_at_most(0.0) > 0.55, "shared fresh");
    let creators = membership::creators(ds, PlatformKind::WhatsApp);
    assert!(
        creators.single_group_share < 1.0,
        "some creators run multiple groups to beat the cap"
    );
}

#[test]
fn message_collection_respects_platform_semantics() {
    let ds = dataset();
    // WhatsApp history must start at/after the join date.
    for jg in ds.joined_of(PlatformKind::WhatsApp) {
        for m in &jg.messages {
            assert!(m.at >= jg.joined_at, "pre-join WhatsApp message leaked");
        }
    }
    // API platforms return history since creation: some messages predate
    // the join.
    let mut pre_join = 0;
    for kind in [PlatformKind::Telegram, PlatformKind::Discord] {
        for jg in ds.joined_of(kind) {
            pre_join += jg.messages.iter().filter(|m| m.at < jg.joined_at).count();
        }
    }
    assert!(
        pre_join > 0,
        "full history should include pre-join messages"
    );
}

#[test]
fn telegram_member_lists_mostly_hidden() {
    let ds = dataset();
    let joined: Vec<_> = ds.joined_of(PlatformKind::Telegram).collect();
    let visible = joined.iter().filter(|j| j.member_list_available).count();
    // §3.3: member lists visible in 24 of 100 joined chats.
    let rate = visible as f64 / joined.len().max(1) as f64;
    assert!(rate < 0.5, "visible member lists: {rate}");
    // WhatsApp always shows members.
    assert!(ds
        .joined_of(PlatformKind::WhatsApp)
        .all(|j| j.member_list_available));
    // Discord never does (profiles come from senders).
    assert!(ds
        .joined_of(PlatformKind::Discord)
        .all(|j| !j.member_list_available));
}

#[test]
fn activity_analyses_are_consistent() {
    let ds = dataset();
    for kind in PlatformKind::ALL {
        let shares = messages::kind_shares(ds, kind);
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9, "{kind}");
        let ua = messages::user_activity(ds, kind);
        let total_msgs: u64 = ds.joined_of(kind).map(|j| j.messages.len() as u64).sum();
        let sum_volumes: f64 = ua.volumes.mean().unwrap_or(0.0) * ua.senders as f64;
        assert!(
            (sum_volumes - total_msgs as f64).abs() < 1.0,
            "{kind}: per-user volumes must sum to the message count"
        );
    }
}
