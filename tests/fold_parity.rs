//! Incremental == batch parity suite for the analysis folds (PR 8's
//! correctness lock, extending the PR 6 golden-output contract).
//!
//! For every fault/corruption profile the golden suite covers (calm,
//! bursty, hostile), this suite asserts that each analysis fold's
//! rendered report fragment is **byte-identical** to the batch
//! computation over the final dataset:
//!
//! - at 1, 2 and 8 worker threads (both the campaign's thread knob and
//!   the fold driver's finish pool), and
//! - across a kill/resume: an incrementally-checkpointed run is cut at a
//!   mid-campaign snapshot, the folds are restored from the snapshot's
//!   ledger (no raw-history replay), and the resumed run must land on
//!   the same bytes.
//!
//! The datasets themselves are also asserted equal, so the fold plumbing
//! provably does not perturb the collection pipeline.

use chatlens::analysis::{batch_fragments, standard_folds};
use chatlens::checkpoint::load_from_file;
use chatlens::core::{
    resume_study_folded, run_study_folded, run_study_folded_checkpointed, run_study_with,
    CampaignState, CheckpointPolicy, FoldDriver,
};
use chatlens::simnet::fault::{CorruptionProfile, FaultProfile};
use chatlens::simnet::par::Pool;
use chatlens::{CampaignConfig, Dataset, ScenarioConfig};

/// Same scale as the golden suite: all three platforms discover, join
/// and revoke, small enough for profiles × thread counts in CI.
const SCALE: f64 = 0.002;

const PROFILES: [&str; 3] = ["calm", "bursty", "hostile"];

fn campaign_for(profile: &str, threads: usize) -> CampaignConfig {
    let base = match profile {
        "calm" => CampaignConfig::default(),
        "bursty" => CampaignConfig {
            profile: FaultProfile::Bursty,
            ..CampaignConfig::default()
        },
        "hostile" => CampaignConfig {
            corruption: CorruptionProfile::Hostile,
            ..CampaignConfig::default()
        },
        other => panic!("unknown profile {other:?}"),
    };
    CampaignConfig { threads, ..base }
}

/// The batch reference: final dataset plus every batch fragment.
fn batch_reference(profile: &str) -> (Dataset, Vec<(&'static str, String)>) {
    let ds = run_study_with(ScenarioConfig::at_scale(SCALE), campaign_for(profile, 1));
    let pool = Pool::new(1);
    let fragments = batch_fragments(&ds, &pool);
    (ds, fragments)
}

fn assert_fragments_match(
    profile: &str,
    context: &str,
    batch: &[(&'static str, String)],
    outcome: &chatlens::core::FoldOutcome,
) {
    assert_eq!(
        batch.len(),
        outcome.fragments.len(),
        "{profile}/{context}: fold registry drifted from batch registry"
    );
    for (name, expected) in batch {
        let actual = outcome
            .fragment(name)
            .unwrap_or_else(|| panic!("{profile}/{context}: fold {name} missing"));
        if expected != actual {
            for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
                assert_eq!(
                    e,
                    a,
                    "{profile}/{context}: fold {name} diverged from batch at line {}",
                    i + 1
                );
            }
            panic!(
                "{profile}/{context}: fold {name} diverged from batch in length: {} vs {} bytes",
                expected.len(),
                actual.len()
            );
        }
    }
}

/// Incremental folds reproduce the batch bytes at 1, 2 and 8 threads for
/// every profile, and the folded run's dataset equals the batch run's.
#[test]
fn incremental_matches_batch_across_profiles_and_threads() {
    for profile in PROFILES {
        let (batch_ds, batch) = batch_reference(profile);
        for threads in [1usize, 2, 8] {
            let mut driver = FoldDriver::new(standard_folds(), threads);
            let ds = run_study_folded(
                ScenarioConfig::at_scale(SCALE),
                campaign_for(profile, threads),
                &mut driver,
            );
            assert_eq!(
                ds.campaign_report(),
                batch_ds.campaign_report(),
                "{profile}@{threads}: folded run perturbed the dataset"
            );
            let outcome = driver.finish();
            assert_eq!(outcome.days_folded, ds.window.num_days() as u32);
            assert_fragments_match(profile, &format!("threads={threads}"), &batch, &outcome);
        }
    }
}

/// Kill an incrementally-checkpointed run at a mid-campaign snapshot,
/// restore the folds from the snapshot's ledger, resume, and land on the
/// batch bytes — no raw-history replay anywhere.
#[test]
fn incremental_survives_kill_and_resume() {
    for profile in PROFILES {
        let (batch_ds, batch) = batch_reference(profile);
        let dir = std::env::temp_dir().join(format!(
            "chatlens-fold-parity-{profile}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let policy = CheckpointPolicy::daily(dir.clone());

        // The "killed" first attempt: full run, snapshots daily.
        let mut driver = FoldDriver::new(standard_folds(), 1);
        run_study_folded_checkpointed(
            ScenarioConfig::at_scale(SCALE),
            campaign_for(profile, 1),
            &policy,
            &mut driver,
        )
        .expect("checkpointed folded run completes");

        // Resume from a mid-campaign snapshot with a *fresh* driver:
        // everything it knows about days 0..=17 must come from the
        // snapshot's fold ledger.
        let mid = policy.snapshot_path(17);
        assert!(mid.exists(), "{profile}: day-17 snapshot missing");
        let state: CampaignState = load_from_file(&mid).expect("mid-campaign snapshot loads");
        let mut resumed = FoldDriver::new(standard_folds(), 1);
        let ds = resume_study_folded(&state, &mut resumed);
        assert_eq!(
            ds.campaign_report(),
            batch_ds.campaign_report(),
            "{profile}: resumed folded run perturbed the dataset"
        );
        let outcome = resumed.finish();
        assert_fragments_match(profile, "kill/resume", &batch, &outcome);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
