//! Byzantine-payload hardening: the collectors must survive arbitrary
//! in-flight body corruption — no panic, no corrupted datum in any
//! analysis table, every rejection quarantined with provenance — and a
//! hostile campaign must stay bit-identical across thread counts and
//! across a day-boundary kill/resume.

use chatlens::core::quarantine::{QuarantineCode, QuarantineEntry};
use chatlens::core::{audit_dataset, CoreError};
use chatlens::platforms::invite::parse_invite_url;
use chatlens::platforms::phone::parse_e164;
use chatlens::platforms::service::parse_message;
use chatlens::platforms::wire::WireDoc;
use chatlens::simnet::fault::{CorruptionProfile, CorruptionSchedule};
use chatlens::simnet::rng::Rng;
use chatlens::simnet::transport::Request;
use chatlens::twitter::Tweet;
use chatlens::{run_study_with, CampaignConfig, ScenarioConfig};

/// Render a realistic service body: one of the document shapes the
/// simulated platforms actually serve, with RNG-driven content.
fn realistic_body(rng: &mut Rng) -> String {
    match rng.index(4) {
        0 => {
            let mut doc = WireDoc::new("tw-search").field("query", "chat.whatsapp.com");
            for i in 0..rng.index(6) {
                doc = doc.field("tweet", format!("{}|{}|text {i}", rng.index(1 << 20), i));
            }
            doc.render()
        }
        1 => WireDoc::new("wa-landing")
            .field("code", format!("INV{}", rng.index(100_000)))
            .field("size", rng.index(257))
            .field("title", "Group Chat")
            .render(),
        2 => {
            let mut doc = WireDoc::new("tg-history").field("group", rng.index(10_000));
            for _ in 0..rng.index(8) {
                doc = doc.field(
                    "msg",
                    format!("{}|{}|text", rng.index(1 << 30), rng.index(500)),
                );
            }
            doc.render()
        }
        _ => WireDoc::new("dc-invite")
            .field("code", format!("dG{}", rng.index(100_000)))
            .field("approximate_member_count", rng.index(5_000))
            .field("online", rng.index(500))
            .render(),
    }
}

/// 10 000 deterministically corrupted bodies through every parse entry
/// point in the workspace. The contract: nothing panics, every rejection
/// is a *typed* error that classifies into a quarantine code, and a
/// provenance-tagged [`QuarantineEntry`] can be filed for it.
#[test]
fn ten_thousand_corrupted_bodies_never_panic() {
    let schedule = CorruptionSchedule::new(1.0);
    let mut rng = Rng::new(0x00B1_2A27_2026);
    let mut prev_ok: Option<String> = None;
    let (mut rejected, mut survived) = (0u32, 0u32);
    for day in 0..10_000u32 {
        let clean = realistic_body(&mut rng);
        let (body, _kind) = schedule.corrupt_body(&clean, prev_ok.as_deref(), &mut rng);
        // Every parse entry point must return, not unwind.
        let _ = WireDoc::parse(&body);
        let _ = Tweet::decode(&body);
        let _ = parse_message(&body);
        let _ = parse_invite_url(&body);
        let _ = parse_e164(&body);
        match WireDoc::parse_as(&body, "tw-search") {
            Ok(_) => survived += 1,
            Err(err) => {
                rejected += 1;
                // A rejection carries everything the quarantine ledger
                // needs: a typed code and full provenance.
                let core_err = CoreError::Wire(err);
                assert!(!QuarantineCode::of(&core_err).label().is_empty());
                let req = Request::new("twitter/search").with("page", "1");
                let entry = QuarantineEntry::new("twitter", &req, "", day % 38, &core_err, &body);
                assert_eq!(entry.service, "twitter");
                assert!(entry.endpoint.starts_with("twitter/search?"));
                assert!(!entry.detail.is_empty());
                assert!(entry.body.len() <= chatlens::core::quarantine::MAX_QUARANTINED_BODY);
            }
        }
        prev_ok = Some(clean);
    }
    // The mutation kinds are damaging by construction, but a truncated or
    // key-dropped document can still scan — both branches must be live.
    assert!(rejected > 5_000, "only {rejected} of 10000 rejected");
    assert!(survived > 0, "no corrupted body survived parsing");
}

/// The zero-copy borrowing parser and the owning parser agree on every
/// one of the 10 000 corrupted bodies: same accept/reject decision, the
/// exact same typed error (hence the same quarantine code), and
/// field-for-field identical content on acceptance. Borrowed slices are
/// exercised *after* further corruption-RNG work touches other buffers,
/// so a dangling-slice bug would surface as garbage content here.
#[test]
fn borrowing_parser_matches_owning_parser_on_corrupted_bodies() {
    let schedule = CorruptionSchedule::new(1.0);
    let mut rng = Rng::new(0x00B1_2A27_2026);
    let mut prev_ok: Option<String> = None;
    let mut agreed_ok = 0u32;
    for _ in 0..10_000u32 {
        let clean = realistic_body(&mut rng);
        let (body, _kind) = schedule.corrupt_body(&clean, prev_ok.as_deref(), &mut rng);
        match (WireDoc::parse(&body), WireDoc::parse_owned(&body)) {
            (Ok(view), Ok(doc)) => {
                assert!(view == doc, "borrowed and owned parses disagree");
                assert_eq!(view.kind, doc.kind);
                assert_eq!(view.len(), doc.len());
                agreed_ok += 1;
            }
            (Err(a), Err(b)) => {
                let (code_a, code_b) = (
                    QuarantineCode::of(&CoreError::Wire(a.clone())),
                    QuarantineCode::of(&CoreError::Wire(b.clone())),
                );
                assert_eq!(a, b, "borrowed and owned parse errors disagree");
                assert_eq!(code_a, code_b, "quarantine codes disagree");
            }
            (view, owned) => {
                panic!("parsers disagree on accept/reject: borrowed={view:?} owned={owned:?}")
            }
        }
        prev_ok = Some(clean);
    }
    assert!(agreed_ok > 0, "no body parsed under both parsers");
}

fn hostile_campaign() -> CampaignConfig {
    CampaignConfig {
        corruption: CorruptionProfile::Hostile,
        ..CampaignConfig::default()
    }
}

/// End-to-end accounting under hostile corruption: the campaign
/// completes, every rejected body is in the quarantine ledger with
/// provenance, the ledger agrees with the transport's corruption
/// counter, and the dataset passes the full invariant audit.
#[test]
fn hostile_run_quarantines_every_rejected_body() {
    let ds = run_study_with(ScenarioConfig::at_scale(0.002), hostile_campaign());
    let corrupted = ds.metrics.get("transport.corrupted");
    assert!(corrupted > 0, "hostile corruption must actually bite");
    assert!(!ds.quarantine.is_empty());
    assert_eq!(
        ds.metrics.get("quarantine.entries"),
        ds.quarantine.len() as u64
    );
    let num_days = 38u32;
    for e in &ds.quarantine {
        assert!(
            ["twitter", "whatsapp", "telegram", "discord"].contains(&e.service.as_str()),
            "unknown service {:?}",
            e.service
        );
        assert!(!e.endpoint.is_empty(), "entry without an endpoint");
        assert!(e.day < num_days, "day {} outside the window", e.day);
        assert!(!e.detail.is_empty(), "entry without an error detail");
    }
    // Collectors re-fetch once per rejection, so the ledger can exceed
    // the corruption count only via unlucky double corruption — never
    // the other way: every ledger entry traces to a corrupted body.
    assert!(ds.quarantine.len() as u64 <= 2 * corrupted);
    // The hardening contract: nothing corrupted reached a table.
    let violations = audit_dataset(&ds);
    assert!(violations.is_empty(), "audit found: {:?}", violations);
}

/// A hostile campaign is a pure function of (seed, config): bit-identical
/// at 1, 2 and 8 worker threads, and across a kill at a day boundary
/// followed by a resume — quarantine ledger and corruption RNG included.
#[test]
fn hostile_run_is_bit_identical_across_threads_and_resume() {
    use chatlens::checkpoint::load_from_file;
    use chatlens::core::{resume_study, run_study_checkpointed, CampaignState, CheckpointPolicy};
    let small = ScenarioConfig::at_scale(0.002);
    let mut reference = run_study_with(small.clone(), hostile_campaign());
    reference.metrics.strip_wall_clock();
    assert!(reference.metrics.get("transport.corrupted") > 0);

    for threads in [2usize, 8] {
        let mut ds = run_study_with(
            small.clone(),
            CampaignConfig {
                threads,
                ..hostile_campaign()
            },
        );
        ds.metrics.strip_wall_clock();
        assert_eq!(ds, reference, "hostile run at {threads} thread(s) diverged");
    }

    let dir = std::env::temp_dir().join(format!("chatlens-hostile-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    run_study_checkpointed(
        small,
        hostile_campaign(),
        &CheckpointPolicy::daily(dir.clone()),
    )
    .expect("snapshots save");
    for threads in [1usize, 2, 8] {
        let mut state: CampaignState =
            load_from_file(&dir.join("day019.ckpt")).expect("snapshot loads");
        state.campaign.threads = threads;
        let mut resumed = resume_study(&state);
        resumed.metrics.strip_wall_clock();
        assert_eq!(
            resumed, reference,
            "hostile resume at {threads} thread(s) diverged"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
