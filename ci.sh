#!/usr/bin/env bash
# CI gate: formatting, lints, and the full test suite under both the
# serial and the 8-thread parallel runtime. The parallel runtime is
# deterministic by construction (see DESIGN.md "Parallelism &
# determinism"), so every exact-value assertion in the suite must pass
# identically at any thread count.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Documentation is part of the contract: every public item documented
# (deny(missing_docs) in the crates) and every intra-doc link resolving.
echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

# Hard gate: the determinism & concurrency static-analysis pass must be
# clean before the test matrix runs (rule catalog in DESIGN.md
# "Determinism lint"; exits nonzero on any finding). The pass also has
# a perf budget — a full workspace scan must finish inside 5 seconds —
# and its machine-readable report (target/lint.json, schema
# chatlens-lint/v1) must validate and be byte-stable across runs.
echo "==> chatlens-lint (repro lint)"
cargo test -q -p chatlens-lint
cargo build -q --bin repro
LINT_T0=$(date +%s%N)
cargo run -q --bin repro -- lint --out target/lint.json
LINT_T1=$(date +%s%N)
LINT_MS=$(( (LINT_T1 - LINT_T0) / 1000000 ))
echo "    lint pass: ${LINT_MS}ms"
if [ "$LINT_MS" -gt 5000 ]; then
    echo "FAIL: lint pass took ${LINT_MS}ms (budget 5000ms)" >&2
    exit 1
fi
cargo run -q --bin repro -- lint --validate target/lint.json
cargo run -q --bin repro -- lint --out target/lint2.json
cmp target/lint.json target/lint2.json \
    || { echo "FAIL: lint.json not byte-stable across runs" >&2; exit 1; }
rm -f target/lint2.json

# Resilience smoke: a whole campaign under the bursty (Gilbert–Elliott)
# fault profile must complete and report its totals — the storm may cost
# coverage (recorded in the gap ledger), never the run.
echo "==> bursty fault-profile smoke (repro run)"
cargo run -q --bin repro -- --scale 0.005 --fault-profile bursty run

# Byzantine smoke: a campaign under hostile wire corruption (20% of
# bodies mutated in flight) must complete with every rejected body in
# the quarantine ledger, its checkpoints must carry snapshot format v6
# (canonical varints + fold ledger + budget accountant state), and the
# dataset invariant auditor must find nothing to report.
echo "==> hostile corruption smoke (repro run + audit)"
CKPT_DIR="$(mktemp -d)"
trap 'rm -rf "$CKPT_DIR"' EXIT
cargo run -q --bin repro -- --scale 0.005 --corruption hostile \
    --checkpoint-dir "$CKPT_DIR" run
LAST_CKPT="$(ls "$CKPT_DIR"/day*.ckpt | sort | tail -1)"
cargo run -q --bin repro -- checkpoint inspect "$LAST_CKPT" \
    | grep -q '"format_version":6'
cargo run -q --bin repro -- audit "$LAST_CKPT"

# Incremental-parity smoke: the folded analysis pipeline must complete a
# checkpointed campaign, its snapshots must carry all 8 fold ledgers,
# and resuming from a mid-campaign snapshot must reproduce the same
# fragment digests as the uninterrupted run (the full byte-level parity
# matrix lives in tests/fold_parity.rs).
echo "==> incremental analysis smoke (repro run --analysis incremental)"
INC_DIR="$(mktemp -d)"
trap 'rm -rf "$CKPT_DIR" "$INC_DIR"' EXIT
cargo run -q --bin repro -- --scale 0.005 --analysis incremental \
    --checkpoint-dir "$INC_DIR" run | tee "$INC_DIR/first.out"
MID_CKPT="$INC_DIR/day020.ckpt"
cargo run -q --bin repro -- checkpoint inspect "$MID_CKPT" \
    | grep -q '"folds":8'
cargo run -q --bin repro -- --analysis incremental --resume "$MID_CKPT" run \
    | tee "$INC_DIR/resumed.out"
fold_digests() {
    # Fold-summary rows: "<name>  <state>  <fold µs>  <finish µs>  <digest>".
    # Timing columns are wall-clock; only name + digest must reproduce.
    grep -E '^(discovery|content|membership|lifecycle|messages|pii|topics|stats) ' "$1" \
        | awk '{print $1, $NF}'
}
diff <(fold_digests "$INC_DIR/first.out") <(fold_digests "$INC_DIR/resumed.out") \
    || { echo "FAIL: resumed fold fragment digests diverge" >&2; exit 1; }

# Torn-write crash-storm smoke: run a checkpointed campaign under the
# torn disk-fault profile (25% of saves silently lose their rename, 10%
# land truncated, reads see bit-rot), kill it mid-campaign, verify the
# damaged chain, then resume — chain recovery must walk back past the
# damage and the final report must be byte-identical to the fault-free
# golden run (the full every-boundary matrix lives in
# tests/crash_storm.rs).
echo "==> torn-write crash-storm smoke (repro run --disk-fault torn)"
TORN_DIR="$(mktemp -d)"
trap 'rm -rf "$CKPT_DIR" "$INC_DIR" "$TORN_DIR"' EXIT
cargo run -q --bin repro -- --scale 0.005 run > "$TORN_DIR/golden.out"
cargo run -q --bin repro -- --scale 0.005 --disk-fault torn \
    --checkpoint-dir "$TORN_DIR/chain" --halt-after-day 20 run
cargo run -q --bin repro -- checkpoint verify --all "$TORN_DIR/chain"
cargo run -q --bin repro -- --scale 0.005 --disk-fault torn \
    --resume "$TORN_DIR/chain" run > "$TORN_DIR/resumed.out"
cmp "$TORN_DIR/golden.out" "$TORN_DIR/resumed.out" \
    || { echo "FAIL: torn-profile resume diverges from the fault-free run" >&2; exit 1; }

# Memory-budget smoke: a campaign under a hard byte ceiling (Min mode —
# everything cold spills) must complete without aborting, and its report
# must be byte-identical to the unbudgeted run's. The full composition
# matrix (budget × torn spills × kill/resume × threads) lives in
# tests/budget.rs.
echo "==> memory-budget smoke (repro run --mem-budget min)"
MEM_DIR="$(mktemp -d)"
trap 'rm -rf "$CKPT_DIR" "$INC_DIR" "$TORN_DIR" "$MEM_DIR"' EXIT
cargo run -q --bin repro -- --scale 0.005 run \
    --report-out "$MEM_DIR/unbounded.report"
cargo run -q --bin repro -- --scale 0.005 --mem-budget min \
    --spill-dir "$MEM_DIR/spill" run --report-out "$MEM_DIR/budgeted.report"
cmp "$MEM_DIR/unbounded.report" "$MEM_DIR/budgeted.report" \
    || { echo "FAIL: budgeted report diverges from the unbounded run" >&2; exit 1; }

echo "==> cargo test (threads=1)"
CHATLENS_THREADS=1 cargo test -q --workspace

echo "==> cargo test (threads=8)"
CHATLENS_THREADS=8 cargo test -q --workspace

echo "==> bench timing record (BENCH_par.json)"
cargo bench -p chatlens-bench --bench par

# Hot-path regression gate: re-measure the campaign's per-stage
# wall-clock and fail on any stage >25% slower than the committed
# BENCH_hotpath.json baseline. After an intentional perf change (or on
# a machine with a different clock base), refresh with
#   BENCH_HOTPATH_UPDATE=1 cargo run --release -p chatlens-bench
# and commit the rewritten baseline.
echo "==> hot-path regression gate (BENCH_hotpath.json)"
cargo run --release -p chatlens-bench

# Fold regression gate: report-stage latency (batch render vs folded
# finish), per-day fold cost, and peak encoded fold-state bytes against
# the committed BENCH_fold.json baseline. Refresh intentional changes
# with BENCH_FOLD_UPDATE=1 (same contract as the hotpath knob).
echo "==> fold regression gate (BENCH_fold.json)"
cargo run --release -p chatlens-bench --bin fold

# Memory-accounting regression gate: peak accounted resident bytes and
# spill/fault counts at the paper and 10x stand-in scales against the
# committed BENCH_mem.json baseline. Every entry is deterministic (byte
# and partition counts, not wall-clock); >25% growth fails. Refresh
# intentional changes with BENCH_MEM_UPDATE=1 (same contract as the
# hotpath knob).
echo "==> memory-budget regression gate (BENCH_mem.json)"
cargo run --release -p chatlens-bench --bin mem

echo "CI green."
