//! In-group messages.
//!
//! §5 ("Group messages") analyses 8.25 M messages by **type** (text, image,
//! video, audio, sticker, document, contact, location — plus Telegram's
//! "service" messages), by per-group daily volume, and by per-user volume.
//! Messages here carry exactly the attributes those analyses need; message
//! *text* is not modelled (the paper never analyses in-group text, only
//! tweet text).

use crate::id::UserId;
use chatlens_simnet::time::SimTime;

/// The content type of a message (Fig 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MessageKind {
    /// Plain text.
    Text,
    /// Image attachment.
    Image,
    /// Video attachment.
    Video,
    /// Audio clip (includes WhatsApp voice notes).
    Audio,
    /// Sticker (an image subtype with its own ecosystem on WhatsApp).
    Sticker,
    /// Document attachment.
    Document,
    /// Shared contact card.
    Contact,
    /// Shared location.
    Location,
    /// Service message (member joined/left, group info edited) — Telegram
    /// reports these through its API ("other" in Fig 8).
    Service,
}

impl MessageKind {
    /// All kinds in Fig 8's display order.
    pub const ALL: [MessageKind; 9] = [
        MessageKind::Text,
        MessageKind::Image,
        MessageKind::Video,
        MessageKind::Audio,
        MessageKind::Sticker,
        MessageKind::Document,
        MessageKind::Contact,
        MessageKind::Location,
        MessageKind::Service,
    ];

    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            MessageKind::Text => "text",
            MessageKind::Image => "image",
            MessageKind::Video => "video",
            MessageKind::Audio => "audio",
            MessageKind::Sticker => "sticker",
            MessageKind::Document => "document",
            MessageKind::Contact => "contact",
            MessageKind::Location => "location",
            MessageKind::Service => "other",
        }
    }

    /// Whether this is a multimedia type (image/video/audio/sticker) — the
    /// paper notes WhatsApp has >20% multimedia messages.
    pub fn is_multimedia(self) -> bool {
        matches!(
            self,
            MessageKind::Image | MessageKind::Video | MessageKind::Audio | MessageKind::Sticker
        )
    }

    /// Stable index into [`MessageKind::ALL`].
    pub fn index(self) -> usize {
        MessageKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("kind present in ALL")
    }

    /// Inverse of [`MessageKind::index`].
    ///
    /// # Panics
    /// Panics if `i >= 9`.
    pub fn from_index(i: usize) -> MessageKind {
        MessageKind::ALL[i]
    }
}

/// One message in a group, as exposed to the collector after joining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// The member who sent it (`Service` messages use the affected member).
    pub sender: UserId,
    /// When it was posted.
    pub at: SimTime,
    /// Content type.
    pub kind: MessageKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, k) in MessageKind::ALL.into_iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(MessageKind::from_index(i), k);
        }
    }

    #[test]
    fn multimedia_classification() {
        assert!(MessageKind::Image.is_multimedia());
        assert!(MessageKind::Sticker.is_multimedia());
        assert!(MessageKind::Audio.is_multimedia());
        assert!(MessageKind::Video.is_multimedia());
        assert!(!MessageKind::Text.is_multimedia());
        assert!(!MessageKind::Document.is_multimedia());
        assert!(!MessageKind::Service.is_multimedia());
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<_> = MessageKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 9);
    }
}
