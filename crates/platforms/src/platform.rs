//! The platform state container: users, groups, invite index, and the
//! join rules each platform enforces on collector accounts.

use crate::group::{Group, GroupHistory};
use crate::id::{AccountId, GroupId, PlatformKind, UserId};
use crate::spec::PlatformSpec;
use crate::user::User;
use chatlens_simnet::fault::{TokenBucket, TokenBucketState};
use chatlens_simnet::time::SimTime;
use std::collections::HashMap;
use std::fmt;

/// Why a join attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinError {
    /// No group with this invite code ever existed.
    UnknownCode,
    /// The invite was revoked or expired before the attempt.
    Revoked,
    /// The account hit the platform's join limit and is now banned
    /// (WhatsApp: ~250–300 groups; Discord: 100 servers — §3.2).
    LimitExceeded,
    /// The account was previously banned.
    Banned,
    /// Bots cannot join Discord servers by themselves (§3.3).
    BotsNotAllowed,
    /// Unknown account id.
    UnknownAccount,
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinError::UnknownCode => "unknown invite code",
            JoinError::Revoked => "invite revoked or expired",
            JoinError::LimitExceeded => "join limit exceeded; account banned",
            JoinError::Banned => "account banned",
            JoinError::BotsNotAllowed => "bots cannot join by themselves",
            JoinError::UnknownAccount => "unknown account",
        };
        f.write_str(s)
    }
}

impl std::error::Error for JoinError {}

/// A collector-side account's standing on the platform.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccountState {
    /// Groups joined, with join instants (WhatsApp reveals messages only
    /// from the join date onward, so the instant matters).
    pub joined: Vec<(GroupId, SimTime)>,
    /// Whether the platform banned the account (exceeded join limit).
    pub banned: bool,
}

impl AccountState {
    /// The join instant for `group`, if this account is a member.
    pub fn joined_at(&self, group: GroupId) -> Option<SimTime> {
        self.joined
            .iter()
            .find(|(g, _)| *g == group)
            .map(|&(_, t)| t)
    }
}

/// One simulated messaging platform: its user and group population plus the
/// state of the collector's accounts on it.
pub struct Platform {
    /// Which platform this is.
    pub kind: PlatformKind,
    /// Static characteristics (Table 1).
    pub spec: PlatformSpec,
    /// All users, indexed by [`UserId`].
    pub users: Vec<User>,
    /// All groups, indexed by [`GroupId`].
    pub groups: Vec<Group>,
    invite_index: HashMap<String, GroupId>,
    accounts: Vec<AccountState>,
    /// Telegram's API flood control (`FLOOD_WAIT`): a server-side token
    /// bucket gating `api/*` endpoints. `None` on platforms whose APIs the
    /// collector is not flood-limited on in the paper.
    pub(crate) api_bucket: Option<TokenBucket>,
    /// Groups whose history was installed, in installation order. History
    /// materialization allocates fresh user ids from the platform-wide
    /// counter, so a checkpoint restore must replay installs in this exact
    /// order to reproduce the same id assignment.
    materialized: Vec<GroupId>,
}

impl Platform {
    /// An empty platform of the given kind.
    pub fn new(kind: PlatformKind) -> Platform {
        // Telegram's API is rate-limited aggressively enough that the paper
        // cites it as the reason they joined only 100 groups (§8): model a
        // sustained 2 req/s with a burst of 40.
        let api_bucket =
            (kind == PlatformKind::Telegram).then(|| TokenBucket::new(40.0, 2.0, SimTime::EPOCH));
        Platform {
            kind,
            spec: PlatformSpec::of(kind),
            users: Vec::new(),
            groups: Vec::new(),
            invite_index: HashMap::new(),
            accounts: Vec::new(),
            api_bucket,
            materialized: Vec::new(),
        }
    }

    /// Register a user; the platform assigns and returns its id.
    pub fn push_user(&mut self, mut user: User) -> UserId {
        let id = UserId(self.users.len() as u32);
        user.id = id;
        debug_assert_eq!(user.platform, self.kind);
        self.users.push(user);
        id
    }

    /// Register a group; the platform assigns its id and indexes the
    /// invite code.
    ///
    /// # Panics
    /// Panics if the group's invite code collides with an existing one —
    /// the workload generator must call [`Platform::invite_taken`] first
    /// and regenerate.
    pub fn push_group(&mut self, mut group: Group) -> GroupId {
        let id = GroupId(self.groups.len() as u32);
        group.id = id;
        debug_assert_eq!(group.platform, self.kind);
        let prev = self.invite_index.insert(group.invite.code.clone(), id);
        assert!(
            prev.is_none(),
            "invite code collision: {}",
            group.invite.code
        );
        self.groups.push(group);
        id
    }

    /// Whether an invite code is already allocated.
    pub fn invite_taken(&self, code: &str) -> bool {
        self.invite_index.contains_key(code)
    }

    /// Resolve an invite code to its group.
    pub fn find_by_code(&self, code: &str) -> Option<GroupId> {
        self.invite_index.get(code).copied()
    }

    /// Borrow a group.
    pub fn group(&self, id: GroupId) -> &Group {
        &self.groups[id.0 as usize]
    }

    /// Mutably borrow a group.
    pub fn group_mut(&mut self, id: GroupId) -> &mut Group {
        &mut self.groups[id.0 as usize]
    }

    /// Borrow a user.
    pub fn user(&self, id: UserId) -> &User {
        &self.users[id.0 as usize]
    }

    /// Open a fresh collector account; returns its id.
    pub fn create_account(&mut self) -> AccountId {
        self.accounts.push(AccountState::default());
        AccountId((self.accounts.len() - 1) as u16)
    }

    /// Number of collector accounts created.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Borrow an account's state.
    pub fn account(&self, id: AccountId) -> Option<&AccountState> {
        self.accounts.get(usize::from(id.0))
    }

    /// Attempt to join the group behind `code` with `account` at time
    /// `now`. `as_bot` marks Discord bot credentials, which the platform
    /// rejects (§3.3).
    pub fn join(
        &mut self,
        account: AccountId,
        code: &str,
        now: SimTime,
        as_bot: bool,
    ) -> Result<GroupId, JoinError> {
        let gid = self.find_by_code(code).ok_or(JoinError::UnknownCode)?;
        let limit = self.spec.join_limit;
        let state = self
            .accounts
            .get_mut(usize::from(account.0))
            .ok_or(JoinError::UnknownAccount)?;
        if state.banned {
            return Err(JoinError::Banned);
        }
        if as_bot && self.kind == PlatformKind::Discord {
            return Err(JoinError::BotsNotAllowed);
        }
        if let Some(limit) = limit {
            if state.joined.len() as u32 >= limit {
                state.banned = true;
                return Err(JoinError::LimitExceeded);
            }
        }
        let group = &self.groups[gid.0 as usize];
        if !group.is_alive(now) {
            return Err(JoinError::Revoked);
        }
        if state.joined_at(gid).is_none() {
            state.joined.push((gid, now));
        }
        Ok(gid)
    }

    /// The join instant of `account` in `group`, or `None` if not a member.
    pub fn joined_at(&self, account: AccountId, group: GroupId) -> Option<SimTime> {
        self.accounts
            .get(usize::from(account.0))
            .and_then(|a| a.joined_at(group))
    }

    /// Install a materialized history (members + messages) for a joined
    /// group; the service endpoints serve from it.
    pub fn install_history(&mut self, id: GroupId, history: GroupHistory) {
        if self.groups[id.0 as usize].history.is_none() {
            self.materialized.push(id);
        }
        self.groups[id.0 as usize].history = Some(history);
    }

    /// Export the collector-account states (checkpointing). The world
    /// population itself is rebuilt deterministically from the scenario
    /// seed, so accounts — mutated by the campaign's joins — are the only
    /// per-account state a snapshot needs.
    pub fn export_accounts(&self) -> Vec<AccountState> {
        self.accounts.clone()
    }

    /// Overwrite the collector-account states from a checkpoint export.
    pub fn restore_accounts(&mut self, accounts: Vec<AccountState>) {
        self.accounts = accounts;
    }

    /// Export the server-side API flood-control bucket state, if this
    /// platform has one (checkpointing).
    pub fn api_bucket_state(&self) -> Option<TokenBucketState> {
        self.api_bucket.as_ref().map(TokenBucket::state)
    }

    /// Restore the API flood-control bucket from a checkpoint export.
    /// `None` clears the bucket only on platforms that never had one.
    pub fn restore_api_bucket(&mut self, state: Option<TokenBucketState>) {
        if let Some(s) = state {
            self.api_bucket = Some(TokenBucket::from_state(s));
        }
    }

    /// Ids of groups with a materialized history installed, in
    /// *installation order* (checkpointing: histories are re-materialized
    /// deterministically on restore rather than serialized, and because
    /// materialization allocates platform user ids, the replay must follow
    /// the original order exactly for the id assignment to match).
    pub fn materialized_groups(&self) -> Vec<GroupId> {
        self.materialized.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{ChatKind, SizeTimeline};
    use crate::invite::InviteCode;
    use crate::phone::{country_by_iso, PhoneNumber};
    use chatlens_simnet::rng::Rng;
    use chatlens_simnet::time::{Date, SimDuration};

    fn make_group(platform: &mut Platform, rng: &mut Rng, revoked: Option<SimTime>) -> GroupId {
        let created = Date::new(2020, 4, 1);
        let mut invite = InviteCode::generate(platform.kind, rng);
        while platform.invite_taken(&invite.code) {
            invite = InviteCode::generate(platform.kind, rng);
        }
        platform.push_group(Group {
            id: GroupId(0),
            platform: platform.kind,
            chat_kind: ChatKind::Group,
            title: "t".into(),
            creator: UserId(0),
            created_at: created.midnight(),
            revoked_at: revoked,
            invite,
            member_list_hidden: false,
            online_frac: 0.2,
            sizes: SizeTimeline::flat(created, 10),
            msgs_per_day: 1.0,
            activity_seed: 0,
            history: None,
        })
    }

    fn wa_user(p: &mut Platform, rng: &mut Rng) -> UserId {
        let phone = PhoneNumber::allocate(country_by_iso("BR").unwrap(), rng);
        p.push_user(User::whatsapp(UserId(0), phone))
    }

    #[test]
    fn push_assigns_dense_ids() {
        let mut p = Platform::new(PlatformKind::WhatsApp);
        let mut rng = Rng::new(1);
        let u0 = wa_user(&mut p, &mut rng);
        let u1 = wa_user(&mut p, &mut rng);
        assert_eq!(u0, UserId(0));
        assert_eq!(u1, UserId(1));
        let g0 = make_group(&mut p, &mut rng, None);
        let g1 = make_group(&mut p, &mut rng, None);
        assert_eq!(g0, GroupId(0));
        assert_eq!(g1, GroupId(1));
    }

    #[test]
    fn find_by_code_roundtrip() {
        let mut p = Platform::new(PlatformKind::Telegram);
        let mut rng = Rng::new(2);
        let gid = make_group(&mut p, &mut rng, None);
        let code = p.group(gid).invite.code.clone();
        assert_eq!(p.find_by_code(&code), Some(gid));
        assert_eq!(p.find_by_code("nope"), None);
        assert!(p.invite_taken(&code));
    }

    #[test]
    fn join_happy_path_records_time() {
        let mut p = Platform::new(PlatformKind::Telegram);
        let mut rng = Rng::new(3);
        let gid = make_group(&mut p, &mut rng, None);
        let code = p.group(gid).invite.code.clone();
        let acct = p.create_account();
        let t = Date::new(2020, 4, 10).midnight();
        assert_eq!(p.join(acct, &code, t, false), Ok(gid));
        assert_eq!(p.joined_at(acct, gid), Some(t));
        // Re-joining keeps the original join time.
        let t2 = t + SimDuration::days(1);
        assert_eq!(p.join(acct, &code, t2, false), Ok(gid));
        assert_eq!(p.joined_at(acct, gid), Some(t));
    }

    #[test]
    fn join_revoked_group_fails() {
        let mut p = Platform::new(PlatformKind::Telegram);
        let mut rng = Rng::new(4);
        let revoked_at = Date::new(2020, 4, 5).midnight();
        let gid = make_group(&mut p, &mut rng, Some(revoked_at));
        let code = p.group(gid).invite.code.clone();
        let acct = p.create_account();
        let err = p
            .join(acct, &code, Date::new(2020, 4, 10).midnight(), false)
            .unwrap_err();
        assert_eq!(err, JoinError::Revoked);
    }

    #[test]
    fn join_unknown_code_fails() {
        let mut p = Platform::new(PlatformKind::Telegram);
        let acct = p.create_account();
        assert_eq!(
            p.join(acct, "nothere", SimTime::EPOCH, false),
            Err(JoinError::UnknownCode)
        );
    }

    #[test]
    fn discord_rejects_bots() {
        let mut p = Platform::new(PlatformKind::Discord);
        let mut rng = Rng::new(5);
        let gid = make_group(&mut p, &mut rng, None);
        let code = p.group(gid).invite.code.clone();
        let acct = p.create_account();
        let t = Date::new(2020, 4, 10).midnight();
        assert_eq!(p.join(acct, &code, t, true), Err(JoinError::BotsNotAllowed));
        // A user account works.
        assert_eq!(p.join(acct, &code, t, false), Ok(gid));
    }

    #[test]
    fn join_limit_bans_account() {
        let mut p = Platform::new(PlatformKind::Discord); // limit 100
        let mut rng = Rng::new(6);
        let codes: Vec<String> = (0..101)
            .map(|_| {
                let gid = make_group(&mut p, &mut rng, None);
                p.group(gid).invite.code.clone()
            })
            .collect();
        let acct = p.create_account();
        let t = Date::new(2020, 4, 10).midnight();
        for code in &codes[..100] {
            assert!(p.join(acct, code, t, false).is_ok());
        }
        assert_eq!(
            p.join(acct, &codes[100], t, false),
            Err(JoinError::LimitExceeded)
        );
        // Account is now banned for everything.
        assert_eq!(p.join(acct, &codes[0], t, false), Err(JoinError::Banned));
        assert!(p.account(acct).unwrap().banned);
    }

    #[test]
    fn telegram_has_no_join_limit() {
        let mut p = Platform::new(PlatformKind::Telegram);
        let mut rng = Rng::new(7);
        let acct = p.create_account();
        let t = Date::new(2020, 4, 10).midnight();
        for _ in 0..150 {
            let gid = make_group(&mut p, &mut rng, None);
            let code = p.group(gid).invite.code.clone();
            assert!(p.join(acct, &code, t, false).is_ok());
        }
    }

    #[test]
    fn unknown_account_is_an_error() {
        let mut p = Platform::new(PlatformKind::Telegram);
        let mut rng = Rng::new(8);
        let gid = make_group(&mut p, &mut rng, None);
        let code = p.group(gid).invite.code.clone();
        assert_eq!(
            p.join(AccountId(9), &code, SimTime::EPOCH, false),
            Err(JoinError::UnknownAccount)
        );
    }

    #[test]
    fn install_history() {
        let mut p = Platform::new(PlatformKind::Telegram);
        let mut rng = Rng::new(9);
        let gid = make_group(&mut p, &mut rng, None);
        assert!(p.group(gid).history.is_none());
        p.install_history(gid, GroupHistory::default());
        assert!(p.group(gid).history.is_some());
    }
}
