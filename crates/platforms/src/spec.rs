//! Static platform characteristics — the contents of the paper's Table 1.

use crate::id::PlatformKind;
use chatlens_simnet::time::Date;

/// How users register on a platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Registration {
    /// Registration requires a phone number (WhatsApp, Telegram).
    Phone,
    /// Registration requires an email address (Discord).
    Email,
}

impl Registration {
    /// Label used in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            Registration::Phone => "Phone",
            Registration::Email => "Email",
        }
    }
}

/// End-to-end-encryption posture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum E2ee {
    /// All chats end-to-end encrypted (WhatsApp).
    Always,
    /// Only opt-in "secret" chats (Telegram).
    SecretChatsOnly,
    /// No end-to-end encryption (Discord).
    Never,
}

impl E2ee {
    /// Label used in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            E2ee::Always => "Yes",
            E2ee::SecretChatsOnly => "Only for \"secret\" chats",
            E2ee::Never => "No",
        }
    }
}

/// Static characteristics of one platform (one column of Table 1).
#[derive(Debug, Clone)]
pub struct PlatformSpec {
    /// Which platform this spec describes.
    pub kind: PlatformKind,
    /// Initial public release date.
    pub release: Date,
    /// Approximate user base at study time (April 2020).
    pub user_base: u64,
    /// Registration requirement.
    pub registration: Registration,
    /// Options for public chats (Table 1 row).
    pub public_chat_options: &'static str,
    /// Maximum members in an ordinary public chat.
    pub max_members: u32,
    /// Maximum members in the platform's extended tier (verified Discord
    /// servers; `u32::MAX` stands in for Telegram's unlimited channels).
    pub max_members_extended: u32,
    /// Whether the platform offers a data-collection API (Table 1:
    /// WhatsApp has only a Business API, treated as "No").
    pub has_data_api: bool,
    /// Message-forwarding limit, if any (WhatsApp limited forwards to 5
    /// chats at study time; `None` = unrestricted or N/A).
    pub forward_limit: Option<u32>,
    /// End-to-end-encryption posture.
    pub e2ee: E2ee,
    /// Default invite-link time-to-live in days (`None` = links live until
    /// manually revoked). Discord invites expire after 1 day by default.
    pub invite_ttl_days: Option<u32>,
    /// Empirical per-account join limit the paper reports (§3.2): 250–300
    /// groups for WhatsApp, 100 servers for Discord; Telegram is bounded by
    /// API rate limits rather than a hard count (`None`).
    pub join_limit: Option<u32>,
}

impl PlatformSpec {
    /// The spec for `kind` as of the study period (April–May 2020).
    pub fn of(kind: PlatformKind) -> PlatformSpec {
        match kind {
            PlatformKind::WhatsApp => PlatformSpec {
                kind,
                release: Date::new(2009, 1, 1),
                user_base: 2_000_000_000,
                registration: Registration::Phone,
                public_chat_options: "Groups",
                // Table 1 lists 256 as the max member count; §2 notes group
                // chats with "up to 257 users" (256 members + creator). We
                // use 257 as the hard cap on the stored member count, like
                // §5's "imposed group limit (257 members)".
                max_members: 257,
                max_members_extended: 257,
                has_data_api: false,
                forward_limit: Some(5),
                e2ee: E2ee::Always,
                invite_ttl_days: None,
                join_limit: Some(280),
            },
            PlatformKind::Telegram => PlatformSpec {
                kind,
                release: Date::new(2013, 8, 1),
                user_base: 400_000_000,
                registration: Registration::Phone,
                public_chat_options: "Groups and Channels",
                max_members: 200_000,
                max_members_extended: u32::MAX, // channels: unlimited
                has_data_api: true,
                forward_limit: None,
                e2ee: E2ee::SecretChatsOnly,
                invite_ttl_days: None,
                join_limit: None,
            },
            PlatformKind::Discord => PlatformSpec {
                kind,
                release: Date::new(2015, 5, 1),
                user_base: 250_000_000,
                registration: Registration::Email,
                public_chat_options: "Server",
                max_members: 250_000,
                max_members_extended: 500_000, // verified servers
                has_data_api: true,
                forward_limit: None,
                e2ee: E2ee::Never,
                invite_ttl_days: Some(1),
                join_limit: Some(100),
            },
        }
    }

    /// Specs for all three platforms in canonical order.
    pub fn all() -> [PlatformSpec; 3] {
        [
            PlatformSpec::of(PlatformKind::WhatsApp),
            PlatformSpec::of(PlatformKind::Telegram),
            PlatformSpec::of(PlatformKind::Discord),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_key_facts() {
        let wa = PlatformSpec::of(PlatformKind::WhatsApp);
        assert_eq!(wa.max_members, 257);
        assert!(!wa.has_data_api);
        assert_eq!(wa.forward_limit, Some(5));
        assert_eq!(wa.e2ee, E2ee::Always);
        assert_eq!(wa.registration, Registration::Phone);

        let tg = PlatformSpec::of(PlatformKind::Telegram);
        assert_eq!(tg.max_members, 200_000);
        assert_eq!(tg.max_members_extended, u32::MAX);
        assert!(tg.has_data_api);
        assert_eq!(tg.e2ee, E2ee::SecretChatsOnly);

        let dc = PlatformSpec::of(PlatformKind::Discord);
        assert_eq!(dc.max_members, 250_000);
        assert_eq!(dc.max_members_extended, 500_000);
        assert_eq!(dc.registration, Registration::Email);
        assert_eq!(dc.invite_ttl_days, Some(1));
        assert_eq!(dc.join_limit, Some(100));
        assert_eq!(dc.e2ee, E2ee::Never);
    }

    #[test]
    fn release_order_matches_history() {
        let [wa, tg, dc] = PlatformSpec::all();
        assert!(wa.release < tg.release);
        assert!(tg.release < dc.release);
    }

    #[test]
    fn user_base_ordering() {
        let [wa, tg, dc] = PlatformSpec::all();
        assert!(wa.user_base > tg.user_base);
        assert!(tg.user_base > dc.user_base);
    }

    #[test]
    fn labels() {
        assert_eq!(Registration::Phone.label(), "Phone");
        assert_eq!(Registration::Email.label(), "Email");
        assert_eq!(E2ee::Always.label(), "Yes");
        assert_eq!(E2ee::Never.label(), "No");
        assert!(E2ee::SecretChatsOnly.label().contains("secret"));
    }
}
