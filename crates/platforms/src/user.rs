//! Platform users and the PII each platform attaches to them.
//!
//! §6 (Privacy Implications): WhatsApp exposes member phone numbers to
//! co-members and creator phone numbers to *anyone* with the invite URL;
//! Telegram hides phone numbers unless the user opts in (0.68% of observed
//! users had); Discord has no phone numbers but exposes **connected
//! accounts** on other platforms for ~30% of users (Table 5).

use crate::id::{PlatformKind, UserId};
use crate::phone::PhoneNumber;

/// External platforms a Discord profile can link to (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinkedPlatform {
    /// Twitch (20.4% of observed users in the paper).
    Twitch,
    /// Steam (12.2%).
    Steam,
    /// Twitter (8.9%).
    Twitter,
    /// Spotify (8.0%).
    Spotify,
    /// YouTube (6.6%).
    YouTube,
    /// Battle.net (5.2%).
    Battlenet,
    /// Xbox (3.7%).
    Xbox,
    /// Reddit (3.0%).
    Reddit,
    /// League of Legends (2.4%).
    LeagueOfLegends,
    /// Skype (0.6%).
    Skype,
    /// Facebook (0.5%).
    Facebook,
}

impl LinkedPlatform {
    /// All linkable platforms in Table 5's order.
    pub const ALL: [LinkedPlatform; 11] = [
        LinkedPlatform::Twitch,
        LinkedPlatform::Steam,
        LinkedPlatform::Twitter,
        LinkedPlatform::Spotify,
        LinkedPlatform::YouTube,
        LinkedPlatform::Battlenet,
        LinkedPlatform::Xbox,
        LinkedPlatform::Reddit,
        LinkedPlatform::LeagueOfLegends,
        LinkedPlatform::Skype,
        LinkedPlatform::Facebook,
    ];

    /// Display name as printed in Table 5.
    pub fn label(self) -> &'static str {
        match self {
            LinkedPlatform::Twitch => "Twitch",
            LinkedPlatform::Steam => "Steam",
            LinkedPlatform::Twitter => "Twitter",
            LinkedPlatform::Spotify => "Spotify",
            LinkedPlatform::YouTube => "YouTube",
            LinkedPlatform::Battlenet => "Battlenet",
            LinkedPlatform::Xbox => "Xbox",
            LinkedPlatform::Reddit => "Reddit",
            LinkedPlatform::LeagueOfLegends => "League of Legends",
            LinkedPlatform::Skype => "Skype",
            LinkedPlatform::Facebook => "Facebook",
        }
    }

    /// Stable index into [`LinkedPlatform::ALL`].
    pub fn index(self) -> usize {
        LinkedPlatform::ALL
            .iter()
            .position(|&p| p == self)
            .expect("platform present in ALL")
    }
}

/// A registered user of one messaging platform.
#[derive(Debug, Clone)]
pub struct User {
    /// Dense platform-local id.
    pub id: UserId,
    /// The platform the account lives on.
    pub platform: PlatformKind,
    /// Registration phone number (WhatsApp and Telegram; `None` on
    /// Discord, which registers by email).
    pub phone: Option<PhoneNumber>,
    /// Telegram only: whether the user opted in to showing their phone
    /// number to group co-members (off by default; 0.68% opted in per §6).
    pub phone_visible: bool,
    /// Discord only: connected accounts on other platforms.
    pub linked: Vec<LinkedPlatform>,
}

impl User {
    /// A WhatsApp user (phone always present and always visible to
    /// co-members — the crux of §6's WhatsApp finding).
    pub fn whatsapp(id: UserId, phone: PhoneNumber) -> User {
        User {
            id,
            platform: PlatformKind::WhatsApp,
            phone: Some(phone),
            phone_visible: true,
            linked: Vec::new(),
        }
    }

    /// A Telegram user; `phone_visible` reflects the opt-in.
    pub fn telegram(id: UserId, phone: PhoneNumber, phone_visible: bool) -> User {
        User {
            id,
            platform: PlatformKind::Telegram,
            phone: Some(phone),
            phone_visible,
            linked: Vec::new(),
        }
    }

    /// A Discord user with the given connected accounts.
    pub fn discord(id: UserId, linked: Vec<LinkedPlatform>) -> User {
        User {
            id,
            platform: PlatformKind::Discord,
            phone: None,
            phone_visible: false,
            linked,
        }
    }

    /// The phone number this user's platform would *expose* to a
    /// co-member: always for WhatsApp, opt-in for Telegram, never for
    /// Discord.
    pub fn exposed_phone(&self) -> Option<PhoneNumber> {
        match self.platform {
            PlatformKind::WhatsApp => self.phone,
            PlatformKind::Telegram => self.phone.filter(|_| self.phone_visible),
            PlatformKind::Discord => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phone::{country_by_iso, PhoneNumber};
    use chatlens_simnet::rng::Rng;

    fn phone() -> PhoneNumber {
        PhoneNumber::allocate(country_by_iso("BR").unwrap(), &mut Rng::new(1))
    }

    #[test]
    fn whatsapp_always_exposes_phone() {
        let u = User::whatsapp(UserId(0), phone());
        assert_eq!(u.exposed_phone(), Some(phone()));
    }

    #[test]
    fn telegram_exposes_only_on_opt_in() {
        let hidden = User::telegram(UserId(0), phone(), false);
        assert_eq!(hidden.exposed_phone(), None);
        let shown = User::telegram(UserId(1), phone(), true);
        assert_eq!(shown.exposed_phone(), Some(phone()));
    }

    #[test]
    fn discord_never_exposes_phone() {
        let u = User::discord(UserId(0), vec![LinkedPlatform::Twitch]);
        assert_eq!(u.exposed_phone(), None);
        assert_eq!(u.linked, vec![LinkedPlatform::Twitch]);
    }

    #[test]
    fn table5_order_and_labels() {
        assert_eq!(LinkedPlatform::ALL[0].label(), "Twitch");
        assert_eq!(LinkedPlatform::ALL[10].label(), "Facebook");
        for (i, p) in LinkedPlatform::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
