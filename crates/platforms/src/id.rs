//! Identifier types shared across the platform simulators.

use std::fmt;

/// The three messaging platforms of the study (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PlatformKind {
    /// WhatsApp (launched January 2009).
    WhatsApp,
    /// Telegram (launched August 2013).
    Telegram,
    /// Discord (launched May 2015).
    Discord,
}

impl PlatformKind {
    /// All platforms, in the paper's canonical order.
    pub const ALL: [PlatformKind; 3] = [
        PlatformKind::WhatsApp,
        PlatformKind::Telegram,
        PlatformKind::Discord,
    ];

    /// Human-readable platform name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            PlatformKind::WhatsApp => "WhatsApp",
            PlatformKind::Telegram => "Telegram",
            PlatformKind::Discord => "Discord",
        }
    }

    /// Stable index (0, 1, 2) for array-per-platform bookkeeping.
    pub fn index(self) -> usize {
        match self {
            PlatformKind::WhatsApp => 0,
            PlatformKind::Telegram => 1,
            PlatformKind::Discord => 2,
        }
    }

    /// Inverse of [`PlatformKind::index`].
    ///
    /// # Panics
    /// Panics if `i > 2`.
    pub fn from_index(i: usize) -> PlatformKind {
        PlatformKind::ALL[i]
    }
}

impl fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A platform-local group identifier (dense index into `Platform::groups`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u32);

/// A platform-local user identifier (dense index into `Platform::users`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub u32);

/// A collector-side account identity on a platform (the paper used one or a
/// handful of accounts per platform, bounded by join limits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AccountId(pub u16);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "acct{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_index_roundtrip() {
        for p in PlatformKind::ALL {
            assert_eq!(PlatformKind::from_index(p.index()), p);
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(PlatformKind::WhatsApp.to_string(), "WhatsApp");
        assert_eq!(PlatformKind::Telegram.to_string(), "Telegram");
        assert_eq!(PlatformKind::Discord.to_string(), "Discord");
    }

    #[test]
    fn id_display() {
        assert_eq!(GroupId(7).to_string(), "g7");
        assert_eq!(UserId(3).to_string(), "u3");
        assert_eq!(AccountId(1).to_string(), "acct1");
    }
}
