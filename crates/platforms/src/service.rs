//! Transport endpoints: the web frontends and APIs the collector scrapes.
//!
//! Each [`Platform`] is mounted on the simulated transport under its
//! lowercase name (`whatsapp`, `telegram`, `discord`). The endpoints mirror
//! the access paths of §3:
//!
//! | Endpoint | Real-world analogue | Auth |
//! |---|---|---|
//! | `whatsapp/landing?code=` | invite landing page (web client) | none |
//! | `whatsapp/join?account=&code=` | clicking "Join" in the web client | account |
//! | `whatsapp/members?account=&group=` | member list after joining | member |
//! | `whatsapp/messages?account=&group=` | chat log **after the join date** | member |
//! | `telegram/web?code=` | public group web page | none |
//! | `telegram/api/join?...` | `channels.joinChannel` | account, flood-limited |
//! | `telegram/api/history?...` | full history **since creation** | member, flood-limited |
//! | `telegram/api/members?...` | member list (admins may hide) | member, flood-limited |
//! | `telegram/api/user?id=` | user profile (phone iff opted in) | account, flood-limited |
//! | `discord/api/invite?code=` | GET /invites/{code} | none |
//! | `discord/api/join?...&actor=` | join (bots rejected) | account |
//! | `discord/api/messages?...` | full channel history | member |
//! | `discord/api/user?id=` | profile + connected accounts | account |
//!
//! Responses are [`crate::wire`] documents; messages are encoded one per `msg`
//! field via [`encode_message`] / [`parse_message`].

use crate::group::Group;
use crate::id::{AccountId, GroupId, PlatformKind, UserId};
use crate::message::{Message, MessageKind};
use crate::platform::{JoinError, Platform};
use crate::wire::{sanitize, WireDoc};
use chatlens_simnet::time::SimTime;
use chatlens_simnet::transport::{Request, Response, Service, Status};

/// Encode a message as a single wire-field value: `<secs> <sender> <kind>`.
pub fn encode_message(m: &Message) -> String {
    format!("{} {} {}", m.at.as_secs(), m.sender.0, m.kind.index())
}

/// Parse a value produced by [`encode_message`].
pub fn parse_message(s: &str) -> Option<Message> {
    let mut it = s.split(' ');
    let at = it.next()?.parse().ok()?;
    let sender = it.next()?.parse().ok()?;
    let kind: usize = it.next()?.parse().ok()?;
    if it.next().is_some() || kind >= MessageKind::ALL.len() {
        return None;
    }
    Some(Message {
        at: SimTime::from_secs(at),
        sender: UserId(sender),
        kind: MessageKind::from_index(kind),
    })
}

fn gone() -> Response {
    Response::status(
        Status::Gone,
        WireDoc::new("revoked")
            .field("notice", "this invite link is no longer active")
            .render(),
    )
}

fn not_found(what: &str) -> Response {
    Response::status(Status::NotFound, format!("not-found\nwhat: {what}"))
}

fn bad_request(what: &str) -> Response {
    // Modelled as 404 — the simulated frontends, like the real ones, give
    // scrapers no structured validation errors.
    Response::status(Status::NotFound, format!("bad-request\nwhat: {what}"))
}

fn forbidden(reason: &str) -> Response {
    Response::status(
        Status::Forbidden,
        WireDoc::new("forbidden").field("reason", reason).render(),
    )
}

fn join_error_response(err: JoinError) -> Response {
    match err {
        JoinError::UnknownCode => not_found("invite"),
        JoinError::Revoked => gone(),
        JoinError::LimitExceeded => forbidden("join limit exceeded; account banned"),
        JoinError::Banned => forbidden("account banned"),
        JoinError::BotsNotAllowed => forbidden("bots cannot join servers by themselves"),
        JoinError::UnknownAccount => not_found("account"),
    }
}

impl Platform {
    fn parse_account(&self, req: &Request) -> Result<AccountId, Response> {
        let raw = req
            .param("account")
            .ok_or_else(|| bad_request("missing account"))?;
        let id: u16 = raw.parse().map_err(|_| bad_request("bad account"))?;
        if usize::from(id) >= self.account_count() {
            return Err(not_found("account"));
        }
        Ok(AccountId(id))
    }

    fn parse_group(&self, req: &Request) -> Result<GroupId, Response> {
        let raw = req
            .param("group")
            .ok_or_else(|| bad_request("missing group"))?;
        let id: u32 = raw.parse().map_err(|_| bad_request("bad group"))?;
        if (id as usize) >= self.groups.len() {
            return Err(not_found("group"));
        }
        Ok(GroupId(id))
    }

    /// Resolve the group behind `code=`, mapping unknown → 404 and
    /// dead → 410 exactly like the landing pages do.
    fn resolve_live_group(&self, req: &Request, now: SimTime) -> Result<&Group, Response> {
        let code = req
            .param("code")
            .ok_or_else(|| bad_request("missing code"))?;
        let gid = self.find_by_code(code).ok_or_else(|| not_found("invite"))?;
        let group = self.group(gid);
        if !group.is_alive(now) {
            return Err(gone());
        }
        Ok(group)
    }

    /// Require that `account` joined `group`; membership gates member lists
    /// and message history on every platform.
    fn require_membership(&self, account: AccountId, group: GroupId) -> Result<SimTime, Response> {
        self.joined_at(account, group)
            .ok_or_else(|| forbidden("not a member of this group"))
    }

    /// Telegram flood control for `api/*` ops: consume a token or tell the
    /// caller how long to wait (FLOOD_WAIT).
    fn flood_gate(&mut self, now: SimTime) -> Option<Response> {
        let bucket = self.api_bucket.as_mut()?;
        // Dispatch times are not monotone across calls (a retried call's
        // virtual time can overtake the next call's start). This bucket
        // never imposes waits, so its refill cursor is exactly the latest
        // dispatch time seen; clamping against it upholds the bucket's
        // monotonicity contract with identical refill math.
        let now = now.max(bucket.refilled_to());
        if bucket.available(now) >= 1.0 {
            bucket.acquire(now);
            None
        } else {
            Some(Response::status(
                Status::RateLimited(5),
                WireDoc::new("flood-wait").field("seconds", 5u32).render(),
            ))
        }
    }

    // ---- WhatsApp -------------------------------------------------------

    fn wa_landing(&self, now: SimTime, req: &Request) -> Response {
        let group = match self.resolve_live_group(req, now) {
            Ok(g) => g,
            Err(r) => return r,
        };
        // The landing page shows title, current size, and — the PII finding
        // of §6 — the creator's phone number, visible to *non-members*.
        let creator = self.user(group.creator);
        let phone = creator.phone.expect("WhatsApp users register by phone");
        // Every successful document echoes the identity it was resolved
        // for (here the invite code), so collectors can detect a
        // cross-document splice: a body served under the wrong URL.
        Response::ok(
            WireDoc::new("wa-landing")
                .field("code", req.param("code").unwrap_or_default())
                .field_string("title", sanitize(&group.title))
                .field("size", group.size_at(now))
                .field("creator_cc", phone.iso())
                .field_string("creator_phone", phone.e164())
                .render(),
        )
    }

    fn wa_join(&mut self, now: SimTime, req: &Request) -> Response {
        let account = match self.parse_account(req) {
            Ok(a) => a,
            Err(r) => return r,
        };
        let code = match req.param("code") {
            Some(c) => c.to_string(),
            None => return bad_request("missing code"),
        };
        match self.join(account, &code, now, false) {
            Ok(gid) => Response::ok(
                WireDoc::new("wa-join")
                    .field("code", &code)
                    .field("group", gid.0)
                    .render(),
            ),
            Err(e) => join_error_response(e),
        }
    }

    fn wa_members(&self, req: &Request) -> Response {
        let (account, gid) = match self
            .parse_account(req)
            .and_then(|a| self.parse_group(req).map(|g| (a, g)))
        {
            Ok(v) => v,
            Err(r) => return r,
        };
        if let Err(r) = self.require_membership(account, gid) {
            return r;
        }
        let group = self.group(gid);
        let Some(history) = group.history.as_ref() else {
            return not_found("history not materialized");
        };
        // Joining a WhatsApp group reveals every member's phone number and
        // the group's creation date (§3.3).
        let mut doc = WireDoc::new("wa-members")
            .field("group", gid.0)
            .field("created_day", group.created_at.date().day_number());
        for &m in &history.members {
            let phone = self.user(m).phone.expect("WhatsApp member has phone");
            doc = doc.field_string("member", phone.e164());
        }
        Response::ok(doc.render())
    }

    fn wa_messages(&self, req: &Request) -> Response {
        let (account, gid) = match self
            .parse_account(req)
            .and_then(|a| self.parse_group(req).map(|g| (a, g)))
        {
            Ok(v) => v,
            Err(r) => return r,
        };
        let joined_at = match self.require_membership(account, gid) {
            Ok(t) => t,
            Err(r) => return r,
        };
        let group = self.group(gid);
        let Some(history) = group.history.as_ref() else {
            return not_found("history not materialized");
        };
        // WhatsApp only reveals messages sent *after* the join date (§3.3).
        let mut doc = WireDoc::new("wa-messages").field("group", gid.0);
        for m in history.messages.iter().filter(|m| m.at >= joined_at) {
            doc = doc.field_string("msg", encode_message(m));
        }
        Response::ok(doc.render())
    }

    // ---- Telegram -------------------------------------------------------

    fn tg_web(&self, now: SimTime, req: &Request) -> Response {
        let group = match self.resolve_live_group(req, now) {
            Ok(g) => g,
            Err(r) => return r,
        };
        // The public web page: title, size, online count, group-vs-channel.
        // No phone numbers here — Telegram hides them by default (§6).
        Response::ok(
            WireDoc::new("tg-web")
                .field("code", req.param("code").unwrap_or_default())
                .field_string("title", sanitize(&group.title))
                .field("size", group.size_at(now))
                .field("online", group.online_at(now))
                .field("kind", group.chat_kind.label())
                .render(),
        )
    }

    fn tg_join(&mut self, now: SimTime, req: &Request) -> Response {
        if let Some(r) = self.flood_gate(now) {
            return r;
        }
        let account = match self.parse_account(req) {
            Ok(a) => a,
            Err(r) => return r,
        };
        let code = match req.param("code") {
            Some(c) => c.to_string(),
            None => return bad_request("missing code"),
        };
        match self.join(account, &code, now, false) {
            Ok(gid) => Response::ok(
                WireDoc::new("tg-join")
                    .field("code", &code)
                    .field("group", gid.0)
                    .render(),
            ),
            Err(e) => join_error_response(e),
        }
    }

    fn tg_history(&mut self, now: SimTime, req: &Request) -> Response {
        if let Some(r) = self.flood_gate(now) {
            return r;
        }
        let (account, gid) = match self
            .parse_account(req)
            .and_then(|a| self.parse_group(req).map(|g| (a, g)))
        {
            Ok(v) => v,
            Err(r) => return r,
        };
        if let Err(r) = self.require_membership(account, gid) {
            return r;
        }
        let group = self.group(gid);
        let Some(history) = group.history.as_ref() else {
            return not_found("history not materialized");
        };
        // Telegram's API returns the full history since creation (§3.3).
        let mut doc = WireDoc::new("tg-history")
            .field("group", gid.0)
            .field("created_day", group.created_at.date().day_number());
        for m in &history.messages {
            doc = doc.field_string("msg", encode_message(m));
        }
        Response::ok(doc.render())
    }

    fn tg_members(&mut self, now: SimTime, req: &Request) -> Response {
        if let Some(r) = self.flood_gate(now) {
            return r;
        }
        let (account, gid) = match self
            .parse_account(req)
            .and_then(|a| self.parse_group(req).map(|g| (a, g)))
        {
            Ok(v) => v,
            Err(r) => return r,
        };
        if let Err(r) = self.require_membership(account, gid) {
            return r;
        }
        let group = self.group(gid);
        // Admins can hide the member list; only 24 of the paper's 100
        // joined groups had a visible one (§3.3).
        if group.member_list_hidden {
            return forbidden("member list hidden by administrators");
        }
        let Some(history) = group.history.as_ref() else {
            return not_found("history not materialized");
        };
        let mut doc = WireDoc::new("tg-members").field("group", gid.0);
        for &m in &history.members {
            doc = doc.field("member", m.0);
        }
        Response::ok(doc.render())
    }

    fn tg_user(&mut self, now: SimTime, req: &Request) -> Response {
        if let Some(r) = self.flood_gate(now) {
            return r;
        }
        let Some(raw) = req.param("id") else {
            return bad_request("missing id");
        };
        let Ok(id) = raw.parse::<u32>() else {
            return bad_request("bad id");
        };
        if id as usize >= self.users.len() {
            return not_found("user");
        }
        let user = self.user(UserId(id));
        let mut doc = WireDoc::new("tg-user").field("id", id);
        // The profile carries a phone number only for the 0.68% who opted
        // in to showing it (§6).
        if let Some(phone) = user.exposed_phone() {
            doc = doc.field_string("phone", phone.e164());
        }
        Response::ok(doc.render())
    }

    // ---- Discord --------------------------------------------------------

    fn dc_invite(&self, now: SimTime, req: &Request) -> Response {
        let group = match self.resolve_live_group(req, now) {
            Ok(g) => g,
            Err(r) => return r,
        };
        // GET /invites/{code}: title, counts, creator id, creation date —
        // all without joining (§3.2).
        Response::ok(
            WireDoc::new("dc-invite")
                .field("code", req.param("code").unwrap_or_default())
                .field_string("title", sanitize(&group.title))
                .field("size", group.size_at(now))
                .field("online", group.online_at(now))
                .field("creator", group.creator.0)
                .field("created_day", group.created_at.date().day_number())
                .render(),
        )
    }

    fn dc_join(&mut self, now: SimTime, req: &Request) -> Response {
        let account = match self.parse_account(req) {
            Ok(a) => a,
            Err(r) => return r,
        };
        let code = match req.param("code") {
            Some(c) => c.to_string(),
            None => return bad_request("missing code"),
        };
        let as_bot = req.param("actor") == Some("bot");
        match self.join(account, &code, now, as_bot) {
            Ok(gid) => Response::ok(
                WireDoc::new("dc-join")
                    .field("code", &code)
                    .field("group", gid.0)
                    .render(),
            ),
            Err(e) => join_error_response(e),
        }
    }

    fn dc_messages(&self, req: &Request) -> Response {
        let (account, gid) = match self
            .parse_account(req)
            .and_then(|a| self.parse_group(req).map(|g| (a, g)))
        {
            Ok(v) => v,
            Err(r) => return r,
        };
        if let Err(r) = self.require_membership(account, gid) {
            return r;
        }
        let group = self.group(gid);
        let Some(history) = group.history.as_ref() else {
            return not_found("history not materialized");
        };
        let mut doc = WireDoc::new("dc-messages")
            .field("group", gid.0)
            .field("created_day", group.created_at.date().day_number());
        for m in &history.messages {
            doc = doc.field_string("msg", encode_message(m));
        }
        Response::ok(doc.render())
    }

    fn dc_user(&self, req: &Request) -> Response {
        let Some(raw) = req.param("id") else {
            return bad_request("missing id");
        };
        let Ok(id) = raw.parse::<u32>() else {
            return bad_request("bad id");
        };
        if id as usize >= self.users.len() {
            return not_found("user");
        }
        let user = self.user(UserId(id));
        // The profile exposes connected accounts (§6, Table 5).
        let mut doc = WireDoc::new("dc-user").field("id", id);
        for link in &user.linked {
            doc = doc.field("linked", link.label());
        }
        Response::ok(doc.render())
    }
}

impl Service for Platform {
    fn handle(&mut self, now: SimTime, req: &Request) -> Response {
        // Strip the mount prefix ("whatsapp/landing" → "landing").
        let op = req
            .endpoint
            .split_once('/')
            .map(|(_, rest)| rest)
            .unwrap_or("");
        match (self.kind, op) {
            (PlatformKind::WhatsApp, "landing") => self.wa_landing(now, req),
            (PlatformKind::WhatsApp, "join") => self.wa_join(now, req),
            (PlatformKind::WhatsApp, "members") => self.wa_members(req),
            (PlatformKind::WhatsApp, "messages") => self.wa_messages(req),
            (PlatformKind::Telegram, "web") => self.tg_web(now, req),
            (PlatformKind::Telegram, "api/join") => self.tg_join(now, req),
            (PlatformKind::Telegram, "api/history") => self.tg_history(now, req),
            (PlatformKind::Telegram, "api/members") => self.tg_members(now, req),
            (PlatformKind::Telegram, "api/user") => self.tg_user(now, req),
            (PlatformKind::Discord, "api/invite") => self.dc_invite(now, req),
            (PlatformKind::Discord, "api/join") => self.dc_join(now, req),
            (PlatformKind::Discord, "api/messages") => self.dc_messages(req),
            (PlatformKind::Discord, "api/user") => self.dc_user(req),
            _ => not_found("operation"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{ChatKind, GroupHistory, SizeTimeline};
    use crate::invite::InviteCode;
    use crate::phone::{country_by_iso, PhoneNumber};
    use crate::user::{LinkedPlatform, User};
    use chatlens_simnet::rng::Rng;
    use chatlens_simnet::time::{Date, SimDuration};

    fn now() -> SimTime {
        Date::new(2020, 4, 10).midnight()
    }

    fn build_platform(kind: PlatformKind) -> (Platform, GroupId, String) {
        let mut p = Platform::new(kind);
        let mut rng = Rng::new(42);
        // Creator + two members.
        let country = country_by_iso("BR").unwrap();
        let ids: Vec<UserId> = (0..3)
            .map(|i| match kind {
                PlatformKind::WhatsApp => {
                    let phone = PhoneNumber::allocate(country, &mut rng);
                    p.push_user(User::whatsapp(UserId(0), phone))
                }
                PlatformKind::Telegram => {
                    let phone = PhoneNumber::allocate(country, &mut rng);
                    p.push_user(User::telegram(UserId(0), phone, i == 1))
                }
                PlatformKind::Discord => {
                    let linked = if i == 1 {
                        vec![LinkedPlatform::Twitch, LinkedPlatform::Steam]
                    } else {
                        vec![]
                    };
                    p.push_user(User::discord(UserId(0), linked))
                }
            })
            .collect();
        let created = Date::new(2020, 4, 1);
        let invite = InviteCode::generate(kind, &mut rng);
        let code = invite.code.clone();
        let gid = p.push_group(crate::group::Group {
            id: GroupId(0),
            platform: kind,
            chat_kind: if kind == PlatformKind::Discord {
                ChatKind::Server
            } else {
                ChatKind::Group
            },
            title: "Test Group 🚀".into(),
            creator: ids[0],
            created_at: created.midnight(),
            revoked_at: None,
            invite,
            member_list_hidden: false,
            online_frac: 0.5,
            sizes: SizeTimeline::flat(created, 10),
            msgs_per_day: 2.0,
            activity_seed: 1,
            history: None,
        });
        let history = GroupHistory {
            members: ids.clone(),
            messages: vec![
                Message {
                    sender: ids[1],
                    at: created.midnight() + SimDuration::days(2),
                    kind: MessageKind::Text,
                },
                Message {
                    sender: ids[2],
                    at: created.midnight() + SimDuration::days(12),
                    kind: MessageKind::Image,
                },
            ],
        };
        p.install_history(gid, history);
        (p, gid, code)
    }

    fn req(ep: &'static str) -> Request {
        Request::new(ep)
    }

    #[test]
    fn message_encoding_roundtrip() {
        let m = Message {
            sender: UserId(17),
            at: SimTime::from_secs(123_456),
            kind: MessageKind::Sticker,
        };
        assert_eq!(parse_message(&encode_message(&m)), Some(m));
        assert_eq!(parse_message("garbage"), None);
        assert_eq!(parse_message("1 2 99"), None, "kind out of range");
        assert_eq!(parse_message("1 2 3 4"), None, "trailing junk");
    }

    #[test]
    fn wa_landing_exposes_creator_phone() {
        let (mut p, _gid, code) = build_platform(PlatformKind::WhatsApp);
        let resp = p.handle(now(), &req("whatsapp/landing").with("code", code));
        assert_eq!(resp.status, Status::Ok);
        let doc = WireDoc::parse_as(&resp.body, "wa-landing").unwrap();
        assert_eq!(doc.get("title"), Some("Test Group 🚀"));
        assert_eq!(doc.req_u64("size").unwrap(), 10);
        assert_eq!(doc.get("creator_cc"), Some("BR"));
        assert!(doc.get("creator_phone").unwrap().starts_with("+55"));
    }

    #[test]
    fn wa_messages_only_after_join() {
        let (mut p, gid, code) = build_platform(PlatformKind::WhatsApp);
        let acct = p.create_account();
        // Join on Apr 10; the Apr 3 message must be invisible, the Apr 13
        // message visible.
        let resp = p.handle(
            now(),
            &req("whatsapp/join").with("account", "0").with("code", code),
        );
        assert_eq!(resp.status, Status::Ok);
        let resp = p.handle(
            now() + SimDuration::days(20),
            &req("whatsapp/messages")
                .with("account", "0")
                .with("group", gid.0.to_string()),
        );
        let doc = WireDoc::parse_as(&resp.body, "wa-messages").unwrap();
        let msgs: Vec<Message> = doc
            .get_all("msg")
            .map(|s| parse_message(s).unwrap())
            .collect();
        assert_eq!(msgs.len(), 1, "pre-join history hidden on WhatsApp");
        assert_eq!(msgs[0].kind, MessageKind::Image);
        let _ = acct;
    }

    #[test]
    fn wa_members_requires_membership() {
        let (mut p, gid, code) = build_platform(PlatformKind::WhatsApp);
        p.create_account();
        let resp = p.handle(
            now(),
            &req("whatsapp/members")
                .with("account", "0")
                .with("group", gid.0.to_string()),
        );
        assert_eq!(resp.status, Status::Forbidden, "must join first");
        p.handle(
            now(),
            &req("whatsapp/join").with("account", "0").with("code", code),
        );
        let resp = p.handle(
            now(),
            &req("whatsapp/members")
                .with("account", "0")
                .with("group", gid.0.to_string()),
        );
        let doc = WireDoc::parse_as(&resp.body, "wa-members").unwrap();
        assert_eq!(doc.get_all("member").count(), 3, "all member phones");
        assert!(doc.get_all("member").all(|m| m.starts_with("+55")));
        assert_eq!(
            doc.req_i64("created_day").unwrap(),
            Date::new(2020, 4, 1).day_number()
        );
    }

    #[test]
    fn tg_web_reports_online_and_kind() {
        let (mut p, _gid, code) = build_platform(PlatformKind::Telegram);
        let resp = p.handle(now(), &req("telegram/web").with("code", code));
        let doc = WireDoc::parse_as(&resp.body, "tg-web").unwrap();
        assert_eq!(doc.req_u64("size").unwrap(), 10);
        assert_eq!(doc.req_u64("online").unwrap(), 5);
        assert_eq!(doc.get("kind"), Some("group"));
        assert!(
            doc.get("creator_phone").is_none(),
            "no phone on Telegram web"
        );
    }

    #[test]
    fn tg_history_is_complete_since_creation() {
        let (mut p, gid, code) = build_platform(PlatformKind::Telegram);
        p.create_account();
        p.handle(
            now(),
            &req("telegram/api/join")
                .with("account", "0")
                .with("code", code),
        );
        let resp = p.handle(
            now(),
            &req("telegram/api/history")
                .with("account", "0")
                .with("group", gid.0.to_string()),
        );
        let doc = WireDoc::parse_as(&resp.body, "tg-history").unwrap();
        assert_eq!(doc.get_all("msg").count(), 2, "full history via API");
    }

    #[test]
    fn tg_hidden_member_list_is_forbidden() {
        let (mut p, gid, code) = build_platform(PlatformKind::Telegram);
        p.group_mut(gid).member_list_hidden = true;
        p.create_account();
        p.handle(
            now(),
            &req("telegram/api/join")
                .with("account", "0")
                .with("code", code),
        );
        let resp = p.handle(
            now(),
            &req("telegram/api/members")
                .with("account", "0")
                .with("group", gid.0.to_string()),
        );
        assert_eq!(resp.status, Status::Forbidden);
    }

    #[test]
    fn tg_user_phone_only_when_opted_in() {
        let (mut p, _gid, _code) = build_platform(PlatformKind::Telegram);
        // User 1 opted in; users 0 and 2 did not.
        let resp = p.handle(now(), &req("telegram/api/user").with("id", "1"));
        let doc = WireDoc::parse_as(&resp.body, "tg-user").unwrap();
        assert!(doc.get("phone").is_some(), "opted-in phone visible");
        let resp = p.handle(now(), &req("telegram/api/user").with("id", "0"));
        let doc = WireDoc::parse_as(&resp.body, "tg-user").unwrap();
        assert!(doc.get("phone").is_none(), "default phone hidden");
    }

    #[test]
    fn tg_flood_wait_triggers_on_burst() {
        let (mut p, _gid, _code) = build_platform(PlatformKind::Telegram);
        let mut limited = 0;
        for _ in 0..100 {
            let resp = p.handle(now(), &req("telegram/api/user").with("id", "0"));
            if matches!(resp.status, Status::RateLimited(_)) {
                limited += 1;
            }
        }
        assert!(limited > 0, "burst of 100 should trip FLOOD_WAIT");
        // After waiting, tokens come back.
        let later = now() + SimDuration::minutes(5);
        let resp = p.handle(later, &req("telegram/api/user").with("id", "0"));
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn dc_invite_exposes_creator_and_creation_date() {
        let (mut p, _gid, code) = build_platform(PlatformKind::Discord);
        let resp = p.handle(now(), &req("discord/api/invite").with("code", code));
        let doc = WireDoc::parse_as(&resp.body, "dc-invite").unwrap();
        assert_eq!(doc.req_u64("creator").unwrap(), 0);
        assert_eq!(
            doc.req_i64("created_day").unwrap(),
            Date::new(2020, 4, 1).day_number()
        );
        assert_eq!(doc.req_u64("online").unwrap(), 5);
    }

    #[test]
    fn dc_bot_join_forbidden_user_join_ok() {
        let (mut p, _gid, code) = build_platform(PlatformKind::Discord);
        p.create_account();
        let resp = p.handle(
            now(),
            &req("discord/api/join")
                .with("account", "0")
                .with("code", code.clone())
                .with("actor", "bot"),
        );
        assert_eq!(resp.status, Status::Forbidden);
        let resp = p.handle(
            now(),
            &req("discord/api/join")
                .with("account", "0")
                .with("code", code)
                .with("actor", "user"),
        );
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn dc_user_lists_connected_accounts() {
        let (mut p, _gid, _code) = build_platform(PlatformKind::Discord);
        let resp = p.handle(now(), &req("discord/api/user").with("id", "1"));
        let doc = WireDoc::parse_as(&resp.body, "dc-user").unwrap();
        let linked: Vec<_> = doc.get_all("linked").collect();
        assert_eq!(linked, vec!["Twitch", "Steam"]);
        let resp = p.handle(now(), &req("discord/api/user").with("id", "0"));
        let doc = WireDoc::parse_as(&resp.body, "dc-user").unwrap();
        assert_eq!(doc.get_all("linked").count(), 0);
    }

    #[test]
    fn revoked_invite_is_gone_everywhere() {
        for kind in PlatformKind::ALL {
            let (mut p, gid, code) = build_platform(kind);
            p.group_mut(gid).revoked_at = Some(now().checked_sub(SimDuration::days(1)).unwrap());
            let ep = match kind {
                PlatformKind::WhatsApp => "whatsapp/landing",
                PlatformKind::Telegram => "telegram/web",
                PlatformKind::Discord => "discord/api/invite",
            };
            let resp = p.handle(now(), &req(ep).with("code", code));
            assert_eq!(resp.status, Status::Gone, "{kind} should report Gone");
            let doc = WireDoc::parse_as(&resp.body, "revoked").unwrap();
            assert!(doc.get("notice").is_some());
        }
    }

    #[test]
    fn unknown_code_is_not_found() {
        let (mut p, _gid, _code) = build_platform(PlatformKind::WhatsApp);
        let resp = p.handle(now(), &req("whatsapp/landing").with("code", "zzz"));
        assert_eq!(resp.status, Status::NotFound);
    }

    #[test]
    fn unknown_operation_is_not_found() {
        let (mut p, _gid, _code) = build_platform(PlatformKind::WhatsApp);
        let resp = p.handle(now(), &req("whatsapp/api/invite"));
        assert_eq!(resp.status, Status::NotFound, "discord op on whatsapp");
    }
}
