//! Invite codes and group-URL patterns.
//!
//! §3.1: group URLs follow six patterns across the three platforms —
//! `chat.whatsapp.com/`, `t.me/`, `telegram.me/`, `telegram.org/`,
//! `discord.gg/`, and `discord.com/`. This module generates codes in each
//! platform's native alphabet/length and renders/parses the URL forms the
//! discovery pipeline searches for.

use crate::id::PlatformKind;
use chatlens_simnet::rng::Rng;
use std::fmt;

/// The six host patterns of §3.1, in a fixed order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UrlPattern {
    /// `chat.whatsapp.com/<code>`
    WhatsAppChat,
    /// `t.me/joinchat/<code>` or `t.me/<name>`
    TMe,
    /// `telegram.me/<name>`
    TelegramMe,
    /// `telegram.org/<name>` (rare legacy form)
    TelegramOrg,
    /// `discord.gg/<code>`
    DiscordGg,
    /// `discord.com/invite/<code>`
    DiscordCom,
}

impl UrlPattern {
    /// All six patterns.
    pub const ALL: [UrlPattern; 6] = [
        UrlPattern::WhatsAppChat,
        UrlPattern::TMe,
        UrlPattern::TelegramMe,
        UrlPattern::TelegramOrg,
        UrlPattern::DiscordGg,
        UrlPattern::DiscordCom,
    ];

    /// The host prefix (what the paper's Twitter queries match on).
    pub fn host(self) -> &'static str {
        match self {
            UrlPattern::WhatsAppChat => "chat.whatsapp.com",
            UrlPattern::TMe => "t.me",
            UrlPattern::TelegramMe => "telegram.me",
            UrlPattern::TelegramOrg => "telegram.org",
            UrlPattern::DiscordGg => "discord.gg",
            UrlPattern::DiscordCom => "discord.com",
        }
    }

    /// The platform this pattern belongs to.
    pub fn platform(self) -> PlatformKind {
        match self {
            UrlPattern::WhatsAppChat => PlatformKind::WhatsApp,
            UrlPattern::TMe | UrlPattern::TelegramMe | UrlPattern::TelegramOrg => {
                PlatformKind::Telegram
            }
            UrlPattern::DiscordGg | UrlPattern::DiscordCom => PlatformKind::Discord,
        }
    }
}

const BASE62: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";

fn base62(rng: &mut Rng, len: usize) -> String {
    (0..len)
        .map(|_| BASE62[rng.index(BASE62.len())] as char)
        .collect()
}

/// A platform invite code plus the URL form it is shared under.
///
/// Codes are unique per platform (the allocator in
/// [`crate::platform::Platform`] retries on collision), so a code string
/// identifies exactly one group.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InviteCode {
    /// Which of the six URL patterns this invite renders as.
    pub pattern: UrlPattern,
    /// The opaque code or vanity name.
    pub code: String,
}

impl InviteCode {
    /// Generate a fresh invite in `platform`'s native format.
    ///
    /// * WhatsApp: 22-character base62 id under `chat.whatsapp.com/`.
    /// * Telegram: mostly `t.me/joinchat/<16 base62>` (private-style invite)
    ///   or `t.me/<name>` (public vanity name); a small share uses the
    ///   legacy `telegram.me` / `telegram.org` hosts.
    /// * Discord: 8-character base62 code under `discord.gg/` or the longer
    ///   `discord.com/invite/` form.
    pub fn generate(platform: PlatformKind, rng: &mut Rng) -> InviteCode {
        match platform {
            PlatformKind::WhatsApp => InviteCode {
                pattern: UrlPattern::WhatsAppChat,
                code: base62(rng, 22),
            },
            PlatformKind::Telegram => {
                let roll = rng.f64();
                let pattern = if roll < 0.90 {
                    UrlPattern::TMe
                } else if roll < 0.97 {
                    UrlPattern::TelegramMe
                } else {
                    UrlPattern::TelegramOrg
                };
                // 60% joinchat-style opaque codes, 40% vanity names.
                let code = if pattern == UrlPattern::TMe && rng.chance(0.6) {
                    format!("joinchat/{}", base62(rng, 16))
                } else {
                    format!("grp_{}", base62(rng, 10))
                };
                InviteCode { pattern, code }
            }
            PlatformKind::Discord => {
                let pattern = if rng.chance(0.85) {
                    UrlPattern::DiscordGg
                } else {
                    UrlPattern::DiscordCom
                };
                let code = base62(rng, 8);
                InviteCode { pattern, code }
            }
        }
    }

    /// The full URL as it appears inside tweets.
    pub fn url(&self) -> String {
        match self.pattern {
            UrlPattern::DiscordCom => format!("https://discord.com/invite/{}", self.code),
            p => format!("https://{}/{}", p.host(), self.code),
        }
    }

    /// The platform this invite belongs to.
    pub fn platform(&self) -> PlatformKind {
        self.pattern.platform()
    }

    /// A canonical identity key for deduplication: platform index plus the
    /// opaque code (two URL forms of the same Discord code are one group).
    pub fn dedup_key(&self) -> String {
        format!("{}:{}", self.platform().index(), self.code)
    }
}

impl fmt::Display for InviteCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.url())
    }
}

/// Parse a group URL (any of the six patterns) back into an [`InviteCode`].
///
/// Accepts `http://`, `https://` or bare-host forms and ignores query
/// strings/fragments. Returns `None` for non-invite URLs (e.g. a plain
/// `discord.com/` marketing page without `/invite/`).
pub fn parse_invite_url(url: &str) -> Option<InviteCode> {
    let rest = url
        .strip_prefix("https://")
        .or_else(|| url.strip_prefix("http://"))
        .unwrap_or(url);
    let rest = rest.strip_prefix("www.").unwrap_or(rest);
    // Cut query string / fragment.
    let rest = rest.split(['?', '#']).next().unwrap_or(rest);
    let (host, path) = rest.split_once('/')?;
    let path = path.trim_end_matches('/');
    if path.is_empty() {
        return None;
    }
    let pattern = UrlPattern::ALL
        .into_iter()
        .find(|p| p.host().eq_ignore_ascii_case(host))?;
    let code = match pattern {
        UrlPattern::DiscordCom => path.strip_prefix("invite/")?.to_string(),
        _ => path.to_string(),
    };
    if code.is_empty() {
        return None;
    }
    Some(InviteCode { pattern, code })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_matches_platform_formats() {
        let mut rng = Rng::new(1);
        for _ in 0..200 {
            let wa = InviteCode::generate(PlatformKind::WhatsApp, &mut rng);
            assert_eq!(wa.pattern, UrlPattern::WhatsAppChat);
            assert_eq!(wa.code.len(), 22);
            assert!(wa.url().starts_with("https://chat.whatsapp.com/"));

            let tg = InviteCode::generate(PlatformKind::Telegram, &mut rng);
            assert_eq!(tg.platform(), PlatformKind::Telegram);

            let dc = InviteCode::generate(PlatformKind::Discord, &mut rng);
            assert_eq!(dc.platform(), PlatformKind::Discord);
            assert_eq!(dc.code.len(), 8);
        }
    }

    #[test]
    fn telegram_pattern_mix() {
        let mut rng = Rng::new(2);
        let mut tme = 0;
        let mut legacy = 0;
        for _ in 0..2000 {
            match InviteCode::generate(PlatformKind::Telegram, &mut rng).pattern {
                UrlPattern::TMe => tme += 1,
                UrlPattern::TelegramMe | UrlPattern::TelegramOrg => legacy += 1,
                p => panic!("unexpected pattern {p:?}"),
            }
        }
        assert!(tme > 1600, "t.me should dominate, got {tme}");
        assert!(legacy > 50, "legacy hosts should appear, got {legacy}");
    }

    #[test]
    fn roundtrip_all_platforms() {
        let mut rng = Rng::new(3);
        for platform in PlatformKind::ALL {
            for _ in 0..100 {
                let inv = InviteCode::generate(platform, &mut rng);
                let parsed = parse_invite_url(&inv.url()).expect("roundtrip parse");
                assert_eq!(parsed, inv);
            }
        }
    }

    #[test]
    fn parse_tolerates_url_noise() {
        let inv = parse_invite_url("http://www.discord.gg/Ab3dEf9h?utm=x#frag").unwrap();
        assert_eq!(inv.pattern, UrlPattern::DiscordGg);
        assert_eq!(inv.code, "Ab3dEf9h");

        let inv = parse_invite_url("chat.whatsapp.com/AAAAAAAAAAAAAAAAAAAAAA/").unwrap();
        assert_eq!(inv.pattern, UrlPattern::WhatsAppChat);
    }

    #[test]
    fn parse_discord_com_requires_invite_path() {
        assert!(parse_invite_url("https://discord.com/developers").is_none());
        assert!(parse_invite_url("https://discord.com/invite/abc123XY").is_some());
    }

    #[test]
    fn parse_rejects_non_invites() {
        assert!(parse_invite_url("https://example.com/x").is_none());
        assert!(parse_invite_url("https://t.me/").is_none());
        assert!(parse_invite_url("nonsense").is_none());
        assert!(parse_invite_url("https://discord.com/invite/").is_none());
    }

    #[test]
    fn dedup_key_merges_url_forms() {
        let a = InviteCode {
            pattern: UrlPattern::DiscordGg,
            code: "abc".into(),
        };
        let b = InviteCode {
            pattern: UrlPattern::DiscordCom,
            code: "abc".into(),
        };
        assert_eq!(a.dedup_key(), b.dedup_key());
        let c = InviteCode {
            pattern: UrlPattern::WhatsAppChat,
            code: "abc".into(),
        };
        assert_ne!(a.dedup_key(), c.dedup_key());
    }

    #[test]
    fn telegram_joinchat_roundtrip() {
        let inv = InviteCode {
            pattern: UrlPattern::TMe,
            code: "joinchat/AbCdEf123".into(),
        };
        let parsed = parse_invite_url(&inv.url()).unwrap();
        assert_eq!(parsed, inv);
    }
}
