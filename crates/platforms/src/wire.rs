//! The line-based wire format platform frontends serialize bodies with.
//!
//! The paper's collectors *scraped* landing pages and *parsed* API replies;
//! to keep those code paths honest, the simulated platforms render their
//! responses as text and the collectors parse them back. The format is
//! deliberately simple and deterministic:
//!
//! ```text
//! doc-type
//! key: value
//! key: value          # keys may repeat (lists)
//! ```
//!
//! The first line is the document type; every following non-empty line is a
//! `key: value` pair. Values may contain anything except a newline.

use std::fmt;

/// Errors produced while parsing or interrogating a wire document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The body was empty.
    Empty,
    /// A line had no `": "` separator.
    MalformedLine(String),
    /// A required field was absent.
    MissingField(&'static str),
    /// A field failed numeric conversion.
    BadNumber(&'static str, String),
    /// The document type was not the expected one.
    WrongType {
        /// Expected document type.
        expected: &'static str,
        /// Actual document type found.
        found: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Empty => write!(f, "empty wire document"),
            WireError::MalformedLine(l) => write!(f, "malformed line: {l:?}"),
            WireError::MissingField(k) => write!(f, "missing field {k:?}"),
            WireError::BadNumber(k, v) => write!(f, "field {k:?} is not a number: {v:?}"),
            WireError::WrongType { expected, found } => {
                write!(f, "expected document type {expected:?}, found {found:?}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A parsed (or under-construction) wire document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDoc {
    /// Document type (the first line).
    pub kind: String,
    fields: Vec<(String, String)>,
}

impl WireDoc {
    /// Start building a document of type `kind`.
    pub fn new(kind: impl Into<String>) -> WireDoc {
        WireDoc {
            kind: kind.into(),
            fields: Vec::new(),
        }
    }

    /// Append a field (keys may repeat).
    ///
    /// # Panics
    /// Panics if the value contains a newline — the caller must sanitize
    /// free-form text (group titles) first via [`sanitize`].
    pub fn field(mut self, key: impl Into<String>, value: impl fmt::Display) -> WireDoc {
        let key = key.into();
        let value = value.to_string();
        assert!(
            !value.contains('\n') && !key.contains('\n'),
            "wire fields must be single-line"
        );
        self.fields.push((key, value));
        self
    }

    /// Render to the textual body.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(32 + self.fields.len() * 24);
        out.push_str(&self.kind);
        for (k, v) in &self.fields {
            out.push('\n');
            out.push_str(k);
            out.push_str(": ");
            out.push_str(v);
        }
        out
    }

    /// Parse a body back into a document.
    pub fn parse(body: &str) -> Result<WireDoc, WireError> {
        let mut lines = body.lines();
        let kind = lines
            .next()
            .filter(|l| !l.is_empty())
            .ok_or(WireError::Empty)?;
        let mut fields = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once(": ")
                .ok_or_else(|| WireError::MalformedLine(line.to_string()))?;
            fields.push((k.to_string(), v.to_string()));
        }
        Ok(WireDoc {
            kind: kind.to_string(),
            fields,
        })
    }

    /// Parse and verify the document type in one step.
    pub fn parse_as(body: &str, expected: &'static str) -> Result<WireDoc, WireError> {
        let doc = WireDoc::parse(body)?;
        if doc.kind != expected {
            return Err(WireError::WrongType {
                expected,
                found: doc.kind,
            });
        }
        Ok(doc)
    }

    /// First value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// All values for `key`, in order.
    pub fn get_all<'a>(&'a self, key: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.fields
            .iter()
            .filter(move |(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Required string field.
    pub fn req(&self, key: &'static str) -> Result<&str, WireError> {
        self.get(key).ok_or(WireError::MissingField(key))
    }

    /// Required `u64` field.
    pub fn req_u64(&self, key: &'static str) -> Result<u64, WireError> {
        let v = self.req(key)?;
        v.parse()
            .map_err(|_| WireError::BadNumber(key, v.to_string()))
    }

    /// Required `i64` field.
    pub fn req_i64(&self, key: &'static str) -> Result<i64, WireError> {
        let v = self.req(key)?;
        v.parse()
            .map_err(|_| WireError::BadNumber(key, v.to_string()))
    }

    /// Optional `u64` field (error only if present and malformed).
    pub fn opt_u64(&self, key: &'static str) -> Result<Option<u64>, WireError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| WireError::BadNumber(key, v.to_string())),
        }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the document has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

/// Replace newlines in free-form text (group titles come from user input)
/// so it can be carried in a single-line field.
pub fn sanitize(text: &str) -> String {
    text.replace(['\n', '\r'], " ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let doc = WireDoc::new("landing")
            .field("title", "Crypto Signals")
            .field("size", 42u32);
        let parsed = WireDoc::parse(&doc.render()).unwrap();
        assert_eq!(parsed.kind, "landing");
        assert_eq!(parsed.get("title"), Some("Crypto Signals"));
        assert_eq!(parsed.req_u64("size").unwrap(), 42);
    }

    #[test]
    fn repeated_keys_preserved_in_order() {
        let doc = WireDoc::new("members")
            .field("member", "+551100")
            .field("member", "+551101")
            .field("member", "+551102");
        let parsed = WireDoc::parse(&doc.render()).unwrap();
        let all: Vec<_> = parsed.get_all("member").collect();
        assert_eq!(all, vec!["+551100", "+551101", "+551102"]);
        assert_eq!(parsed.len(), 3);
    }

    #[test]
    fn parse_as_checks_type() {
        let body = WireDoc::new("alpha").render();
        assert!(WireDoc::parse_as(&body, "alpha").is_ok());
        let err = WireDoc::parse_as(&body, "beta").unwrap_err();
        assert_eq!(
            err,
            WireError::WrongType {
                expected: "beta",
                found: "alpha".into()
            }
        );
    }

    #[test]
    fn errors_on_bad_input() {
        assert_eq!(WireDoc::parse(""), Err(WireError::Empty));
        assert!(matches!(
            WireDoc::parse("doc\nnocolonhere"),
            Err(WireError::MalformedLine(_))
        ));
        let doc = WireDoc::parse("doc\nn: abc").unwrap();
        assert!(matches!(doc.req_u64("n"), Err(WireError::BadNumber(_, _))));
        assert!(matches!(doc.req("x"), Err(WireError::MissingField("x"))));
    }

    #[test]
    fn values_may_contain_colons_and_unicode() {
        let doc = WireDoc::new("t").field("title", "Grupo: Vagas 🚀 SP: zona sul");
        let parsed = WireDoc::parse(&doc.render()).unwrap();
        assert_eq!(parsed.get("title"), Some("Grupo: Vagas 🚀 SP: zona sul"));
    }

    #[test]
    fn sanitize_strips_newlines() {
        assert_eq!(sanitize("a\nb\r\nc"), "a b  c");
    }

    #[test]
    #[should_panic(expected = "single-line")]
    fn field_rejects_embedded_newline() {
        let _ = WireDoc::new("t").field("title", "a\nb");
    }

    #[test]
    fn opt_u64_semantics() {
        let doc = WireDoc::parse("t\na: 5").unwrap();
        assert_eq!(doc.opt_u64("a").unwrap(), Some(5));
        assert_eq!(doc.opt_u64("b").unwrap(), None);
        let bad = WireDoc::parse("t\na: x").unwrap();
        assert!(bad.opt_u64("a").is_err());
    }

    #[test]
    fn negative_numbers() {
        let doc = WireDoc::new("t").field("delta", -42i64);
        let parsed = WireDoc::parse(&doc.render()).unwrap();
        assert_eq!(parsed.req_i64("delta").unwrap(), -42);
    }
}
