//! The line-based wire format platform frontends serialize bodies with.
//!
//! The paper's collectors *scraped* landing pages and *parsed* API replies;
//! to keep those code paths honest, the simulated platforms render their
//! responses as text and the collectors parse them back. The format is
//! deliberately simple and deterministic:
//!
//! ```text
//! doc-type
//! key: value
//! key: value          # keys may repeat (lists)
//! ```
//!
//! The first line is the document type; every following non-empty line is a
//! `key: value` pair. Values may contain anything except a newline.
//!
//! # Hardening
//!
//! The wire can hand back *successfully delivered garbage* (see
//! `simnet::fault::CorruptionSchedule`), so parsing is defensive:
//!
//! * **Allocation guards** — bodies with more than [`MAX_LINES`] lines or a
//!   value longer than [`MAX_VALUE_LEN`] bytes are rejected with
//!   [`WireError::TooLarge`] before any further work, mirroring the
//!   checkpoint codec's bounds checks.
//! * **Self-describing field count** — [`WireDoc::render`] emits a
//!   `n: <field-count>` header as the first field line and
//!   [`WireDoc::parse`] transparently verifies and strips it
//!   ([`WireError::CountMismatch`] on disagreement), so dropped, duplicated
//!   or truncated lines are structurally detectable. Handcrafted bodies
//!   without the header still parse (error notices are built with raw
//!   `format!`), and the key `n` is reserved by [`WireDoc::field`].
//! * **Duplicate required fields** — the `req*`/`opt*` accessors reject a
//!   key that appears more than once ([`WireError::DuplicateField`]);
//!   list-valued keys go through [`WireDoc::get_all`] instead.

use std::borrow::Cow;
use std::fmt;
use std::fmt::Write as _;

/// Maximum number of lines [`WireDoc::parse`] accepts before rejecting the
/// body as hostile. The largest legitimate documents are full message
/// histories, hard-capped by the workload at 500 000 messages per group
/// (`max_messages_per_group`), so the guard sits comfortably above that:
/// it exists to stop unbounded allocation, not to second-guess real data.
pub const MAX_LINES: usize = 1_048_576;

/// Maximum length in bytes of a single field value.
pub const MAX_VALUE_LEN: usize = 4_096;

/// Errors produced while parsing or interrogating a wire document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The body was empty.
    Empty,
    /// A line had no `": "` separator.
    MalformedLine(String),
    /// A required field was absent.
    MissingField(&'static str),
    /// A field failed numeric conversion.
    BadNumber(&'static str, String),
    /// The document type was not the expected one.
    WrongType {
        /// Expected document type.
        expected: &'static str,
        /// Actual document type found.
        found: String,
    },
    /// The body exceeded an allocation guard (too many lines, or a value
    /// too long).
    TooLarge {
        /// Which guard tripped (`"lines"` or `"value"`).
        what: &'static str,
        /// The configured limit.
        limit: usize,
    },
    /// A field that must appear exactly once appeared more than once.
    DuplicateField(&'static str),
    /// The declared field count (`n` header) disagrees with the fields
    /// actually present — lines were dropped, duplicated, or spliced in.
    CountMismatch {
        /// Count the header declared.
        declared: usize,
        /// Fields actually present.
        actual: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Empty => write!(f, "empty wire document"),
            WireError::MalformedLine(l) => write!(f, "malformed line: {l:?}"),
            WireError::MissingField(k) => write!(f, "missing field {k:?}"),
            WireError::BadNumber(k, v) => write!(f, "field {k:?} is not a number: {v:?}"),
            WireError::WrongType { expected, found } => {
                write!(f, "expected document type {expected:?}, found {found:?}")
            }
            WireError::TooLarge { what, limit } => {
                write!(f, "document exceeds {what} guard ({limit})")
            }
            WireError::DuplicateField(k) => {
                write!(f, "field {k:?} appears more than once")
            }
            WireError::CountMismatch { declared, actual } => {
                write!(f, "declared {declared} fields, found {actual}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Generates the field accessors shared by [`WireDoc`] (owned fields) and
/// [`WireView`] (fields borrowed from the body buffer). Both types expose
/// the exact same read API, so decode code is agnostic to which one it
/// holds.
macro_rules! wire_accessors {
    () => {
        /// First value for `key`, if present.
        pub fn get(&self, key: &str) -> Option<&str> {
            self.fields_iter().find(|(k, _)| *k == key).map(|(_, v)| v)
        }

        /// All values for `key`, in order.
        pub fn get_all<'k>(&'k self, key: &'k str) -> impl Iterator<Item = &'k str> + 'k {
            self.fields_iter()
                .filter(move |(k, _)| *k == key)
                .map(|(_, v)| v)
        }

        /// The single value for `key`, rejecting duplicates. `Ok(None)`
        /// when absent.
        fn unique(&self, key: &'static str) -> Result<Option<&str>, WireError> {
            let mut it = self.get_all(key);
            let first = it.next();
            if first.is_some() && it.next().is_some() {
                return Err(WireError::DuplicateField(key));
            }
            Ok(first)
        }

        /// Required string field. A field that must appear exactly once
        /// appearing twice is an error — a duplicated line is corruption,
        /// not a list.
        pub fn req(&self, key: &'static str) -> Result<&str, WireError> {
            self.unique(key)?.ok_or(WireError::MissingField(key))
        }

        /// Required `u64` field.
        pub fn req_u64(&self, key: &'static str) -> Result<u64, WireError> {
            let v = self.req(key)?;
            v.parse()
                // lint:allow(D10) error-path only: the copy prices a malformed body, not the per-request loop
                .map_err(|_| WireError::BadNumber(key, v.to_string()))
        }

        /// Required `i64` field.
        pub fn req_i64(&self, key: &'static str) -> Result<i64, WireError> {
            let v = self.req(key)?;
            v.parse()
                // lint:allow(D10) error-path only: the copy prices a malformed body, not the per-request loop
                .map_err(|_| WireError::BadNumber(key, v.to_string()))
        }

        /// Optional `u64` field (error if present-and-malformed or
        /// duplicated).
        pub fn opt_u64(&self, key: &'static str) -> Result<Option<u64>, WireError> {
            match self.unique(key)? {
                None => Ok(None),
                Some(v) => v
                    .parse()
                    .map(Some)
                    // lint:allow(D10) error-path only: the copy prices a malformed body, not the per-request loop
                    .map_err(|_| WireError::BadNumber(key, v.to_string())),
            }
        }

        /// Number of fields.
        pub fn len(&self) -> usize {
            self.fields.len()
        }

        /// Whether the document has no fields.
        pub fn is_empty(&self) -> bool {
            self.fields.is_empty()
        }
    };
}

/// A parsed (or under-construction) wire document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDoc {
    /// Document type (the first line). Borrowed for the static kind
    /// literals every service uses; owned only when copied out of a
    /// parsed body ([`WireView::to_doc`]).
    pub kind: Cow<'static, str>,
    fields: Vec<(Cow<'static, str>, String)>,
}

/// A zero-copy parsed wire document: the kind line and every key/value
/// slice borrow straight from the body buffer, so parsing performs one
/// allocation (the field vector) instead of two per line.
///
/// Produced by [`WireDoc::parse`] / [`WireDoc::parse_as`]. Anything that
/// must outlive the body — a quarantine excerpt, a retained document —
/// copies explicitly ([`WireView::to_doc`], or the `&str` accessors
/// feeding owned stores as before).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireView<'a> {
    /// Document type (the first line), borrowed from the body.
    pub kind: &'a str,
    fields: Vec<(&'a str, &'a str)>,
}

impl<'a> WireView<'a> {
    /// Parse a body without copying any of it. Semantics are identical to
    /// the historical owning parser: same guards, same `n` count-header
    /// verification and stripping, same errors.
    pub fn parse(body: &'a str) -> Result<WireView<'a>, WireError> {
        let mut lines = body.lines();
        let kind = lines
            .next()
            .filter(|l| !l.is_empty())
            .ok_or(WireError::Empty)?;
        let mut fields: Vec<(&str, &str)> = Vec::new();
        let mut seen = 0usize;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            seen += 1;
            if seen > MAX_LINES {
                return Err(WireError::TooLarge {
                    what: "lines",
                    limit: MAX_LINES,
                });
            }
            let (k, v) = line
                .split_once(": ")
                // lint:allow(D10) error-path only: a malformed line aborts the parse, so the copy is never hot
                .ok_or_else(|| WireError::MalformedLine(line.to_string()))?;
            if v.len() > MAX_VALUE_LEN {
                return Err(WireError::TooLarge {
                    what: "value",
                    limit: MAX_VALUE_LEN,
                });
            }
            fields.push((k, v));
        }
        if fields.first().is_some_and(|&(k, _)| k == "n") {
            let (_, declared) = fields.remove(0);
            let declared: usize = declared
                .parse()
                // lint:allow(D10) error-path only: a bad count header aborts the parse
                .map_err(|_| WireError::BadNumber("n", declared.to_string()))?;
            if fields.len() != declared {
                return Err(WireError::CountMismatch {
                    declared,
                    actual: fields.len(),
                });
            }
        }
        Ok(WireView { kind, fields })
    }

    /// Parse and verify the document type in one step.
    pub fn parse_as(body: &'a str, expected: &'static str) -> Result<WireView<'a>, WireError> {
        let doc = WireView::parse(body)?;
        if doc.kind != expected {
            return Err(WireError::WrongType {
                expected,
                // lint:allow(D10) error-path only: a type mismatch aborts the parse
                found: doc.kind.to_string(),
            });
        }
        Ok(doc)
    }

    /// Copy into an owning [`WireDoc`] (for retention past the body's
    /// lifetime).
    pub fn to_doc(&self) -> WireDoc {
        WireDoc {
            // lint:allow(D10) to_doc IS the sanctioned copy: callers opt into retention past the borrowed body
            kind: Cow::Owned(self.kind.to_string()),
            fields: self
                .fields
                .iter()
                // lint:allow(D10) to_doc IS the sanctioned copy: callers opt into retention past the borrowed body
                .map(|&(k, v)| (Cow::Owned(k.to_string()), v.to_string()))
                .collect(),
        }
    }

    /// [`WireView::get`], but the returned slice borrows the *body*, not
    /// the view — callers can retain it after the view is dropped (e.g. a
    /// decoded record built from a body that outlives the parse).
    pub fn get_in_body(&self, key: &str) -> Option<&'a str> {
        self.fields.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }

    /// [`WireView::req`] with the body lifetime: required, rejects
    /// duplicates, and the slice outlives the view.
    pub fn req_in_body(&self, key: &'static str) -> Result<&'a str, WireError> {
        let mut it = self.fields.iter().filter(|(k, _)| *k == key);
        let first = it.next();
        if first.is_some() && it.next().is_some() {
            return Err(WireError::DuplicateField(key));
        }
        first.map(|&(_, v)| v).ok_or(WireError::MissingField(key))
    }

    fn fields_iter(&self) -> impl Iterator<Item = (&'a str, &'a str)> + '_ {
        self.fields.iter().copied()
    }

    wire_accessors!();
}

impl PartialEq<WireDoc> for WireView<'_> {
    fn eq(&self, other: &WireDoc) -> bool {
        self.kind == other.kind
            && self.fields.len() == other.fields.len()
            && self
                .fields_iter()
                .zip(other.fields_iter())
                .all(|(a, b)| a == b)
    }
}

impl PartialEq<WireView<'_>> for WireDoc {
    fn eq(&self, other: &WireView<'_>) -> bool {
        other == self
    }
}

impl WireDoc {
    /// Start building a document of type `kind`.
    pub fn new(kind: impl Into<Cow<'static, str>>) -> WireDoc {
        WireDoc {
            kind: kind.into(),
            fields: Vec::new(),
        }
    }

    /// Append a field (keys may repeat).
    ///
    /// # Panics
    /// Panics if the value contains a newline — the caller must sanitize
    /// free-form text (group titles) first via [`sanitize`] — or if the
    /// key is the reserved field-count header `n`.
    pub fn field(self, key: impl Into<Cow<'static, str>>, value: impl fmt::Display) -> WireDoc {
        // lint:allow(D10) Display rendering must own; hot callers use field_string to move instead
        self.field_string(key, value.to_string())
    }

    /// [`WireDoc::field`] for a value that is already an owned `String`:
    /// moves it into the document instead of taking the extra copy the
    /// `Display` path would (the feeds attach millions of pre-encoded
    /// tweet/message payloads per campaign).
    ///
    /// # Panics
    /// Same contract as [`WireDoc::field`].
    pub fn field_string(mut self, key: impl Into<Cow<'static, str>>, value: String) -> WireDoc {
        let key = key.into();
        assert!(
            !value.contains('\n') && !key.contains('\n'),
            "wire fields must be single-line"
        );
        assert!(
            key != "n",
            "field key \"n\" is reserved for the count header"
        );
        self.fields.push((key, value));
        self
    }

    /// Render to the textual body. The field count is emitted as a leading
    /// `n: <count>` header so parsers can detect dropped/duplicated lines;
    /// [`WireDoc::parse`] strips it back out.
    pub fn render(&self) -> String {
        // Exact size up front (plus the count header's few digits): large
        // pages carry hundreds of encoded payload lines, and growth
        // re-copies would double the memory traffic of rendering.
        let body: usize = self.fields.iter().map(|(k, v)| k.len() + v.len() + 3).sum();
        let mut out = String::with_capacity(self.kind.len() + 8 + body);
        out.push_str(&self.kind);
        let _ = write!(out, "\nn: {}", self.fields.len());
        for (k, v) in &self.fields {
            out.push('\n');
            out.push_str(k);
            out.push_str(": ");
            out.push_str(v);
        }
        out
    }

    /// Parse a body into a zero-copy [`WireView`] borrowing from it.
    ///
    /// Applies the allocation guards, and — when the first field line is a
    /// `n: <count>` header — verifies the declared field count and strips
    /// the header. Bodies without the header (handcrafted error notices)
    /// parse leniently.
    pub fn parse(body: &str) -> Result<WireView<'_>, WireError> {
        WireView::parse(body)
    }

    /// Parse and verify the document type in one step.
    pub fn parse_as<'a>(body: &'a str, expected: &'static str) -> Result<WireView<'a>, WireError> {
        WireView::parse_as(body, expected)
    }

    /// Parse into an owning document (copies every field; reach for
    /// [`WireDoc::parse`] on any hot path).
    pub fn parse_owned(body: &str) -> Result<WireDoc, WireError> {
        WireDoc::parse(body).map(|v| v.to_doc())
    }

    fn fields_iter(&self) -> impl Iterator<Item = (&str, &str)> + '_ {
        self.fields.iter().map(|(k, v)| (k.as_ref(), v.as_str()))
    }

    wire_accessors!();
}

/// Replace newlines in free-form text (group titles come from user input)
/// so it can be carried in a single-line field.
pub fn sanitize(text: &str) -> String {
    text.replace(['\n', '\r'], " ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let doc = WireDoc::new("landing")
            .field("title", "Crypto Signals")
            .field("size", 42u32);
        let body = doc.render();
        let parsed = WireDoc::parse(&body).unwrap();
        assert_eq!(parsed.kind, "landing");
        assert_eq!(parsed.get("title"), Some("Crypto Signals"));
        assert_eq!(parsed.req_u64("size").unwrap(), 42);
    }

    #[test]
    fn repeated_keys_preserved_in_order() {
        let doc = WireDoc::new("members")
            .field("member", "+551100")
            .field("member", "+551101")
            .field("member", "+551102");
        let body = doc.render();
        let parsed = WireDoc::parse(&body).unwrap();
        let all: Vec<_> = parsed.get_all("member").collect();
        assert_eq!(all, vec!["+551100", "+551101", "+551102"]);
        assert_eq!(parsed.len(), 3);
    }

    #[test]
    fn parse_as_checks_type() {
        let body = WireDoc::new("alpha").render();
        assert!(WireDoc::parse_as(&body, "alpha").is_ok());
        let err = WireDoc::parse_as(&body, "beta").unwrap_err();
        assert_eq!(
            err,
            WireError::WrongType {
                expected: "beta",
                found: "alpha".into()
            }
        );
    }

    #[test]
    fn errors_on_bad_input() {
        assert_eq!(WireDoc::parse(""), Err(WireError::Empty));
        assert!(matches!(
            WireDoc::parse("doc\nnocolonhere"),
            Err(WireError::MalformedLine(_))
        ));
        // A garbled count header is a parse error, not a field.
        assert!(matches!(
            WireDoc::parse("doc\nn: abc"),
            Err(WireError::BadNumber("n", _))
        ));
        let doc = WireDoc::parse("doc\na: 1").unwrap();
        assert!(matches!(doc.req("x"), Err(WireError::MissingField("x"))));
        assert!(matches!(doc.req_u64("a"), Ok(1)));
    }

    #[test]
    fn count_header_is_emitted_verified_and_stripped() {
        let doc = WireDoc::new("landing")
            .field("size", 3u32)
            .field("title", "x");
        let body = doc.render();
        assert!(body.starts_with("landing\nn: 2\n"), "{body:?}");
        let parsed = WireDoc::parse(&body).unwrap();
        assert_eq!(parsed, doc, "header must be transparent to round-trips");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.get("n"), None);
    }

    #[test]
    fn count_mismatch_detected_both_ways() {
        assert_eq!(
            WireDoc::parse("doc\nn: 2\na: 1"),
            Err(WireError::CountMismatch {
                declared: 2,
                actual: 1
            })
        );
        assert_eq!(
            WireDoc::parse("doc\nn: 0\na: 1"),
            Err(WireError::CountMismatch {
                declared: 0,
                actual: 1
            })
        );
        // Bodies without the header parse leniently (handcrafted notices).
        assert!(WireDoc::parse("not-found\nwhat: nothing here").is_ok());
    }

    #[test]
    fn allocation_guards_reject_hostile_sizes() {
        let mut huge = String::from("doc");
        for i in 0..(MAX_LINES + 1) {
            huge.push_str(&format!("\nk{i}: v"));
        }
        assert_eq!(
            WireDoc::parse(&huge),
            Err(WireError::TooLarge {
                what: "lines",
                limit: MAX_LINES
            })
        );
        let long = format!("doc\nk: {}", "x".repeat(MAX_VALUE_LEN + 1));
        assert_eq!(
            WireDoc::parse(&long),
            Err(WireError::TooLarge {
                what: "value",
                limit: MAX_VALUE_LEN
            })
        );
        // The largest legitimate documents stay under the guards.
        let mut big = WireDoc::new("members");
        for i in 0..1_000 {
            big = big.field("member", format!("+55{i}"));
        }
        assert!(WireDoc::parse(&big.render()).is_ok());
    }

    #[test]
    fn duplicated_scalar_fields_are_rejected() {
        let doc = WireDoc::parse("doc\nsize: 1\nsize: 2\nmember: a\nmember: b").unwrap();
        assert_eq!(doc.req("size"), Err(WireError::DuplicateField("size")));
        assert_eq!(doc.req_u64("size"), Err(WireError::DuplicateField("size")));
        assert_eq!(doc.opt_u64("size"), Err(WireError::DuplicateField("size")));
        // List-valued keys still flow through get_all.
        assert_eq!(doc.get_all("member").count(), 2);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn field_key_n_is_reserved() {
        let _ = WireDoc::new("doc").field("n", 1u32);
    }

    #[test]
    fn values_may_contain_colons_and_unicode() {
        let doc = WireDoc::new("t").field("title", "Grupo: Vagas 🚀 SP: zona sul");
        let body = doc.render();
        let parsed = WireDoc::parse(&body).unwrap();
        assert_eq!(parsed.get("title"), Some("Grupo: Vagas 🚀 SP: zona sul"));
    }

    #[test]
    fn sanitize_strips_newlines() {
        assert_eq!(sanitize("a\nb\r\nc"), "a b  c");
    }

    #[test]
    #[should_panic(expected = "single-line")]
    fn field_rejects_embedded_newline() {
        let _ = WireDoc::new("t").field("title", "a\nb");
    }

    #[test]
    fn opt_u64_semantics() {
        let doc = WireDoc::parse("t\na: 5").unwrap();
        assert_eq!(doc.opt_u64("a").unwrap(), Some(5));
        assert_eq!(doc.opt_u64("b").unwrap(), None);
        let bad = WireDoc::parse("t\na: x").unwrap();
        assert!(bad.opt_u64("a").is_err());
    }

    #[test]
    fn negative_numbers() {
        let doc = WireDoc::new("t").field("delta", -42i64);
        let body = doc.render();
        let parsed = WireDoc::parse(&body).unwrap();
        assert_eq!(parsed.req_i64("delta").unwrap(), -42);
    }
}
