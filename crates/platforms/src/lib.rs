//! # chatlens-platforms — simulators of WhatsApp, Telegram, and Discord
//!
//! This crate models the three messaging platforms the paper studies (§2,
//! Table 1), faithfully enough that the collection pipeline in
//! `chatlens-core` must work around the *same* platform peculiarities the
//! authors did:
//!
//! * **WhatsApp** — no data API. Group metadata is only available by
//!   scraping the invite's web landing page, which exposes the **creator's
//!   phone number** to non-members. Joining reveals every member's phone
//!   number, but message history starts at the join date. At most ~256
//!   members per group; an account that joins too many groups is banned.
//! * **Telegram** — groups *and* channels (few-to-many). A real API with
//!   FLOOD_WAIT rate limiting; full message history since creation; member
//!   lists hideable by admins; phone numbers hidden unless the user opted
//!   in.
//! * **Discord** — servers (guilds) with channels. Invites **auto-expire
//!   after one day** by default; a REST API exposes invite metadata
//!   (including creator and creation date) without joining; bots cannot
//!   join servers by themselves; user profiles expose **connected accounts**
//!   on other platforms (Twitch, Steam, …).
//!
//! The crate is *mechanism*, not *policy*: groups, users, invites,
//! revocation, joining, landing pages and APIs live here; the generative
//! models that decide how many groups exist, how fast they grow and what
//! gets posted live in `chatlens-workload`.
//!
//! All platform frontends speak `chatlens-simnet`'s transport protocol and
//! serialize bodies with the line-based [`wire`] format, so collectors
//! genuinely *parse* responses the way the paper's scrapers parsed pages.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod group;
pub mod id;
pub mod invite;
pub mod message;
pub mod phone;
pub mod platform;
pub mod service;
pub mod spec;
pub mod user;
pub mod wire;

pub use group::{ChatKind, Group, GroupHistory, SizeTimeline};
pub use id::{AccountId, GroupId, PlatformKind, UserId};
pub use invite::{InviteCode, UrlPattern};
pub use message::{Message, MessageKind};
pub use phone::{CountryCode, PhoneNumber};
pub use platform::{JoinError, Platform};
pub use spec::PlatformSpec;
pub use user::{LinkedPlatform, User};
