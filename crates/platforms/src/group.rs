//! Groups (WhatsApp groups, Telegram groups/channels, Discord servers) and
//! their observable state over time.
//!
//! Group dynamics are represented as **precomputed timelines**: a
//! [`SizeTimeline`] carries the member count for each day the group exists
//! during the study, and `revoked_at` fixes when (if ever) its invite URL
//! dies. The platform frontends evaluate these timelines at the virtual
//! time of each request, so the daily monitor observes exactly what a
//! scraper would have seen on that day. The timelines themselves are
//! produced by `chatlens-workload`'s generative models.

use crate::id::{GroupId, PlatformKind, UserId};
use crate::invite::InviteCode;
use crate::message::Message;
use chatlens_simnet::time::{Date, SimTime};

/// What flavour of chat room a group is (Table 1: WhatsApp has groups,
/// Telegram groups and channels, Discord servers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChatKind {
    /// Many-to-many group chat (WhatsApp group, Telegram group).
    Group,
    /// Few-to-many broadcast channel (Telegram only): only the creator and
    /// administrators post — which is why only a sliver of Telegram members
    /// ever appear as message senders (§5).
    Channel,
    /// Discord server (guild) with text channels.
    Server,
}

impl ChatKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ChatKind::Group => "group",
            ChatKind::Channel => "channel",
            ChatKind::Server => "server",
        }
    }
}

/// Daily member counts, anchored at an absolute day number.
///
/// `sizes[i]` is the member count on day `first_day + i`. Queries clamp:
/// before the first tracked day the first value is reported, after the last
/// the last value — matching how a scraper only ever sees the current
/// count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeTimeline {
    /// Absolute day number (days since 1970-01-01) of `sizes[0]`.
    pub first_day: i64,
    /// Member count per day, starting at `first_day`.
    pub sizes: Vec<u32>,
}

impl SizeTimeline {
    /// A timeline starting on `first` with the given per-day counts.
    ///
    /// # Panics
    /// Panics if `sizes` is empty — a group always has at least its
    /// creation-day size.
    pub fn new(first: Date, sizes: Vec<u32>) -> SizeTimeline {
        assert!(!sizes.is_empty(), "a size timeline cannot be empty");
        SizeTimeline {
            first_day: first.day_number(),
            sizes,
        }
    }

    /// A constant-size timeline (useful in tests).
    pub fn flat(first: Date, size: u32) -> SizeTimeline {
        SizeTimeline::new(first, vec![size])
    }

    /// Member count on `date` (clamped at both ends).
    pub fn size_on(&self, date: Date) -> u32 {
        let idx = date.day_number() - self.first_day;
        if idx <= 0 {
            self.sizes[0]
        } else {
            let idx = (idx as usize).min(self.sizes.len() - 1);
            self.sizes[idx]
        }
    }

    /// Member count at instant `t`.
    pub fn size_at(&self, t: SimTime) -> u32 {
        self.size_on(t.date())
    }

    /// First tracked size.
    pub fn first(&self) -> u32 {
        self.sizes[0]
    }

    /// Last tracked size.
    pub fn last(&self) -> u32 {
        *self.sizes.last().expect("non-empty by construction")
    }
}

/// Materialized member list and message log for a group the collector
/// joined. Only the 616 sampled groups ever carry one; the other 350 K
/// groups stay as cheap metadata.
#[derive(Debug, Clone, Default)]
pub struct GroupHistory {
    /// Members at materialization time (platform-local user ids).
    pub members: Vec<UserId>,
    /// Every message since group creation, in chronological order.
    pub messages: Vec<Message>,
}

/// One public group/channel/server.
#[derive(Debug, Clone)]
pub struct Group {
    /// Dense platform-local id.
    pub id: GroupId,
    /// The platform this group lives on.
    pub platform: PlatformKind,
    /// Group vs channel vs server.
    pub chat_kind: ChatKind,
    /// Group title as shown on landing pages.
    pub title: String,
    /// The creating user.
    pub creator: UserId,
    /// Creation instant (groups can long predate the study window — §5
    /// found a six-year-old WhatsApp group).
    pub created_at: SimTime,
    /// When the invite URL dies, if ever: manual revocation, group
    /// deletion, or automatic expiry (Discord's 1-day default TTL).
    pub revoked_at: Option<SimTime>,
    /// The group's invite URL.
    pub invite: InviteCode,
    /// Telegram: admins may hide the member list from members (§3.3 — only
    /// 24 of the 100 joined groups had visible lists).
    pub member_list_hidden: bool,
    /// Mean fraction of members online (Telegram/Discord web clients and
    /// APIs report an online count; Fig 7b).
    pub online_frac: f32,
    /// Daily member counts.
    pub sizes: SizeTimeline,
    /// Mean messages per day, used by the workload to materialize history.
    pub msgs_per_day: f64,
    /// Seed for deterministic history materialization.
    pub activity_seed: u64,
    /// Message log + member list, present only after materialization.
    pub history: Option<GroupHistory>,
}

impl Group {
    /// Whether the invite URL still works at instant `t`.
    pub fn is_alive(&self, t: SimTime) -> bool {
        t >= self.created_at && self.revoked_at.map(|r| t < r).unwrap_or(true)
    }

    /// Member count visible at instant `t`.
    pub fn size_at(&self, t: SimTime) -> u32 {
        self.sizes.size_at(t)
    }

    /// Online member count at instant `t` (0 for platforms that do not
    /// report one; WhatsApp landing pages don't).
    pub fn online_at(&self, t: SimTime) -> u32 {
        if self.platform == PlatformKind::WhatsApp {
            return 0;
        }
        (self.size_at(t) as f64 * f64::from(self.online_frac)).round() as u32
    }

    /// Group age at instant `t`, in whole days (saturates at 0).
    pub fn age_days(&self, t: SimTime) -> u64 {
        (t - self.created_at).as_days()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invite::InviteCode;
    use chatlens_simnet::rng::Rng;
    use chatlens_simnet::time::SimDuration;

    fn test_group(created: Date, revoked: Option<SimTime>) -> Group {
        Group {
            id: GroupId(0),
            platform: PlatformKind::Telegram,
            chat_kind: ChatKind::Group,
            title: "test".into(),
            creator: UserId(0),
            created_at: created.midnight(),
            revoked_at: revoked,
            invite: InviteCode::generate(PlatformKind::Telegram, &mut Rng::new(1)),
            member_list_hidden: false,
            online_frac: 0.25,
            sizes: SizeTimeline::new(created, vec![100, 110, 90]),
            msgs_per_day: 5.0,
            activity_seed: 7,
            history: None,
        }
    }

    #[test]
    fn timeline_clamps_both_ends() {
        let first = Date::new(2020, 4, 8);
        let tl = SizeTimeline::new(first, vec![10, 20, 30]);
        assert_eq!(tl.size_on(Date::new(2020, 4, 1)), 10, "before start");
        assert_eq!(tl.size_on(Date::new(2020, 4, 8)), 10);
        assert_eq!(tl.size_on(Date::new(2020, 4, 9)), 20);
        assert_eq!(tl.size_on(Date::new(2020, 4, 10)), 30);
        assert_eq!(tl.size_on(Date::new(2020, 6, 1)), 30, "after end");
        assert_eq!(tl.first(), 10);
        assert_eq!(tl.last(), 30);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn timeline_rejects_empty() {
        let _ = SizeTimeline::new(Date::new(2020, 4, 8), vec![]);
    }

    #[test]
    fn alive_window() {
        let created = Date::new(2020, 4, 10);
        let revoked = created.midnight() + SimDuration::days(5);
        let g = test_group(created, Some(revoked));
        assert!(!g.is_alive(
            created
                .midnight()
                .checked_sub(SimDuration::secs(1))
                .unwrap()
        ));
        assert!(g.is_alive(created.midnight()));
        assert!(g.is_alive(revoked.checked_sub(SimDuration::secs(1)).unwrap()));
        assert!(!g.is_alive(revoked));
    }

    #[test]
    fn never_revoked_group_stays_alive() {
        let g = test_group(Date::new(2020, 4, 10), None);
        assert!(g.is_alive(Date::new(2030, 1, 1).midnight()));
    }

    #[test]
    fn online_count_scales_with_size() {
        let g = test_group(Date::new(2020, 4, 8), None);
        let t = Date::new(2020, 4, 8).midnight();
        assert_eq!(g.online_at(t), 25); // 100 * 0.25
        let mut wa = test_group(Date::new(2020, 4, 8), None);
        wa.platform = PlatformKind::WhatsApp;
        assert_eq!(wa.online_at(t), 0, "WhatsApp reports no online count");
    }

    #[test]
    fn age_in_days() {
        let g = test_group(Date::new(2020, 4, 8), None);
        let t = Date::new(2020, 4, 18).midnight() + SimDuration::hours(5);
        assert_eq!(g.age_days(t), 10);
        assert_eq!(g.age_days(SimTime::EPOCH), 0, "saturates");
    }
}
