//! Phone numbers and country codes.
//!
//! WhatsApp and Telegram register users by phone number; the paper derives
//! a WhatsApp group's country of origin from the **country code of the
//! creator's phone number** (§5, "Group Countries") and hashes the numbers
//! before storage (§3.4). This module provides an E.164-style phone-number
//! type, the country table used by the workload models (the top WhatsApp
//! countries reported by the paper plus the rest of the study's language
//! regions), and deterministic number allocation.

use chatlens_simnet::rng::Rng;
use std::fmt;

/// ISO-3166-style country entries used by the simulation.
///
/// `dial` is the E.164 country calling code; `iso` the two-letter code the
/// paper reports (e.g. "BR").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CountryCode {
    /// Two-letter ISO code (e.g. "BR").
    pub iso: &'static str,
    /// E.164 dialing prefix (e.g. 55 for Brazil).
    pub dial: u16,
    /// Number of digits in the national significant number.
    pub national_digits: u8,
}

/// The country table: the paper's top WhatsApp-creator countries (§5:
/// Brazil, Nigeria, Indonesia, India, Saudi Arabia, Mexico, Argentina)
/// plus the other regions implied by the language analysis (Fig 4).
pub const COUNTRIES: &[CountryCode] = &[
    CountryCode {
        iso: "BR",
        dial: 55,
        national_digits: 11,
    },
    CountryCode {
        iso: "NG",
        dial: 234,
        national_digits: 10,
    },
    CountryCode {
        iso: "ID",
        dial: 62,
        national_digits: 10,
    },
    CountryCode {
        iso: "IN",
        dial: 91,
        national_digits: 10,
    },
    CountryCode {
        iso: "SA",
        dial: 966,
        national_digits: 9,
    },
    CountryCode {
        iso: "MX",
        dial: 52,
        national_digits: 10,
    },
    CountryCode {
        iso: "AR",
        dial: 54,
        national_digits: 10,
    },
    CountryCode {
        iso: "US",
        dial: 1,
        national_digits: 10,
    },
    CountryCode {
        iso: "GB",
        dial: 44,
        national_digits: 10,
    },
    CountryCode {
        iso: "ES",
        dial: 34,
        national_digits: 9,
    },
    CountryCode {
        iso: "PT",
        dial: 351,
        national_digits: 9,
    },
    CountryCode {
        iso: "TR",
        dial: 90,
        national_digits: 10,
    },
    CountryCode {
        iso: "EG",
        dial: 20,
        national_digits: 10,
    },
    CountryCode {
        iso: "KW",
        dial: 965,
        national_digits: 8,
    },
    CountryCode {
        iso: "JP",
        dial: 81,
        national_digits: 10,
    },
    CountryCode {
        iso: "DE",
        dial: 49,
        national_digits: 10,
    },
    CountryCode {
        iso: "FR",
        dial: 33,
        national_digits: 9,
    },
    CountryCode {
        iso: "RU",
        dial: 7,
        national_digits: 10,
    },
    CountryCode {
        iso: "PK",
        dial: 92,
        national_digits: 10,
    },
    CountryCode {
        iso: "ZA",
        dial: 27,
        national_digits: 9,
    },
];

/// Look up a country by its two-letter ISO code.
pub fn country_by_iso(iso: &str) -> Option<CountryCode> {
    COUNTRIES.iter().copied().find(|c| c.iso == iso)
}

/// Look up a country by its dialing prefix.
pub fn country_by_dial(dial: u16) -> Option<CountryCode> {
    COUNTRIES.iter().copied().find(|c| c.dial == dial)
}

/// An E.164-style phone number: dialing prefix plus national number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhoneNumber {
    /// E.164 country calling code.
    pub dial: u16,
    /// National significant number.
    pub national: u64,
}

impl PhoneNumber {
    /// Allocate a random number in `country`, deterministic under `rng`.
    ///
    /// Numbers start with a nonzero digit and have the country's national
    /// length; collisions across draws are possible but harmless (two users
    /// sharing a number merely share a hash, which only ever *understates*
    /// PII exposure counts).
    pub fn allocate(country: CountryCode, rng: &mut Rng) -> PhoneNumber {
        let digits = u32::from(country.national_digits);
        let lo = 10u64.pow(digits - 1);
        let hi = 10u64.pow(digits) - 1;
        PhoneNumber {
            dial: country.dial,
            national: rng.range(lo, hi),
        }
    }

    /// E.164 string, e.g. `+5511987654321`.
    pub fn e164(&self) -> String {
        format!("+{}{}", self.dial, self.national)
    }

    /// The country this number belongs to, if its prefix is in the table.
    pub fn country(&self) -> Option<CountryCode> {
        country_by_dial(self.dial)
    }

    /// Two-letter ISO code of the number's country, or `"??"` if unknown.
    pub fn iso(&self) -> &'static str {
        self.country().map(|c| c.iso).unwrap_or("??")
    }
}

impl fmt::Display for PhoneNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.e164())
    }
}

/// Parse an E.164 string produced by [`PhoneNumber::e164`].
///
/// Returns `None` for anything that does not match a known country prefix
/// followed by the right number of national digits.
pub fn parse_e164(s: &str) -> Option<PhoneNumber> {
    let digits = s.strip_prefix('+')?;
    if !digits.bytes().all(|b| b.is_ascii_digit()) || digits.is_empty() {
        return None;
    }
    // Try longest dialing prefixes first (3, then 2, then 1 digits) so
    // e.g. +351... parses as Portugal rather than a bogus 1-digit match.
    for plen in (1..=3.min(digits.len())).rev() {
        let (p, rest) = digits.split_at(plen);
        let dial: u16 = p.parse().ok()?;
        if let Some(c) = country_by_dial(dial) {
            if rest.len() == usize::from(c.national_digits) {
                return Some(PhoneNumber {
                    dial,
                    national: rest.parse().ok()?,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_paper_countries() {
        for iso in ["BR", "NG", "ID", "IN", "SA", "MX", "AR"] {
            assert!(country_by_iso(iso).is_some(), "missing {iso}");
        }
    }

    #[test]
    fn dial_codes_unique() {
        let mut dials: Vec<u16> = COUNTRIES.iter().map(|c| c.dial).collect();
        dials.sort_unstable();
        dials.dedup();
        assert_eq!(dials.len(), COUNTRIES.len());
    }

    #[test]
    fn allocation_has_correct_shape() {
        let mut rng = Rng::new(1);
        let br = country_by_iso("BR").unwrap();
        for _ in 0..100 {
            let p = PhoneNumber::allocate(br, &mut rng);
            assert_eq!(p.dial, 55);
            let s = p.national.to_string();
            assert_eq!(s.len(), 11, "national number {s} wrong length");
        }
    }

    #[test]
    fn e164_roundtrip() {
        let mut rng = Rng::new(2);
        for &c in COUNTRIES {
            let p = PhoneNumber::allocate(c, &mut rng);
            let parsed = parse_e164(&p.e164()).unwrap_or_else(|| panic!("parse {p}"));
            assert_eq!(parsed, p);
            assert_eq!(parsed.iso(), c.iso);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_e164(""), None);
        assert_eq!(parse_e164("+"), None);
        assert_eq!(parse_e164("5511987654321"), None, "missing plus");
        assert_eq!(parse_e164("+55abc"), None);
        assert_eq!(parse_e164("+99912345678"), None, "unknown prefix");
        // Right prefix, wrong length.
        assert_eq!(parse_e164("+55123"), None);
    }

    #[test]
    fn longest_prefix_wins() {
        // +351 (PT, 9 digits) must not parse as an invalid 1-digit prefix.
        let pt = country_by_iso("PT").unwrap();
        let mut rng = Rng::new(3);
        let p = PhoneNumber::allocate(pt, &mut rng);
        assert_eq!(parse_e164(&p.e164()).unwrap().iso(), "PT");
    }

    #[test]
    fn display_matches_e164() {
        let p = PhoneNumber {
            dial: 55,
            national: 11_987_654_321,
        };
        assert_eq!(p.to_string(), "+5511987654321");
    }
}
