//! A lightweight *item-level* parser layered on the token stream.
//!
//! The flat scanner ([`scan`](mod@crate::scan)) is enough for token-shaped
//! rules (D1–D8), but the structure-aware rules need to know *what* a
//! token belongs to: D9 must pair a `struct` definition's field list with
//! the `save`/`load` bodies of its `impl Persist`, D11 must find the
//! stream-registry constant, D12 the metric-key constants. This module
//! recognises exactly those item shapes — struct/enum definitions with
//! named fields, `impl` blocks with per-method body spans, free functions,
//! `const` items with value spans, macro invocations, and inline `mod`
//! nesting — without attempting to be a full Rust parser. Anything it
//! cannot classify it skips; spans are always in-bounds token ranges
//! (property-tested against arbitrary token streams).

use crate::scan::{Tok, TokKind};

/// What kind of item was recognised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `struct Name { .. }` / `struct Name(..);` / `struct Name;`
    Struct,
    /// `enum Name { .. }`
    Enum,
    /// `impl [Trait for] Type { .. }`
    Impl,
    /// A free `fn` (not inside an `impl`).
    Fn,
    /// `const NAME: Ty = value;` or `static NAME: Ty = value;`
    Const,
    /// `name!( .. )` at item/statement position.
    MacroCall,
}

/// A named struct field with its (flattened) type text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// The type tokens joined with single spaces (e.g. `Vec < u32 >`).
    pub ty: String,
}

/// A method inside an `impl` block, with its body token span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Method {
    /// Method name.
    pub name: String,
    /// Token index range of the body, `[open brace, close brace]`.
    pub body: (usize, usize),
}

/// One recognised item.
#[derive(Debug, Clone)]
pub struct Item {
    /// Classification.
    pub kind: ItemKind,
    /// Struct/enum/fn/const name; macro name for [`ItemKind::MacroCall`];
    /// the *type* name for [`ItemKind::Impl`].
    pub name: String,
    /// For impls: the trait name if this is a trait impl (`Persist` in
    /// `impl Persist for Foo`).
    pub trait_name: Option<String>,
    /// For macro calls: the first identifier inside the arguments (the
    /// target type of `persist_struct!(Type { .. })`).
    pub target: Option<String>,
    /// Named fields (structs) or the brace-list identifiers of a macro
    /// call (`persist_struct!`'s field list).
    pub fields: Vec<Field>,
    /// Variant names (enums).
    pub variants: Vec<String>,
    /// Methods with body spans (impls).
    pub methods: Vec<Method>,
    /// Inline-module path from the file root (e.g. `["keys"]`).
    pub module: Vec<String>,
    /// Token index range of the whole item, inclusive.
    pub span: (usize, usize),
    /// 1-based source line of the item's first token.
    pub line: u32,
}

/// Parse the items of one file's token stream.
pub fn parse_items(toks: &[Tok]) -> Vec<Item> {
    let mut out = Vec::new();
    parse_range(toks, 0, toks.len(), &mut Vec::new(), &mut out);
    out
}

/// Find the matching close delimiter for the open one at `open_idx`,
/// clamped to `hi`. Returns `hi - 1` (or `open_idx`) when unbalanced.
fn balance_to(toks: &[Tok], open_idx: usize, hi: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    let mut i = open_idx;
    while i < hi.min(toks.len()) {
        if toks[i].is_punct(open) {
            depth += 1;
        } else if toks[i].is_punct(close) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    hi.min(toks.len()).saturating_sub(1).max(open_idx)
}

/// Skip one `#[...]` / `#![...]` attribute starting at `i` (which must
/// point at the `#`); returns the index just past it.
fn skip_attr(toks: &[Tok], i: usize, hi: usize) -> usize {
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if toks.get(j).is_some_and(|t| t.is_punct('[')) {
        balance_to(toks, j, hi, '[', ']') + 1
    } else {
        i + 1
    }
}

/// Skip a `<...>` generics list starting at `i` if one is there.
fn skip_generics(toks: &[Tok], i: usize, hi: usize) -> usize {
    if !toks.get(i).is_some_and(|t| t.is_punct('<')) {
        return i;
    }
    let mut depth = 0usize;
    let mut j = i;
    while j < hi.min(toks.len()) {
        if toks[j].is_punct('<') {
            depth += 1;
        } else if toks[j].is_punct('>') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    hi.min(toks.len())
}

/// Index of the first token at `target` punct with all of `()`, `[]`,
/// `{}` and `<>` balanced, scanning `[i, hi)`; `hi` if none.
fn find_at_depth0(toks: &[Tok], i: usize, hi: usize, target: &[char]) -> usize {
    let (mut p, mut b, mut c, mut a) = (0i32, 0i32, 0i32, 0i32);
    let mut j = i;
    while j < hi.min(toks.len()) {
        let t = &toks[j];
        if p == 0 && b == 0 && c == 0 && a <= 0 && target.iter().any(|&ch| t.is_punct(ch)) {
            return j;
        }
        if t.is_punct('(') {
            p += 1;
        } else if t.is_punct(')') {
            p -= 1;
        } else if t.is_punct('[') {
            b += 1;
        } else if t.is_punct(']') {
            b -= 1;
        } else if t.is_punct('{') {
            c += 1;
        } else if t.is_punct('}') {
            c -= 1;
        } else if t.is_punct('<') {
            // `->` arrows never reach here (the `-` is a separate token
            // and `>` alone just decrements past zero, clamped below).
            a += 1;
        } else if t.is_punct('>') {
            a = (a - 1).max(0);
        }
        j += 1;
    }
    hi.min(toks.len())
}

fn parse_range(toks: &[Tok], lo: usize, hi: usize, module: &mut Vec<String>, out: &mut Vec<Item>) {
    let hi = hi.min(toks.len());
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.is_punct('#') {
            i = skip_attr(toks, i, hi).max(i + 1);
            continue;
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "mod" => {
                let name = match toks.get(i + 1) {
                    Some(n) if n.kind == TokKind::Ident => n.text.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                match toks.get(i + 2) {
                    Some(b) if b.is_punct('{') => {
                        let close = balance_to(toks, i + 2, hi, '{', '}');
                        module.push(name);
                        parse_range(toks, i + 3, close, module, out);
                        module.pop();
                        i = close + 1;
                    }
                    _ => i += 2, // `mod name;`
                }
            }
            "struct" => i = parse_struct(toks, i, hi, module, out),
            "enum" => i = parse_enum(toks, i, hi, module, out),
            "impl" => i = parse_impl(toks, i, hi, module, out),
            "fn" => i = parse_fn(toks, i, hi, module, out),
            "const" | "static" => i = parse_const(toks, i, hi, module, out),
            _ => {
                // `name!( .. )` / `name!{ .. }` macro invocation.
                if toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
                    && toks
                        .get(i + 2)
                        .is_some_and(|n| n.is_punct('(') || n.is_punct('{') || n.is_punct('['))
                {
                    i = parse_macro_call(toks, i, hi, module, out);
                } else {
                    i += 1;
                }
            }
        }
    }
}

fn parse_struct(
    toks: &[Tok],
    at: usize,
    hi: usize,
    module: &[String],
    out: &mut Vec<Item>,
) -> usize {
    let name = match toks.get(at + 1) {
        Some(n) if n.kind == TokKind::Ident => n.text.clone(),
        _ => return at + 1,
    };
    let mut j = skip_generics(toks, at + 2, hi);
    // Skip a where clause: scan to the first `{`, `(` or `;` at depth 0.
    j = find_at_depth0(toks, j, hi, &['{', '(', ';']);
    if j >= hi {
        return at + 1;
    }
    let mut fields = Vec::new();
    let end = if toks[j].is_punct('{') {
        let close = balance_to(toks, j, hi, '{', '}');
        parse_named_fields(toks, j + 1, close, &mut fields);
        close
    } else if toks[j].is_punct('(') {
        // Tuple struct: no named fields; consume through the `;`.
        let close = balance_to(toks, j, hi, '(', ')');
        find_at_depth0(toks, close + 1, hi, &[';'])
    } else {
        j // unit struct `;`
    };
    out.push(Item {
        kind: ItemKind::Struct,
        name,
        trait_name: None,
        target: None,
        fields,
        variants: Vec::new(),
        methods: Vec::new(),
        module: module.to_vec(),
        span: (at, end.min(hi.saturating_sub(1)).max(at)),
        line: toks[at].line,
    });
    end + 1
}

/// Parse `name: Type,` pairs in `[lo, hi)` (a struct body), appending to
/// `fields`. Attributes and visibility modifiers are skipped.
fn parse_named_fields(toks: &[Tok], lo: usize, hi: usize, fields: &mut Vec<Field>) {
    let hi = hi.min(toks.len());
    let mut i = lo;
    while i < hi {
        if toks[i].is_punct('#') {
            i = skip_attr(toks, i, hi).max(i + 1);
            continue;
        }
        if toks[i].is_ident("pub") {
            i += 1;
            if toks.get(i).is_some_and(|t| t.is_punct('(')) {
                i = balance_to(toks, i, hi, '(', ')') + 1;
            }
            continue;
        }
        // `name :` (but not `name ::`).
        if toks[i].kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            let ty_end = find_at_depth0(toks, i + 2, hi, &[',']).min(hi);
            let ty = toks
                .get((i + 2).min(ty_end)..ty_end)
                .unwrap_or(&[])
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            fields.push(Field {
                name: toks[i].text.clone(),
                ty,
            });
            i = ty_end + 1;
        } else {
            i += 1;
        }
    }
}

fn parse_enum(toks: &[Tok], at: usize, hi: usize, module: &[String], out: &mut Vec<Item>) -> usize {
    let name = match toks.get(at + 1) {
        Some(n) if n.kind == TokKind::Ident => n.text.clone(),
        _ => return at + 1,
    };
    let j = find_at_depth0(toks, skip_generics(toks, at + 2, hi), hi, &['{', ';']);
    if j >= hi || !toks[j].is_punct('{') {
        return at + 1;
    }
    let close = balance_to(toks, j, hi, '{', '}');
    let mut variants = Vec::new();
    let mut i = j + 1;
    while i < close {
        if toks[i].is_punct('#') {
            i = skip_attr(toks, i, close).max(i + 1);
            continue;
        }
        if toks[i].kind == TokKind::Ident {
            variants.push(toks[i].text.clone());
            // Skip any payload / discriminant through the next top-level
            // comma.
            i = find_at_depth0(toks, i + 1, close, &[',']) + 1;
        } else {
            i += 1;
        }
    }
    out.push(Item {
        kind: ItemKind::Enum,
        name,
        trait_name: None,
        target: None,
        fields: Vec::new(),
        variants,
        methods: Vec::new(),
        module: module.to_vec(),
        span: (at, close.min(hi.saturating_sub(1)).max(at)),
        line: toks[at].line,
    });
    close + 1
}

/// Last plain identifier of a type path in `[lo, hi)`, ignoring generic
/// arguments (`std :: borrow :: Cow < 'static , str >` → `Cow`).
fn path_type_name(toks: &[Tok], lo: usize, hi: usize) -> Option<String> {
    let mut name = None;
    let mut angle = 0i32;
    for t in toks.iter().take(hi.min(toks.len())).skip(lo) {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0);
        } else if angle == 0 && t.kind == TokKind::Ident && t.text != "dyn" {
            name = Some(t.text.clone());
        }
    }
    name
}

fn parse_impl(toks: &[Tok], at: usize, hi: usize, module: &[String], out: &mut Vec<Item>) -> usize {
    let j = skip_generics(toks, at + 1, hi);
    // First path: either the trait (if `for` follows) or the self type.
    let path1_end = find_at_depth0(toks, j, hi, &['{', ';']);
    if path1_end >= hi {
        return at + 1;
    }
    // Look for a `for` keyword at depth 0 between j and the body.
    let mut for_at = None;
    {
        let mut angle = 0i32;
        for (k, t) in toks
            .iter()
            .enumerate()
            .take(path1_end.min(toks.len()))
            .skip(j)
        {
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle = (angle - 1).max(0);
            } else if angle == 0 && t.is_ident("for") {
                for_at = Some(k);
                break;
            } else if angle == 0 && t.is_ident("where") {
                break;
            }
        }
    }
    let (trait_name, ty_lo) = match for_at {
        Some(k) => (path_type_name(toks, j, k), k + 1),
        None => (None, j),
    };
    // Self-type path ends at the body brace or a where clause.
    let mut ty_hi = path1_end;
    {
        let mut angle = 0i32;
        for (k, t) in toks
            .iter()
            .enumerate()
            .take(path1_end.min(toks.len()))
            .skip(ty_lo)
        {
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle = (angle - 1).max(0);
            } else if angle == 0 && t.is_ident("where") {
                ty_hi = k;
                break;
            }
        }
        let _ = angle;
    }
    let name = match path_type_name(toks, ty_lo, ty_hi) {
        Some(n) => n,
        None => return at + 1,
    };
    if !toks.get(path1_end).is_some_and(|t| t.is_punct('{')) {
        return path1_end + 1;
    }
    let close = balance_to(toks, path1_end, hi, '{', '}');
    // Methods: `fn name .. { body }` at body depth 1.
    let mut methods = Vec::new();
    let mut i = path1_end + 1;
    while i < close {
        if toks[i].is_punct('#') {
            i = skip_attr(toks, i, close).max(i + 1);
            continue;
        }
        if toks[i].is_punct('{') {
            // A nested block that is not a method body we tracked (e.g. a
            // const initializer) — skip it wholesale.
            i = balance_to(toks, i, close, '{', '}') + 1;
            continue;
        }
        if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            let mname = toks[i + 1].text.clone();
            let body_open = find_at_depth0(toks, i + 2, close, &['{', ';']);
            if body_open < close && toks[body_open].is_punct('{') {
                let body_close = balance_to(toks, body_open, close, '{', '}');
                methods.push(Method {
                    name: mname,
                    body: (body_open, body_close),
                });
                i = body_close + 1;
                continue;
            }
            i = body_open + 1;
            continue;
        }
        i += 1;
    }
    out.push(Item {
        kind: ItemKind::Impl,
        name,
        trait_name,
        target: None,
        fields: Vec::new(),
        variants: Vec::new(),
        methods,
        module: module.to_vec(),
        span: (at, close.min(hi.saturating_sub(1)).max(at)),
        line: toks[at].line,
    });
    close + 1
}

fn parse_fn(toks: &[Tok], at: usize, hi: usize, module: &[String], out: &mut Vec<Item>) -> usize {
    let name = match toks.get(at + 1) {
        Some(n) if n.kind == TokKind::Ident => n.text.clone(),
        _ => return at + 1,
    };
    let body_open = find_at_depth0(toks, at + 2, hi, &['{', ';']);
    if body_open >= hi || !toks[body_open].is_punct('{') {
        return body_open + 1;
    }
    let close = balance_to(toks, body_open, hi, '{', '}');
    out.push(Item {
        kind: ItemKind::Fn,
        name,
        trait_name: None,
        target: None,
        fields: Vec::new(),
        variants: Vec::new(),
        methods: vec![Method {
            name: "self".into(),
            body: (body_open, close),
        }],
        module: module.to_vec(),
        span: (at, close.min(hi.saturating_sub(1)).max(at)),
        line: toks[at].line,
    });
    close + 1
}

fn parse_const(
    toks: &[Tok],
    at: usize,
    hi: usize,
    module: &[String],
    out: &mut Vec<Item>,
) -> usize {
    let name = match toks.get(at + 1) {
        Some(n) if n.kind == TokKind::Ident && n.text != "fn" => n.text.clone(),
        _ => return at + 1,
    };
    let end = find_at_depth0(toks, at + 2, hi, &[';']);
    out.push(Item {
        kind: ItemKind::Const,
        name,
        trait_name: None,
        target: None,
        fields: Vec::new(),
        variants: Vec::new(),
        methods: Vec::new(),
        module: module.to_vec(),
        span: (at, end.min(hi.saturating_sub(1)).max(at)),
        line: toks[at].line,
    });
    end + 1
}

fn parse_macro_call(
    toks: &[Tok],
    at: usize,
    hi: usize,
    module: &[String],
    out: &mut Vec<Item>,
) -> usize {
    let name = toks[at].text.clone();
    let open = at + 2;
    let (oc, cc) = if toks[open].is_punct('(') {
        ('(', ')')
    } else if toks[open].is_punct('{') {
        ('{', '}')
    } else {
        ('[', ']')
    };
    let close = balance_to(toks, open, hi, oc, cc);
    // First identifier of the arguments (e.g. the target type of
    // `persist_struct!(Type { .. })`).
    let target = toks
        .get(open + 1..close.min(toks.len()))
        .unwrap_or(&[])
        .iter()
        .find(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone());
    // A brace-list inside the args contributes bare identifiers as a
    // "field list" (`{ a, b, c }`).
    let mut fields = Vec::new();
    if let Some(brace) = (open + 1..close).find(|&k| toks[k].is_punct('{')) {
        let bclose = balance_to(toks, brace, close, '{', '}');
        let mut i = brace + 1;
        while i < bclose {
            if toks[i].kind == TokKind::Ident {
                fields.push(Field {
                    name: toks[i].text.clone(),
                    ty: String::new(),
                });
                i = find_at_depth0(toks, i + 1, bclose, &[',']) + 1;
            } else {
                i += 1;
            }
        }
    }
    out.push(Item {
        kind: ItemKind::MacroCall,
        name,
        trait_name: None,
        target,
        fields,
        variants: Vec::new(),
        methods: Vec::new(),
        module: module.to_vec(),
        span: (at, close.min(hi.saturating_sub(1)).max(at)),
        line: toks[at].line,
    });
    close + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn items_of(src: &str) -> Vec<Item> {
        parse_items(&scan(src).tokens)
    }

    #[test]
    fn struct_fields_are_parsed() {
        let src = "pub struct Foo { pub a: u32, b: Vec<String>, c: BTreeMap<String, (u32, u64)> }";
        let items = items_of(src);
        assert_eq!(items.len(), 1);
        let s = &items[0];
        assert_eq!(s.kind, ItemKind::Struct);
        assert_eq!(s.name, "Foo");
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(s.fields[1].ty.contains("Vec"));
    }

    #[test]
    fn tuple_and_unit_structs_have_no_fields() {
        let items = items_of("struct T(u32, String);\nstruct U;");
        assert_eq!(items.len(), 2);
        assert!(items.iter().all(|i| i.fields.is_empty()));
    }

    #[test]
    fn enum_variants_are_parsed_with_payloads_skipped() {
        let src = "enum E { A, B { x: u32, y: u64 }, C(String), D = 7 }";
        let items = items_of(src);
        assert_eq!(items[0].variants, vec!["A", "B", "C", "D"]);
    }

    #[test]
    fn trait_impls_expose_methods_with_body_spans() {
        let src = "impl Persist for Foo { fn save(&self, w: &mut Writer) { self.a.save(w); } fn load(r: &mut Reader<'_>) -> Result<Self, E> { Ok(Foo { a: u32::load(r)? }) } }";
        let items = items_of(src);
        assert_eq!(items.len(), 1);
        let i = &items[0];
        assert_eq!(i.kind, ItemKind::Impl);
        assert_eq!(i.name, "Foo");
        assert_eq!(i.trait_name.as_deref(), Some("Persist"));
        assert_eq!(i.methods.len(), 2);
        assert_eq!(i.methods[0].name, "save");
        let (lo, hi) = i.methods[0].body;
        assert!(lo < hi);
    }

    #[test]
    fn generic_impls_resolve_the_plain_type_name() {
        let src = "impl<T: Persist> Persist for Vec<T> { fn save(&self, w: &mut Writer) {} }";
        let items = items_of(src);
        assert_eq!(items[0].name, "Vec");
        let cow = "impl Persist for std::borrow::Cow<'static, str> { fn save(&self) {} }";
        assert_eq!(items_of(cow)[0].name, "Cow");
    }

    #[test]
    fn inherent_impls_have_no_trait() {
        let src = "impl Foo { pub fn new() -> Foo { Foo } }";
        let items = items_of(src);
        assert_eq!(items[0].trait_name, None);
        assert_eq!(items[0].methods[0].name, "new");
    }

    #[test]
    fn consts_span_array_semicolons() {
        let src = "const X: [u64; 4] = [0; 4];\nconst Y: &str = \"y\";";
        let items = items_of(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "X");
        assert_eq!(items[1].name, "Y");
    }

    #[test]
    fn macro_calls_carry_target_and_field_list() {
        let src = "persist_struct!(MonitorState { timelines, terminal, gaps, quarantine });";
        let items = items_of(src);
        assert_eq!(items[0].kind, ItemKind::MacroCall);
        assert_eq!(items[0].name, "persist_struct");
        assert_eq!(items[0].target.as_deref(), Some("MonitorState"));
        let names: Vec<&str> = items[0].fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["timelines", "terminal", "gaps", "quarantine"]);
    }

    #[test]
    fn module_nesting_is_tracked() {
        let src = "pub mod keys { pub const A: &str = \"a\"; }\nconst B: &str = \"b\";";
        let items = items_of(src);
        let a = items.iter().find(|i| i.name == "A").unwrap();
        assert_eq!(a.module, vec!["keys"]);
        let b = items.iter().find(|i| i.name == "B").unwrap();
        assert!(b.module.is_empty());
    }

    #[test]
    fn spans_stay_in_bounds_on_broken_input() {
        for src in [
            "struct",
            "struct {",
            "impl for {",
            "enum E { A",
            "fn f(",
            "const X",
            "mod m {",
            "m!(",
            "impl Persist for { fn save",
        ] {
            let toks = scan(src).tokens;
            for item in parse_items(&toks) {
                assert!(item.span.0 <= item.span.1 || toks.is_empty(), "{src}");
                assert!(item.span.1 < toks.len().max(1), "{src}");
            }
        }
    }
}
