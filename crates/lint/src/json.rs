//! Machine-readable lint output: a hand-rolled emitter and a minimal
//! validating parser for the `chatlens-lint/v1` schema.
//!
//! The lint crate is deliberately dependency-free, so both directions are
//! written by hand. The schema is stable — ci.sh writes `target/lint.json`
//! every run and downstream tooling may key off it:
//!
//! ```json
//! {
//!   "schema": "chatlens-lint/v1",
//!   "files_scanned": 57,
//!   "suppressed": 12,
//!   "findings": [
//!     { "rule": "D1", "path": "crates/x/src/y.rs",
//!       "line": 3, "col": 9, "message": "..." }
//!   ],
//!   "per_rule": { "D1": 0, "...": 0 },
//!   "per_crate": { "analysis": 0, "bin": 0 }
//! }
//! ```
//!
//! Emission order is fully deterministic (findings in walk order, maps
//! BTreeMap-backed), so two consecutive runs over an unchanged tree are
//! byte-identical — ci.sh asserts exactly that.

use crate::Report;

/// JSON-escape a string (control characters, quotes, backslashes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a [`Report`] as `chatlens-lint/v1` JSON.
pub fn report_json(report: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"chatlens-lint/v1\",\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"suppressed\": {},\n",
        report.files_scanned, report.suppressed
    ));
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{ \"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\" }}",
            f.rule.id(),
            escape(&f.path),
            f.line,
            f.col,
            escape(&f.message)
        ));
    }
    if report.findings.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"per_rule\": {");
    let per_rule = report.per_rule();
    for (i, (rule, n)) in per_rule.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(" \"{}\": {}", rule.id(), n));
    }
    out.push_str(" },\n  \"per_crate\": {");
    for (i, (krate, n)) in report.per_crate().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(" \"{}\": {}", escape(krate), n));
    }
    out.push_str(" }\n}\n");
    out
}

/// Validate that `text` is well-formed JSON carrying the
/// `chatlens-lint/v1` schema: the required top-level keys with the
/// required shapes, and every finding object fully populated. Returns a
/// human-readable error on the first problem found.
pub fn validate(text: &str) -> Result<(), String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    let Val::Obj(top) = v else {
        return Err("top level is not an object".into());
    };
    let get = |k: &str| -> Result<&Val, String> {
        top.iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing required key \"{k}\""))
    };
    match get("schema")? {
        Val::Str(s) if s == "chatlens-lint/v1" => {}
        Val::Str(s) => return Err(format!("unknown schema \"{s}\"")),
        _ => return Err("\"schema\" is not a string".into()),
    }
    for k in ["files_scanned", "suppressed"] {
        if !matches!(get(k)?, Val::Num) {
            return Err(format!("\"{k}\" is not a number"));
        }
    }
    for k in ["per_rule", "per_crate"] {
        let Val::Obj(m) = get(k)? else {
            return Err(format!("\"{k}\" is not an object"));
        };
        if m.iter().any(|(_, v)| !matches!(v, Val::Num)) {
            return Err(format!("\"{k}\" has a non-numeric value"));
        }
    }
    let Val::Arr(findings) = get("findings")? else {
        return Err("\"findings\" is not an array".into());
    };
    for (i, f) in findings.iter().enumerate() {
        let Val::Obj(obj) = f else {
            return Err(format!("findings[{i}] is not an object"));
        };
        for (k, want_str) in [
            ("rule", true),
            ("path", true),
            ("message", true),
            ("line", false),
            ("col", false),
        ] {
            let v = obj
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("findings[{i}] missing \"{k}\""))?;
            let ok = if want_str {
                matches!(v, Val::Str(_))
            } else {
                matches!(v, Val::Num)
            };
            if !ok {
                return Err(format!("findings[{i}].{k} has the wrong type"));
            }
        }
    }
    Ok(())
}

/// A parsed JSON value — just enough structure for schema checking.
enum Val {
    Obj(Vec<(String, Val)>),
    Arr(Vec<Val>),
    Str(String),
    Num,
    Bool,
    Null,
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}, found {:?}",
                c as char,
                self.i,
                self.b.get(self.i).map(|&x| x as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Val, String> {
        self.ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Val::Str(self.string()?)),
            Some(b't') => self.literal("true", Val::Bool),
            Some(b'f') => self.literal("false", Val::Bool),
            Some(b'n') => self.literal("null", Val::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                self.i += 1;
                while self.b.get(self.i).is_some_and(|c| {
                    c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
                }) {
                    self.i += 1;
                }
                Ok(Val::Num)
            }
            other => Err(format!(
                "unexpected {:?} at offset {}",
                other.map(|&x| x as char),
                self.i
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Val) -> Result<Val, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return String::from_utf8(out).map_err(|_| "invalid utf-8".into());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'n') => out.push(b'\n'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b'u') => {
                            // \uXXXX — decode minimally (BMP only).
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.extend(
                                char::from_u32(code)
                                    .unwrap_or('\u{fffd}')
                                    .to_string()
                                    .as_bytes(),
                            );
                            self.i += 4;
                        }
                        Some(&c) => out.push(c),
                        None => return Err("unterminated escape".into()),
                    }
                    self.i += 1;
                }
                Some(&c) => {
                    out.push(c);
                    self.i += 1;
                }
            }
        }
    }

    fn object(&mut self) -> Result<Val, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Val::Obj(out));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            out.push((key, val));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Val::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Val, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Val::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Val::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Finding, Rule};

    fn sample_report() -> Report {
        Report {
            findings: vec![Finding {
                rule: Rule::D1,
                path: "crates/core/src/x.rs".into(),
                line: 3,
                col: 9,
                message: "quoted \"key\" and\nnewline".into(),
            }],
            suppressed: 2,
            files_scanned: 5,
        }
    }

    #[test]
    fn emitted_json_validates() {
        let json = report_json(&sample_report());
        validate(&json).unwrap();
        // And an empty report too.
        validate(&report_json(&Report::default())).unwrap();
    }

    #[test]
    fn emission_is_deterministic() {
        let r = sample_report();
        assert_eq!(report_json(&r), report_json(&r));
    }

    #[test]
    fn validator_rejects_malformed_and_off_schema_input() {
        assert!(validate("{").is_err());
        assert!(validate("[]").is_err());
        assert!(validate("{}").is_err());
        assert!(validate(r#"{"schema": "other/v9"}"#).is_err());
        let missing_findings = r#"{"schema": "chatlens-lint/v1", "files_scanned": 1, "suppressed": 0, "per_rule": {}, "per_crate": {}}"#;
        assert!(validate(missing_findings).is_err());
        let bad_finding = r#"{"schema": "chatlens-lint/v1", "files_scanned": 1, "suppressed": 0,
            "findings": [{"rule": "D1"}], "per_rule": {}, "per_crate": {}}"#;
        assert!(validate(bad_finding).is_err());
    }

    #[test]
    fn validator_accepts_escapes() {
        let json = report_json(&sample_report());
        assert!(json.contains("\\\"key\\\""));
        validate(&json).unwrap();
    }
}
