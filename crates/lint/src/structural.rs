//! The structure-aware rules (D9–D12), layered on the item parser and
//! the workspace symbol index.
//!
//! Unlike D1–D8 these rules reason about *items*: D9 pairs `Persist`
//! impls and `persist_struct!` invocations with the struct/enum they
//! serialize and demands field/variant coverage in both directions of the
//! wire format; D10 bans allocation idioms in the designated hot modules;
//! D11 forces every `Rng::fork` label to be a literal drawn from the
//! declared stream registry; D12 forces metric keys through declared
//! constants. All four skip `#[cfg(test)] mod` spans like the token
//! rules do.

use crate::index::WorkspaceIndex;
use crate::items::{Item, ItemKind};
use crate::scan::{Tok, TokKind};
use crate::{Finding, Rule};
use std::collections::BTreeSet;

/// Everything the structural rules need to know about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// The file's token stream.
    pub toks: &'a [Tok],
    /// Parsed items.
    pub items: &'a [Item],
    /// `#[cfg(test)] mod` token-index spans.
    pub tests: &'a [(usize, usize)],
}

impl FileCtx<'_> {
    fn in_test(&self, tok_idx: usize) -> bool {
        self.tests
            .iter()
            .any(|&(lo, hi)| tok_idx >= lo && tok_idx <= hi)
    }

    fn finding(&self, rule: Rule, line: u32, col: u32, message: String) -> Finding {
        Finding {
            rule,
            path: self.path.to_string(),
            line,
            col,
            message,
        }
    }
}

/// Identifier texts inside a body token span (inclusive).
fn idents_in(toks: &[Tok], span: (usize, usize)) -> BTreeSet<&str> {
    toks.iter()
        .take((span.1 + 1).min(toks.len()))
        .skip(span.0)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect()
}

/// D9 — Persist-coverage: every named field of a type with an
/// `impl Persist` must be referenced in both the `save` and `load`
/// bodies; every variant of a persisted enum must appear in both match
/// arms unless the load body goes through an `ALL` table (table-driven
/// encodings carry coverage in the table itself, which the compiler
/// checks for exhaustiveness). `persist_struct!` invocations must list
/// every field of their target struct — the field list *is* the wire
/// format.
pub fn check_d9(ctx: &FileCtx, index: &WorkspaceIndex, out: &mut Vec<Finding>) {
    for item in ctx.items {
        if ctx.in_test(item.span.0) {
            continue;
        }
        match item.kind {
            ItemKind::Impl if item.trait_name.as_deref() == Some("Persist") => {
                check_persist_impl(ctx, index, item, out);
            }
            ItemKind::MacroCall if item.name == "persist_struct" => {
                let Some(target) = item.target.as_deref() else {
                    continue;
                };
                let Some(def) = index.resolve_struct(target, ctx.path) else {
                    continue;
                };
                let listed: BTreeSet<&str> = item.fields.iter().map(|f| f.name.as_str()).collect();
                for field in &def.fields {
                    if !listed.contains(field.as_str()) {
                        out.push(ctx.finding(
                            Rule::D9,
                            item.line,
                            1,
                            format!(
                                "field `{field}` of `{target}` is missing from the persist_struct! field list — the list is the wire format; a silent omission is checkpoint drift"
                            ),
                        ));
                    }
                }
            }
            _ => {}
        }
    }
}

fn check_persist_impl(ctx: &FileCtx, index: &WorkspaceIndex, item: &Item, out: &mut Vec<Finding>) {
    let save = item.methods.iter().find(|m| m.name == "save");
    let load = item.methods.iter().find(|m| m.name == "load");
    if let Some(def) = index.resolve_struct(&item.name, ctx.path) {
        if def.fields.is_empty() {
            return; // tuple/unit structs have no named fields to cover
        }
        for (method, side) in [(save, "save"), (load, "load")] {
            let Some(m) = method else { continue };
            let body = idents_in(ctx.toks, m.body);
            for field in &def.fields {
                if !body.contains(field.as_str()) {
                    out.push(ctx.finding(
                        Rule::D9,
                        item.line,
                        1,
                        format!(
                            "field `{field}` of `{}` is not referenced in the `{side}` body of its `impl Persist` — checkpoint drift: the field would silently vanish from (or desync) the wire format",
                            item.name
                        ),
                    ));
                }
            }
        }
    } else if let Some(def) = index.resolve_enum(&item.name, ctx.path) {
        // Table-driven encodings (`Self::ALL[idx]`) get their coverage
        // from the table, which separate unit tests pin; skip them.
        if load
            .map(|m| idents_in(ctx.toks, m.body).contains("ALL"))
            .unwrap_or(true)
        {
            return;
        }
        for (method, side) in [(save, "save"), (load, "load")] {
            let Some(m) = method else { continue };
            let body = idents_in(ctx.toks, m.body);
            for variant in &def.variants {
                if !body.contains(variant.as_str()) {
                    out.push(ctx.finding(
                        Rule::D9,
                        item.line,
                        1,
                        format!(
                            "variant `{variant}` of `{}` is not matched in the `{side}` body of its `impl Persist` — a new variant must round-trip through the checkpoint",
                            item.name
                        ),
                    ));
                }
            }
        }
    }
}

/// Allocation idioms D10 refuses to see in hot modules.
const HOT_ALLOC_METHODS: [&str; 3] = ["to_string", "to_owned", "clone"];

/// D10 — hot-path allocation: `format!`, `.to_string()`, `.to_owned()`,
/// `String::from`, and `.clone()` in the designated hot modules
/// (`core::dataset`, `core::monitor`, wire parsing, `TweetStore`
/// search). These paths carry the campaign's per-request work; the
/// zero-copy/`Cow` layout is a measured win that one stray `format!`
/// erodes. Legitimate allocations (error construction, handoff at the
/// API boundary) carry a justified pragma.
pub fn check_d10(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.in_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.is_ident("format") && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            out.push(ctx.finding(
                Rule::D10,
                t.line,
                t.col,
                "`format!` allocates on a hot path; build into a reusable buffer or defer to the cold side".into(),
            ));
        }
        if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|n| {
                n.kind == TokKind::Ident && HOT_ALLOC_METHODS.contains(&n.text.as_str())
            })
            && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            let m = &toks[i + 1];
            out.push(ctx.finding(
                Rule::D10,
                m.line,
                m.col,
                format!(
                    "`.{}()` allocates on a hot path; borrow (`&str`/`Cow`) or hoist the copy out of the per-request loop",
                    m.text
                ),
            ));
        }
        if t.is_ident("String")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.is_ident("from"))
        {
            out.push(ctx.finding(
                Rule::D10,
                t.line,
                t.col,
                "`String::from` allocates on a hot path; borrow (`&str`/`Cow`) instead".into(),
            ));
        }
    }
}

/// D11 — RNG-stream discipline: every `.fork(...)` label must be a
/// string literal, and the `(subsystem, label)` pair must be declared in
/// `simnet::rng::STREAM_REGISTRY`. Two subsystems sharing a stream label
/// is a silent determinism hazard the moment call order changes; a
/// computed label cannot be audited at all. Dynamic label families
/// (e.g. per-topic LDA sweeps) carry a justified pragma.
pub fn check_d11(ctx: &FileCtx, index: &WorkspaceIndex, subsystem: &str, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.in_test(i) {
            continue;
        }
        if !(toks[i].is_ident("fork")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('(')))
        {
            continue;
        }
        let Some(arg) = toks.get(i + 2) else { continue };
        match arg.str_contents() {
            Some(label) => {
                let registered_here = index
                    .stream_registry
                    .iter()
                    .any(|(s, l)| s == subsystem && l == label);
                if registered_here {
                    continue;
                }
                let other = index
                    .stream_registry
                    .iter()
                    .find(|(_, l)| l == label)
                    .map(|(s, _)| s.clone());
                let message = match other {
                    Some(owner) => format!(
                        "fork label \"{label}\" is registered to subsystem `{owner}` but used from `{subsystem}` — two subsystems sharing a stream is a determinism hazard; register a distinct label"
                    ),
                    None => format!(
                        "fork label \"{label}\" is not declared in simnet::rng::STREAM_REGISTRY for subsystem `{subsystem}`; add it to the registry"
                    ),
                };
                out.push(ctx.finding(Rule::D11, arg.line, arg.col, message));
            }
            None => {
                out.push(ctx.finding(
                    Rule::D11,
                    arg.line,
                    arg.col,
                    "fork label must be a string literal drawn from STREAM_REGISTRY — a computed label cannot be audited for stream collisions".into(),
                ));
            }
        }
    }
}

/// Registry self-checks for D11: no label may be claimed by two
/// subsystems, and no `(subsystem, label)` pair may repeat.
pub fn check_stream_registry(index: &WorkspaceIndex, out: &mut Vec<Finding>) {
    let Some((path, line)) = index.registry_site.clone() else {
        return;
    };
    let mut seen_pairs: BTreeSet<(&str, &str)> = BTreeSet::new();
    let mut label_owner: std::collections::BTreeMap<&str, &str> = Default::default();
    for (sub, label) in &index.stream_registry {
        if !seen_pairs.insert((sub, label)) {
            out.push(Finding {
                rule: Rule::D11,
                path: path.clone(),
                line,
                col: 1,
                message: format!(
                    "STREAM_REGISTRY declares (\"{sub}\", \"{label}\") twice; remove the duplicate entry"
                ),
            });
        } else if let Some(owner) = label_owner.insert(label, sub) {
            if owner != sub {
                out.push(Finding {
                    rule: Rule::D11,
                    path: path.clone(),
                    line,
                    col: 1,
                    message: format!(
                        "STREAM_REGISTRY label \"{label}\" is claimed by both `{owner}` and `{sub}`; stream labels must be globally unique per subsystem"
                    ),
                });
            }
        }
    }
}

/// `Metrics` methods whose first argument is a key (D12).
const METRIC_METHODS: [&str; 5] = ["incr", "add", "observe", "time_stage", "stage_micros"];

/// D12 — metrics/trace-key registry: a string literal passed directly to
/// a `Metrics` method is an ad-hoc key that can fork a family via typo
/// (`transport.breaker_opend`); keys must flow through the declared
/// constants in `simnet::metrics::keys` so the compiler catches the
/// misspelling.
pub fn check_d12(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.in_test(i) {
            continue;
        }
        if !(toks[i].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| {
                n.kind == TokKind::Ident && METRIC_METHODS.contains(&n.text.as_str())
            })
            && toks.get(i + 2).is_some_and(|n| n.is_punct('(')))
        {
            continue;
        }
        if let Some(arg) = toks.get(i + 3) {
            if let Some(key) = arg.str_contents() {
                out.push(ctx.finding(
                    Rule::D12,
                    arg.line,
                    arg.col,
                    format!(
                        "metric key \"{key}\" passed as an ad-hoc literal to `.{}`; declare it in simnet::metrics::keys and pass the constant",
                        toks[i + 1].text
                    ),
                ));
            }
        }
    }
}

/// Registry self-check for D12: two constants declaring the same key
/// value silently merge two metric families.
pub fn check_metric_registry(index: &WorkspaceIndex, out: &mut Vec<Finding>) {
    let mut by_value: std::collections::BTreeMap<&str, &str> = Default::default();
    for (name, k) in &index.metric_keys {
        if let Some(first) = by_value.insert(k.value.as_str(), name.as_str()) {
            out.push(Finding {
                rule: Rule::D12,
                path: k.path.clone(),
                line: k.line,
                col: 1,
                message: format!(
                    "metric key constants `{first}` and `{name}` both declare \"{}\"; two names for one family is a merge hazard",
                    k.value
                ),
            });
        }
    }
}
