//! A lightweight Rust tokenizer for the determinism lint.
//!
//! This is not a full lexer — it recognises exactly what the lint rules
//! need to match identifier sequences *reliably*: identifiers, punctuation
//! and literal spans with line/column provenance, while never producing
//! tokens from inside comments, strings, char literals, or raw strings
//! (so commented-out code cannot trip a rule). It also extracts
//! `// lint:allow(<rules>)` suppression pragmas from line comments.

use std::collections::{BTreeMap, BTreeSet};

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`for`, `let`, `HashMap`, ...).
    Ident,
    /// A single punctuation character (`:`, `.`, `(`, `&`, ...).
    Punct,
    /// A string, raw-string, byte-string, char, or numeric literal.
    Literal,
    /// A `"..."` or raw-string literal whose *contents* are retained in
    /// `text` — the D11/D12 registry rules match stream labels and metric
    /// keys against them. Escape sequences are kept verbatim.
    Str,
    /// A lifetime (`'a`) — kept distinct so `'a` never parses as a char.
    Lifetime,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Identifier text, single punctuation char, string-literal contents
    /// for [`TokKind::Str`], or `""` for other literals.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (byte offset within the line).
    pub col: u32,
}

impl Tok {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// The string-literal contents, if this token is a [`TokKind::Str`].
    pub fn str_contents(&self) -> Option<&str> {
        (self.kind == TokKind::Str).then_some(self.text.as_str())
    }
}

/// One `// lint:allow(...)` suppression pragma with its provenance and
/// whether a justification follows the rule list — a bare pragma with no
/// trailing rationale is itself a lint error (the pragma audit).
#[derive(Debug, Clone)]
pub struct AllowPragma {
    /// 1-based line the pragma comment starts on.
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
    /// Rule ids named inside the parentheses.
    pub rules: BTreeSet<String>,
    /// Whether explanatory text follows the closing paren (at least two
    /// words — "sorted" alone is a label, not a justification).
    pub justified: bool,
}

/// Tokenizer output: the token stream plus the suppression pragmas found
/// in line comments, keyed by the 1-based line they appear on.
#[derive(Debug, Default)]
pub struct Scan {
    /// Tokens outside comments/strings, in source order.
    pub tokens: Vec<Tok>,
    /// `lint:allow(...)` pragmas: line → rule ids named on that line.
    pub allows: BTreeMap<u32, BTreeSet<String>>,
    /// Every pragma with provenance and justification status, in source
    /// order — the raw material for the unused-pragma and
    /// missing-justification audits.
    pub pragmas: Vec<AllowPragma>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Parse a suppression pragma out of a comment body, if present. The
/// shape is `lint:allow` followed by a parenthesized rule list and a
/// trailing justification; returns the named rules plus whether a
/// justification (at least two words of trailing text) follows the
/// closing paren.
fn parse_allow(comment: &str) -> Option<(BTreeSet<String>, bool)> {
    let at = comment.find("lint:allow(")?;
    let rest = &comment[at + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let rules: BTreeSet<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let tail = rest[close + 1..].trim_matches(|c: char| c.is_whitespace() || "—–-:;,.".contains(c));
    let justified = tail.split_whitespace().count() >= 2;
    (!rules.is_empty()).then_some((rules, justified))
}

/// Tokenize `source`, recording pragmas along the way.
pub fn scan(source: &str) -> Scan {
    let mut cur = Cursor {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Scan::default();
    while let Some(b) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match b {
            // Line comment (also handles doc comments //! and ///) —
            // capture a lint:allow pragma if the comment carries one.
            b'/' if cur.peek(1) == Some(b'/') => {
                let start = cur.pos;
                while let Some(c) = cur.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                let body = &source[start..cur.pos];
                if let Some((rules, justified)) = parse_allow(body) {
                    out.allows.entry(line).or_default().extend(rules.clone());
                    out.pragmas.push(AllowPragma {
                        line,
                        col,
                        rules,
                        justified,
                    });
                }
            }
            // Block comment, with nesting.
            b'/' if cur.peek(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            // Plain string literal — contents retained for the registry
            // rules (D11 stream labels, D12 metric keys).
            b'"' => {
                let start = cur.pos;
                consume_string(&mut cur);
                // Strip the closing quote if the literal terminated (an
                // unterminated literal at EOF keeps its tail verbatim).
                let end = if cur.pos > start + 1 && source.as_bytes()[cur.pos - 1] == b'"' {
                    cur.pos - 1
                } else {
                    cur.pos
                };
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text: source.get(start + 1..end).unwrap_or("").to_string(),
                    line,
                    col,
                });
            }
            // Lifetime or char literal.
            b'\'' => {
                // `'ident` not followed by a closing quote is a lifetime;
                // anything else ('x', '\n', '{', '\'') is a char literal.
                let is_lifetime = match cur.peek(1) {
                    Some(c) if is_ident_start(c) => {
                        // Walk the identifier; a trailing `'` makes it a
                        // char literal like 'a'.
                        let mut j = 2;
                        while cur.peek(j).map(is_ident_continue) == Some(true) {
                            j += 1;
                        }
                        cur.peek(j) != Some(b'\'')
                    }
                    _ => false,
                };
                if is_lifetime {
                    cur.bump(); // '
                    let start = cur.pos;
                    while cur.peek(0).map(is_ident_continue) == Some(true) {
                        cur.bump();
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text: source[start..cur.pos].to_string(),
                        line,
                        col,
                    });
                } else {
                    cur.bump(); // opening '
                    if cur.peek(0) == Some(b'\\') {
                        cur.bump();
                        cur.bump(); // escaped char (or first of \u{...})
                        while cur.peek(0).is_some() && cur.peek(0) != Some(b'\'') {
                            cur.bump(); // rest of \u{...} style escapes
                        }
                    } else {
                        // The char itself — may be multi-byte UTF-8 (e.g.
                        // sparkline blocks), so consume to the closing quote.
                        cur.bump();
                        while cur.peek(0).is_some() && cur.peek(0) != Some(b'\'') {
                            cur.bump();
                        }
                    }
                    if cur.peek(0) == Some(b'\'') {
                        cur.bump(); // closing '
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line,
                        col,
                    });
                }
            }
            // Identifier — with care for raw strings (r"..", r#".."#),
            // byte strings (b".."), raw identifiers (r#ident) and their
            // combinations; the prefix must not swallow `regular_name`.
            _ if is_ident_start(b) => {
                let start = cur.pos;
                while cur.peek(0).map(is_ident_continue) == Some(true) {
                    cur.bump();
                }
                let text = &source[start..cur.pos];
                let next = cur.peek(0);
                let raw_capable = matches!(text, "r" | "br");
                let str_capable = matches!(text, "b" | "r" | "br");
                if raw_capable && next == Some(b'#') {
                    // r#raw_ident vs r#"raw string"#.
                    let mut j = 0;
                    while cur.peek(j) == Some(b'#') {
                        j += 1;
                    }
                    if cur.peek(j) == Some(b'"') {
                        let (lo, hi) = consume_raw_string(&mut cur);
                        out.tokens.push(Tok {
                            kind: if text == "r" {
                                TokKind::Str
                            } else {
                                TokKind::Literal
                            },
                            text: if text == "r" {
                                source.get(lo..hi).unwrap_or("").to_string()
                            } else {
                                String::new()
                            },
                            line,
                            col,
                        });
                        continue;
                    }
                    if text == "r" {
                        // Raw identifier: emit `r#name` as the name itself.
                        cur.bump(); // #
                        let istart = cur.pos;
                        while cur.peek(0).map(is_ident_continue) == Some(true) {
                            cur.bump();
                        }
                        out.tokens.push(Tok {
                            kind: TokKind::Ident,
                            text: source[istart..cur.pos].to_string(),
                            line,
                            col,
                        });
                        continue;
                    }
                } else if str_capable && next == Some(b'"') {
                    let (kind, content) = if text == "b" {
                        consume_string(&mut cur);
                        (TokKind::Literal, String::new())
                    } else {
                        let (lo, hi) = consume_raw_string(&mut cur);
                        if text == "r" {
                            (TokKind::Str, source.get(lo..hi).unwrap_or("").to_string())
                        } else {
                            (TokKind::Literal, String::new())
                        }
                    };
                    out.tokens.push(Tok {
                        kind,
                        text: content,
                        line,
                        col,
                    });
                    continue;
                } else if text == "b" && next == Some(b'\'') {
                    // Byte char literal b'x'.
                    cur.bump(); // '
                    if cur.peek(0) == Some(b'\\') {
                        cur.bump();
                    }
                    cur.bump();
                    if cur.peek(0) == Some(b'\'') {
                        cur.bump();
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line,
                        col,
                    });
                    continue;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: text.to_string(),
                    line,
                    col,
                });
            }
            // Number: digits, then any alphanumeric tail (hex, suffixes),
            // plus a fractional part when a digit follows the dot — so
            // `0..n` leaves the range dots alone.
            _ if b.is_ascii_digit() => {
                while cur.peek(0).map(|c| c.is_ascii_alphanumeric() || c == b'_') == Some(true) {
                    cur.bump();
                }
                if cur.peek(0) == Some(b'.')
                    && cur.peek(1).map(|c| c.is_ascii_digit()) == Some(true)
                {
                    cur.bump();
                    while cur.peek(0).map(|c| c.is_ascii_alphanumeric() || c == b'_') == Some(true)
                    {
                        cur.bump();
                    }
                }
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                    col,
                });
            }
            // Whitespace.
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            // Single punctuation character.
            _ => {
                cur.bump();
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// Consume a `"..."` string starting at the opening quote, honouring
/// backslash escapes (including `\"` and `\\`).
fn consume_string(cur: &mut Cursor) {
    cur.bump(); // opening "
    while let Some(c) = cur.peek(0) {
        match c {
            b'\\' => {
                cur.bump();
                cur.bump();
            }
            b'"' => {
                cur.bump();
                return;
            }
            _ => {
                cur.bump();
            }
        }
    }
}

/// Consume a raw string starting at the `#`s or quote after the `r`/`br`
/// prefix: `#*"` ... `"#*` with a matching number of hashes, no escapes.
/// Returns the byte range of the string's contents.
fn consume_raw_string(cur: &mut Cursor) -> (usize, usize) {
    let mut hashes = 0usize;
    while cur.peek(0) == Some(b'#') {
        cur.bump();
        hashes += 1;
    }
    cur.bump(); // opening "
    let lo = cur.pos;
    loop {
        match cur.peek(0) {
            None => return (lo, cur.pos),
            Some(b'"') => {
                let quote_at = cur.pos;
                cur.bump();
                let mut seen = 0usize;
                while seen < hashes && cur.peek(0) == Some(b'#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return (lo, quote_at);
                }
            }
            Some(_) => {
                cur.bump();
            }
        }
    }
}

/// Indices of tokens that belong to `#[cfg(test)] mod ... { ... }` blocks.
///
/// Test modules are exempt from the lint: tests may use wall-clock,
/// `unwrap()`, and unordered maps freely — the contract protects the
/// artifact pipeline, not assertions about it.
pub fn test_mod_spans(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Match `# [ cfg ( test ) ]`.
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 4).is_some_and(|t| t.is_ident("test"))
            && tokens.get(i + 5).is_some_and(|t| t.is_punct(')'))
            && tokens.get(i + 6).is_some_and(|t| t.is_punct(']'));
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip further attributes, then require `mod name {`.
        let mut j = i + 7;
        while tokens.get(j).is_some_and(|t| t.is_punct('#')) {
            // Balance the attribute's brackets.
            let mut depth = 0usize;
            j += 1; // past '#'
            while let Some(t) = tokens.get(j) {
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if tokens.get(j).is_some_and(|t| t.is_ident("mod")) {
            // Find the opening brace, then balance.
            let mut k = j;
            while k < tokens.len() && !tokens[k].is_punct('{') {
                k += 1;
            }
            let mut depth = 0usize;
            let open = k;
            while k < tokens.len() {
                if tokens[k].is_punct('{') {
                    depth += 1;
                } else if tokens[k].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            spans.push((i, k.min(tokens.len().saturating_sub(1))));
            i = k + 1;
            let _ = open;
        } else {
            i = j;
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_produce_no_tokens() {
        let src = "// SystemTime::now()\n/* Instant::now() /* nested */ still */ let x = 1;";
        assert_eq!(idents(src), vec!["let", "x"]);
    }

    #[test]
    fn strings_produce_no_ident_tokens() {
        let src =
            r###"let s = "SystemTime::now() // not a comment"; let r = r#"Instant::now()"#;"###;
        assert_eq!(idents(src), vec!["let", "s", "let", "r"]);
    }

    #[test]
    fn char_literals_with_braces_do_not_derail_nesting() {
        let src = "fn f() { let open = '{'; let close = '}'; inner(); } after();";
        let ids = idents(src);
        assert!(ids.contains(&"inner".to_string()));
        assert!(ids.contains(&"after".to_string()));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let s = scan(src);
        assert!(s.tokens.iter().any(|t| t.kind == TokKind::Lifetime));
        // The 'a's must not swallow `str`.
        assert_eq!(idents(src).iter().filter(|t| *t == "str").count(), 2);
    }

    #[test]
    fn raw_identifiers_keep_their_name() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn line_and_column_tracking() {
        let src = "let a = 1;\n  let bb = 2;";
        let s = scan(src);
        let bb = s.tokens.iter().find(|t| t.is_ident("bb")).unwrap();
        assert_eq!((bb.line, bb.col), (2, 7));
    }

    #[test]
    fn allow_pragmas_are_collected() {
        let src = "// lint:allow(D1, D2) — wall clock is fine here\nlet x = 1;";
        let s = scan(src);
        let rules = &s.allows[&1];
        assert!(rules.contains("D1") && rules.contains("D2"));
    }

    #[test]
    fn test_mod_spans_cover_cfg_test_blocks() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x(); }\n}\nfn after() {}";
        let s = scan(src);
        let spans = test_mod_spans(&s.tokens);
        assert_eq!(spans.len(), 1);
        let (lo, hi) = spans[0];
        let inside: Vec<&str> = s.tokens[lo..=hi]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(inside.contains(&"x"));
        assert!(!inside.contains(&"after"));
        assert!(!inside.contains(&"live"));
    }
}
