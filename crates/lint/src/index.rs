//! Cross-file workspace symbol index.
//!
//! The structure-aware rules need facts that live in *other* files than
//! the one being linted: D9 pairs `impl Persist` blocks (often in
//! `crates/checkpoint/src/impls.rs`) with struct definitions from the
//! owning crate; D11 checks `Rng::fork` labels against the
//! `STREAM_REGISTRY` constant in `simnet::rng`; D12 checks metric-key
//! constants declared in a `mod keys`. This module folds every file's
//! parsed items into one deterministic (BTreeMap-backed) index built once
//! per [`check_sources`](crate::check_sources) call.

use crate::items::{Item, ItemKind};
use crate::scan::Tok;
use std::collections::BTreeMap;

/// A struct definition's named fields, with provenance.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Named-field names in declaration order (empty for tuple/unit).
    pub fields: Vec<String>,
}

/// An enum definition's variants, with provenance.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
}

/// One declared metric-key constant (a `const` inside a `mod keys`).
#[derive(Debug, Clone)]
pub struct KeyConst {
    /// The key string value.
    pub value: String,
    /// Workspace-relative path of the declaring file.
    pub path: String,
    /// 1-based line of the declaration.
    pub line: u32,
}

/// The cross-file symbol index.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    /// Struct name → every definition of that name (usually one).
    pub structs: BTreeMap<String, Vec<StructDef>>,
    /// Enum name → every definition of that name.
    pub enums: BTreeMap<String, Vec<EnumDef>>,
    /// `(subsystem, label)` pairs from the `STREAM_REGISTRY` constant,
    /// in declaration order.
    pub stream_registry: Vec<(String, String)>,
    /// Where `STREAM_REGISTRY` is declared, if anywhere.
    pub registry_site: Option<(String, u32)>,
    /// Metric-key constants by const name (`mod keys` members).
    pub metric_keys: BTreeMap<String, KeyConst>,
}

impl WorkspaceIndex {
    /// The unique definition of struct `name`, preferring one in
    /// `prefer_path`; `None` when undefined or ambiguous across files.
    pub fn resolve_struct(&self, name: &str, prefer_path: &str) -> Option<&StructDef> {
        let defs = self.structs.get(name)?;
        defs.iter()
            .find(|d| d.path == prefer_path)
            .or(if defs.len() == 1 { defs.first() } else { None })
    }

    /// The unique definition of enum `name`, preferring one in
    /// `prefer_path`; `None` when undefined or ambiguous across files.
    pub fn resolve_enum(&self, name: &str, prefer_path: &str) -> Option<&EnumDef> {
        let defs = self.enums.get(name)?;
        defs.iter()
            .find(|d| d.path == prefer_path)
            .or(if defs.len() == 1 { defs.first() } else { None })
    }

    /// Whether some `mod keys` constant declares exactly this value.
    pub fn has_metric_key(&self, value: &str) -> bool {
        self.metric_keys.values().any(|k| k.value == value)
    }
}

/// String-literal values inside a token span, in source order.
pub fn str_values_in_span(toks: &[Tok], span: (usize, usize)) -> Vec<String> {
    toks.iter()
        .take((span.1 + 1).min(toks.len()))
        .skip(span.0)
        .filter_map(|t| t.str_contents().map(str::to_string))
        .collect()
}

/// Build the index from every file's path, tokens, and parsed items.
pub fn build(files: &[(&str, &[Tok], &[Item])]) -> WorkspaceIndex {
    let mut idx = WorkspaceIndex::default();
    for &(path, toks, items) in files {
        for item in items {
            match item.kind {
                ItemKind::Struct => {
                    idx.structs
                        .entry(item.name.clone())
                        .or_default()
                        .push(StructDef {
                            path: path.to_string(),
                            line: item.line,
                            fields: item.fields.iter().map(|f| f.name.clone()).collect(),
                        })
                }
                ItemKind::Enum => idx
                    .enums
                    .entry(item.name.clone())
                    .or_default()
                    .push(EnumDef {
                        path: path.to_string(),
                        line: item.line,
                        variants: item.variants.clone(),
                    }),
                ItemKind::Const if item.name == "STREAM_REGISTRY" => {
                    // `&[("subsystem", "label"), ...]` — pair up the string
                    // literals in declaration order.
                    let strs = str_values_in_span(toks, item.span);
                    for pair in strs.chunks(2) {
                        if let [sub, label] = pair {
                            idx.stream_registry.push((sub.clone(), label.clone()));
                        }
                    }
                    idx.registry_site = Some((path.to_string(), item.line));
                }
                ItemKind::Const if item.module.last().is_some_and(|m| m == "keys") => {
                    let strs = str_values_in_span(toks, item.span);
                    if let [value] = strs.as_slice() {
                        idx.metric_keys.insert(
                            item.name.clone(),
                            KeyConst {
                                value: value.clone(),
                                path: path.to_string(),
                                line: item.line,
                            },
                        );
                    }
                }
                _ => {}
            }
        }
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::scan::scan;

    fn build_one(path: &str, src: &str) -> WorkspaceIndex {
        let s = scan(src);
        let items = parse_items(&s.tokens);
        build(&[(path, &s.tokens, &items)])
    }

    #[test]
    fn stream_registry_pairs_are_extracted() {
        let src = r#"pub const STREAM_REGISTRY: &[(&str, &str)] = &[
            ("simnet", "burst"),
            ("core", "twitter"),
        ];"#;
        let idx = build_one("crates/simnet/src/rng.rs", src);
        assert_eq!(
            idx.stream_registry,
            vec![
                ("simnet".to_string(), "burst".to_string()),
                ("core".to_string(), "twitter".to_string()),
            ]
        );
        assert_eq!(idx.registry_site.unwrap().0, "crates/simnet/src/rng.rs");
    }

    #[test]
    fn metric_key_consts_are_indexed() {
        let src = r#"pub mod keys {
            pub const TRANSPORT_ATTEMPTS: &str = "transport.attempts";
            pub const GAP_DAYS: &str = "monitor.gap_days";
        }
        pub const OUTSIDE: &str = "not.a.key";"#;
        let idx = build_one("crates/simnet/src/metrics.rs", src);
        assert!(idx.has_metric_key("transport.attempts"));
        assert!(idx.has_metric_key("monitor.gap_days"));
        assert!(!idx.has_metric_key("not.a.key"));
        assert_eq!(idx.metric_keys.len(), 2);
    }

    #[test]
    fn struct_resolution_prefers_same_file_then_unique() {
        let a = scan("pub struct Foo { a: u32 }");
        let ai = parse_items(&a.tokens);
        let b = scan("pub struct Foo { b: u32 }\npub struct Bar { c: u32 }");
        let bi = parse_items(&b.tokens);
        let idx = build(&[("x/a.rs", &a.tokens, &ai), ("x/b.rs", &b.tokens, &bi)]);
        // Same-file wins for the duplicated name.
        assert_eq!(idx.resolve_struct("Foo", "x/b.rs").unwrap().fields, ["b"]);
        // Ambiguous from a third file: refuse to guess.
        assert!(idx.resolve_struct("Foo", "x/c.rs").is_none());
        // Unique names resolve from anywhere.
        assert_eq!(idx.resolve_struct("Bar", "x/c.rs").unwrap().fields, ["c"]);
    }
}
