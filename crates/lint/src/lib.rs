//! `chatlens-lint`: the determinism & concurrency static-analysis pass.
//!
//! Every table and figure this workspace reproduces is contractually a
//! pure function of `(seed, config)` — bit-identical at any thread count
//! (DESIGN.md §3, §7). This crate machine-checks that contract instead of
//! trusting comments: a dependency-free token scanner ([`scan`](mod@scan)) walks
//! every workspace source file and enforces deny-by-default rules with
//! `file:line:col` diagnostics.
//!
//! ## Rule catalog
//!
//! | id | rule |
//! |----|------|
//! | D1 | banned wall-clock / scheduler APIs: `SystemTime::now`, `thread::current` anywhere; `Instant::now` outside `simnet::metrics`; `std::time` in analysis/report crates |
//! | D2 | `HashMap`/`HashSet` iteration on result paths (analysis, report, core, workload, perspective) unless the site collects into a sorted/`BTreeMap` form or only takes a cardinality |
//! | D3 | ambient entropy: `thread_rng`, `from_entropy`, `OsRng`, `getrandom`, `RandomState` — every RNG must derive from the seeded root via `Rng::fork` |
//! | D4 | `par_map`/`par_fold`/`par_chunks_mut`/`run_tasks` closures must not touch locks or shared atomics (ordered merge is the only legal reduction; the `Fn` bound already forbids `&mut` capture at compile time) |
//! | D5 | no `unwrap()`/`expect()` on lock acquisition in library crates (the `parking_lot` shim never poisons; a `Result`-shaped lock call is a sign std locks leaked in) |
//! | D6 | direct `std::fs` writes (`fs::write`, `File::create`, `OpenOptions`, ...) outside the checkpoint and report crates — all artifact and snapshot output must flow through the sanctioned writers so runs stay reproducible and atomic |
//! | D7 | discarded transport results: a `.twitter(...)` / `.platform(...)` call in the core crate or the binary whose `Result` is dropped (`let _ = ...;` or a bare expression statement) — transport failures must be handled (retried, queued for backfill, or counted), never silently swallowed |
//! | D8 | `unwrap()`/`expect()` on a `WireDoc` accessor result (`parse`, `parse_as`, `req`, `req_u64`, `req_i64`, `opt_u64`) outside `#[cfg(test)]` and the quarantine module — wire bodies are hostile input; a failed decode must route into the quarantine ledger, never panic a collector |
//! | D9 | Persist-coverage: every named field of a type with an `impl Persist` (or a `persist_struct!` field list) must be referenced in both the save and load bodies; every variant of a persisted enum must round-trip unless the impl is table-driven (`ALL`) — checkpoint drift caught at lint time, not at resume time |
//! | D10 | hot-path allocation: `format!`, `.to_string()`, `.to_owned()`, `String::from`, `.clone()` in the designated hot modules (`core::dataset`, `core::monitor`, wire parsing, `TweetStore`) — protects the zero-copy/`Cow` layout |
//! | D11 | RNG-stream discipline: every `Rng::fork` label must be a string literal declared in `simnet::rng::STREAM_REGISTRY`, globally unique per subsystem — shared streams are a silent determinism hazard |
//! | D12 | metrics/trace-key registry: metric keys must be the declared constants in `simnet::metrics::keys`, never ad-hoc string literals — key families must not fork via typo |
//! | D13 | `std::fs` calls (reads included) outside the checkpoint crate's `vfs` module — all durable I/O must flow through the `Vfs` trait so the fault-injection and fsync contracts hold (ARCHITECTURE.md "Durability & the fault VFS") |
//! | D14 | `with_capacity`/`reserve`/`reserve_exact` sized from a wire-derived quantity (`req_u64`/`req_i64`/`opt_u64`/`get_varint`, or an identifier bound from one) without a guard — hostile input must pass `Reader::get_len` or a `.min(..)`/`.clamp(..)` bound before it sizes an allocation (the unbounded-allocation cousin of D10) |
//!
//! Rules D9–D12 are *structure-aware*: they run on an item-level parse
//! ([`items`]) and a cross-file symbol index ([`index`]) layered on the
//! same token stream.
//!
//! A site is suppressed by `// lint:allow(<rule>)` on the same line or the
//! line directly above; a pragma must carry a trailing justification
//! (missing one is an error) and must actually suppress something (a
//! stale pragma is an error too). `#[cfg(test)] mod` blocks are exempt
//! wholesale — the contract protects the artifact pipeline, not the
//! assertions about it.

pub mod index;
pub mod items;
pub mod json;
pub mod scan;
mod structural;

use scan::{scan, test_mod_spans, Scan, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Banned nondeterminism APIs (wall-clock, current-thread identity).
    D1,
    /// Unordered-map iteration on result paths.
    D2,
    /// Ambient entropy instead of the seeded RNG tree.
    D3,
    /// Locks / shared atomics inside deterministic-parallel closures.
    D4,
    /// `unwrap`/`expect` on lock acquisition in library crates.
    D5,
    /// Direct filesystem writes outside the checkpoint/report crates.
    D6,
    /// Discarded `Net::twitter` / `Net::platform` results.
    D7,
    /// `unwrap`/`expect` on `WireDoc` accessor results outside tests.
    D8,
    /// Persist-coverage: checkpoint field/variant drift.
    D9,
    /// Allocation idioms in designated hot modules.
    D10,
    /// `Rng::fork` labels outside the declared stream registry.
    D11,
    /// Ad-hoc metric-key literals instead of registry constants.
    D12,
    /// `std::fs` calls outside the checkpoint VFS module.
    D13,
    /// Allocations sized from unguarded wire-derived quantities.
    D14,
}

impl Rule {
    /// All rules, in catalog order.
    pub const ALL: [Rule; 14] = [
        Rule::D1,
        Rule::D2,
        Rule::D3,
        Rule::D4,
        Rule::D5,
        Rule::D6,
        Rule::D7,
        Rule::D8,
        Rule::D9,
        Rule::D10,
        Rule::D11,
        Rule::D12,
        Rule::D13,
        Rule::D14,
    ];

    /// The short id used in diagnostics and `lint:allow(...)` pragmas.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
            Rule::D7 => "D7",
            Rule::D8 => "D8",
            Rule::D9 => "D9",
            Rule::D10 => "D10",
            Rule::D11 => "D11",
            Rule::D12 => "D12",
            Rule::D13 => "D13",
            Rule::D14 => "D14",
        }
    }

    /// Parse a rule id as written in pragmas (`"D9"` → `Rule::D9`).
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == id)
    }

    /// One-line description for `--stats` output and docs.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::D1 => {
                "wall-clock / scheduler API (SystemTime::now, Instant::now, thread::current)"
            }
            Rule::D2 => "HashMap/HashSet iteration on a result path",
            Rule::D3 => "ambient entropy (thread_rng, OsRng, from_entropy, ...)",
            Rule::D4 => "lock or shared atomic inside a par_* closure",
            Rule::D5 => "unwrap()/expect() on lock acquisition in a library crate",
            Rule::D6 => "direct std::fs write outside the checkpoint/report crates",
            Rule::D7 => "discarded Net::twitter/Net::platform Result (let _ = / bare statement)",
            Rule::D8 => "unwrap()/expect() on a WireDoc accessor result outside tests",
            Rule::D9 => {
                "Persist field/variant not covered by both save and load (checkpoint drift)"
            }
            Rule::D10 => {
                "allocation (format!, to_string, to_owned, clone, String::from) in a hot module"
            }
            Rule::D11 => "Rng::fork label not a literal from the declared STREAM_REGISTRY",
            Rule::D12 => "metric key passed as ad-hoc literal instead of a metrics::keys constant",
            Rule::D13 => "std::fs call outside the checkpoint VFS module (route it through Vfs)",
            Rule::D14 => {
                "with_capacity/reserve sized from an unguarded wire-derived value (validate or clamp first)"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Where a file sits in the workspace — decides which rules apply.
#[derive(Debug, Clone, Copy, Default)]
struct Scope {
    /// Feeds tables/figures: analysis, report, core, workload, perspective.
    result_path: bool,
    /// `simnet::metrics` — the one sanctioned wall-clock user.
    metrics_exempt: bool,
    /// Under `crates/` (vs. the binary in `src/`).
    library: bool,
    /// analysis or report crate (strictest `std::time` ban).
    analysis_or_report: bool,
    /// checkpoint or report crate — the two sanctioned file writers (D6).
    fs_writer: bool,
    /// Where `Net` lives and is called: the core crate and the binary (D7).
    net_caller: bool,
    /// The quarantine module — the one place sanctioned to dissect
    /// hostile wire bodies, exempt from D8.
    quarantine_path: bool,
    /// Designated hot modules where D10 bans allocation idioms: the
    /// dataset/monitor per-request paths, wire parsing, and the tweet
    /// store (the PR 6 zero-copy surface).
    hot_path: bool,
    /// The checkpoint crate's `vfs` module — the one place in the
    /// workspace allowed to call `std::fs` (D13).
    vfs_module: bool,
}

/// The four files whose per-request loops D10 guards.
const HOT_MODULES: [&str; 4] = [
    "core/src/dataset.rs",
    "core/src/monitor.rs",
    "platforms/src/wire.rs",
    "twitter/src/store.rs",
];

fn scope_of(path: &str) -> Scope {
    let p = path.replace('\\', "/");
    let in_crate = |name: &str| p.contains(&format!("crates/{name}/src"));
    Scope {
        result_path: ["analysis", "report", "core", "workload", "perspective"]
            .iter()
            .any(|c| in_crate(c)),
        metrics_exempt: p.ends_with("simnet/src/metrics.rs"),
        library: p.contains("crates/"),
        analysis_or_report: in_crate("analysis") || in_crate("report"),
        fs_writer: in_crate("checkpoint") || in_crate("report"),
        net_caller: in_crate("core") || !p.contains("crates/"),
        quarantine_path: p.ends_with("core/src/quarantine.rs"),
        hot_path: HOT_MODULES.iter().any(|m| p.ends_with(m)),
        vfs_module: p.ends_with("checkpoint/src/vfs.rs"),
    }
}

/// The RNG subsystem a file belongs to for D11: the crate directory name
/// under `crates/`, or `bin` for the workspace binary.
fn subsystem_of(path: &str) -> String {
    let p = path.replace('\\', "/");
    p.split("crates/")
        .nth(1)
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("bin")
        .to_string()
}

/// The crate a finding path belongs to, for per-crate stats.
fn crate_of(path: &str) -> String {
    subsystem_of(path)
}

/// `Net` methods whose `Result` D7 refuses to see discarded.
const NET_CALL_METHODS: [&str; 2] = ["twitter", "platform"];

/// `std::fs` free functions that mutate the filesystem (D6).
const FS_WRITE_FNS: [&str; 7] = [
    "write",
    "create_dir",
    "create_dir_all",
    "rename",
    "remove_file",
    "remove_dir_all",
    "copy",
];

/// Methods whose call on an unordered map/set observes iteration order.
const ITER_METHODS: [&str; 13] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "union",
    "intersection",
    "difference",
];

/// Tokens that excuse a D2 site: the statement lands in a sorted
/// container, or only a cardinality leaves the iteration.
const D2_EXCUSES: [&str; 10] = [
    "BTreeMap",
    "BTreeSet",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "from_ints", // Ecdf::from_ints sorts on construction
    "count",
];

/// Ambient entropy constructors (D3).
const ENTROPY_APIS: [&str; 5] = [
    "thread_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
    "RandomState",
];

/// Deterministic-parallel entry points whose closures D4 inspects.
const PAR_CALLS: [&str; 5] = [
    "par_map",
    "par_map_chunked",
    "par_chunks_mut",
    "par_fold",
    "run_tasks",
];

/// Shared-mutability methods banned inside par closures (D4).
const PAR_BANNED_METHODS: [&str; 10] = [
    "lock",
    "try_lock",
    "borrow_mut",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Shared-mutability types banned inside par closures (D4).
const PAR_BANNED_TYPES: [&str; 3] = ["Mutex", "RwLock", "RefCell"];

/// Lock-acquisition methods D5 watches for `unwrap`/`expect` chains.
const LOCK_METHODS: [&str; 4] = ["lock", "try_lock", "read", "write"];

/// `WireDoc` decode/accessor functions whose fallible results D8 refuses
/// to see unwrapped outside tests — a wire body is hostile input.
const WIREDOC_ACCESSORS: [&str; 6] = ["parse", "parse_as", "req", "req_u64", "req_i64", "opt_u64"];

/// Numeric quantities decoded straight off a wire or checkpoint body —
/// the values D14 refuses to see sizing an allocation unguarded. A
/// hostile page (or a torn spill partition) can claim any count it
/// likes; the claim must be validated before it becomes a `Vec` size.
const D14_WIRE_SOURCES: [&str; 4] = ["req_u64", "req_i64", "opt_u64", "get_varint"];

/// Allocation constructors/growers whose size argument D14 inspects.
const D14_ALLOC_CALLS: [&str; 3] = ["with_capacity", "reserve", "reserve_exact"];

/// Tokens that excuse a D14 site: the length was validated against the
/// remaining input (`Reader::get_len`, the codec's allocation guard) or
/// explicitly bounded before allocating.
const D14_GUARDS: [&str; 3] = ["get_len", "min", "clamp"];

/// The token-shaped rules (D1–D8, D13, D14) over one file's token
/// stream. Returns raw findings, before suppression.
fn token_findings(
    path: &str,
    scope: Scope,
    toks: &[Tok],
    tests: &[(usize, usize)],
) -> Vec<Finding> {
    let in_test = |i: usize| tests.iter().any(|&(lo, hi)| i >= lo && i <= hi);

    let mut raw: Vec<Finding> = Vec::new();
    let mut push = |rule: Rule, tok: &Tok, message: String| {
        raw.push(Finding {
            rule,
            path: path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
        });
    };

    let path_sep =
        |i: usize| toks[i].is_punct(':') && toks.get(i + 1).is_some_and(|t| t.is_punct(':'));
    // `A :: b` at i → (i, i+3).
    let assoc = |i: usize, a: &str, b: &str| {
        toks[i].is_ident(a) && path_sep(i + 1) && toks.get(i + 3).is_some_and(|t| t.is_ident(b))
    };

    for i in 0..toks.len() {
        if in_test(i) || toks[i].kind != TokKind::Ident {
            continue;
        }
        // ---- D1: wall-clock & scheduler identity --------------------------
        if i + 3 < toks.len() {
            if assoc(i, "SystemTime", "now") {
                push(
                    Rule::D1,
                    &toks[i],
                    "SystemTime::now() breaks replay determinism; derive times from SimTime".into(),
                );
            }
            if assoc(i, "Instant", "now") && !scope.metrics_exempt {
                push(Rule::D1, &toks[i], "Instant::now() outside simnet::metrics; route timings through Metrics::time_stage".into());
            }
            if assoc(i, "thread", "current") {
                push(Rule::D1, &toks[i], "thread::current() makes behaviour depend on scheduling; key work by chunk index instead".into());
            }
            if scope.analysis_or_report && assoc(i, "std", "time") {
                push(Rule::D1, &toks[i], "std::time in an analysis/report crate; artifacts must be pure functions of (seed, config)".into());
            }
        }
        // ---- D6: direct filesystem writes --------------------------------
        if !scope.fs_writer {
            if i + 3 < toks.len() {
                if let Some(f) = FS_WRITE_FNS.iter().find(|f| assoc(i, "fs", f)) {
                    push(
                        Rule::D6,
                        &toks[i + 3],
                        format!(
                            "`fs::{f}` outside the checkpoint/report crates; route output through the sanctioned writers (report exporters, checkpoint::save_to_file)"
                        ),
                    );
                }
                if assoc(i, "File", "create") {
                    push(
                        Rule::D6,
                        &toks[i],
                        "`File::create` outside the checkpoint/report crates; route output through the sanctioned writers".into(),
                    );
                }
            }
            if toks[i].is_ident("OpenOptions") {
                push(
                    Rule::D6,
                    &toks[i],
                    "`OpenOptions` outside the checkpoint/report crates; route output through the sanctioned writers".into(),
                );
            }
        }
        // ---- D13: std::fs outside the checkpoint VFS module ---------------
        // Stricter than D6: *reads* count too, and no crate is exempt — only
        // `checkpoint/src/vfs.rs` itself may touch `std::fs`, so that every
        // durable byte passes through the `Vfs` trait's fault-injection and
        // fsync contracts.
        if !scope.vfs_module {
            if i + 3 < toks.len() {
                if toks[i].is_ident("fs")
                    && path_sep(i + 1)
                    && toks.get(i + 3).is_some_and(|t| t.kind == TokKind::Ident)
                {
                    push(
                        Rule::D13,
                        &toks[i + 3],
                        format!(
                            "`fs::{}` outside checkpoint::vfs; all file I/O must flow through the Vfs trait so fault injection and the fsync contract hold",
                            toks[i + 3].text
                        ),
                    );
                }
                if assoc(i, "File", "create") || assoc(i, "File", "open") {
                    push(
                        Rule::D13,
                        &toks[i],
                        "`File` opened outside checkpoint::vfs; all file I/O must flow through the Vfs trait".into(),
                    );
                }
            }
            if toks[i].is_ident("OpenOptions") {
                push(
                    Rule::D13,
                    &toks[i],
                    "`OpenOptions` outside checkpoint::vfs; all file I/O must flow through the Vfs trait".into(),
                );
            }
        }
        // ---- D3: ambient entropy -----------------------------------------
        if ENTROPY_APIS.contains(&toks[i].text.as_str()) {
            push(
                Rule::D3,
                &toks[i],
                format!(
                    "`{}` draws ambient entropy; every generator must fork from the seeded root (Rng::fork)",
                    toks[i].text
                ),
            );
        }
        // ---- D4: par closures touching shared mutability -----------------
        if PAR_CALLS.contains(&toks[i].text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            let end = balance(toks, i + 1, '(', ')');
            for j in i + 2..end {
                let bad_method = toks[j].is_punct('.')
                    && toks.get(j + 1).is_some_and(|t| {
                        t.kind == TokKind::Ident && PAR_BANNED_METHODS.contains(&t.text.as_str())
                    });
                let bad_type = toks[j].kind == TokKind::Ident
                    && PAR_BANNED_TYPES.contains(&toks[j].text.as_str());
                if bad_method || bad_type {
                    let at = if bad_method { &toks[j + 1] } else { &toks[j] };
                    push(
                        Rule::D4,
                        at,
                        format!(
                            "`{}` inside a `{}` closure: chunk results must merge in chunk order, never through shared state",
                            at.text, toks[i].text
                        ),
                    );
                }
            }
        }
    }

    // D5 needs a punct-anchored pass: `. lock ( ) . unwrap`.
    if scope.library {
        for i in 0..toks.len() {
            if in_test(i) || !toks[i].is_punct('.') {
                continue;
            }
            let m = match toks.get(i + 1) {
                Some(t) if t.kind == TokKind::Ident && LOCK_METHODS.contains(&t.text.as_str()) => t,
                _ => continue,
            };
            if toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
                && toks.get(i + 4).is_some_and(|t| t.is_punct('.'))
                && toks
                    .get(i + 5)
                    .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
            {
                raw.push(Finding {
                    rule: Rule::D5,
                    path: path.to_string(),
                    line: m.line,
                    col: m.col,
                    message: format!(
                        "`.{}().{}` — the parking_lot shim never poisons; a Result-shaped lock call means std locks leaked into a library crate",
                        m.text, toks[i + 5].text
                    ),
                });
            }
        }
    }

    // ---- D8: unwrapped WireDoc accessor results ---------------------------
    // Two shapes: method accessors (`doc.req_u64("size")...unwrap()`) and
    // the associated decoders (`WireDoc::parse_as(body, kind).expect(..)`).
    // `parse`/`parse_as` are matched only in `WireDoc::` position so
    // `str::parse` never trips the rule. The quarantine module is exempt:
    // dissecting hostile bodies is its job.
    if !scope.quarantine_path {
        let mut d8 = |name: &Tok, open: usize| {
            if !toks.get(open).is_some_and(|t| t.is_punct('(')) {
                return;
            }
            let end = balance(toks, open, '(', ')');
            if toks.get(end + 1).is_some_and(|t| t.is_punct('.'))
                && toks
                    .get(end + 2)
                    .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
            {
                raw.push(Finding {
                    rule: Rule::D8,
                    path: path.to_string(),
                    line: name.line,
                    col: name.col,
                    message: format!(
                        "`{}(..).{}` — a wire body is hostile input; route the error into the quarantine ledger instead of panicking",
                        name.text, toks[end + 2].text
                    ),
                });
            }
        };
        for i in 0..toks.len() {
            if in_test(i) {
                continue;
            }
            // `.req_u64(...)` method form (parse/parse_as excluded — see above).
            if toks[i].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| {
                    t.kind == TokKind::Ident
                        && WIREDOC_ACCESSORS.contains(&t.text.as_str())
                        && t.text != "parse"
                        && t.text != "parse_as"
                })
            {
                d8(&toks[i + 1], i + 2);
            }
            // `WireDoc::parse(...)` / `WireDoc::parse_as(...)` associated form.
            if i + 3 < toks.len()
                && toks[i].is_ident("WireDoc")
                && path_sep(i + 1)
                && toks
                    .get(i + 3)
                    .is_some_and(|t| t.is_ident("parse") || t.is_ident("parse_as"))
            {
                d8(&toks[i + 3], i + 4);
            }
        }
    }

    // ---- D7: discarded Net call results -----------------------------------
    // `.twitter(...)` / `.platform(...)` whose `Result` never reaches a
    // consumer: either bound to `_` or left as a bare expression
    // statement. Shape-matched (a `.` before, arguments after, a `;`
    // right after the closing paren) so value accessors like
    // `cfg.platform(kind).n_group_urls` or `invite.platform()` in
    // expression position never trip it.
    if scope.net_caller {
        for i in 0..toks.len() {
            if in_test(i) || !toks[i].is_punct('.') {
                continue;
            }
            let m = match toks.get(i + 1) {
                Some(t)
                    if t.kind == TokKind::Ident && NET_CALL_METHODS.contains(&t.text.as_str()) =>
                {
                    t
                }
                _ => continue,
            };
            if !toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            let end = balance(toks, i + 2, '(', ')');
            if !toks.get(end + 1).is_some_and(|t| t.is_punct(';')) {
                continue; // chained (`?`, `.unwrap()`, match scrutinee, ...)
            }
            let (lo, _) = statement_window(toks, i);
            let prefix = &toks[lo..i];
            let underscore_bound = prefix
                .windows(3)
                .any(|w| w[0].is_ident("let") && w[1].is_ident("_") && w[2].is_punct('='));
            let consumed = prefix
                .iter()
                .any(|t| t.is_punct('=') || t.is_ident("return") || t.is_ident("match"));
            if underscore_bound || !consumed {
                raw.push(Finding {
                    rule: Rule::D7,
                    path: path.to_string(),
                    line: m.line,
                    col: m.col,
                    message: format!(
                        "`.{}(...)` Result discarded; transport failures must be handled (retried, queued for backfill, or counted), never dropped",
                        m.text
                    ),
                });
            }
        }
    }

    // ---- D2: unordered-map iteration on result paths ---------------------
    if scope.result_path {
        let tracked = tracked_unordered_idents(toks);
        for i in 0..toks.len() {
            if in_test(i) || toks[i].kind != TokKind::Ident || !tracked.contains(&toks[i].text) {
                continue;
            }
            // `name.iter_method(...)`
            if toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
                && toks
                    .get(i + 2)
                    .is_some_and(|t| ITER_METHODS.contains(&t.text.as_str()))
            {
                let (lo, hi) = statement_window(toks, i);
                if !has_excuse(&toks[lo..hi]) {
                    raw.push(Finding {
                        rule: Rule::D2,
                        path: path.to_string(),
                        line: toks[i + 2].line,
                        col: toks[i + 2].col,
                        message: format!(
                            "iteration over unordered `{}` (`.{}`) feeds a result path; use BTreeMap/BTreeSet or sort before emitting",
                            toks[i].text, toks[i + 2].text
                        ),
                    });
                }
            }
        }
        // `for x in [&]name {` — direct loop over the container.
        for i in 0..toks.len() {
            if in_test(i) || !toks[i].is_ident("for") {
                continue;
            }
            // find `in`, then the loop body brace.
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_ident("in") && !toks[j].is_punct('{') {
                j += 1;
            }
            if j >= toks.len() || !toks[j].is_ident("in") {
                continue;
            }
            let mut k = j + 1;
            while k < toks.len() && !toks[k].is_punct('{') {
                k += 1;
            }
            let header = &toks[j + 1..k.min(toks.len())];
            if has_excuse(header) {
                continue;
            }
            for (off, t) in header.iter().enumerate() {
                if t.kind == TokKind::Ident && tracked.contains(t.text.as_str()) {
                    // Any dotted form is either a lookup (`map.get(..)`) or
                    // an explicit iterator call already reported by the
                    // method pass; the for-pass only flags the bare
                    // container (`for k in map` / `for k in &map`).
                    let dotted = header.get(off + 1).is_some_and(|n| n.is_punct('.'));
                    if !dotted {
                        raw.push(Finding {
                            rule: Rule::D2,
                            path: path.to_string(),
                            line: t.line,
                            col: t.col,
                            message: format!(
                                "`for .. in {}` iterates an unordered container on a result path; use BTreeMap/BTreeSet or sort first",
                                t.text
                            ),
                        });
                    }
                }
            }
        }
    }

    // ---- D14: allocations sized from unguarded wire-derived values --------
    // `with_capacity`/`reserve`/`reserve_exact` whose size argument
    // mentions a wire decode (`req_u64`, `get_varint`, ...) — directly or
    // through an identifier let-bound from one — is an unbounded
    // allocation a hostile page (or torn spill partition) can dial up at
    // will. The excuse is a guard in the same statement: `Reader::get_len`
    // (the codec's validated-length accessor) or an explicit
    // `.min(..)`/`.clamp(..)` bound. Taint is tracked statement by
    // statement in order, so a rebinding through a guard
    // (`let len = r.get_len()?;`) launders the name.
    {
        let is_guard = |t: &Tok| t.kind == TokKind::Ident && D14_GUARDS.contains(&t.text.as_str());
        let is_source =
            |t: &Tok| t.kind == TokKind::Ident && D14_WIRE_SOURCES.contains(&t.text.as_str());
        let mut tainted: BTreeSet<String> = BTreeSet::new();
        let mut start = 0usize;
        for i in 0..=toks.len() {
            let boundary = i == toks.len()
                || toks[i].is_punct(';')
                || toks[i].is_punct('{')
                || toks[i].is_punct('}');
            if !boundary {
                continue;
            }
            let stmt = &toks[start..i];
            let stmt_start = start;
            start = i + 1;
            if stmt.is_empty() {
                continue;
            }
            let has_guard = stmt.iter().any(is_guard);
            let has_source = stmt.iter().any(&is_source);
            let uses_taint = stmt
                .iter()
                .any(|t| t.kind == TokKind::Ident && tainted.contains(&t.text));
            // Allocation calls inside this statement.
            if !has_guard && (has_source || uses_taint) {
                for (off, t) in stmt.iter().enumerate() {
                    if in_test(stmt_start + off)
                        || t.kind != TokKind::Ident
                        || !D14_ALLOC_CALLS.contains(&t.text.as_str())
                        || !stmt.get(off + 1).is_some_and(|n| n.is_punct('('))
                    {
                        continue;
                    }
                    let end = balance(stmt, off + 1, '(', ')');
                    let args = &stmt[off + 2..end.min(stmt.len())];
                    let Some(src) = args.iter().find(|a| {
                        is_source(a) || (a.kind == TokKind::Ident && tainted.contains(&a.text))
                    }) else {
                        continue;
                    };
                    raw.push(Finding {
                        rule: Rule::D14,
                        path: path.to_string(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "`{}` sized from wire-derived `{}`; validate through Reader::get_len or bound with .min/.clamp before allocating",
                            t.text, src.text
                        ),
                    });
                }
            }
            // Taint update: a let-binding whose initializer touches a wire
            // source (or an already-tainted name) without a guard taints
            // the bound name; any other rebinding clears it.
            if stmt[0].is_ident("let") {
                if let Some(name) = stmt
                    .iter()
                    .skip(1)
                    .find(|t| t.kind == TokKind::Ident && t.text != "mut")
                {
                    if (has_source || uses_taint) && !has_guard {
                        tainted.insert(name.text.clone());
                    } else {
                        tainted.remove(&name.text);
                    }
                }
            }
        }
    }

    raw
}

/// Lint a set of source files as one unit: tokenize and item-parse each,
/// build the cross-file symbol index, run the token rules (D1–D8) and the
/// structure-aware rules (D9–D12), apply suppression pragmas, and audit
/// the pragmas themselves (unused or unjustified pragmas are findings
/// attributed to the rule they name). Findings come back in input file
/// order, sorted by `(line, col, rule)` within each file.
pub fn check_sources(files: &[(String, String)]) -> Report {
    struct Unit {
        scan: Scan,
        items: Vec<items::Item>,
        tests: Vec<(usize, usize)>,
    }
    let units: Vec<Unit> = files
        .iter()
        .map(|(_, source)| {
            let s = scan(source);
            let items = items::parse_items(&s.tokens);
            let tests = test_mod_spans(&s.tokens);
            Unit {
                scan: s,
                items,
                tests,
            }
        })
        .collect();
    let idx = {
        let views: Vec<(&str, &[Tok], &[items::Item])> = files
            .iter()
            .zip(&units)
            .map(|((path, _), u)| (path.as_str(), u.scan.tokens.as_slice(), u.items.as_slice()))
            .collect();
        index::build(&views)
    };
    // Registry self-checks fire once, attributed to the declaration site.
    let mut registry_findings = Vec::new();
    structural::check_stream_registry(&idx, &mut registry_findings);
    structural::check_metric_registry(&idx, &mut registry_findings);

    let mut report = Report::default();
    for ((path, _), unit) in files.iter().zip(&units) {
        let scope = scope_of(path);
        let toks = unit.scan.tokens.as_slice();
        let ctx = structural::FileCtx {
            path,
            toks,
            items: &unit.items,
            tests: &unit.tests,
        };
        let mut raw = token_findings(path, scope, toks, &unit.tests);
        structural::check_d9(&ctx, &idx, &mut raw);
        if scope.hot_path {
            structural::check_d10(&ctx, &mut raw);
        }
        structural::check_d11(&ctx, &idx, &subsystem_of(path), &mut raw);
        structural::check_d12(&ctx, &mut raw);
        raw.extend(
            registry_findings
                .iter()
                .filter(|f| f.path == *path)
                .cloned(),
        );

        // Dedupe (a site can be reached by more than one pass). The
        // message participates: distinct D9 findings share an impl-line
        // anchor and must all survive.
        raw.sort_by(|a, b| {
            (a.line, a.col, a.rule, &a.message).cmp(&(b.line, b.col, b.rule, &b.message))
        });
        raw.dedup_by(|a, b| {
            a.line == b.line && a.col == b.col && a.rule == b.rule && a.message == b.message
        });

        // Apply suppression pragmas (same line or the line directly
        // above), tracking which pragmas earned their keep.
        let pragmas = &unit.scan.pragmas;
        let mut used = vec![false; pragmas.len()];
        let mut kept = Vec::new();
        for f in raw {
            let mut suppressed = false;
            for (pi, pragma) in pragmas.iter().enumerate() {
                if (pragma.line == f.line || pragma.line + 1 == f.line)
                    && pragma.rules.contains(f.rule.id())
                {
                    used[pi] = true;
                    suppressed = true;
                }
            }
            if suppressed {
                report.suppressed += 1;
            } else {
                kept.push(f);
            }
        }

        // Pragma audit: a pragma that suppresses nothing is stale; a
        // pragma that works but carries no justification is unreviewable.
        // Both are findings against the rule the pragma names, and are
        // not themselves suppressible. Pragmas inside test mods are
        // exempt like everything else there.
        let test_lines: Vec<(u32, u32)> = unit
            .tests
            .iter()
            .filter_map(|&(lo, hi)| Some((toks.get(lo)?.line, toks.get(hi)?.line)))
            .collect();
        for (pi, pragma) in pragmas.iter().enumerate() {
            if test_lines
                .iter()
                .any(|&(lo, hi)| pragma.line >= lo && pragma.line <= hi)
            {
                continue;
            }
            let Some(rule) = pragma.rules.iter().find_map(|r| Rule::from_id(r)) else {
                continue;
            };
            let named = pragma.rules.iter().cloned().collect::<Vec<_>>().join(", ");
            if !used[pi] {
                kept.push(Finding {
                    rule,
                    path: path.clone(),
                    line: pragma.line,
                    col: pragma.col,
                    message: format!(
                        "`lint:allow({named})` suppresses nothing; remove the stale pragma"
                    ),
                });
            } else if !pragma.justified {
                kept.push(Finding {
                    rule,
                    path: path.clone(),
                    line: pragma.line,
                    col: pragma.col,
                    message: format!(
                        "`lint:allow({named})` has no justification; add a one-line reason after the rule list"
                    ),
                });
            }
        }
        kept.sort_by_key(|a| (a.line, a.col, a.rule));
        report.findings.extend(kept);
        report.files_scanned += 1;
    }
    report
}

/// Lint one source file. `path` is the workspace-relative path (used for
/// rule scoping and diagnostics); returns surviving findings plus the
/// number suppressed by `lint:allow` pragmas. Cross-file symbol
/// resolution sees only this file.
pub fn check_source_counting(path: &str, source: &str) -> (Vec<Finding>, usize) {
    let report = check_sources(&[(path.to_string(), source.to_string())]);
    (report.findings, report.suppressed)
}

/// [`check_source_counting`] without the suppression count.
pub fn check_source(path: &str, source: &str) -> Vec<Finding> {
    check_source_counting(path, source).0
}

/// Find the matching close delimiter for the open one at `open_idx`.
fn balance(toks: &[Tok], open_idx: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len()
}

/// The statement containing token `i`: from the previous `;`/`{`/`}` to
/// the next `;`/`{` (loop bodies and blocks end a statement for our
/// purposes — the excuse must sit on the same line of reasoning).
fn statement_window(toks: &[Tok], i: usize) -> (usize, usize) {
    let mut lo = i;
    while lo > 0 {
        let t = &toks[lo - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        lo -= 1;
    }
    let mut hi = i;
    while hi < toks.len() {
        let t = &toks[hi];
        if t.is_punct(';') || t.is_punct('{') {
            break;
        }
        hi += 1;
    }
    (lo, hi)
}

/// Whether a token window contains a D2 excuse (sorted collection or
/// cardinality-only use).
fn has_excuse(window: &[Tok]) -> bool {
    window
        .iter()
        .any(|t| t.kind == TokKind::Ident && D2_EXCUSES.contains(&t.text.as_str()))
}

/// Identifiers declared (let-bound, field, or parameter) with a
/// `HashMap`/`HashSet` type or initializer in this file.
fn tracked_unordered_idents(toks: &[Tok]) -> BTreeSet<String> {
    let mut tracked = BTreeSet::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("HashMap") || toks[i].is_ident("HashSet")) {
            continue;
        }
        // Walk back to the start of the declaration.
        let mut lo = i;
        while lo > 0 {
            let t = &toks[lo - 1];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') || t.is_punct(',') {
                break;
            }
            lo -= 1;
        }
        let window = &toks[lo..i];
        // `name : ... HashMap` (let-with-type, struct field, fn param) —
        // take the ident before the last single `:` (not a `::`).
        let mut name: Option<&str> = None;
        for j in (1..window.len()).rev() {
            if window[j].is_punct(':')
                && !window.get(j + 1).is_some_and(|t| t.is_punct(':'))
                && (j == 0 || !window[j - 1].is_punct(':'))
            {
                if window[j - 1].kind == TokKind::Ident {
                    name = Some(&window[j - 1].text);
                }
                break;
            }
        }
        // `let name = HashMap::new()` — the ident before `=`.
        if name.is_none() {
            for j in (1..window.len()).rev() {
                if window[j].is_punct('=') && window[j - 1].kind == TokKind::Ident {
                    name = Some(&window[j - 1].text);
                    break;
                }
            }
        }
        if let Some(n) = name {
            if !matches!(n, "let" | "mut" | "pub") {
                tracked.insert(n.to_string());
            }
        }
    }
    tracked
}

/// Aggregated result of a workspace walk.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived suppression, in path order.
    pub findings: Vec<Finding>,
    /// Count of findings silenced by `lint:allow` pragmas.
    pub suppressed: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings per rule (fired, i.e. surviving suppression).
    pub fn per_rule(&self) -> BTreeMap<Rule, usize> {
        let mut m: BTreeMap<Rule, usize> = Rule::ALL.iter().map(|&r| (r, 0)).collect();
        for f in &self.findings {
            *m.entry(f.rule).or_insert(0) += 1;
        }
        m
    }

    /// Findings per crate (`bin` for the workspace binary), sorted by
    /// crate name. Crates with zero findings are omitted — the per-rule
    /// table already proves the zeros.
    pub fn per_crate(&self) -> BTreeMap<String, usize> {
        let mut m: BTreeMap<String, usize> = BTreeMap::new();
        for f in &self.findings {
            *m.entry(crate_of(&f.path)).or_insert(0) += 1;
        }
        m
    }

    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// A `--stats` summary table (markdown): per-rule counts (every rule,
    /// catalog order) then per-crate counts (sorted, non-zero only).
    pub fn stats_table(&self) -> String {
        let mut out = String::new();
        out.push_str("| rule | findings | description |\n|------|----------|-------------|\n");
        for (rule, n) in self.per_rule() {
            out.push_str(&format!(
                "| {} | {} | {} |\n",
                rule.id(),
                n,
                rule.describe()
            ));
        }
        let per_crate = self.per_crate();
        if !per_crate.is_empty() {
            out.push_str("\n| crate | findings |\n|-------|----------|\n");
            for (krate, n) in per_crate {
                out.push_str(&format!("| {krate} | {n} |\n"));
            }
        }
        out.push_str(&format!(
            "\n{} file(s) scanned, {} finding(s), {} suppressed by lint:allow pragmas\n",
            self.files_scanned,
            self.findings.len(),
            self.suppressed
        ));
        out
    }
}

/// Walk `root`'s `src/` and every `crates/*/src/` tree and lint each
/// `.rs` file. Paths in findings are workspace-relative; file order is
/// deterministic (sorted).
pub fn check_workspace(root: impl AsRef<Path>) -> std::io::Result<Report> {
    let root = root.as_ref();
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        // lint:allow(D13) the linter reads sources outside any durability domain
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), &mut files)?;
        }
    }
    files.sort();
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        // lint:allow(D13) the linter reads sources outside any durability domain
        sources.push((rel, std::fs::read_to_string(&file)?));
    }
    Ok(check_sources(&sources))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    // lint:allow(D13) the linter reads sources outside any durability domain
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(path: &str, src: &str) -> Vec<Rule> {
        check_source(path, src)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn d1_fires_on_wall_clock() {
        let src = "fn f() { let t = SystemTime::now(); }";
        assert_eq!(rules_of("crates/core/src/x.rs", src), vec![Rule::D1]);
    }

    #[test]
    fn d1_instant_exempt_in_metrics() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(rules_of("crates/simnet/src/metrics.rs", src), vec![]);
        assert_eq!(rules_of("crates/simnet/src/engine.rs", src), vec![Rule::D1]);
    }

    #[test]
    fn d1_std_time_only_in_analysis_report() {
        let src = "use std::time::Duration;";
        assert_eq!(rules_of("crates/analysis/src/x.rs", src), vec![Rule::D1]);
        assert_eq!(rules_of("crates/simnet/src/x.rs", src), vec![]);
    }

    #[test]
    fn d2_fires_on_hashmap_iteration_in_result_crate() {
        let src =
            "fn f(per_user: &HashMap<u32, u64>) { for v in per_user.values() { use_it(v); } }";
        assert_eq!(rules_of("crates/analysis/src/x.rs", src), vec![Rule::D2]);
        // Same code outside a result path is fine.
        assert_eq!(rules_of("crates/simnet/src/x.rs", src), vec![]);
    }

    #[test]
    fn d2_lookups_are_fine() {
        let src = "fn f(m: &HashMap<u32, u64>) -> Option<&u64> { m.get(&1) }";
        assert_eq!(rules_of("crates/analysis/src/x.rs", src), vec![]);
    }

    #[test]
    fn d2_sorted_collect_excuses() {
        let src =
            "fn f(m: HashMap<u32, u64>) { let b: BTreeMap<u32, u64> = m.into_iter().collect(); }";
        assert_eq!(rules_of("crates/analysis/src/x.rs", src), vec![]);
        let src2 = "fn f(s: &HashSet<String>) -> usize { s.union(other).count() }";
        assert_eq!(rules_of("crates/core/src/x.rs", src2), vec![]);
    }

    #[test]
    fn d2_skips_cfg_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n fn f(m: HashMap<u32, u64>) { for v in m.values() { x(v); } }\n}";
        assert_eq!(rules_of("crates/analysis/src/x.rs", src), vec![]);
    }

    #[test]
    fn d3_fires_on_ambient_entropy() {
        let src = "fn f() { let mut rng = thread_rng(); }";
        assert_eq!(rules_of("crates/workload/src/x.rs", src), vec![Rule::D3]);
    }

    #[test]
    fn d4_fires_on_lock_in_par_closure() {
        let src = "fn f(pool: &Pool) { pool.par_map(&xs, |x| { acc.lock().push(*x); 0 }); }";
        assert_eq!(rules_of("crates/analysis/src/x.rs", src), vec![Rule::D4]);
    }

    #[test]
    fn d4_clean_closure_passes() {
        let src = "fn f(pool: &Pool) { pool.par_map(&xs, |x| x * 2); }";
        assert_eq!(rules_of("crates/analysis/src/x.rs", src), vec![]);
    }

    #[test]
    fn d5_fires_on_lock_unwrap_in_library() {
        let src = "fn f(m: &std::sync::Mutex<u32>) { *m.lock().unwrap() += 1; }";
        assert_eq!(rules_of("crates/core/src/x.rs", src), vec![Rule::D5]);
        // The binary crate may unwrap (it is allowed to crash loudly).
        assert_eq!(rules_of("src/bin/repro.rs", src), vec![]);
    }

    #[test]
    fn d6_fires_on_fs_writes_outside_writers() {
        let src = "fn f() { std::fs::write(\"out.csv\", b\"x\").unwrap(); }";
        // Every direct write also trips D13 (only checkpoint::vfs may
        // touch std::fs at all).
        assert_eq!(
            rules_of("crates/core/src/x.rs", src),
            vec![Rule::D6, Rule::D13]
        );
        assert_eq!(rules_of("src/bin/repro.rs", src), vec![Rule::D6, Rule::D13]);
        // The sanctioned writer crates are exempt from D6, not D13.
        assert_eq!(
            rules_of("crates/checkpoint/src/snapshot.rs", src),
            vec![Rule::D13]
        );
        assert_eq!(rules_of("crates/report/src/x.rs", src), vec![Rule::D13]);
    }

    #[test]
    fn d6_covers_file_create_and_openoptions() {
        let src = "fn f() { let f = File::create(\"x\").unwrap(); }";
        assert_eq!(
            rules_of("crates/analysis/src/x.rs", src),
            vec![Rule::D6, Rule::D13]
        );
        let src2 = "fn f() { OpenOptions::new().append(true).open(\"x\").unwrap(); }";
        assert_eq!(
            rules_of("crates/workload/src/x.rs", src2),
            vec![Rule::D6, Rule::D13]
        );
    }

    #[test]
    fn d6_reads_are_fine() {
        // Reads never trip D6; D13 still wants them behind the Vfs trait.
        let src = "fn f() -> String { std::fs::read_to_string(\"in.json\").unwrap() }";
        assert_eq!(rules_of("crates/core/src/x.rs", src), vec![Rule::D13]);
    }

    #[test]
    fn d6_pragma_suppresses() {
        let src = "// lint:allow(D6, D13) CSV export is this binary's whole job\nfn f() { std::fs::write(\"t.csv\", b\"x\").unwrap(); }";
        let (findings, suppressed) = check_source_counting("src/bin/repro.rs", src);
        assert!(findings.is_empty());
        assert_eq!(suppressed, 2);
    }

    #[test]
    fn d13_fires_on_reads_and_opens_everywhere_but_vfs() {
        let read = "fn f() -> Vec<u8> { std::fs::read(\"snap.ckpt\").unwrap() }";
        assert_eq!(
            rules_of("crates/checkpoint/src/snapshot.rs", read),
            vec![Rule::D13]
        );
        let open = "fn f() { let f = File::open(\"snap.ckpt\").unwrap(); }";
        assert_eq!(rules_of("crates/report/src/x.rs", open), vec![Rule::D13]);
        // The VFS module is the one sanctioned home for std::fs.
        assert_eq!(rules_of("crates/checkpoint/src/vfs.rs", read), vec![]);
        assert_eq!(rules_of("crates/checkpoint/src/vfs.rs", open), vec![]);
    }

    #[test]
    fn d13_pragma_suppresses() {
        let src = "// lint:allow(D13) bench baselines live outside the durability domain\nfn f() -> String { std::fs::read_to_string(\"b.json\").unwrap() }";
        let (findings, suppressed) = check_source_counting("crates/bench/src/main.rs", src);
        assert!(findings.is_empty());
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn d14_fires_on_allocation_sized_from_wire() {
        // Direct: the size expression decodes straight off the body.
        let src = "fn f(doc: &WireDoc) -> Vec<u8> { Vec::with_capacity(doc.req_u64(\"n\").unwrap_or(0) as usize) }";
        assert_eq!(rules_of("crates/core/src/x.rs", src), vec![Rule::D14]);
        // Through a let-binding: the claim travels one statement.
        let src = "fn f(r: &mut Reader) { let n = r.get_varint()? as usize; let mut out: Vec<u8> = Vec::with_capacity(n); }";
        assert_eq!(
            rules_of("crates/checkpoint/src/codec.rs", src),
            vec![Rule::D14]
        );
        // `reserve` grows just as unboundedly as `with_capacity`.
        let src = "fn f(out: &mut Vec<u8>, doc: &WireDoc) { out.reserve(doc.req_u64(\"more\").unwrap_or(0) as usize); }";
        assert_eq!(rules_of("crates/core/src/x.rs", src), vec![Rule::D14]);
    }

    #[test]
    fn d14_guarded_constructors_pass() {
        // `Reader::get_len` is the sanctioned validated-length accessor.
        let src = "fn f(r: &mut Reader) { let len = r.get_len()?; let mut out: Vec<u8> = Vec::with_capacity(len); }";
        assert_eq!(rules_of("crates/checkpoint/src/codec.rs", src), vec![]);
        // An explicit clamp bounds the allocation at the site.
        let src = "fn f(doc: &WireDoc) -> Vec<u8> { Vec::with_capacity((doc.req_u64(\"n\").unwrap_or(0) as usize).min(MAX_PAGE)) }";
        assert_eq!(rules_of("crates/core/src/x.rs", src), vec![]);
        // Sizes not derived from the wire are out of scope.
        let src = "fn f(xs: &[u32]) -> Vec<u32> { Vec::with_capacity(xs.len()) }";
        assert_eq!(rules_of("crates/core/src/x.rs", src), vec![]);
    }

    #[test]
    fn d14_pragma_suppresses() {
        let src = "fn f(doc: &WireDoc) -> Vec<u8> {\n // lint:allow(D14) page size capped by the transport frame limit upstream\n Vec::with_capacity(doc.req_u64(\"n\").unwrap_or(0) as usize)\n}";
        let (findings, suppressed) = check_source_counting("crates/core/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn allow_pragma_suppresses_and_counts() {
        let src = "// lint:allow(D1) startup banner timestamp, not an artifact\nfn f() { let t = SystemTime::now(); }";
        let (findings, suppressed) = check_source_counting("crates/core/src/x.rs", src);
        assert!(findings.is_empty());
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn allow_pragma_is_rule_specific() {
        // The D2 pragma does not silence the D1 finding — and since it
        // suppresses nothing, the pragma audit flags it as stale too.
        let src = "// lint:allow(D2) wrong rule\nfn f() { let t = SystemTime::now(); }";
        assert_eq!(
            rules_of("crates/core/src/x.rs", src),
            vec![Rule::D2, Rule::D1]
        );
    }

    #[test]
    fn unjustified_pragma_is_a_finding() {
        let bare = "// lint:allow(D1)\nfn f() { let t = SystemTime::now(); }";
        let (findings, suppressed) = check_source_counting("crates/core/src/x.rs", bare);
        assert_eq!(suppressed, 1); // the D1 site itself is silenced...
        assert_eq!(findings.len(), 1); // ...but the bare pragma is flagged
        assert!(findings[0].message.contains("no justification"));
        // One trailing word is a label, not a justification.
        let one_word = "// lint:allow(D1) startup\nfn f() { let t = SystemTime::now(); }";
        let (findings, _) = check_source_counting("crates/core/src/x.rs", one_word);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn unused_pragma_is_a_finding() {
        let src = "// lint:allow(D6) nothing to suppress here at all\nfn f() {}";
        let findings = check_source("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::D6);
        assert!(findings[0].message.contains("suppresses nothing"));
        // Inside a test mod, stale pragmas are exempt like everything else.
        let in_test =
            "#[cfg(test)]\nmod tests {\n // lint:allow(D6) stale but in tests\n fn t() {}\n}";
        assert_eq!(rules_of("crates/core/src/x.rs", in_test), vec![]);
    }

    #[test]
    fn d9_fires_on_missing_field_in_save_or_load() {
        let src = "pub struct Snap { a: u32, b: u64 }\n\
                   impl Persist for Snap {\n\
                     fn save(&self, w: &mut Writer) { w.u32(self.a); }\n\
                     fn load(r: &mut Reader<'_>) -> Result<Self, E> { Ok(Snap { a: r.u32()?, b: 0 }) }\n\
                   }";
        let findings = check_source("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::D9);
        assert!(findings[0].message.contains("`b`"));
        assert!(findings[0].message.contains("save"));
    }

    #[test]
    fn d9_full_coverage_passes() {
        let src = "pub struct Snap { a: u32, b: u64 }\n\
                   impl Persist for Snap {\n\
                     fn save(&self, w: &mut Writer) { w.u32(self.a); w.u64(self.b); }\n\
                     fn load(r: &mut Reader<'_>) -> Result<Self, E> { Ok(Snap { a: r.u32()?, b: r.u64()? }) }\n\
                   }";
        assert_eq!(rules_of("crates/core/src/x.rs", src), vec![]);
    }

    #[test]
    fn d9_covers_persist_struct_macro_lists() {
        let src = "pub struct Snap { a: u32, b: u64 }\npersist_struct!(Snap { a });";
        let findings = check_source("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::D9);
        assert!(findings[0].message.contains("`b`"));
        let full = "pub struct Snap { a: u32, b: u64 }\npersist_struct!(Snap { a, b });";
        assert_eq!(rules_of("crates/core/src/x.rs", full), vec![]);
    }

    #[test]
    fn d9_enum_variants_must_round_trip_unless_table_driven() {
        let partial = "pub enum E { A, B }\n\
                       impl Persist for E {\n\
                         fn save(&self, w: &mut Writer) { match self { E::A => w.u8(0), E::B => w.u8(1) } }\n\
                         fn load(r: &mut Reader<'_>) -> Result<Self, X> { Ok(match r.u8()? { 0 => E::A, _ => E::A }) }\n\
                       }";
        let findings = check_source("crates/core/src/x.rs", partial);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`B`"));
        // Table-driven encodings (load via ALL) are exempt.
        let table = "pub enum E { A, B }\n\
                     impl Persist for E {\n\
                       fn save(&self, w: &mut Writer) { w.u32(self.index()) }\n\
                       fn load(r: &mut Reader<'_>) -> Result<Self, X> { Ok(Self::ALL[r.u32()? as usize]) }\n\
                     }";
        assert_eq!(rules_of("crates/core/src/x.rs", table), vec![]);
    }

    #[test]
    fn d10_fires_only_in_hot_modules() {
        let src = "fn f(s: &str) -> String { format!(\"x-{s}\") }";
        assert_eq!(rules_of("crates/core/src/monitor.rs", src), vec![Rule::D10]);
        assert_eq!(rules_of("crates/core/src/study.rs", src), vec![]);
        let clone = "fn f(v: &Vec<u32>) -> Vec<u32> { v.clone() }";
        assert_eq!(
            rules_of("crates/platforms/src/wire.rs", clone),
            vec![Rule::D10]
        );
        let owned = "fn f(s: &str) -> String { s.to_owned() }";
        assert_eq!(
            rules_of("crates/twitter/src/store.rs", owned),
            vec![Rule::D10]
        );
        let from = "fn f() -> String { String::from(\"x\") }";
        assert_eq!(
            rules_of("crates/core/src/dataset.rs", from),
            vec![Rule::D10]
        );
    }

    #[test]
    fn d11_checks_fork_labels_against_the_registry() {
        let registry = "pub const STREAM_REGISTRY: &[(&str, &str)] = &[(\"core\", \"twitter\")];\n";
        let good = format!("{registry}fn f(rng: &Rng) {{ let r = rng.fork(\"twitter\"); }}");
        assert_eq!(rules_of("crates/core/src/net.rs", &good), vec![]);
        let unregistered =
            format!("{registry}fn f(rng: &Rng) {{ let r = rng.fork(\"mystery\"); }}");
        assert_eq!(
            rules_of("crates/core/src/net.rs", &unregistered),
            vec![Rule::D11]
        );
        // A label owned by another subsystem is a stream collision.
        let foreign = format!("{registry}fn f(rng: &Rng) {{ let r = rng.fork(\"twitter\"); }}");
        let findings = check_source("crates/workload/src/x.rs", &foreign);
        assert_eq!(findings.len(), 1);
        assert!(findings[0]
            .message
            .contains("registered to subsystem `core`"));
    }

    #[test]
    fn d11_computed_labels_are_flagged() {
        let src = "fn f(rng: &Rng, kind: Kind) { let r = rng.fork(kind.name()); }";
        let findings = check_source("crates/workload/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::D11);
        assert!(findings[0].message.contains("string literal"));
    }

    #[test]
    fn d12_flags_ad_hoc_metric_key_literals() {
        let src = "fn f(m: &mut Metrics) { m.incr(\"transport.attempts\"); }";
        assert_eq!(rules_of("crates/core/src/study.rs", src), vec![Rule::D12]);
        // Passing the declared constant is the sanctioned shape.
        let through_const = "fn f(m: &mut Metrics) { m.incr(keys::TRANSPORT_ATTEMPTS); }";
        assert_eq!(rules_of("crates/core/src/study.rs", through_const), vec![]);
    }

    #[test]
    fn d12_registry_duplicates_are_flagged() {
        let src = "pub mod keys {\n\
                     pub const A: &str = \"transport.attempts\";\n\
                     pub const B: &str = \"transport.attempts\";\n\
                   }";
        let findings = check_source("crates/simnet/src/metrics.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::D12);
        assert!(findings[0].message.contains("both declare"));
    }

    #[test]
    fn d9_resolves_structs_across_files() {
        let files = vec![
            (
                "crates/core/src/state.rs".to_string(),
                "pub struct Snap { a: u32, b: u64 }".to_string(),
            ),
            (
                "crates/checkpoint/src/impls.rs".to_string(),
                "impl Persist for Snap {\n\
                   fn save(&self, w: &mut Writer) { w.u32(self.a); w.u64(self.b); }\n\
                   fn load(r: &mut Reader<'_>) -> Result<Self, E> { Ok(Snap { a: r.u32()?, b: r.u64()? }) }\n\
                 }"
                .to_string(),
            ),
        ];
        assert!(check_sources(&files).is_clean());
        let drifted = vec![
            files[0].clone(),
            (
                "crates/checkpoint/src/impls.rs".to_string(),
                "impl Persist for Snap {\n\
                   fn save(&self, w: &mut Writer) { w.u32(self.a); }\n\
                   fn load(r: &mut Reader<'_>) -> Result<Self, E> { Ok(Snap { a: r.u32()?, b: 0 }) }\n\
                 }"
                .to_string(),
            ),
        ];
        let report = check_sources(&drifted);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, Rule::D9);
        assert_eq!(report.findings[0].path, "crates/checkpoint/src/impls.rs");
    }

    #[test]
    fn commented_out_violations_do_not_fire() {
        let src = "// let t = SystemTime::now();\n/* thread_rng() */ fn f() {}";
        assert_eq!(rules_of("crates/core/src/x.rs", src), vec![]);
    }

    #[test]
    fn string_embedded_violations_do_not_fire() {
        let src = r#"const MSG: &str = "never call SystemTime::now() here";"#;
        assert_eq!(rules_of("crates/core/src/x.rs", src), vec![]);
    }

    #[test]
    fn d7_fires_on_discarded_net_results() {
        let bare = "fn f(net: &mut Net) { net.twitter(eco, now, &req); }";
        assert_eq!(rules_of("crates/core/src/x.rs", bare), vec![Rule::D7]);
        let underscore = "fn f(net: &mut Net) { let _ = net.platform(eco, kind, now, &req); }";
        assert_eq!(rules_of("src/bin/repro.rs", underscore), vec![Rule::D7]);
        // Outside the core crate / binary the rule does not apply.
        assert_eq!(rules_of("crates/simnet/src/x.rs", bare), vec![]);
    }

    #[test]
    fn d7_consumed_results_pass() {
        for src in [
            "fn f() -> Result<Response, CoreError> { net.twitter(eco, now, &req) }",
            "fn f() { let resp = net.twitter(eco, now, &req); use_it(resp); }",
            "fn f() { match net.platform(eco, kind, now, &req) { Ok(r) => x(r), Err(_) => y() } }",
            "fn f() { if let Ok(r) = net.twitter(eco, now, &req) { x(r); } }",
            "fn g() -> Result<(), E> { net.twitter(eco, now, &req)?; Ok(()) }",
            "fn h() { let Ok(resp) = net.platform(eco, kind, now, &req) else { return; }; }",
        ] {
            assert_eq!(rules_of("crates/core/src/x.rs", src), vec![], "{src}");
        }
        // Value accessors sharing the method names never trip the rule.
        let accessors =
            "fn f() { let n = cfg.platform(kind).n_group_urls; let p = invite.platform(); }";
        assert_eq!(rules_of("crates/core/src/x.rs", accessors), vec![]);
    }

    #[test]
    fn d8_fires_on_unwrapped_wiredoc_accessors() {
        let method = "fn f(doc: &WireDoc) { let n = doc.req_u64(\"size\").unwrap(); }";
        assert_eq!(
            rules_of("crates/core/src/monitor.rs", method),
            vec![Rule::D8]
        );
        let assoc =
            "fn f(body: &str) { let doc = WireDoc::parse_as(body, \"tg-web\").expect(\"doc\"); }";
        assert_eq!(
            rules_of("crates/core/src/discovery.rs", assoc),
            vec![Rule::D8]
        );
        let opt = "fn f(doc: &WireDoc) { let n = doc.opt_u64(\"online\").unwrap().unwrap_or(0); }";
        assert_eq!(rules_of("src/bin/repro.rs", opt), vec![Rule::D8]);
    }

    #[test]
    fn d8_spares_tests_quarantine_and_std_parse() {
        let in_test = "#[cfg(test)]\nmod tests {\n fn f(d: &WireDoc) { d.req(\"k\").unwrap(); }\n}";
        assert_eq!(rules_of("crates/core/src/monitor.rs", in_test), vec![]);
        let quarantine = "fn f(d: &WireDoc) { d.req(\"k\").unwrap(); }";
        assert_eq!(
            rules_of("crates/core/src/quarantine.rs", quarantine),
            vec![]
        );
        // `str::parse` shares a name with `WireDoc::parse`; only the
        // associated form is matched.
        let std_parse = "fn f(s: &str) -> u32 { s.parse().unwrap() }";
        assert_eq!(rules_of("crates/core/src/monitor.rs", std_parse), vec![]);
        // Propagated errors are the sanctioned shape.
        let propagated = "fn f(d: &WireDoc) -> Result<u64, WireError> { d.req_u64(\"size\") }";
        assert_eq!(rules_of("crates/core/src/monitor.rs", propagated), vec![]);
    }

    #[test]
    fn d8_pragma_suppresses() {
        let src = "// lint:allow(D8) fixture body is rendered two lines up, cannot fail\nfn f(b: &str) { WireDoc::parse(b).unwrap(); }";
        let (findings, suppressed) = check_source_counting("crates/core/src/monitor.rs", src);
        assert!(findings.is_empty());
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn stats_table_lists_every_rule() {
        let report = Report::default();
        let t = report.stats_table();
        for r in Rule::ALL {
            assert!(t.contains(r.id()), "{t}");
        }
    }
}
