//@ path: crates/core/src/fixture.rs
fn f(m: &Metrics) { m.incr("ad_hoc_key", 1); } //~ ERROR D12
