//@ path: crates/core/src/fixture.rs
// lint:allow(D3) wrong rule on purpose, stays stale
//~^ ERROR D3
fn f() -> u64 { SystemTime::now().elapsed().as_secs() } //~ ERROR D1
