//@ path: crates/simnet/src/fixture.rs
fn f(rng: &mut Rng) -> Rng { rng.fork("unregistered-stream") } //~ ERROR D11
