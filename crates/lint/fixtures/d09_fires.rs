//@ path: crates/checkpoint/src/fixture.rs
struct Snap { a: u32, b: u32 }
impl Persist for Snap { //~ ERROR D9
    fn save(&self, w: &mut Writer) { w.put_u64(self.a as u64); }
    fn load(r: &mut Reader) -> Snap { Snap { a: r.u64() as u32, b: 0 } }
}
