//@ path: crates/checkpoint/src/fixture.rs
struct Snap { a: u32, b: u32 }
// lint:allow(D9) fixture: `b` is derived at load time, never persisted
impl Persist for Snap { //~ SUPPRESSED D9
    fn save(&self, w: &mut Writer) { w.put_u64(self.a as u64); }
    fn load(r: &mut Reader) -> Snap { Snap { a: r.u64() as u32, b: 0 } }
}
