//@ path: crates/simnet/src/fixture.rs
fn f(rng: &mut Rng) -> Rng {
    // lint:allow(D11) fixture: scratch stream local to this fixture
    rng.fork("unregistered-stream") //~ SUPPRESSED D11
}
