//@ path: crates/core/src/dataset.rs
fn f(x: u32) -> String {
    // lint:allow(D10) fixture: cold path, runs once per report
    x.to_string() //~ SUPPRESSED D10
}
