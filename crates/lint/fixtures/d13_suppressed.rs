//@ path: crates/bench/src/main.rs
// lint:allow(D13) fixture: bench baselines sit outside the durability domain
fn f() -> String { std::fs::read_to_string("BENCH.json").unwrap() } //~ SUPPRESSED D13
