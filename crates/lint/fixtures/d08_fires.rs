//@ path: crates/core/src/fixture.rs
fn f(doc: &WireDoc) -> u64 { doc.req_u64("size").unwrap() } //~ ERROR D8
