//@ path: crates/core/src/monitor.rs
// A hostile page can claim any element count it likes; sizing a Vec
// straight from the claim is an unbounded allocation.
fn f(doc: &WireDoc) -> Vec<u8> {
    Vec::with_capacity(doc.req_u64("n").unwrap_or(0) as usize) //~ ERROR D14
}
// The claim travels through a let-binding: still tainted.
fn g(r: &mut Reader) -> Vec<u8> {
    let n = r.get_varint()? as usize;
    let mut out: Vec<u8> = Vec::with_capacity(n); //~ ERROR D14
    out
}
// `reserve` grows just as unboundedly as `with_capacity`.
fn h(out: &mut Vec<u8>, doc: &WireDoc) {
    out.reserve(doc.req_u64("more").unwrap_or(0) as usize); //~ ERROR D14
}
