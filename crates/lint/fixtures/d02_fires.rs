//@ path: crates/analysis/src/fixture.rs
fn f(m: &HashMap<u32, u64>) -> u64 {
    let mut s = 0;
    for v in m.values() { //~ ERROR D2
        s += v;
    }
    s
}
