//@ path: crates/analysis/src/fixture.rs
fn f(pool: &Pool) {
    // lint:allow(D4) fixture: lock is chunk-local here
    pool.par_map(&xs, |x| { shared.lock().push(*x); 0 }); //~ SUPPRESSED D4
}
