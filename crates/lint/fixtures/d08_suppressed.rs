//@ path: crates/core/src/fixture.rs
fn f(doc: &WireDoc) -> u64 {
    // lint:allow(D8) fixture: body rendered two lines up, cannot fail
    doc.req_u64("size").unwrap() //~ SUPPRESSED D8
}
