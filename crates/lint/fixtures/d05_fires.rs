//@ path: crates/simnet/src/fixture.rs
fn f(m: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap() } //~ ERROR D5
