//@ path: crates/core/src/monitor.rs
// The guarded constructors: `Reader::get_len` validates the claim
// against the remaining input, and `.min(..)` bounds it at the site —
// neither fires, no pragma needed.
fn guarded(r: &mut Reader) -> Vec<u8> {
    let len = r.get_len()?; // validated: each element needs >= 1 byte
    let mut out: Vec<u8> = Vec::with_capacity(len);
    out
}
fn clamped(doc: &WireDoc) -> Vec<u8> {
    Vec::with_capacity((doc.req_u64("n").unwrap_or(0) as usize).min(MAX_PAGE))
}
// A site the author has argued bounded out-of-band takes the pragma.
fn vouched(doc: &WireDoc) -> Vec<u8> {
    // lint:allow(D14) fixture: page size capped by the transport frame limit upstream
    Vec::with_capacity(doc.req_u64("n").unwrap_or(0) as usize) //~ SUPPRESSED D14
}
