//@ path: crates/analysis/src/fixture.rs
fn f(m: &HashMap<u32, u64>) -> u64 {
    let mut s = 0;
    // lint:allow(D2) fixture: sum is order-insensitive
    for v in m.values() { //~ SUPPRESSED D2
        s += v;
    }
    s
}
