//@ path: crates/core/src/fixture.rs
// lint:allow(D1) fixture: operator-facing timestamp, not an artifact
fn f() -> u64 { SystemTime::now().elapsed().as_secs() } //~ SUPPRESSED D1
