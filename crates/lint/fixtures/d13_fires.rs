//@ path: crates/checkpoint/src/snapshot.rs
// Reads are fine under D6 but not D13: even the checkpoint crate must
// go through its own vfs module for every byte that touches disk.
fn f() -> Vec<u8> { std::fs::read("day001.ckpt").unwrap() } //~ ERROR D13
fn g() { let _f = File::open("day001.ckpt").unwrap(); } //~ ERROR D13
