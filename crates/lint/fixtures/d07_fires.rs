//@ path: crates/core/src/fixture.rs
fn f(net: &mut Net) { let _ = net.twitter(eco, now, &req); } //~ ERROR D7
