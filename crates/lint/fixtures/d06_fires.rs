//@ path: crates/core/src/fixture.rs
fn f() { std::fs::write("out.txt", "data").unwrap(); } //~ ERROR D6
//~^ ERROR D13
