//@ path: crates/core/src/fixture.rs
fn f(m: &Metrics) {
    // lint:allow(D12) fixture: one-off probe counter, not part of the schema
    m.incr("ad_hoc_key", 1); //~ SUPPRESSED D12
}
