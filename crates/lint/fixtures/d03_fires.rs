//@ path: crates/workload/src/fixture.rs
fn f() -> u64 { thread_rng().next() } //~ ERROR D3
