//@ path: crates/core/src/fixture.rs
fn f() -> u64 { SystemTime::now().elapsed().as_secs() } //~ ERROR D1
