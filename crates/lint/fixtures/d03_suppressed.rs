//@ path: crates/workload/src/fixture.rs
// lint:allow(D3) fixture: entropy is fine in this fixture
fn f() -> u64 { thread_rng().next() } //~ SUPPRESSED D3
