//@ path: crates/core/src/dataset.rs
fn f(x: u32) -> String { x.to_string() } //~ ERROR D10
