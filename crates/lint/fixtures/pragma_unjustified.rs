//@ path: crates/core/src/fixture.rs
// lint:allow(D1)
fn f() -> u64 { SystemTime::now().elapsed().as_secs() }
//~^^ ERROR D1
//~^^ SUPPRESSED D1
