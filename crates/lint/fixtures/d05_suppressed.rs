//@ path: crates/simnet/src/fixture.rs
fn f(m: &std::sync::Mutex<u32>) -> u32 {
    // lint:allow(D5) fixture: std mutex on purpose
    *m.lock().unwrap() //~ SUPPRESSED D5
}
