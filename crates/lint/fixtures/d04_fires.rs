//@ path: crates/analysis/src/fixture.rs
fn f(pool: &Pool) {
    pool.par_map(&xs, |x| { shared.lock().push(*x); 0 }); //~ ERROR D4
}
