//@ path: crates/core/src/fixture.rs
// lint:allow(D6, D13) fixture: operator-requested export path
fn f() { std::fs::write("out.txt", "data").unwrap(); } //~ SUPPRESSED D6
//~^ SUPPRESSED D13
