//@ path: crates/core/src/fixture.rs
fn f(net: &mut Net) {
    // lint:allow(D7) fixture: warm-up call, outcome intentionally unused
    let _ = net.twitter(eco, now, &req); //~ SUPPRESSED D7
}
