//! rustc-UI-style fixture corpus for the lint. Every `fixtures/*.rs`
//! file declares the virtual workspace path it should be checked under
//! in a `//@ path:` header (rules are path-sensitive: hot modules,
//! library crates, the checkpoint crate), and marks its expectations
//! with trailing comments:
//!
//! * `//~ ERROR D<k>` — a D\<k\> finding is expected on this line
//!   (`//~^` points one line up, `//~^^` two lines up, and so on);
//! * `//~ SUPPRESSED D<k>` — a finding on this line is expected to be
//!   silenced by a `lint:allow` pragma (checked as a per-file count).
//!
//! The harness diffs expectations against the real report and prints
//! the missing and unexpected findings side by side on drift.

use chatlens_lint::check_source_counting;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Expected {
    line: u32,
    rule: String,
}

/// Parse the `//@ path:` header and every `//~` expectation out of a
/// fixture source. Returns `(virtual path, expected findings, expected
/// suppression count)`.
fn parse_fixture(name: &str, src: &str) -> (String, Vec<Expected>, usize) {
    let mut path = None;
    let mut errors = Vec::new();
    let mut suppressed = 0usize;
    for (i, line) in src.lines().enumerate() {
        let line_no = (i + 1) as u32;
        if let Some(rest) = line.strip_prefix("//@ path:") {
            path = Some(rest.trim().to_string());
        }
        let mut rest = line;
        while let Some(pos) = rest.find("//~") {
            rest = &rest[pos + 3..];
            let carets = rest.chars().take_while(|&c| c == '^').count();
            let target = line_no - carets as u32;
            let body = rest[carets..].trim_start();
            if let Some(tail) = body.strip_prefix("ERROR ") {
                let rule = tail.split_whitespace().next().unwrap_or("").to_string();
                assert!(!rule.is_empty(), "{name}:{line_no}: bare ERROR expectation");
                errors.push(Expected { line: target, rule });
            } else if body.starts_with("SUPPRESSED ") {
                suppressed += 1;
            } else {
                panic!("{name}:{line_no}: unknown expectation kind in `//~ {body}`");
            }
        }
    }
    let path = path.unwrap_or_else(|| panic!("{name}: missing `//@ path:` header"));
    (path, errors, suppressed)
}

/// Remove one matching element from `pool` per element of `probe`,
/// returning what could not be matched (multiset difference).
fn unmatched(probe: &[Expected], pool: &[Expected]) -> Vec<Expected> {
    let mut pool: Vec<Option<&Expected>> = pool.iter().map(Some).collect();
    let mut missing = Vec::new();
    for want in probe {
        match pool.iter().position(|c| c.is_some_and(|c| c == want)) {
            Some(i) => pool[i] = None,
            None => missing.push(want.clone()),
        }
    }
    missing
}

#[test]
fn fixture_corpus_matches_expectations() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("fixtures/ directory")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    files.sort();

    // Corpus completeness: one firing and one suppressed fixture per rule.
    for k in 1..=13 {
        for kind in ["fires", "suppressed"] {
            let want = format!("d{k:02}_{kind}.rs");
            assert!(
                files.iter().any(|p| p.ends_with(&want)),
                "fixture corpus is missing {want}"
            );
        }
    }

    let mut failures = Vec::new();
    for file in &files {
        let name = file.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(file).expect("fixture readable");
        let (vpath, want, want_suppressed) = parse_fixture(&name, &src);
        let (findings, suppressed) = check_source_counting(&vpath, &src);
        let got: Vec<Expected> = findings
            .iter()
            .map(|f| Expected {
                line: f.line,
                rule: f.rule.id().to_string(),
            })
            .collect();
        for miss in unmatched(&want, &got) {
            failures.push(format!(
                "{name}: expected {} at line {} — not reported",
                miss.rule, miss.line
            ));
        }
        for extra in unmatched(&got, &want) {
            let full = findings
                .iter()
                .find(|f| f.line == extra.line && f.rule.id() == extra.rule)
                .map(|f| f.to_string())
                .unwrap_or_default();
            failures.push(format!("{name}: unexpected finding: {full}"));
        }
        if suppressed != want_suppressed {
            failures.push(format!(
                "{name}: {suppressed} finding(s) suppressed, expectations say {want_suppressed}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "fixture corpus drift ({} problem(s)):\n{}",
        failures.len(),
        failures.join("\n")
    );
}
