//! Property tests for the lint tokenizer: line/column tracking and
//! dead-zone handling survive arbitrary compositions of raw strings,
//! nested block comments, char literals with braces, multi-byte char
//! literals, and `//` sequences inside strings.

use chatlens_lint::scan::{scan, TokKind};
use proptest::prelude::*;

/// Source snippets whose *contents* must never produce tokens: each one
/// embeds banned-looking identifiers inside a comment, string, raw
/// string, or char literal.
const DEAD_ZONES: &[&str] = &[
    "let s = \"SystemTime::now() // not a comment\";\n",
    "/* Instant::now() /* nested HashMap */ thread_rng */\n",
    "let open = '{'; let close = '}';\n",
    "let r = r#\"thread::current() \"quoted\" OsRng\"#;\n",
    "// SystemTime::now() commented out\n",
    "let sparkline = '\u{2581}'; let bytes = b\"OsRng inside bytes\";\n",
    "let multi = r##\"first\nsecond \"# still raw\"##;\n",
    "let esc = \"tail // \\\"quote\\\" \\\\ done\";\n",
    "let byte_char = b'{'; let tick = '\\'';\n",
];

/// Identifiers that appear ONLY inside the dead zones above — seeing any
/// of them as a token means the scanner leaked out of a literal/comment.
const BANNED: &[&str] = &[
    "SystemTime",
    "Instant",
    "HashMap",
    "thread_rng",
    "OsRng",
    "now",
    "current",
];

fn assemble(choices: &[usize]) -> String {
    let mut src = String::new();
    for &c in choices {
        src.push_str(DEAD_ZONES[c % DEAD_ZONES.len()]);
    }
    src
}

proptest! {
    #[test]
    fn dead_zones_never_leak_tokens(
        choices in proptest::collection::vec(0usize..9, 0..24),
    ) {
        let src = assemble(&choices);
        let s = scan(&src);
        for t in &s.tokens {
            if t.kind == TokKind::Ident {
                prop_assert!(
                    !BANNED.contains(&t.text.as_str()),
                    "leaked `{}` at {}:{} from:\n{}", t.text, t.line, t.col, src
                );
            }
        }
    }

    #[test]
    fn marker_after_dead_zones_has_exact_position(
        choices in proptest::collection::vec(0usize..9, 0..24),
        pad in 0usize..7,
    ) {
        let mut src = assemble(&choices);
        src.push_str(&" ".repeat(pad));
        src.push_str("fn zz_marker() { zz_probe(); }\n");
        // Reference position computed directly from the assembled text.
        let off = src.find("zz_probe").unwrap();
        let prefix = &src[..off];
        let want_line = 1 + prefix.matches('\n').count() as u32;
        let want_col = (off - prefix.rfind('\n').map(|p| p + 1).unwrap_or(0)) as u32 + 1;

        let s = scan(&src);
        let probe = s
            .tokens
            .iter()
            .find(|t| t.is_ident("zz_probe"))
            .expect("marker ident must be tokenized");
        prop_assert_eq!((probe.line, probe.col), (want_line, want_col), "in:\n{}", src);
    }

    #[test]
    fn every_ident_token_points_at_its_own_text(
        choices in proptest::collection::vec(0usize..9, 0..24),
    ) {
        let mut src = assemble(&choices);
        src.push_str("fn tail(x: usize) -> usize { x + 1 }\n");
        let s = scan(&src);
        let lines: Vec<&str> = src.split('\n').collect();
        for t in &s.tokens {
            if t.kind != TokKind::Ident {
                continue;
            }
            let line = lines[(t.line - 1) as usize].as_bytes();
            let at = &line[(t.col - 1) as usize..];
            // Raw identifiers tokenize as their name but sit after `r#`.
            let direct = at.starts_with(t.text.as_bytes());
            let raw = at.starts_with(b"r#") && at[2..].starts_with(t.text.as_bytes());
            prop_assert!(direct || raw, "`{}` not at {}:{} of:\n{}", t.text, t.line, t.col, src);
        }
    }

    #[test]
    fn allow_pragmas_survive_surrounding_dead_zones(
        choices in proptest::collection::vec(0usize..9, 0..12),
    ) {
        let mut src = assemble(&choices);
        let pragma_line = 1 + src.matches('\n').count() as u32;
        src.push_str("// lint:allow(D1, D4) fixture justification\nlet x = 1;\n");
        let s = scan(&src);
        let rules = s.allows.get(&pragma_line).expect("pragma collected");
        prop_assert!(rules.contains("D1") && rules.contains("D4"));
        // Pragmas inside strings/comments of the dead zones must not
        // register: only the explicit line above carries one.
        prop_assert_eq!(s.allows.len(), 1);
    }
}
