//! Property tests for the item-level parser: arbitrary compositions of
//! item fragments — including truncations that cut an item in half and
//! a fragment of pure unbalanced punctuation — must never panic, and
//! every span the parser reports (item spans and method body spans)
//! must stay inside the token slice it was parsed from.

use chatlens_lint::items::parse_items;
use chatlens_lint::scan::scan;
use proptest::prelude::*;

/// Building blocks covering every item kind the parser understands,
/// plus adversarial shapes: generics with const parameters, nested
/// angle brackets, an impl with a `for` keyword, and raw punctuation.
const FRAGMENTS: &[&str] = &[
    "struct S { a: u32, b: Vec<u8>, c: BTreeMap<String, (u32, u64)> }\n",
    "pub enum E { A, B(u32), C { x: u8, y: u8 } }\n",
    "impl Persist for S { fn save(&self, w: &mut W) { w.put(self.a); } fn load(r: &mut R) -> S { S } }\n",
    "fn free(x: u32) -> u32 { if x > 1 { x } else { 1 } }\n",
    "const K: &[(&str, &str)] = &[(\"a\", \"b\"), (\"c\", \"d\")];\n",
    "persist_struct!(S { a, b, c });\n",
    "impl<T: Ord> Wrapper<T> { fn get(&self) -> &T { &self.0 } }\n",
    "#[derive(Debug)] struct Weird<const N: usize> { arr: [u8; N] }\n",
    "mod inner { struct Hidden { z: u64 } }\n",
    "{ } } { ) ( < > , ; : -> => #\n",
];

proptest! {
    #[test]
    fn parser_never_panics_and_spans_stay_in_bounds(
        choices in proptest::collection::vec(0usize..10, 0..16),
        cut in proptest::option::of(0usize..600),
    ) {
        let mut src: String = choices
            .iter()
            .map(|&c| FRAGMENTS[c % FRAGMENTS.len()])
            .collect();
        if let Some(cut) = cut {
            // Truncate at an arbitrary char boundary: the parser must
            // survive mid-item cuts without panicking or reporting
            // out-of-range spans.
            let mut cut = cut.min(src.len());
            while !src.is_char_boundary(cut) {
                cut -= 1;
            }
            src.truncate(cut);
        }
        let s = scan(&src);
        let n = s.tokens.len();
        let items = parse_items(&s.tokens);
        for it in &items {
            prop_assert!(
                it.span.0 <= it.span.1 && it.span.1 <= n,
                "item `{}` span {:?} out of bounds (n={}) in:\n{}",
                it.name, it.span, n, src
            );
            for m in &it.methods {
                prop_assert!(
                    m.body.0 <= m.body.1 && m.body.1 <= n,
                    "method `{}::{}` body {:?} out of bounds (n={}) in:\n{}",
                    it.name, m.name, m.body, n, src
                );
            }
        }
    }

    #[test]
    fn unfragmented_corpus_parses_every_named_item(
        reps in 1usize..4,
    ) {
        // The well-formed fragments (everything except the punctuation
        // soup) must each yield their named item, however many times the
        // corpus is repeated — parsing is stateless across items.
        let src: String = FRAGMENTS[..9].concat().repeat(reps);
        let s = scan(&src);
        let items = parse_items(&s.tokens);
        for name in ["S", "E", "free", "K", "Wrapper", "Weird", "Hidden"] {
            let count = items.iter().filter(|i| i.name == name).count()
                + items
                    .iter()
                    .filter(|i| i.target.as_deref() == Some(name))
                    .count();
            prop_assert!(
                count >= reps,
                "expected `{name}` at least {reps} time(s), saw {count}"
            );
        }
    }
}
