//! Tiny regex-subset generator behind `&str` strategies.
//!
//! Supports the pattern features the workspace's tests use: literals,
//! escapes (`\n`, `\r`, `\t`, `\\`, `\d`), the "printable" class `\PC`,
//! character classes `[...]` with ranges and negation, and the
//! quantifiers `*`, `+`, `?`, `{n}`, `{m,n}`. Unbounded quantifiers are
//! capped at 16 repetitions.

use crate::TestRng;

const UNBOUNDED_CAP: usize = 16;

enum CharClass {
    Lit(char),
    Set(Vec<char>),
    NegSet(Vec<char>),
    Printable,
}

struct Atom {
    class: CharClass,
    min: usize,
    max: usize,
}

/// Printable sample pool for `\PC` and negated classes: ASCII printables
/// plus a few multi-byte characters so UTF-8 handling gets exercised.
fn printable_pool() -> Vec<char> {
    let mut pool: Vec<char> = (0x20u8..=0x7e).map(char::from).collect();
    pool.extend(['\u{e9}', '\u{df}', '\u{3a9}', '\u{4e2d}', '\u{1f980}']);
    pool
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let class = match chars[i] {
            '\\' => {
                i += 1;
                match chars.get(i) {
                    Some('P') | Some('p') => {
                        // `\PC` — "not a control character".
                        i += 1;
                        CharClass::Printable
                    }
                    Some('n') => CharClass::Lit('\n'),
                    Some('r') => CharClass::Lit('\r'),
                    Some('t') => CharClass::Lit('\t'),
                    Some('d') => CharClass::Set(('0'..='9').collect()),
                    Some(&c) => CharClass::Lit(c),
                    None => break,
                }
            }
            '[' => {
                i += 1;
                let negated = chars.get(i) == Some(&'^');
                if negated {
                    i += 1;
                }
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        match chars.get(i) {
                            Some('n') => '\n',
                            Some('r') => '\r',
                            Some('t') => '\t',
                            Some(&c) => c,
                            None => break,
                        }
                    } else {
                        chars[i]
                    };
                    // Range `a-z` (a `-` not at the end of the class).
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2) != Some(&']') {
                        if let Some(&hi) = chars.get(i + 2) {
                            for v in c..=hi {
                                set.push(v);
                            }
                            i += 3;
                            continue;
                        }
                    }
                    set.push(c);
                    i += 1;
                }
                if negated {
                    CharClass::NegSet(set)
                } else {
                    CharClass::Set(set)
                }
            }
            c => CharClass::Lit(c),
        };
        i += 1;
        // Quantifier?
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                i += 1;
                (1, UNBOUNDED_CAP)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                i += 1;
                let mut lo = 0usize;
                while let Some(d) = chars.get(i).and_then(|c| c.to_digit(10)) {
                    lo = lo * 10 + d as usize;
                    i += 1;
                }
                let hi = if chars.get(i) == Some(&',') {
                    i += 1;
                    let mut h = 0usize;
                    let mut saw = false;
                    while let Some(d) = chars.get(i).and_then(|c| c.to_digit(10)) {
                        h = h * 10 + d as usize;
                        i += 1;
                        saw = true;
                    }
                    if saw {
                        h
                    } else {
                        lo + UNBOUNDED_CAP
                    }
                } else {
                    lo
                };
                if chars.get(i) == Some(&'}') {
                    i += 1;
                }
                (lo, hi)
            }
            _ => (1, 1),
        };
        atoms.push(Atom { class, min, max });
    }
    atoms
}

/// Generates one string matching `pattern` (within the supported subset).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let pool = printable_pool();
    let mut out = String::new();
    for atom in &atoms {
        let reps = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
        for _ in 0..reps {
            match &atom.class {
                CharClass::Lit(c) => out.push(*c),
                CharClass::Set(set) if !set.is_empty() => {
                    out.push(set[rng.below(set.len() as u64) as usize]);
                }
                CharClass::Set(_) => {}
                CharClass::NegSet(excluded) => {
                    // Bounded rejection over the printable pool.
                    for _ in 0..32 {
                        let c = pool[rng.below(pool.len() as u64) as usize];
                        if !excluded.contains(&c) {
                            out.push(c);
                            break;
                        }
                    }
                }
                CharClass::Printable => {
                    out.push(pool[rng.below(pool.len() as u64) as usize]);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("string-tests", 7)
    }

    #[test]
    fn bounded_repeat_class() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate_matching("[A-Za-z0-9]{1,32}", &mut r);
            assert!(!s.is_empty() && s.len() <= 32, "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()), "{s:?}");
        }
    }

    #[test]
    fn anchored_prefix_and_tail() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate_matching("[a-z][a-z-]{0,15}", &mut r);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.len() <= 16);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }

    #[test]
    fn negated_class_excludes_newlines() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate_matching("[^\n\r]{0,40}", &mut r);
            assert!(!s.contains('\n') && !s.contains('\r'));
            assert!(s.chars().count() <= 40);
        }
    }

    #[test]
    fn printable_star_yields_no_controls() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate_matching("\\PC*", &mut r);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }
}
