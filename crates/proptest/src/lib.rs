//! Vendored offline shim of the `proptest` property-testing API.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with
//! `name in strategy` bindings, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`/`prop_assume!`, `any::<T>()`, integer/float range
//! strategies, regex-subset string strategies, `collection::{vec,
//! btree_set}`, `option::of`, and tuple strategies.
//!
//! Differences from real proptest: generation is driven by a fixed-seed
//! SplitMix64 stream (fully deterministic run-to-run, no `proptest-regressions`
//! files), and failing cases are reported without shrinking. Case count
//! defaults to 64 and honours `PROPTEST_CASES`.

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::ops::Range;

pub mod string;

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// The case was filtered out by `prop_assume!`; try another.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failing-case error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejected-case (assume failed) error.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic generation stream handed to strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the stream for one named test's nth attempt.
    pub fn for_case(name: &str, attempt: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            state: h ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform length in `[range.start, range.end)`.
    pub fn len_in(&mut self, range: &Range<usize>) -> usize {
        let span = range.end.saturating_sub(range.start).max(1);
        range.start + self.below(span as u64) as usize
    }
}

/// A generator of values of one type. (Shim: no shrinking, `generate`
/// replaces proptest's `new_tree`/`ValueTree` machinery.)
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;
    /// Draws one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

// ---- primitive strategies -------------------------------------------------

macro_rules! unsigned_range_strategy {
    ($($ty:ty),+) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let span = (self.end as u64).wrapping_sub(self.start as u64).max(1);
                self.start.wrapping_add(rng.below(span) as $ty)
            }
        })+
    };
}

macro_rules! signed_range_strategy {
    ($($ty:ty as $uty:ty),+) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let span = (self.end as $uty).wrapping_sub(self.start as $uty) as u64;
                self.start.wrapping_add(rng.below(span.max(1)) as $ty)
            }
        })+
    };
}

unsigned_range_strategy!(u8, u16, u32, u64, usize);
signed_range_strategy!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Strategy for "any value of `T`" — see [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Returns the full-range strategy for `T` (proptest's `any::<T>()`).
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! any_int_strategy {
    ($($ty:ty),+) => {
        $(impl Strategy for Any<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        })+
    };
}

any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// `&str` literals act as regex-subset string strategies, as in proptest.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate_matching(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {
        $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        })+
    };
}

tuple_strategy!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

// ---- combinators ----------------------------------------------------------

/// Collection strategies (`proptest::collection::{vec, btree_set}`).
pub mod collection {
    use super::*;

    /// Strategy producing `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec`: vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.len_in(&self.size);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet<S::Value>` with size drawn from a range.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::btree_set`: ordered sets of `element` values.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.len_in(&self.size);
            let mut set = BTreeSet::new();
            // Duplicates shrink the set; bounded retries keep it deterministic.
            for _ in 0..target.saturating_mul(4).max(8) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::*;

    /// Strategy producing `Option<S::Value>`, `None` about 25% of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of`: wraps a strategy's values in `Some`/`None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy,
        TestCaseError,
    };
}

// ---- runner ---------------------------------------------------------------

/// Drives one property over many generated cases. Called by the code the
/// `proptest!` macro expands to; not part of the public proptest API.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let mut passed = 0u64;
    let mut attempt = 0u64;
    while passed < cases {
        attempt += 1;
        if attempt > cases.saturating_mul(20) {
            panic!(
                "proptest '{name}': too many rejected cases \
                 ({passed}/{cases} passed after {attempt} attempts)"
            );
        }
        let mut rng = TestRng::for_case(name, attempt);
        let (inputs, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed (attempt {attempt}):\n  {msg}\n  inputs: {inputs}")
            }
        }
    }
}

/// Declares property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    |__rng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                        let __inputs = format!(
                            concat!($(stringify!($arg), " = {:?}; "),+),
                            $(&$arg),+
                        );
                        let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                            (move || {
                                $body
                                ::std::result::Result::Ok(())
                            })();
                        (__inputs, __outcome)
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body (fails the case, with
/// inputs reported, instead of panicking outright).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left == right`\n  left: `{:?}`\n  right: `{:?}`",
                        __l, __r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: `{:?}`\n  right: `{:?}`",
                        format!($($fmt)+),
                        __l,
                        __r
                    )));
                }
            }
        }
    };
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left != right`\n  both: `{:?}`",
                        __l
                    )));
                }
            }
        }
    };
}

/// Filters out cases that don't satisfy a precondition (rejected, retried).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in -5i64..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u8..10, 2..5),
            s in crate::collection::btree_set(0u32..1000, 1..8),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(!s.is_empty() && s.len() < 8);
        }

        #[test]
        fn string_patterns_match_shape(code in "[A-Za-z0-9]{1,32}", free in "\\PC*") {
            prop_assert!(!code.is_empty() && code.len() <= 32);
            prop_assert!(code.chars().all(|c| c.is_ascii_alphanumeric()));
            prop_assert!(free.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = super::TestRng::for_case("x", 1);
        let mut b = super::TestRng::for_case("x", 1);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
