//! Invite-URL extraction and validation (§3.1).
//!
//! Twitter's track matching is host-based and credulous; the collector
//! cannot be. Every URL in every matched tweet is parsed against the six
//! documented patterns and rejected unless it yields a well-formed invite
//! (so `discord.com/developers` or a shortened `bit.ly` link never becomes
//! a "group"). Deduplication is by platform + opaque code, which also
//! merges the two URL spellings of the same Discord invite.

use chatlens_platforms::invite::{parse_invite_url, InviteCode};
use chatlens_twitter::Tweet;

/// Running totals of the extractor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractionStats {
    /// URLs inspected.
    pub urls_seen: u64,
    /// URLs that parsed into a valid invite.
    pub invites: u64,
    /// URLs rejected (not one of the six patterns, or malformed).
    pub rejected: u64,
}

/// Extract every valid invite from a tweet, updating `stats`.
pub fn extract_invites(tweet: &Tweet, stats: &mut ExtractionStats) -> Vec<InviteCode> {
    let mut out = Vec::new();
    for url in &tweet.urls {
        stats.urls_seen += 1;
        match parse_invite_url(url) {
            Some(invite) => {
                stats.invites += 1;
                out.push(invite);
            }
            None => stats.rejected += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_platforms::id::PlatformKind;
    use chatlens_simnet::time::SimTime;
    use chatlens_twitter::{Lang, TweetId, TwitterUserId};

    fn tweet(urls: Vec<&str>) -> Tweet {
        Tweet {
            id: TweetId(0),
            author: TwitterUserId(0),
            at: SimTime::EPOCH,
            lang: Lang::En,
            hashtags: 0,
            mentions: 0,
            retweet_of: None,
            urls: urls.into_iter().map(str::to_string).collect(),
            tokens: vec![],
            is_control: false,
        }
    }

    #[test]
    fn extracts_valid_rejects_noise() {
        let mut stats = ExtractionStats::default();
        let t = tweet(vec![
            "https://chat.whatsapp.com/AAAAAAAAAAAAAAAAAAAAAA",
            "https://bit.ly/xyz",
            "https://discord.com/developers",
            "https://discord.gg/abc123XY",
        ]);
        let invites = extract_invites(&t, &mut stats);
        assert_eq!(invites.len(), 2);
        assert_eq!(invites[0].platform(), PlatformKind::WhatsApp);
        assert_eq!(invites[1].platform(), PlatformKind::Discord);
        assert_eq!(
            stats,
            ExtractionStats {
                urls_seen: 4,
                invites: 2,
                rejected: 2
            }
        );
    }

    #[test]
    fn empty_tweet_yields_nothing() {
        let mut stats = ExtractionStats::default();
        assert!(extract_invites(&tweet(vec![]), &mut stats).is_empty());
        assert_eq!(stats.urls_seen, 0);
    }

    #[test]
    fn stats_accumulate_across_tweets() {
        let mut stats = ExtractionStats::default();
        extract_invites(&tweet(vec!["https://t.me/abc"]), &mut stats);
        extract_invites(&tweet(vec!["https://nope.com/x"]), &mut stats);
        assert_eq!(stats.urls_seen, 2);
        assert_eq!(stats.invites, 1);
        assert_eq!(stats.rejected, 1);
    }
}
