//! # chatlens-core — the paper's measurement pipeline
//!
//! This crate is the reproduction's primary artifact: the data-collection
//! system of §3, pointed at the simulated ecosystem instead of the live
//! platforms. It implements, as separate event-driven components sharing
//! one virtual timeline:
//!
//! 1. **Discovery** ([`discovery`]) — hourly Search API queries for the six
//!    invite-URL patterns (7-day lookback, `since_id` incremental,
//!    paginated) merged with the Streaming API, plus the 1% control
//!    sample. URL extraction *validates* every URL; a `discord.com` link
//!    without `/invite/` is noise, not a group.
//! 2. **Monitoring** ([`monitor`]) — once per day, for every discovered and
//!    not-yet-revoked group, scrape the WhatsApp landing page / Telegram
//!    web page / Discord invite API for title, size, online count and
//!    status. WhatsApp landing pages leak the creator's phone number; the
//!    monitor hashes it immediately (§3.4).
//! 3. **Joining** ([`joiner`]) — join a uniform random sample of live
//!    groups under each platform's constraints (WhatsApp account bans
//!    force multiple accounts; Discord rejects bots so a user account is
//!    used; Telegram's API flood control throttles everything), then
//!    collect member lists, user profiles and message histories.
//! 4. **PII accounting** ([`pii`]) — §6's exposure bookkeeping: hashed
//!    phone numbers with country codes, Telegram opt-in phones, Discord
//!    connected accounts.
//!
//! [`study::run_study`] wires the components to a
//! [`chatlens_simnet::Engine`] and runs the full 38-day campaign,
//! returning the [`dataset::Dataset`] every analysis in
//! `chatlens-analysis` consumes.
//!
//! Long campaigns are crash-safe: [`study::run_study_checkpointed`]
//! snapshots the full campaign state ([`state::CampaignState`]) at day
//! boundaries via `chatlens-checkpoint`, and [`study::resume_study`]
//! continues from a snapshot to a byte-identical dataset.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod budget;
pub mod dataset;
pub mod discovery;
pub mod error;
pub mod fold;
pub mod intern;
pub mod joiner;
pub mod monitor;
pub mod net;
pub mod patterns;
pub mod pii;
pub mod quarantine;
pub mod state;
pub mod study;

pub use audit::{audit_dataset, AuditCode, AuditViolation};
pub use budget::{BudgetError, BudgetLimit, BudgetPolicy, BudgetStats, MemoryBudget, SpillableLog};
pub use dataset::Dataset;
pub use error::CoreError;
pub use fold::{DayFold, DayMark, DayParts, DaySlice, FoldDriver, FoldLedger, FoldOutcome};
pub use intern::{Interner, Sym};
pub use state::{CampaignState, SnapshotSummary};
pub use study::{
    recover_latest_state, resume_study, resume_study_budgeted, resume_study_budgeted_checkpointed,
    resume_study_checkpointed, resume_study_days, resume_study_folded,
    resume_study_folded_checkpointed, run_study, run_study_budgeted,
    run_study_budgeted_checkpointed, run_study_checkpointed, run_study_days_budgeted,
    run_study_days_checkpointed, run_study_folded, run_study_folded_checkpointed, run_study_with,
    BudgetedRun, CampaignConfig, CampaignEvent, CheckpointPolicy, StudyError,
};
