//! String interning for the campaign hot path.
//!
//! The collectors address every group by its dedup key (`"<platform
//! index>:<code>"`), and the pre-rewrite representation re-rendered and
//! re-hashed that `String` on every probe, timeline lookup, and ledger
//! append — the dominant allocation in the monitor's steady state. The
//! [`Interner`] maps each distinct string to a dense [`Sym`] (a `u32`
//! assigned in first-intern order) so the hot path can carry a `Copy` id
//! and index straight into `Vec`-shaped tables.
//!
//! Determinism contract: symbol ids are a pure function of the sequence
//! of *distinct* strings interned, independent of how often a string is
//! re-interned. Discovery interns each group exactly once at first
//! sighting, so a group's `Sym` equals its slot in the discovery-order
//! group table — the same order every thread count and every resume
//! replays. The table is persisted wholesale through checkpoint format
//! v4 and rebuilt index-for-index on load.
//!
//! The reverse index is a `HashMap` used only for point lookups, never
//! iterated (lint rule D2): every traversal goes over the dense
//! insertion-ordered `Vec`.

use std::collections::HashMap;
use std::fmt;

/// A dense interned-string id. `Sym(i)` resolves to the `i`-th distinct
/// string ever interned.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl Sym {
    /// The id as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.0)
    }
}

/// Insertion-ordered string → [`Sym`] table.
///
/// Equality compares the dense table only (the hash index is derived
/// state), so two interners are equal iff they assign every id to the
/// same string — the property the resume-equivalence tests compare.
#[derive(Default)]
pub struct Interner {
    strings: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    /// An empty table.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Intern `s`, returning its stable id. First sighting appends; every
    /// later call with an equal string returns the same id.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&i) = self.index.get(s) {
            return Sym(i);
        }
        let i = u32::try_from(self.strings.len()).expect("interner overflow");
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), i);
        Sym(i)
    }

    /// Id of an already-interned string, if any. Never allocates.
    #[inline]
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.index.get(s).copied().map(Sym)
    }

    /// The string behind `sym`.
    ///
    /// # Panics
    /// If `sym` was not produced by this table (or a checkpoint of it).
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// Non-panicking [`Interner::resolve`].
    #[inline]
    pub fn try_resolve(&self, sym: Sym) -> Option<&str> {
        self.strings.get(sym.index()).map(String::as_str)
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// The dense table in id order — the checkpoint serialization.
    pub fn symbols(&self) -> &[String] {
        &self.strings
    }

    /// Rebuild from a checkpointed table. Ids are positions, so the
    /// rebuilt interner is bit-for-bit the one that was saved.
    ///
    /// # Panics
    /// If the table contains a duplicate (a corrupted checkpoint: ids
    /// would no longer be stable).
    pub fn from_symbols(strings: Vec<String>) -> Interner {
        let mut index = HashMap::with_capacity(strings.len());
        for (i, s) in strings.iter().enumerate() {
            let i = u32::try_from(i).expect("interner overflow");
            assert!(
                index.insert(s.clone(), i).is_none(),
                "duplicate interned string {s:?} in checkpoint"
            );
        }
        Interner { strings, index }
    }
}

/// `Debug` shows the dense table only; the derived hash index would leak
/// hasher order into debug output (lint rule D2).
impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("strings", &self.strings)
            .finish_non_exhaustive()
    }
}

impl PartialEq for Interner {
    fn eq(&self, other: &Interner) -> bool {
        self.strings == other.strings
    }
}

impl Eq for Interner {}

impl Clone for Interner {
    fn clone(&self) -> Interner {
        Interner {
            strings: self.strings.clone(),
            index: self.index.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::{collection::vec, prop_assert, prop_assert_eq, proptest};

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut t = Interner::new();
        let a = t.intern("0:AAAA");
        let b = t.intern("1:BBBB");
        assert_eq!(a, Sym(0));
        assert_eq!(b, Sym(1));
        assert_eq!(t.intern("0:AAAA"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), "0:AAAA");
        assert_eq!(t.resolve(b), "1:BBBB");
        assert_eq!(t.get("1:BBBB"), Some(b));
        assert_eq!(t.get("2:CCCC"), None);
        assert_eq!(t.try_resolve(Sym(7)), None);
    }

    #[test]
    #[should_panic(expected = "duplicate interned string")]
    fn duplicate_checkpoint_table_is_rejected() {
        Interner::from_symbols(vec!["x".into(), "x".into()]);
    }

    proptest! {
        /// Intern/resolve round-trip identity over arbitrary strings,
        /// including repeats: every returned id resolves to the string
        /// that produced it, and equal strings share one id.
        #[test]
        fn roundtrip_identity(words in vec("[a-z0-9:]{0,12}", 0..64)) {
            let mut t = Interner::new();
            let syms: Vec<Sym> = words.iter().map(|w| t.intern(w)).collect();
            for (w, s) in words.iter().zip(&syms) {
                prop_assert_eq!(t.resolve(*s), w.as_str());
                prop_assert_eq!(t.get(w), Some(*s));
            }
            for (i, a) in words.iter().enumerate() {
                for (j, b) in words.iter().enumerate() {
                    prop_assert_eq!(a == b, syms[i] == syms[j]);
                }
            }
            prop_assert!(t.len() <= words.len());
        }

        /// Ids already assigned are stable under any insertion-order
        /// permutation of a *disjoint* suffix: interning more strings
        /// never moves an existing id, whatever order they arrive in.
        #[test]
        fn prefix_ids_stable_under_suffix_permutation(
            prefix in vec("p[a-z]{1,8}", 1..16),
            suffix in vec("s[a-z]{1,8}", 0..16),
            rot in 0usize..16,
        ) {
            let mut base = Interner::new();
            for w in &prefix {
                base.intern(w);
            }
            let assigned: Vec<(String, Sym)> = prefix
                .iter()
                .map(|w| (w.clone(), base.get(w).expect("just interned")))
                .collect();

            // Two different arrival orders of the same suffix set.
            let mut rotated = suffix.clone();
            if !rotated.is_empty() {
                let k = rot % rotated.len();
                rotated.rotate_left(k);
            }
            let mut t1 = base.clone();
            let mut t2 = base;
            for w in &suffix {
                t1.intern(w);
            }
            for w in &rotated {
                t2.intern(w);
            }
            // The prefix ids never moved, in either table.
            for (w, s) in &assigned {
                prop_assert_eq!(t1.get(w), Some(*s));
                prop_assert_eq!(t2.get(w), Some(*s));
                prop_assert_eq!(t1.resolve(*s), w.as_str());
                prop_assert_eq!(t2.resolve(*s), w.as_str());
            }
        }

        /// Saving the dense table and rebuilding preserves every id and
        /// every string — the checkpoint round-trip at the data level.
        #[test]
        fn symbol_table_roundtrip(words in vec("[a-z0-9:]{0,12}", 0..64)) {
            let mut t = Interner::new();
            for w in &words {
                t.intern(w);
            }
            let restored = Interner::from_symbols(t.symbols().to_vec());
            prop_assert_eq!(&restored, &t);
            for w in &words {
                prop_assert_eq!(restored.get(w), t.get(w));
            }
            for i in 0..t.len() {
                prop_assert_eq!(restored.resolve(Sym(i as u32)), t.resolve(Sym(i as u32)));
            }
        }
    }
}
