//! PII exposure accounting (§6, Tables 4 and 5).
//!
//! The ethics protocol of §3.4 is enforced structurally: phone numbers are
//! hashed (SHA-256) the moment they come off the wire and only the hashes
//! and country codes are retained; nothing in the store can reproduce a
//! number.

use chatlens_platforms::phone::parse_e164;
use chatlens_simnet::hash::sha256_hex;
use std::collections::{BTreeMap, HashSet};

/// Hash a phone number in E.164 form. The raw string dies here.
pub fn hash_phone(e164: &str) -> String {
    sha256_hex(e164.as_bytes())
}

/// Accumulated PII observations.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct PiiStore {
    /// WhatsApp group-creator phone hashes, harvested from landing pages
    /// *without joining* — §6's headline finding.
    pub wa_creator_hashes: HashSet<String>,
    /// Country-code counts of WhatsApp creators (Group Countries, §5).
    pub wa_creator_countries: BTreeMap<String, u64>,
    /// WhatsApp member phone hashes (visible after joining).
    pub wa_member_hashes: HashSet<String>,
    /// Telegram users whose profiles the collector fetched.
    pub tg_users_observed: HashSet<u32>,
    /// Telegram phone hashes (only opt-in users expose one).
    pub tg_phone_hashes: HashSet<String>,
    /// Discord users whose profiles the collector fetched.
    pub dc_users_observed: HashSet<u32>,
    /// Discord users with at least one connected account.
    pub dc_users_with_link: HashSet<u32>,
    /// Connected-account counts per external platform (Table 5).
    pub dc_linked_counts: BTreeMap<String, u64>,
}

impl PiiStore {
    /// A fresh store.
    pub fn new() -> PiiStore {
        PiiStore::default()
    }

    /// Record a WhatsApp creator's phone (hashing it) and country code.
    pub fn record_wa_creator(&mut self, e164: &str, country_code: &str) {
        if self.wa_creator_hashes.insert(hash_phone(e164)) {
            *self
                .wa_creator_countries
                .entry(country_code.to_string())
                .or_insert(0) += 1;
        }
    }

    /// Record a WhatsApp member's phone (hashing it).
    pub fn record_wa_member(&mut self, e164: &str) {
        self.wa_member_hashes.insert(hash_phone(e164));
    }

    /// Record a Telegram profile observation; `phone` if the user opted
    /// in to showing it.
    pub fn record_tg_user(&mut self, user_id: u32, phone: Option<&str>) {
        self.tg_users_observed.insert(user_id);
        if let Some(p) = phone {
            self.tg_phone_hashes.insert(hash_phone(p));
        }
    }

    /// Record a Discord profile observation with its connected accounts.
    pub fn record_dc_user(&mut self, user_id: u32, linked: &[String]) {
        if !self.dc_users_observed.insert(user_id) {
            return; // already counted; avoid double-counting links
        }
        if !linked.is_empty() {
            self.dc_users_with_link.insert(user_id);
        }
        for l in linked {
            *self.dc_linked_counts.entry(l.clone()).or_insert(0) += 1;
        }
    }

    /// All distinct WhatsApp phone hashes (creators ∪ members) — the
    /// paper's "phone numbers of over 54K WhatsApp users".
    pub fn wa_total_phones(&self) -> usize {
        self.wa_creator_hashes.union(&self.wa_member_hashes).count()
    }

    /// Share of observed Telegram users exposing a phone number.
    pub fn tg_phone_rate(&self) -> f64 {
        if self.tg_users_observed.is_empty() {
            0.0
        } else {
            self.tg_phone_hashes.len() as f64 / self.tg_users_observed.len() as f64
        }
    }

    /// Share of observed Discord users with >= 1 connected account.
    pub fn dc_link_rate(&self) -> f64 {
        if self.dc_users_observed.is_empty() {
            0.0
        } else {
            self.dc_users_with_link.len() as f64 / self.dc_users_observed.len() as f64
        }
    }
}

/// Country code of an E.164 number (helper for callers that only hold the
/// wire string).
pub fn country_of(e164: &str) -> Option<&'static str> {
    parse_e164(e164).map(|p| p.iso())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_oneway_and_stable() {
        let h = hash_phone("+5511987654321");
        assert_eq!(h.len(), 64);
        assert_eq!(h, hash_phone("+5511987654321"));
        assert_ne!(h, hash_phone("+5511987654322"));
        assert!(!h.contains("5511"), "no digits leak into the hash");
    }

    #[test]
    fn creator_dedup_and_countries() {
        let mut s = PiiStore::new();
        s.record_wa_creator("+5511987654321", "BR");
        s.record_wa_creator("+5511987654321", "BR"); // duplicate
        s.record_wa_creator("+2348012345678", "NG");
        assert_eq!(s.wa_creator_hashes.len(), 2);
        assert_eq!(s.wa_creator_countries["BR"], 1);
        assert_eq!(s.wa_creator_countries["NG"], 1);
    }

    #[test]
    fn wa_total_unions_creators_and_members() {
        let mut s = PiiStore::new();
        s.record_wa_creator("+5511987654321", "BR");
        s.record_wa_member("+5511987654321"); // same person
        s.record_wa_member("+2348012345678");
        assert_eq!(s.wa_total_phones(), 2);
    }

    #[test]
    fn tg_rates() {
        let mut s = PiiStore::new();
        for i in 0..100 {
            s.record_tg_user(i, (i == 0).then_some("+5511987654321"));
        }
        assert_eq!(s.tg_users_observed.len(), 100);
        assert_eq!(s.tg_phone_hashes.len(), 1);
        assert!((s.tg_phone_rate() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn dc_links_no_double_count() {
        let mut s = PiiStore::new();
        s.record_dc_user(1, &["Twitch".into(), "Steam".into()]);
        s.record_dc_user(1, &["Twitch".into()]); // repeat observation
        s.record_dc_user(2, &[]);
        assert_eq!(s.dc_users_observed.len(), 2);
        assert_eq!(s.dc_users_with_link.len(), 1);
        assert_eq!(s.dc_linked_counts["Twitch"], 1);
        assert_eq!(s.dc_linked_counts["Steam"], 1);
        assert!((s.dc_link_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_rates_are_zero() {
        let s = PiiStore::new();
        assert_eq!(s.tg_phone_rate(), 0.0);
        assert_eq!(s.dc_link_rate(), 0.0);
        assert_eq!(s.wa_total_phones(), 0);
    }

    #[test]
    fn country_helper() {
        assert_eq!(country_of("+5511987654321"), Some("BR"));
        assert_eq!(country_of("garbage"), None);
    }
}
