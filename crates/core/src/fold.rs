//! Incremental per-day analysis folds.
//!
//! The campaign advances one study day at a time, and every analysis in
//! `chatlens-analysis` is a function of what the campaign has collected
//! so far. Instead of replaying the whole history at campaign end (the
//! batch path, [`Dataset`](crate::Dataset)-driven), a [`DayFold`]
//! maintains a compact per-day state: after each completed day the study
//! loop hands every registered fold a borrowed [`DaySlice`] of that day's
//! appends, and at campaign end `finish` renders a report fragment that
//! is byte-identical to the batch computation over the final dataset.
//!
//! The lifecycle (`init → fold_day × num_days → finish`):
//!
//! 1. **init** — the fold's constructor; state starts empty.
//! 2. **[`DayFold::fold_day`]** — once per completed study day, in day
//!    order, at the quiescent day boundary (the same instant snapshots
//!    are captured at).
//! 3. **checkpoint / resume** — [`FoldDriver::ledger`] encodes every
//!    fold's state via the [`Persist`](chatlens_checkpoint::Persist) codec into a [`FoldLedger`]
//!    carried by format-v5 snapshots; [`FoldDriver::restore`] decodes it
//!    so a resumed incremental run never replays raw history.
//! 4. **[`DayFold::finish`]** — renders the analysis' report fragment
//!    from folded state alone.
//!
//! Day attribution follows collection time: everything a component
//! appended while day *d* ran belongs to day *d*'s slice. The appends
//! are delimited by [`DayMark`] cursors the runner records at every day
//! boundary, which also power [`Dataset::day_slice`] for post-hoc
//! slicing of an assembled dataset.
//!
//! [`Dataset::day_slice`]: crate::Dataset::day_slice

use crate::budget::LogView;
use crate::discovery::{CollectedTweet, DiscoveryRecord};
use crate::intern::Interner;
use crate::joiner::JoinedGroup;
use crate::monitor::{GapLedger, TimelineStore};
use crate::pii::PiiStore;
use chatlens_checkpoint::{persist_struct, CheckpointError, Reader, Writer};
use chatlens_simnet::metrics::{keys, Metrics};
use chatlens_simnet::par::Pool;
use chatlens_simnet::time::StudyWindow;
use chatlens_twitter::Tweet;
use std::ops::Range;

/// Per-day collection cursors, recorded by the runner at every day
/// boundary: the length of each append-only collection vector at the end
/// of `day`. The difference between consecutive marks delimits one day's
/// appends — the basis of both live folding and [`Dataset::day_slice`].
///
/// [`Dataset::day_slice`]: crate::Dataset::day_slice
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DayMark {
    /// Zero-based study day this mark closes.
    pub day: u32,
    /// `tweets.len()` at the end of the day.
    pub tweets: u64,
    /// `control.len()` at the end of the day.
    pub control: u64,
    /// `groups.len()` at the end of the day.
    pub groups: u64,
    /// `joined.len()` at the end of the day.
    pub joined: u64,
}

persist_struct!(DayMark {
    day,
    tweets,
    control,
    groups,
    joined
});

/// A borrowed view of the campaign's collections at the end of one study
/// day: full prefixes (everything collected through the day) plus the
/// ranges appended *during* the day. Folds read, never clone — every
/// accessor returns a borrow with the underlying storage's lifetime.
///
/// Timelines, gaps and PII are cumulative stores (not append-only
/// vectors), so they are exposed whole; a fold reads the day's
/// observations via [`GroupTimeline::status_on`] (binary search over the
/// columnar day index).
///
/// [`GroupTimeline::status_on`]: crate::monitor::GroupTimeline::status_on
#[derive(Debug, Clone)]
pub struct DaySlice<'a> {
    /// Zero-based study day this slice closes.
    pub day: u32,
    /// Total study days in the window.
    pub days_total: u32,
    /// The collection window.
    pub window: StudyWindow,
    /// The group symbol table (dedup key ↔ discovery slot).
    pub interner: &'a Interner,
    /// Monitor timelines, indexed by discovery slot.
    pub timelines: &'a TimelineStore,
    /// The gap ledger (unobservable days per slot, ascending).
    pub gaps: &'a GapLedger,
    /// PII exposure accounting as of the end of the day.
    pub pii: &'a PiiStore,
    tweets: LogView<'a, CollectedTweet>,
    control: LogView<'a, Tweet>,
    groups: &'a [DiscoveryRecord],
    joined: &'a [JoinedGroup],
    new_tweets: Range<usize>,
    new_control: Range<usize>,
    new_groups: Range<usize>,
    new_joined: Range<usize>,
}

impl<'a> DaySlice<'a> {
    /// Whether this is the final study day (collection is complete:
    /// member lists, profiles and message histories have been fetched).
    pub fn is_final(&self) -> bool {
        self.day + 1 == self.days_total
    }

    /// Every pattern-matched tweet collected through the end of the day.
    ///
    /// # Panics
    /// Panics under `--mem-budget` once a prefix has been spilled —
    /// incremental folds consume [`tweets_today`](Self::tweets_today)
    /// (always resident); full-history reads are a batch-mode affordance.
    pub fn tweets(&self) -> &'a [CollectedTweet] {
        self.tweets.full()
    }

    /// The tweets collected during this day (always resident).
    pub fn tweets_today(&self) -> &'a [CollectedTweet] {
        self.tweets.slice(self.new_tweets.clone())
    }

    /// Every control-sample tweet collected through the end of the day.
    ///
    /// # Panics
    /// Panics under `--mem-budget` once a prefix has been spilled (see
    /// [`tweets`](Self::tweets)).
    pub fn control(&self) -> &'a [Tweet] {
        self.control.full()
    }

    /// The control-sample tweets collected during this day (always
    /// resident).
    pub fn control_today(&self) -> &'a [Tweet] {
        self.control.slice(self.new_control.clone())
    }

    /// Every group discovered through the end of the day, in discovery
    /// (= slot) order. Records are live: `first_tweet_at` may still
    /// decrease on later days when backfill surfaces an older tweet.
    pub fn groups(&self) -> &'a [DiscoveryRecord] {
        self.groups
    }

    /// The groups discovered during this day.
    pub fn groups_today(&self) -> &'a [DiscoveryRecord] {
        &self.groups[self.new_groups.clone()]
    }

    /// Every group joined through the end of the day. Members and
    /// messages are filled by the end-of-study collection pass, so they
    /// are only complete when [`DaySlice::is_final`] holds.
    pub fn joined(&self) -> &'a [JoinedGroup] {
        self.joined
    }

    /// The groups joined during this day.
    pub fn joined_today(&self) -> &'a [JoinedGroup] {
        &self.joined[self.new_joined.clone()]
    }
}

/// The live campaign collections a [`FoldDriver`] slices per day.
/// Borrowed from the runner at each day boundary (or from an assembled
/// [`Dataset`](crate::Dataset) for post-hoc slicing).
#[derive(Debug, Clone, Copy)]
pub struct DayParts<'a> {
    /// The collection window.
    pub window: StudyWindow,
    /// Pattern-matched tweets, append-only; a [`LogView`] so global
    /// indices survive cold-prefix spills under `--mem-budget`.
    pub tweets: LogView<'a, CollectedTweet>,
    /// Control-sample tweets, append-only (spillable like `tweets`).
    pub control: LogView<'a, Tweet>,
    /// Discovered groups in slot order, append-only.
    pub groups: &'a [DiscoveryRecord],
    /// Joined groups, append-only (contents mutate at collection).
    pub joined: &'a [JoinedGroup],
    /// The group symbol table.
    pub interner: &'a Interner,
    /// Monitor timelines.
    pub timelines: &'a TimelineStore,
    /// The gap ledger.
    pub gaps: &'a GapLedger,
    /// PII accounting.
    pub pii: &'a PiiStore,
}

impl<'a> DayParts<'a> {
    /// Build the slice for `day` given the cursors recorded at the end of
    /// the previous day, taking the current collection frontier as the
    /// day's end (the live-folding case).
    pub(crate) fn slice(&self, day: u32, prev: &DayMark) -> DaySlice<'a> {
        let cur = DayMark {
            day,
            tweets: self.tweets.len() as u64,
            control: self.control.len() as u64,
            groups: self.groups.len() as u64,
            joined: self.joined.len() as u64,
        };
        self.slice_between(day, prev, &cur)
    }

    /// Build the slice for `day` delimited by two recorded marks (the
    /// post-hoc [`Dataset::day_slice`] case — prefixes are cut at `cur`,
    /// not at the collection frontier).
    ///
    /// [`Dataset::day_slice`]: crate::Dataset::day_slice
    pub(crate) fn slice_between(&self, day: u32, prev: &DayMark, cur: &DayMark) -> DaySlice<'a> {
        DaySlice {
            day,
            days_total: self.window.num_days() as u32,
            window: self.window,
            interner: self.interner,
            timelines: self.timelines,
            gaps: self.gaps,
            pii: self.pii,
            tweets: self.tweets.truncated(cur.tweets as usize),
            control: self.control.truncated(cur.control as usize),
            groups: &self.groups[..cur.groups as usize],
            joined: &self.joined[..cur.joined as usize],
            new_tweets: prev.tweets as usize..cur.tweets as usize,
            new_control: prev.control as usize..cur.control as usize,
            new_groups: prev.groups as usize..cur.groups as usize,
            new_joined: prev.joined as usize..cur.joined as usize,
        }
    }
}

/// An incremental analysis: compact per-day state folded over the
/// campaign's day loop, rendered to a report fragment at the end.
///
/// # Contract
///
/// * `fold_day` is called exactly once per study day, in day order, with
///   no days skipped — the [`FoldDriver`] enforces this.
/// * `finish` must be a pure function of the folded state, and its
///   output must be byte-identical to the batch computation over the
///   final dataset (`tests/fold_parity.rs` locks this per analysis,
///   across thread counts, fault/corruption profiles, and kill/resume).
/// * `save_state`/`load_state` round-trip the state exactly through the
///   [`Persist`](chatlens_checkpoint::Persist) codec: `load_state(save_state(s))` must reproduce `s`,
///   and a fold restored mid-campaign must fold the remaining days to
///   the same final state as an uninterrupted fold.
pub trait DayFold {
    /// Stable name of this fold — the key its persisted state is filed
    /// under in the [`FoldLedger`] and the label of its metrics.
    fn name(&self) -> &'static str;

    /// Fold one completed study day into the state.
    fn fold_day(&mut self, slice: &DaySlice<'_>);

    /// Render the analysis' report fragment from folded state.
    fn finish(&self, pool: &Pool) -> String;

    /// Encode the folded state.
    fn save_state(&self, w: &mut Writer);

    /// Replace the state with a previously encoded one. Called on a
    /// freshly constructed fold during resume.
    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError>;
}

/// Every fold's persisted state plus the driver's cursors — the payload
/// format-v5 snapshots carry so incremental runs resume without raw
/// history replays. Entries are `(name, encoded state)` in registration
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldLedger {
    /// Study days folded so far.
    pub days_folded: u32,
    /// Tweets consumed (the driver's tweet cursor).
    pub tweets_seen: u64,
    /// Control tweets consumed.
    pub control_seen: u64,
    /// Group records consumed.
    pub groups_seen: u64,
    /// Joined-group records consumed.
    pub joined_seen: u64,
    /// Per-fold encoded state, keyed by [`DayFold::name`], in
    /// registration order.
    pub entries: Vec<(String, Vec<u8>)>,
}

persist_struct!(FoldLedger {
    days_folded,
    tweets_seen,
    control_seen,
    groups_seen,
    joined_seen,
    entries
});

impl FoldLedger {
    /// Per-fold encoded state size in bytes, in registration order.
    pub fn state_sizes(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries
            .iter()
            .map(|(name, blob)| (name.as_str(), blob.len() as u64))
    }

    /// Total encoded fold-state bytes.
    pub fn total_state_bytes(&self) -> u64 {
        self.entries.iter().map(|(_, blob)| blob.len() as u64).sum()
    }
}

/// Drives a set of [`DayFold`]s through the campaign's day loop: slices
/// each completed day, feeds every fold in registration order, tracks
/// per-fold timing and state size in its own [`Metrics`] registry
/// (never the dataset's — the campaign report's counter digest is a
/// frozen byte contract), and converts to/from the [`FoldLedger`]
/// snapshots carry.
#[derive(Debug)]
pub struct FoldDriver {
    folds: Vec<Box<dyn DayFold>>,
    pool: Pool,
    days_folded: u32,
    tweets_seen: usize,
    control_seen: usize,
    groups_seen: usize,
    joined_seen: usize,
    metrics: Metrics,
    /// Last encoded state size per fold, parallel to `folds`.
    state_bytes: Vec<u64>,
    peak_state_bytes: u64,
}

impl std::fmt::Debug for Box<dyn DayFold> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DayFold({})", self.name())
    }
}

impl FoldDriver {
    /// A driver over `folds` with a worker pool of `threads` (used by
    /// `finish` fan-out; folding itself is sequential per day).
    pub fn new(folds: Vec<Box<dyn DayFold>>, threads: usize) -> FoldDriver {
        let state_bytes = vec![0; folds.len()];
        FoldDriver {
            folds,
            pool: Pool::new(threads),
            days_folded: 0,
            tweets_seen: 0,
            control_seen: 0,
            groups_seen: 0,
            joined_seen: 0,
            metrics: Metrics::new(),
            state_bytes,
            peak_state_bytes: 0,
        }
    }

    /// Study days folded so far.
    pub fn days_folded(&self) -> u32 {
        self.days_folded
    }

    /// The driver's own metrics registry: per-fold `stage.fold.<name>`
    /// timings plus the [`keys::FOLD_DAYS`] and
    /// [`keys::FOLD_STATE_PEAK_BYTES`] counters. Deliberately separate
    /// from [`Dataset::metrics`](crate::Dataset) so incremental runs
    /// leave the frozen campaign-report bytes untouched.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Last encoded state size per fold, in registration order.
    pub fn state_sizes(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.folds
            .iter()
            .zip(&self.state_bytes)
            .map(|(fold, &bytes)| (fold.name(), bytes))
    }

    /// Peak total encoded fold-state bytes seen at any day boundary.
    pub fn peak_state_bytes(&self) -> u64 {
        self.peak_state_bytes
    }

    /// Fold one completed study day. Must be called with the collections
    /// exactly as they stand at the day boundary, once per day, in order.
    pub fn fold_day(&mut self, parts: &DayParts<'_>) {
        let day = self.days_folded;
        let prev = DayMark {
            day: day.wrapping_sub(1),
            tweets: self.tweets_seen as u64,
            control: self.control_seen as u64,
            groups: self.groups_seen as u64,
            joined: self.joined_seen as u64,
        };
        let slice = parts.slice(day, &prev);
        let FoldDriver { folds, metrics, .. } = self;
        for fold in folds.iter_mut() {
            let stage = format!("{}.{}", keys::STAGE_FOLD, fold.name());
            metrics.time_stage(&stage, || fold.fold_day(&slice));
        }
        self.metrics.incr(keys::FOLD_DAYS);
        self.days_folded += 1;
        self.tweets_seen = parts.tweets.len();
        self.control_seen = parts.control.len();
        self.groups_seen = parts.groups.len();
        self.joined_seen = parts.joined.len();

        let mut total = 0u64;
        for (i, fold) in self.folds.iter().enumerate() {
            let mut w = Writer::new();
            fold.save_state(&mut w);
            let bytes = w.len() as u64;
            self.state_bytes[i] = bytes;
            total += bytes;
        }
        self.peak_state_bytes = self.peak_state_bytes.max(total);
    }

    /// Encode every fold's state into the snapshot ledger.
    pub fn ledger(&self) -> FoldLedger {
        FoldLedger {
            days_folded: self.days_folded,
            tweets_seen: self.tweets_seen as u64,
            control_seen: self.control_seen as u64,
            groups_seen: self.groups_seen as u64,
            joined_seen: self.joined_seen as u64,
            entries: self
                .folds
                .iter()
                .map(|fold| {
                    let mut w = Writer::new();
                    fold.save_state(&mut w);
                    (fold.name().to_string(), w.into_bytes())
                })
                .collect(),
        }
    }

    /// Restore every fold's state from a snapshot ledger. The ledger must
    /// carry exactly this driver's folds, by name, in registration order
    /// — an analysis added or removed since the snapshot was written is a
    /// [`CheckpointError::Malformed`], not a silent partial restore.
    pub fn restore(&mut self, ledger: &FoldLedger) -> Result<(), CheckpointError> {
        if ledger.entries.len() != self.folds.len() {
            return Err(CheckpointError::Malformed(format!(
                "fold ledger carries {} analyses, this build registers {}",
                ledger.entries.len(),
                self.folds.len()
            )));
        }
        for (fold, (name, blob)) in self.folds.iter_mut().zip(&ledger.entries) {
            if fold.name() != name {
                return Err(CheckpointError::Malformed(format!(
                    "fold ledger entry {name:?} does not match registered fold {:?}",
                    fold.name()
                )));
            }
            let mut r = Reader::new(blob);
            fold.load_state(&mut r)?;
            if !r.is_empty() {
                return Err(CheckpointError::Malformed(format!(
                    "fold {name:?} state has trailing bytes"
                )));
            }
        }
        self.days_folded = ledger.days_folded;
        self.tweets_seen = ledger.tweets_seen as usize;
        self.control_seen = ledger.control_seen as usize;
        self.groups_seen = ledger.groups_seen as usize;
        self.joined_seen = ledger.joined_seen as usize;
        for (i, (_, blob)) in ledger.entries.iter().enumerate() {
            self.state_bytes[i] = blob.len() as u64;
        }
        self.peak_state_bytes = self.peak_state_bytes.max(ledger.total_state_bytes());
        Ok(())
    }

    /// Render every fold's report fragment, in registration order, and
    /// record the end-of-run fold metrics. Call once, after the final
    /// day has been folded.
    pub fn finish(&mut self) -> FoldOutcome {
        let FoldDriver {
            folds,
            pool,
            metrics,
            ..
        } = self;
        let fragments: Vec<(&'static str, String)> = folds
            .iter()
            .map(|fold| {
                let stage = format!("{}.{}", keys::STAGE_FOLD_FINISH, fold.name());
                let fragment = metrics.time_stage(&stage, || fold.finish(pool));
                (fold.name(), fragment)
            })
            .collect();
        self.metrics
            .add(keys::FOLD_STATE_PEAK_BYTES, self.peak_state_bytes);
        FoldOutcome {
            fragments,
            state_sizes: self.state_sizes().collect(),
            peak_state_bytes: self.peak_state_bytes,
            days_folded: self.days_folded,
            metrics: self.metrics.clone(),
        }
    }
}

/// Everything a finished incremental run reports: per-analysis report
/// fragments plus the driver's size/timing accounting.
#[derive(Debug, Clone)]
pub struct FoldOutcome {
    /// `(fold name, report fragment)` in registration order.
    pub fragments: Vec<(&'static str, String)>,
    /// Final encoded state size per fold.
    pub state_sizes: Vec<(&'static str, u64)>,
    /// Peak total encoded fold-state bytes at any day boundary.
    pub peak_state_bytes: u64,
    /// Study days folded.
    pub days_folded: u32,
    /// The driver's metrics (per-fold timings, fold counters).
    pub metrics: Metrics,
}

impl FoldOutcome {
    /// The fragment rendered by the fold called `name`.
    pub fn fragment(&self, name: &str) -> Option<&str> {
        self.fragments
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, f)| f.as_str())
    }
}
