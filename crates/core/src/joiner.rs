//! Joining sampled groups and collecting their contents (§3.3).
//!
//! The paper joined 416 WhatsApp groups, 100 Telegram chats, and 100
//! Discord servers, selected uniformly at random, under each platform's
//! constraints:
//!
//! * WhatsApp bans an account after ~250–300 joins, so the joiner rotates
//!   to a fresh account when the platform starts refusing.
//! * Discord rejects bot self-joins; the joiner demonstrates that (one
//!   probing bot attempt) and proceeds with a user account, capped at 100
//!   servers per account.
//! * Telegram's API flood control throttles joins and history fetches;
//!   the transport client absorbs `FLOOD_WAIT`s with retry + backoff.
//!
//! After joining, the collector fetches member lists (where the platform
//! allows), user profiles, and message histories, feeding every piece of
//! PII through the hashing store.

use crate::discovery::Discovery;
use crate::error::CoreError;
use crate::net::Net;
use crate::pii::{country_of, hash_phone, PiiStore};
use crate::quarantine::{day_within, service_name, verify_echoes, QuarantineEntry};
use chatlens_platforms::id::{GroupId, PlatformKind};
use chatlens_platforms::message::Message;
use chatlens_platforms::service::parse_message;
use chatlens_platforms::wire::WireDoc;
use chatlens_simnet::rng::Rng;
use chatlens_simnet::time::SimTime;

/// How the join sample is drawn from the discovered groups (the paper
/// samples uniformly, §3.3; size-biased sampling is the ablation
/// DESIGN.md calls out — it inflates message-volume estimates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// Uniformly random over discovered groups (the paper's choice).
    #[default]
    Uniform,
    /// Largest observed groups first (requires monitor sizes).
    SizeBiased,
}
use chatlens_simnet::transport::{Request, Status};
use chatlens_workload::Ecosystem;

/// A member as the collector recorded it (already ethics-scrubbed: phones
/// are hashes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberRecord {
    /// Platform-local user id, when the platform exposes one (Telegram,
    /// Discord); WhatsApp identifies members only by phone.
    pub user_id: Option<u32>,
    /// SHA-256 of the member's E.164 phone number, if exposed.
    pub phone_hash: Option<String>,
    /// Country code derived from the number before hashing.
    pub country: Option<String>,
    /// Connected accounts (Discord).
    pub linked: Vec<String>,
}

/// One joined group and everything collected from inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinedGroup {
    /// The platform.
    pub platform: PlatformKind,
    /// Dedup key of the invite it was joined through.
    pub key: String,
    /// Platform-local group id returned by the join call.
    pub group_id: GroupId,
    /// When the collector joined.
    pub joined_at: SimTime,
    /// Creation day number, once known (WhatsApp/Telegram reveal it only
    /// after joining; Discord already had it from the invite API).
    pub created_day: Option<i64>,
    /// Members with any collected information.
    pub members: Vec<MemberRecord>,
    /// Whether a member list was available at all (§3.3: hidden on most
    /// Telegram chats; never available to Discord collectors).
    pub member_list_available: bool,
    /// Collected messages.
    pub messages: Vec<Message>,
}

/// The joining/collection component.
#[derive(Default)]
pub struct Joiner {
    /// Successfully joined groups with their collected contents.
    pub joined: Vec<JoinedGroup>,
    /// Accounts opened per platform (index = [`PlatformKind::index`]).
    pub accounts_used: [u16; 3],
    /// Join attempts refused because the URL was dead by join time.
    pub dead_at_join: u64,
    /// Whether the Discord bot-join probe was rejected (it always is;
    /// recorded to mirror §3.3's constraint).
    pub bot_join_rejected: bool,
    /// Collection fetches lost to transport failures (after retries) —
    /// the campaign skips and carries on, like any crawler.
    pub failed_fetches: u64,
    /// Rejected join/collection bodies with provenance (see
    /// [`crate::quarantine`]). A doubly-corrupted fetch is counted in
    /// `failed_fetches` and skipped, exactly like a transport loss.
    pub quarantine: Vec<QuarantineEntry>,
}

impl Joiner {
    /// A fresh joiner.
    pub fn new() -> Joiner {
        Joiner::default()
    }

    /// Join up to `budget` sampled discovered groups on `platform`. Dead
    /// URLs are skipped and resampled, mirroring the paper's join of live
    /// public groups. `observed_size` supplies monitor sizes for the
    /// size-biased ablation strategy (ignored under `Uniform`).
    #[allow(clippy::too_many_arguments)]
    pub fn join_phase_with(
        &mut self,
        net: &mut Net,
        eco: &mut Ecosystem,
        discovery: &Discovery,
        platform: PlatformKind,
        budget: u64,
        now: SimTime,
        rng: &mut Rng,
        strategy: JoinStrategy,
        observed_size: &dyn Fn(&str) -> Option<u32>,
    ) -> Result<(), CoreError> {
        let pidx = platform.index();
        let (join_ep, join_doc) = match platform {
            PlatformKind::WhatsApp => ("whatsapp/join", "wa-join"),
            PlatformKind::Telegram => ("telegram/api/join", "tg-join"),
            PlatformKind::Discord => ("discord/api/join", "dc-join"),
        };
        // Candidate order: uniformly shuffled (the paper), or largest
        // observed first (ablation).
        let mut candidates: Vec<&crate::discovery::DiscoveryRecord> =
            discovery.groups_of(platform).collect();
        rng.shuffle(&mut candidates);
        if strategy == JoinStrategy::SizeBiased {
            candidates.sort_by_key(|r| {
                std::cmp::Reverse(observed_size(&r.invite.dedup_key()).unwrap_or(0))
            });
        }

        let mut account = eco.platforms[pidx].create_account();
        self.accounts_used[pidx] += 1;

        // Discord: demonstrate that a bot credential cannot join (§3.3).
        if platform == PlatformKind::Discord {
            if let Some(first) = candidates.first() {
                let req = Request::new(join_ep)
                    .with("account", account.0.to_string())
                    .with("code", first.invite.code.clone())
                    .with("actor", "bot");
                if let Ok(resp) = net.platform(eco, platform, now, &req) {
                    self.bot_join_rejected = resp.status == Status::Forbidden;
                }
            }
        }

        let mut joined_here = 0u64;
        // Joins are sequential in real life; pace them at one per second
        // of virtual time so server-side flood control (Telegram) sees a
        // sustainable rate instead of one infinite burst.
        let mut cursor = now;
        for rec in candidates {
            if joined_here >= budget {
                break;
            }
            cursor += chatlens_simnet::time::SimDuration::secs(1);
            let req = Request::new(join_ep)
                .with("account", account.0.to_string())
                .with("code", rec.invite.code.clone());
            let resp = match net.platform(eco, platform, cursor, &req) {
                Ok(r) => r,
                Err(_) => continue,
            };
            match resp.status {
                Status::Ok => {
                    let key = rec.invite.dedup_key();
                    let day = day_within(&eco.window, cursor);
                    // A corrupted join acknowledgment is quarantined and
                    // the join retried once — acting on a hostile group
                    // id would collect some *other* group's contents.
                    let gid = match decode_join(&resp.body, join_doc, &req) {
                        Ok(gid) => Some(gid),
                        Err(err) => {
                            self.quarantine.push(QuarantineEntry::new(
                                service_name(platform),
                                &req,
                                &key,
                                day,
                                &err,
                                &resp.body,
                            ));
                            match net.platform(eco, platform, cursor, &req) {
                                Ok(r2) if r2.status == Status::Ok => {
                                    match decode_join(&r2.body, join_doc, &req) {
                                        Ok(gid) => Some(gid),
                                        Err(err2) => {
                                            self.quarantine.push(QuarantineEntry::new(
                                                service_name(platform),
                                                &req,
                                                &key,
                                                day,
                                                &err2,
                                                &r2.body,
                                            ));
                                            None
                                        }
                                    }
                                }
                                _ => None,
                            }
                        }
                    };
                    let Some(gid) = gid else {
                        // Candidate lost to corruption; move on like a
                        // dead URL — the budget goes to the next one.
                        self.failed_fetches += 1;
                        continue;
                    };
                    // The platform granted membership; materialize the
                    // group's world-side history so later collection has
                    // something to return.
                    eco.materialize_group(platform, gid);
                    self.joined.push(JoinedGroup {
                        platform,
                        key,
                        group_id: gid,
                        joined_at: cursor,
                        created_day: None,
                        members: Vec::new(),
                        member_list_available: false,
                        messages: Vec::new(),
                    });
                    joined_here += 1;
                }
                Status::Gone | Status::NotFound => {
                    self.dead_at_join += 1;
                }
                Status::Forbidden => {
                    // Join limit reached: rotate to a fresh account (the
                    // paper needed multiple phones/SIMs for WhatsApp) and
                    // retry this candidate once.
                    account = eco.platforms[pidx].create_account();
                    self.accounts_used[pidx] += 1;
                    let retry = Request::new(join_ep)
                        .with("account", account.0.to_string())
                        .with("code", rec.invite.code.clone());
                    if let Ok(r2) = net.platform(eco, platform, cursor, &retry) {
                        if r2.status == Status::Ok {
                            // Already the retry of a rotated account:
                            // quarantine a corrupt acknowledgment and move
                            // on without a further fetch.
                            match decode_join(&r2.body, join_doc, &retry) {
                                Ok(gid) => {
                                    eco.materialize_group(platform, gid);
                                    self.joined.push(JoinedGroup {
                                        platform,
                                        key: rec.invite.dedup_key(),
                                        group_id: gid,
                                        joined_at: cursor,
                                        created_day: None,
                                        members: Vec::new(),
                                        member_list_available: false,
                                        messages: Vec::new(),
                                    });
                                    joined_here += 1;
                                }
                                Err(err) => {
                                    let day = day_within(&eco.window, cursor);
                                    self.quarantine.push(QuarantineEntry::new(
                                        service_name(platform),
                                        &retry,
                                        &rec.invite.dedup_key(),
                                        day,
                                        &err,
                                        &r2.body,
                                    ));
                                    self.failed_fetches += 1;
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Join uniformly at random (the paper's strategy, §3.3).
    #[allow(clippy::too_many_arguments)]
    pub fn join_phase(
        &mut self,
        net: &mut Net,
        eco: &mut Ecosystem,
        discovery: &Discovery,
        platform: PlatformKind,
        budget: u64,
        now: SimTime,
        rng: &mut Rng,
    ) -> Result<(), CoreError> {
        self.join_phase_with(
            net,
            eco,
            discovery,
            platform,
            budget,
            now,
            rng,
            JoinStrategy::Uniform,
            &|_| None,
        )
    }

    /// Collect member lists, profiles and message histories for every
    /// joined group, recording PII exposures.
    pub fn collect_phase(
        &mut self,
        net: &mut Net,
        eco: &mut Ecosystem,
        now: SimTime,
        pii: &mut PiiStore,
    ) -> Result<(), CoreError> {
        // Collection is a long sequential crawl: each request advances a
        // shared virtual cursor so server-side flood control (Telegram's
        // FLOOD_WAIT) experiences a sustainable rate, exactly as a real
        // crawler pacing itself would.
        let mut cursor = now;
        // The account that joined each group: accounts were rotated in
        // join order, and group membership is per-account, so replay the
        // same resolution the platform uses.
        for jg in &mut self.joined {
            let platform = jg.platform;
            let account = find_member_account(eco, jg);
            let Some(account) = account else {
                continue; // defensive: join bookkeeping mismatch
            };
            match platform {
                PlatformKind::WhatsApp => {
                    collect_whatsapp(
                        net,
                        eco,
                        jg,
                        account,
                        &mut cursor,
                        pii,
                        &mut self.failed_fetches,
                        &mut self.quarantine,
                    )?;
                }
                PlatformKind::Telegram => {
                    collect_telegram(
                        net,
                        eco,
                        jg,
                        account,
                        &mut cursor,
                        pii,
                        &mut self.failed_fetches,
                        &mut self.quarantine,
                    )?;
                }
                PlatformKind::Discord => {
                    collect_discord(
                        net,
                        eco,
                        jg,
                        account,
                        &mut cursor,
                        pii,
                        &mut self.failed_fetches,
                        &mut self.quarantine,
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// Find the collector account that holds membership of `jg`.
fn find_member_account(eco: &Ecosystem, jg: &JoinedGroup) -> Option<u16> {
    let p = &eco.platforms[jg.platform.index()];
    (0..p.account_count() as u16).find(|&a| {
        p.joined_at(chatlens_platforms::id::AccountId(a), jg.group_id)
            .is_some()
    })
}

/// Advance the collection cursor by one pacing step (1 s per request).
fn tick(cursor: &mut SimTime) -> SimTime {
    *cursor += chatlens_simnet::time::SimDuration::secs(1);
    *cursor
}

fn parse_messages(doc: &chatlens_platforms::wire::WireView<'_>) -> Result<Vec<Message>, CoreError> {
    let mut out = Vec::new();
    for raw in doc.get_all("msg") {
        let Some(m) = parse_message(raw) else {
            return Err(CoreError::Protocol(format!("bad message: {raw:?}")));
        };
        out.push(m);
    }
    Ok(out)
}

/// Decode a join acknowledgment: envelope, identity echo (the response
/// echoes the invite `code` it granted — a spliced acknowledgment would
/// hand back a *different group's* id), then the group id itself.
fn decode_join(body: &str, join_doc: &'static str, req: &Request) -> Result<GroupId, CoreError> {
    let doc = WireDoc::parse_as(body, join_doc)?;
    verify_echoes(&doc, req)?;
    Ok(GroupId(doc.req_u64("group")? as u32))
}

/// Outcome of one quarantine-aware collection fetch.
enum Fetched<T> {
    /// Body decoded and validated.
    Decoded(T),
    /// The server answered with a non-OK status (hidden list, gone…).
    Denied,
    /// Transport failure, or both the fetch and its bounded re-fetch came
    /// back corrupted. Already counted in `failed`.
    Lost,
}

/// Fetch `req` and decode its body with `decode`, quarantining a hostile
/// body (with provenance) and re-fetching once before giving it up as
/// [`Fetched::Lost`]. Every attempt ticks the pacing cursor like any
/// other collection request. `decode` must be pure — nothing is applied
/// until the whole body has validated.
#[allow(clippy::too_many_arguments)]
fn fetch_decoded<T>(
    net: &mut Net,
    eco: &mut Ecosystem,
    platform: PlatformKind,
    cursor: &mut SimTime,
    req: &Request,
    group: &str,
    quarantine: &mut Vec<QuarantineEntry>,
    failed: &mut u64,
    decode: &dyn Fn(&str) -> Result<T, CoreError>,
) -> Fetched<T> {
    let Ok(resp) = net.platform(eco, platform, tick(cursor), req) else {
        *failed += 1;
        return Fetched::Lost;
    };
    if resp.status != Status::Ok {
        return Fetched::Denied;
    }
    let day = day_within(&eco.window, *cursor);
    match decode(&resp.body) {
        Ok(v) => Fetched::Decoded(v),
        Err(err) => {
            quarantine.push(QuarantineEntry::new(
                service_name(platform),
                req,
                group,
                day,
                &err,
                &resp.body,
            ));
            let Ok(r2) = net.platform(eco, platform, tick(cursor), req) else {
                *failed += 1;
                return Fetched::Lost;
            };
            if r2.status != Status::Ok {
                return Fetched::Denied;
            }
            match decode(&r2.body) {
                Ok(v) => Fetched::Decoded(v),
                Err(err2) => {
                    quarantine.push(QuarantineEntry::new(
                        service_name(platform),
                        req,
                        group,
                        day,
                        &err2,
                        &r2.body,
                    ));
                    *failed += 1;
                    Fetched::Lost
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn collect_whatsapp(
    net: &mut Net,
    eco: &mut Ecosystem,
    jg: &mut JoinedGroup,
    account: u16,
    cursor: &mut SimTime,
    pii: &mut PiiStore,
    failed: &mut u64,
    quarantine: &mut Vec<QuarantineEntry>,
) -> Result<(), CoreError> {
    let base = |ep: &'static str| {
        Request::new(ep)
            .with("account", account.to_string())
            .with("group", jg.group_id.0.to_string())
    };
    // Member phone numbers + creation date (visible only after joining).
    // Transport failures and doubly-corrupted bodies (after retries) cost
    // this group's data, not the campaign.
    let req = base("whatsapp/members");
    let decode = |body: &str| -> Result<(i64, Vec<String>), CoreError> {
        let doc = WireDoc::parse_as(body, "wa-members")?;
        verify_echoes(&doc, &req)?;
        let created_day = doc.req_i64("created_day")?;
        let phones = doc.get_all("member").map(str::to_string).collect();
        Ok((created_day, phones))
    };
    match fetch_decoded(
        net,
        eco,
        PlatformKind::WhatsApp,
        cursor,
        &req,
        &jg.key,
        quarantine,
        failed,
        &decode,
    ) {
        Fetched::Decoded((created_day, phones)) => {
            jg.created_day = Some(created_day);
            jg.member_list_available = true;
            for phone in &phones {
                pii.record_wa_member(phone);
                jg.members.push(MemberRecord {
                    user_id: None,
                    phone_hash: Some(hash_phone(phone)),
                    country: country_of(phone).map(str::to_string),
                    linked: Vec::new(),
                });
            }
        }
        Fetched::Denied => {}
        Fetched::Lost => return Ok(()),
    }
    // Messages since the join date.
    let req = base("whatsapp/messages");
    let decode = |body: &str| -> Result<Vec<Message>, CoreError> {
        let doc = WireDoc::parse_as(body, "wa-messages")?;
        verify_echoes(&doc, &req)?;
        parse_messages(&doc)
    };
    if let Fetched::Decoded(messages) = fetch_decoded(
        net,
        eco,
        PlatformKind::WhatsApp,
        cursor,
        &req,
        &jg.key,
        quarantine,
        failed,
        &decode,
    ) {
        jg.messages = messages;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn collect_telegram(
    net: &mut Net,
    eco: &mut Ecosystem,
    jg: &mut JoinedGroup,
    account: u16,
    cursor: &mut SimTime,
    pii: &mut PiiStore,
    failed: &mut u64,
    quarantine: &mut Vec<QuarantineEntry>,
) -> Result<(), CoreError> {
    let base = |ep: &'static str| {
        Request::new(ep)
            .with("account", account.to_string())
            .with("group", jg.group_id.0.to_string())
    };
    // Full history since creation.
    let req = base("telegram/api/history");
    let decode = |body: &str| -> Result<(i64, Vec<Message>), CoreError> {
        let doc = WireDoc::parse_as(body, "tg-history")?;
        verify_echoes(&doc, &req)?;
        let created_day = doc.req_i64("created_day")?;
        let messages = parse_messages(&doc)?;
        Ok((created_day, messages))
    };
    match fetch_decoded(
        net,
        eco,
        PlatformKind::Telegram,
        cursor,
        &req,
        &jg.key,
        quarantine,
        failed,
        &decode,
    ) {
        Fetched::Decoded((created_day, messages)) => {
            jg.created_day = Some(created_day);
            jg.messages = messages;
        }
        Fetched::Denied => {}
        Fetched::Lost => return Ok(()),
    }
    // Member list, if the admins left it visible.
    let req = base("telegram/api/members");
    let decode = |body: &str| -> Result<Vec<u32>, CoreError> {
        let doc = WireDoc::parse_as(body, "tg-members")?;
        verify_echoes(&doc, &req)?;
        let mut ids = Vec::new();
        for raw in doc.get_all("member") {
            // A garbled id is corruption, not data: reject the whole
            // body (silently skipping would undercount members from a
            // document we know is damaged).
            let Ok(id) = raw.parse::<u32>() else {
                return Err(CoreError::Protocol(format!("bad member id: {raw:?}")));
            };
            ids.push(id);
        }
        Ok(ids)
    };
    let user_ids: Vec<u32> = match fetch_decoded(
        net,
        eco,
        PlatformKind::Telegram,
        cursor,
        &req,
        &jg.key,
        quarantine,
        failed,
        &decode,
    ) {
        Fetched::Decoded(ids) => {
            jg.member_list_available = true;
            ids
        }
        Fetched::Denied => {
            // Hidden list (§3.3): fall back to the users who posted at
            // least one message, exactly as the paper did (§6).
            let mut senders: Vec<u32> = jg.messages.iter().map(|m| m.sender.0).collect();
            senders.sort_unstable();
            senders.dedup();
            senders
        }
        Fetched::Lost => return Ok(()),
    };
    // Profile lookups: phones only for the opt-in sliver.
    for id in user_ids {
        let req = Request::new("telegram/api/user")
            .with("account", account.to_string())
            .with("id", id.to_string());
        let decode = |body: &str| -> Result<Option<String>, CoreError> {
            let doc = WireDoc::parse_as(body, "tg-user")?;
            verify_echoes(&doc, &req)?;
            Ok(doc.get("phone").map(str::to_string))
        };
        let Fetched::Decoded(phone) = fetch_decoded(
            net,
            eco,
            PlatformKind::Telegram,
            cursor,
            &req,
            &jg.key,
            quarantine,
            failed,
            &decode,
        ) else {
            continue;
        };
        let phone = phone.as_deref();
        pii.record_tg_user(id, phone);
        jg.members.push(MemberRecord {
            user_id: Some(id),
            phone_hash: phone.map(hash_phone),
            country: phone.and_then(country_of).map(str::to_string),
            linked: Vec::new(),
        });
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn collect_discord(
    net: &mut Net,
    eco: &mut Ecosystem,
    jg: &mut JoinedGroup,
    account: u16,
    cursor: &mut SimTime,
    pii: &mut PiiStore,
    failed: &mut u64,
    quarantine: &mut Vec<QuarantineEntry>,
) -> Result<(), CoreError> {
    let base = |ep: &'static str| {
        Request::new(ep)
            .with("account", account.to_string())
            .with("group", jg.group_id.0.to_string())
    };
    let req = base("discord/api/messages");
    let decode = |body: &str| -> Result<(i64, Vec<Message>), CoreError> {
        let doc = WireDoc::parse_as(body, "dc-messages")?;
        verify_echoes(&doc, &req)?;
        let created_day = doc.req_i64("created_day")?;
        let messages = parse_messages(&doc)?;
        Ok((created_day, messages))
    };
    match fetch_decoded(
        net,
        eco,
        PlatformKind::Discord,
        cursor,
        &req,
        &jg.key,
        quarantine,
        failed,
        &decode,
    ) {
        Fetched::Decoded((created_day, messages)) => {
            jg.created_day = Some(created_day);
            jg.messages = messages;
        }
        Fetched::Denied => {}
        Fetched::Lost => return Ok(()),
    }
    // No member list for user-level collectors (§3.3): profiles are
    // fetched for users who posted at least one message.
    let mut senders: Vec<u32> = jg.messages.iter().map(|m| m.sender.0).collect();
    senders.sort_unstable();
    senders.dedup();
    for id in senders {
        let req = Request::new("discord/api/user").with("id", id.to_string());
        let decode = |body: &str| -> Result<Vec<String>, CoreError> {
            let doc = WireDoc::parse_as(body, "dc-user")?;
            verify_echoes(&doc, &req)?;
            Ok(doc.get_all("linked").map(str::to_string).collect())
        };
        let Fetched::Decoded(linked) = fetch_decoded(
            net,
            eco,
            PlatformKind::Discord,
            cursor,
            &req,
            &jg.key,
            quarantine,
            failed,
            &decode,
        ) else {
            continue;
        };
        pii.record_dc_user(id, &linked);
        jg.members.push(MemberRecord {
            user_id: Some(id),
            phone_hash: None,
            country: None,
            linked,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_simnet::time::SimDuration;
    use chatlens_workload::ScenarioConfig;

    fn setup_with_discovery() -> (Ecosystem, Net, Discovery) {
        let eco = Ecosystem::build(ScenarioConfig::tiny());
        let start = eco.window.start_time();
        let mut net = Net::reliable(21, start);
        let mut disco = Discovery::new(start);
        let mut eco = eco;
        let t0 = start + SimDuration::hours(1);
        disco.run_search(&mut net, &mut eco, t0).unwrap();
        (eco, net, disco)
    }

    #[test]
    fn joins_live_groups_up_to_budget() {
        let (mut eco, mut net, disco) = setup_with_discovery();
        let mut joiner = Joiner::new();
        let mut rng = Rng::new(1);
        let now = eco.window.start_time() + SimDuration::days(2);
        joiner
            .join_phase(
                &mut net,
                &mut eco,
                &disco,
                PlatformKind::Telegram,
                5,
                now,
                &mut rng,
            )
            .unwrap();
        assert_eq!(joiner.joined.len(), 5);
        for jg in &joiner.joined {
            assert_eq!(jg.platform, PlatformKind::Telegram);
            assert!(
                eco.platform(PlatformKind::Telegram)
                    .group(jg.group_id)
                    .history
                    .is_some(),
                "joined group materialized"
            );
        }
    }

    #[test]
    fn discord_bot_probe_is_rejected() {
        let (mut eco, mut net, disco) = setup_with_discovery();
        let mut joiner = Joiner::new();
        let mut rng = Rng::new(2);
        let now = eco.window.start_time() + SimDuration::days(1);
        joiner
            .join_phase(
                &mut net,
                &mut eco,
                &disco,
                PlatformKind::Discord,
                3,
                now,
                &mut rng,
            )
            .unwrap();
        assert!(joiner.bot_join_rejected, "bots cannot self-join (§3.3)");
        assert!(joiner.dead_at_join > 0, "many Discord invites are dead");
    }

    #[test]
    fn whatsapp_collection_yields_hashed_phones() {
        let (mut eco, mut net, disco) = setup_with_discovery();
        let mut joiner = Joiner::new();
        let mut pii = PiiStore::new();
        let mut rng = Rng::new(3);
        let now = eco.window.start_time() + SimDuration::days(2);
        joiner
            .join_phase(
                &mut net,
                &mut eco,
                &disco,
                PlatformKind::WhatsApp,
                4,
                now,
                &mut rng,
            )
            .unwrap();
        let end = eco
            .window
            .end_time()
            .checked_sub(SimDuration::hours(1))
            .unwrap();
        joiner
            .collect_phase(&mut net, &mut eco, end, &mut pii)
            .unwrap();
        assert!(!joiner.joined.is_empty());
        let mut saw_member = false;
        for jg in &joiner.joined {
            assert!(jg.member_list_available, "WhatsApp always shows members");
            assert!(jg.created_day.is_some(), "creation date visible post-join");
            for m in &jg.members {
                saw_member = true;
                let h = m.phone_hash.as_ref().expect("every member has a phone");
                assert_eq!(h.len(), 64, "stored as SHA-256, not a number");
                assert!(m.country.is_some());
            }
        }
        assert!(saw_member);
        assert!(!pii.wa_member_hashes.is_empty());
    }

    #[test]
    fn telegram_hidden_lists_fall_back_to_senders() {
        let (mut eco, mut net, disco) = setup_with_discovery();
        let mut joiner = Joiner::new();
        let mut pii = PiiStore::new();
        let mut rng = Rng::new(4);
        let now = eco.window.start_time() + SimDuration::days(2);
        joiner
            .join_phase(
                &mut net,
                &mut eco,
                &disco,
                PlatformKind::Telegram,
                12,
                now,
                &mut rng,
            )
            .unwrap();
        let end = eco
            .window
            .end_time()
            .checked_sub(SimDuration::hours(1))
            .unwrap();
        joiner
            .collect_phase(&mut net, &mut eco, end, &mut pii)
            .unwrap();
        let hidden = joiner
            .joined
            .iter()
            .filter(|j| !j.member_list_available)
            .count();
        let visible = joiner.joined.len() - hidden;
        assert!(hidden > 0, "most Telegram lists are hidden");
        // Visible-list groups report more members than they have senders.
        let _ = visible;
        assert!(!pii.tg_users_observed.is_empty());
        // Opt-in phones are rare but the rate is tiny, not guaranteed >0
        // in a tiny scenario; just check the bound.
        assert!(pii.tg_phone_hashes.len() <= pii.tg_users_observed.len());
    }

    #[test]
    fn discord_collection_yields_linked_accounts() {
        let (mut eco, mut net, disco) = setup_with_discovery();
        let mut joiner = Joiner::new();
        let mut pii = PiiStore::new();
        let mut rng = Rng::new(5);
        let now = eco.window.start_time() + SimDuration::days(1);
        joiner
            .join_phase(
                &mut net,
                &mut eco,
                &disco,
                PlatformKind::Discord,
                8,
                now,
                &mut rng,
            )
            .unwrap();
        let end = eco
            .window
            .end_time()
            .checked_sub(SimDuration::hours(1))
            .unwrap();
        joiner
            .collect_phase(&mut net, &mut eco, end, &mut pii)
            .unwrap();
        assert!(!joiner.joined.is_empty());
        assert!(!pii.dc_users_observed.is_empty());
        let rate = pii.dc_link_rate();
        assert!((0.1..=0.55).contains(&rate), "link rate {rate}");
        // No phone numbers on Discord, ever.
        for jg in &joiner.joined {
            assert!(jg.members.iter().all(|m| m.phone_hash.is_none()));
        }
    }

    #[test]
    fn account_rotation_on_join_limits() {
        // Force a tiny join limit by using Discord (limit 100) with a
        // budget above it.
        let (mut eco, mut net, disco) = setup_with_discovery();
        let n_discord_alive = disco.groups_of(PlatformKind::Discord).count();
        if n_discord_alive < 110 {
            // tiny scenario may not have enough groups; skip gracefully
            return;
        }
        let mut joiner = Joiner::new();
        let mut rng = Rng::new(6);
        let now = eco.window.start_time() + SimDuration::days(1);
        joiner
            .join_phase(
                &mut net,
                &mut eco,
                &disco,
                PlatformKind::Discord,
                150,
                now,
                &mut rng,
            )
            .unwrap();
        if joiner.joined.len() > 100 {
            assert!(joiner.accounts_used[PlatformKind::Discord.index()] > 1);
        }
    }
}
