//! Group discovery via Twitter's Search and Streaming APIs (§3.1).
//!
//! Every hour the component queries the Search API once per tracked host
//! (paginated, `since_id`-incremental; the very first query of each host
//! pulls the full 7-day backlog) and drains the Streaming API for the
//! elapsed hour. The two feeds disagree — each misses a deterministic
//! subset of tweets — so tweets are merged by id and a tweet's provenance
//! (search, stream, or both) is retained. The 1% sample stream is drained
//! daily into the control dataset.

use crate::budget::SpillableLog;
use crate::error::CoreError;
use crate::intern::Interner;
use crate::net::Net;
use crate::patterns::{extract_invites, ExtractionStats};
use crate::quarantine::{day_of, verify_echoes, QuarantineEntry};
use chatlens_platforms::id::PlatformKind;
use chatlens_platforms::invite::InviteCode;
use chatlens_platforms::wire::WireDoc;
use chatlens_simnet::time::SimTime;
use chatlens_simnet::transport::Request;
use chatlens_twitter::store::TRACK_HOSTS;
use chatlens_twitter::Tweet;
use chatlens_workload::Ecosystem;
use std::collections::{HashMap, HashSet};

/// First sighting of a group URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveryRecord {
    /// The validated invite.
    pub invite: InviteCode,
    /// Which platform it belongs to.
    pub platform: PlatformKind,
    /// When the collector first saw it (collection time, not tweet time).
    pub discovered_at: SimTime,
    /// Posting time of the earliest tweet seen carrying it.
    pub first_tweet_at: SimTime,
}

/// A collected tweet with provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectedTweet {
    /// The tweet as decoded off the wire.
    pub tweet: Tweet,
    /// When the collector first received it.
    pub seen_at: SimTime,
    /// Delivered by the Search API.
    pub via_search: bool,
    /// Delivered by the Streaming API.
    pub via_stream: bool,
}

/// The discovery component's accumulated state.
pub struct Discovery {
    /// Window start, anchoring study-day provenance for quarantine
    /// entries (pure config — rebuilt from the window on resume).
    start: SimTime,
    since_id: [Option<u64>; 6],
    tweet_index: HashMap<u64, usize>,
    /// Collected pattern-matched tweets, in arrival order, deduplicated.
    /// Under `--mem-budget` the cold day-prefix may be spilled to disk;
    /// indices in `tweet_index` and day-mark cursors are *global* and
    /// stay valid across an eviction.
    pub tweets: SpillableLog<CollectedTweet>,
    /// Control-sample tweets (spillable like `tweets`).
    pub control: SpillableLog<Tweet>,
    /// Ids present in `control` (derived; rebuilt on resume). Backfill
    /// re-fetches sample windows whose early pages already landed, so
    /// control ingestion dedups by id — against this persistent set, not
    /// a per-window rebuild over the whole control corpus.
    control_ids: HashSet<u64>,
    /// Group dedup keys interned in discovery order: a group's [`Sym`]
    /// index equals its slot in `groups`, so every slot-indexed table in
    /// the pipeline (timelines, terminal set, gap ledger) shares this one
    /// identity space.
    ///
    /// [`Sym`]: crate::intern::Sym
    pub(crate) interner: Interner,
    /// Discovered groups in discovery order.
    pub groups: Vec<DiscoveryRecord>,
    /// URL extraction totals.
    pub stats: ExtractionStats,
    last_stream_drain: SimTime,
    last_sample_drain: SimTime,
    /// Transport-level failures that cost data (after retries).
    pub failed_requests: u64,
    /// Stream windows `(from, to)` whose drain failed mid-flight; retried
    /// at the next day boundary by [`Discovery::backfill`]. The Search
    /// feed needs no queue: its `since_id` watermark only advances past
    /// delivered tweets, so the next hourly round re-covers what was lost.
    pub pending_stream: Vec<(SimTime, SimTime)>,
    /// Sample windows awaiting backfill, like `pending_stream`.
    pub pending_sample: Vec<(SimTime, SimTime)>,
    /// Rejected feed pages with provenance (see [`crate::quarantine`]).
    /// A quarantined page is *lost* like a transport failure — stream and
    /// sample windows re-queue for backfill, search re-covers via
    /// `since_id` — so corruption shrinks coverage but never ingests.
    pub quarantine: Vec<QuarantineEntry>,
}

impl Discovery {
    /// A fresh component; `start` anchors the stream drains.
    pub fn new(start: SimTime) -> Discovery {
        Discovery {
            start,
            since_id: [None; 6],
            tweet_index: HashMap::new(),
            tweets: SpillableLog::new(),
            control: SpillableLog::new(),
            control_ids: HashSet::new(),
            interner: Interner::new(),
            groups: Vec::new(),
            stats: ExtractionStats::default(),
            last_stream_drain: start,
            last_sample_drain: start,
            failed_requests: 0,
            pending_stream: Vec::new(),
            pending_sample: Vec::new(),
            quarantine: Vec::new(),
        }
    }

    /// Export the private feed cursors for a checkpoint: per-host
    /// `since_id` watermarks and the last stream/sample drain instants.
    pub fn cursors(&self) -> ([Option<u64>; 6], SimTime, SimTime) {
        (
            self.since_id,
            self.last_stream_drain,
            self.last_sample_drain,
        )
    }

    /// Rebuild a `Discovery` from checkpointed parts. The tweet-id index
    /// is derived data and is reconstructed here; the group symbol table
    /// is re-interned from the group records in discovery order, which
    /// reproduces the saved table id-for-id (the snapshot also carries
    /// the table explicitly and the loader verifies the two agree).
    ///
    /// `tweets` and `control` carry only the resident tail of a budgeted
    /// snapshot; the ids of spilled items are re-registered afterwards by
    /// [`index_spilled`](Self::index_spilled) (the budget accountant
    /// faults each manifest partition once to enumerate them).
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        start: SimTime,
        since_id: [Option<u64>; 6],
        tweets: SpillableLog<CollectedTweet>,
        control: SpillableLog<Tweet>,
        groups: Vec<DiscoveryRecord>,
        stats: ExtractionStats,
        last_stream_drain: SimTime,
        last_sample_drain: SimTime,
        failed_requests: u64,
        pending_stream: Vec<(SimTime, SimTime)>,
        pending_sample: Vec<(SimTime, SimTime)>,
        quarantine: Vec<QuarantineEntry>,
    ) -> Discovery {
        let base = tweets.base();
        let tweet_index = tweets
            .iter()
            .enumerate()
            .map(|(i, t)| (t.tweet.id.0, base + i))
            .collect();
        let control_ids = control.iter().map(|t| t.id.0).collect();
        let mut interner = Interner::new();
        for (i, g) in groups.iter().enumerate() {
            let sym = interner.intern(&g.invite.dedup_key());
            debug_assert_eq!(sym.index(), i, "group keys must be distinct");
        }
        Discovery {
            start,
            since_id,
            tweet_index,
            tweets,
            control,
            control_ids,
            interner,
            groups,
            stats,
            last_stream_drain,
            last_sample_drain,
            failed_requests,
            pending_stream,
            pending_sample,
            quarantine,
        }
    }

    /// Number of distinct groups discovered so far.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Groups of one platform, in discovery order.
    pub fn groups_of(&self, kind: PlatformKind) -> impl Iterator<Item = &DiscoveryRecord> {
        self.groups.iter().filter(move |g| g.platform == kind)
    }

    /// Look up a discovered group by its dedup key.
    pub fn group_by_key(&self, key: &str) -> Option<&DiscoveryRecord> {
        self.slot_of_key(key).map(|i| &self.groups[i])
    }

    /// Slot (= interned sym index) of a discovered group, by dedup key.
    pub fn slot_of_key(&self, key: &str) -> Option<usize> {
        self.interner.get(key).map(|s| s.index())
    }

    /// The group symbol table: dedup keys in discovery order, where a
    /// key's [`Sym`](crate::intern::Sym) index is its `groups` slot.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    fn ingest(&mut self, tweet: Tweet, now: SimTime, via_search: bool) {
        if let Some(&i) = self.tweet_index.get(&tweet.id.0) {
            // Seen before (the other feed, or an overlapping search
            // window): merge provenance only. The record must still be
            // resident: the budget's eviction eligibility rule (a
            // partition ages `RESIDENCY_DAYS` past the 7-day search
            // lookback and past every pending backfill window before it
            // may spill) guarantees no merge can target a spilled day.
            let rec = self
                .tweets
                .get_mut(i)
                .expect("provenance merge reached a spilled partition (eligibility invariant)");
            rec.via_search |= via_search;
            rec.via_stream |= !via_search;
            return;
        }
        for invite in extract_invites(&tweet, &mut self.stats) {
            let sym = self.interner.intern(&invite.dedup_key());
            if let Some(g) = self.groups.get_mut(sym.index()) {
                // Seen before: the interner handed back the group's slot.
                if tweet.at < g.first_tweet_at {
                    g.first_tweet_at = tweet.at;
                }
            } else {
                // First sighting: the interner assigned the next dense id,
                // which is exactly this record's slot in `groups`.
                debug_assert_eq!(sym.index(), self.groups.len());
                self.groups.push(DiscoveryRecord {
                    platform: invite.platform(),
                    invite,
                    discovered_at: now,
                    first_tweet_at: tweet.at,
                });
            }
        }
        self.tweet_index.insert(tweet.id.0, self.tweets.len());
        self.tweets.push(CollectedTweet {
            tweet,
            seen_at: now,
            via_search,
            via_stream: !via_search,
        });
    }

    /// Pull every page of one feed request. Returns the highest tweet id
    /// delivered and whether the drain ran to completion — a transport
    /// failure mid-pagination loses the remaining pages, and the caller
    /// decides whether the window is recoverable (queued for backfill) or
    /// self-healing (search's `since_id`).
    ///
    /// A page whose *body* fails to decode (corruption, splice) is never
    /// a process error: the body is quarantined with provenance, the page
    /// is re-fetched once immediately, and if the retry is damaged too
    /// the page is treated exactly like a transport loss — nothing from
    /// either hostile body is ingested.
    #[allow(clippy::too_many_arguments)]
    fn drain_pages(
        &mut self,
        net: &mut Net,
        eco: &mut Ecosystem,
        now: SimTime,
        base: Request,
        doc_kind: &'static str,
        via_search: bool,
        into_control: bool,
    ) -> Result<(Option<u64>, bool), CoreError> {
        let mut page = 0u64;
        let mut max_id: Option<u64> = None;
        loop {
            let req = base.clone().with("page", page.to_string());
            let resp = match net.twitter(eco, now, &req) {
                Ok(r) => r,
                Err(_) => {
                    self.failed_requests += 1;
                    return Ok((max_id, false)); // lose the page, keep the campaign going
                }
            };
            // Decode the page fully — envelope, echoes, every tweet —
            // before ingesting anything, so a body that goes bad halfway
            // through contributes nothing at all.
            let decoded = match decode_page(&resp.body, doc_kind, &req) {
                Ok(p) => p,
                Err(err) => {
                    let day = day_of(self.start, now);
                    self.quarantine.push(QuarantineEntry::new(
                        "twitter", &req, "", day, &err, &resp.body,
                    ));
                    // Bounded same-day re-fetch of the damaged page.
                    let retried = match net.twitter(eco, now, &req) {
                        Ok(r2) => match decode_page(&r2.body, doc_kind, &req) {
                            Ok(p) => Some(p),
                            Err(err2) => {
                                self.quarantine.push(QuarantineEntry::new(
                                    "twitter", &req, "", day, &err2, &r2.body,
                                ));
                                None
                            }
                        },
                        Err(_) => None,
                    };
                    match retried {
                        Some(p) => p,
                        None => {
                            self.failed_requests += 1;
                            return Ok((max_id, false)); // page lost, like a transport failure
                        }
                    }
                }
            };
            if let Some(m) = decoded.max_id {
                max_id = Some(max_id.map_or(m, |x| x.max(m)));
            }
            for mut tweet in decoded.tweets {
                if into_control {
                    // Dedup against the persistent id set (`ingest`
                    // already dedups the discovery feeds).
                    if self.control_ids.insert(tweet.id.0) {
                        tweet.is_control = true;
                        self.control.push(tweet);
                    }
                } else {
                    self.ingest(tweet, now, via_search);
                }
            }
            match decoded.next {
                Some(next) => page = next,
                None => return Ok((max_id, true)),
            }
        }
    }

    /// One hourly Search API round: one paginated, `since_id`-incremental
    /// query per tracked host.
    pub fn run_search(
        &mut self,
        net: &mut Net,
        eco: &mut Ecosystem,
        now: SimTime,
    ) -> Result<(), CoreError> {
        for (hi, host) in TRACK_HOSTS.into_iter().enumerate() {
            let mut req = Request::new("twitter/search").with("host", host);
            if let Some(since) = self.since_id[hi] {
                req = req.with("since_id", since.to_string());
            }
            let (max_id, _) = self.drain_pages(net, eco, now, req, "tw-search", true, false)?;
            // Advance the host's high-water mark only past tweets *this
            // host's search* actually delivered — anything older is
            // invisible to search forever, anything newer must still be
            // fetchable next hour even if the stream saw it first.
            if max_id > self.since_id[hi] {
                self.since_id[hi] = max_id;
            }
        }
        Ok(())
    }

    /// Drain the Streaming API for the period since the previous drain.
    pub fn drain_stream(
        &mut self,
        net: &mut Net,
        eco: &mut Ecosystem,
        now: SimTime,
    ) -> Result<(), CoreError> {
        let from = self.last_stream_drain;
        self.last_stream_drain = now;
        self.fetch_stream_window(net, eco, now, (from, now))
    }

    /// Drain the 1% sample stream into the control dataset.
    pub fn drain_sample(
        &mut self,
        net: &mut Net,
        eco: &mut Ecosystem,
        now: SimTime,
    ) -> Result<(), CoreError> {
        let from = self.last_sample_drain;
        self.last_sample_drain = now;
        self.fetch_sample_window(net, eco, now, (from, now))
    }

    /// Fetch one stream window, queueing it for backfill if incomplete.
    fn fetch_stream_window(
        &mut self,
        net: &mut Net,
        eco: &mut Ecosystem,
        now: SimTime,
        window: (SimTime, SimTime),
    ) -> Result<(), CoreError> {
        let req = Request::new("twitter/stream")
            .with("from", window.0.as_secs().to_string())
            .with("to", window.1.as_secs().to_string());
        let (_, complete) = self.drain_pages(net, eco, now, req, "tw-stream", false, false)?;
        if !complete {
            self.pending_stream.push(window);
        }
        Ok(())
    }

    /// Fetch one sample window, queueing it for backfill if incomplete.
    fn fetch_sample_window(
        &mut self,
        net: &mut Net,
        eco: &mut Ecosystem,
        now: SimTime,
        window: (SimTime, SimTime),
    ) -> Result<(), CoreError> {
        let req = Request::new("twitter/sample")
            .with("from", window.0.as_secs().to_string())
            .with("to", window.1.as_secs().to_string());
        let (_, complete) = self.drain_pages(net, eco, now, req, "tw-sample", false, true)?;
        if !complete {
            self.pending_sample.push(window);
        }
        Ok(())
    }

    /// Retry every queued stream/sample window. Called once per day
    /// boundary; windows that fail again simply re-queue, so nothing is
    /// lost while an outage lasts and everything recoverable lands at the
    /// first healthy boundary. Re-fetching is safe: both feeds dedup by
    /// tweet id, and collection timestamps honestly record the backfill
    /// instant rather than pretending the window was seen on time.
    pub fn backfill(
        &mut self,
        net: &mut Net,
        eco: &mut Ecosystem,
        now: SimTime,
    ) -> Result<(), CoreError> {
        for window in std::mem::take(&mut self.pending_stream) {
            self.fetch_stream_window(net, eco, now, window)?;
        }
        for window in std::mem::take(&mut self.pending_sample) {
            self.fetch_sample_window(net, eco, now, window)?;
        }
        Ok(())
    }

    /// Windows still awaiting backfill (campaign health metric).
    pub fn pending_windows(&self) -> usize {
        self.pending_stream.len() + self.pending_sample.len()
    }

    /// Earliest study day any pending backfill window reaches back to,
    /// if any window is queued. The memory budget must keep every
    /// partition from that day on resident: a backfill re-delivers
    /// tweets posted in `[from, to]`, whose original collection day is
    /// at least `day_of(from)` and which therefore merge into
    /// partitions no colder than that.
    pub fn min_pending_window_day(&self) -> Option<u32> {
        self.pending_stream
            .iter()
            .chain(self.pending_sample.iter())
            .map(|&(from, _)| day_of(self.start, from))
            .min()
    }

    /// Re-register the ids of spilled items into the dedup indexes
    /// after a resume: `tweet_ids` pairs each spilled tweet id with its
    /// global append index (for provenance-merge lookups, which under
    /// the eligibility rule never actually dereference a spilled
    /// index), and `control_ids` repopulates the control dedup set.
    pub fn index_spilled(
        &mut self,
        tweet_ids: impl IntoIterator<Item = (u64, usize)>,
        control_ids: impl IntoIterator<Item = u64>,
    ) {
        for (id, global) in tweet_ids {
            self.tweet_index.insert(id, global);
        }
        // lint:allow(D2) set insertion is order-insensitive
        for id in control_ids {
            self.control_ids.insert(id);
        }
    }
}

/// One fully validated feed page, ready to ingest.
struct Page {
    tweets: Vec<Tweet>,
    max_id: Option<u64>,
    next: Option<u64>,
}

/// Decode one feed page: envelope, identity echoes (`host`, `page`,
/// `from`/`to` — a mismatch is a cross-document splice), and every
/// encoded tweet. Pure: nothing is ingested until the whole page has
/// validated.
fn decode_page(body: &str, doc_kind: &'static str, req: &Request) -> Result<Page, CoreError> {
    let doc = WireDoc::parse_as(body, doc_kind)?;
    verify_echoes(&doc, req)?;
    let mut tweets = Vec::new();
    let mut max_id: Option<u64> = None;
    for encoded in doc.get_all("tweet") {
        let Some(tweet) = Tweet::decode(encoded) else {
            return Err(CoreError::Protocol(format!(
                "undecodable tweet: {encoded:?}"
            )));
        };
        max_id = Some(max_id.map_or(tweet.id.0, |m| m.max(tweet.id.0)));
        tweets.push(tweet);
    }
    let next = doc.opt_u64("next_page")?;
    Ok(Page {
        tweets,
        max_id,
        next,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_simnet::time::SimDuration;
    use chatlens_workload::ScenarioConfig;

    fn setup() -> (Ecosystem, Net, Discovery) {
        let eco = Ecosystem::build(ScenarioConfig::tiny());
        let start = eco.window.start_time();
        let net = Net::reliable(7, start);
        let disco = Discovery::new(start);
        (eco, net, disco)
    }

    #[test]
    fn first_search_pulls_backlog() {
        let (mut eco, mut net, mut disco) = setup();
        let t0 = eco.window.start_time() + SimDuration::hours(1);
        disco.run_search(&mut net, &mut eco, t0).unwrap();
        assert!(disco.group_count() > 0, "backlog should yield groups");
        assert!(disco.tweets.iter().all(|t| t.via_search));
        // Everything seen so far was posted within the search window.
        for t in &disco.tweets {
            assert!(t.tweet.at <= t0);
        }
    }

    #[test]
    fn since_id_makes_hourly_searches_incremental() {
        let (mut eco, mut net, mut disco) = setup();
        let t0 = eco.window.start_time() + SimDuration::hours(1);
        disco.run_search(&mut net, &mut eco, t0).unwrap();
        let after_first = disco.tweets.len();
        // Immediately repeating the search must add nothing.
        disco.run_search(&mut net, &mut eco, t0).unwrap();
        assert_eq!(disco.tweets.len(), after_first);
        // An hour later only the new hour's tweets arrive.
        let t1 = t0 + SimDuration::hours(1);
        disco.run_search(&mut net, &mut eco, t1).unwrap();
        let delta = disco.tweets.len() - after_first;
        assert!(delta < after_first / 4, "hourly delta {delta} too large");
    }

    #[test]
    fn merging_feeds_beats_either_alone() {
        let (mut eco, mut net, mut disco) = setup();
        let end = eco.window.start_time() + SimDuration::days(2);
        let mut t = eco.window.start_time() + SimDuration::hours(1);
        while t < end {
            disco.run_search(&mut net, &mut eco, t).unwrap();
            disco.drain_stream(&mut net, &mut eco, t).unwrap();
            t += SimDuration::hours(1);
        }
        let both = disco
            .tweets
            .iter()
            .filter(|t| t.via_search && t.via_stream)
            .count();
        let search_only = disco
            .tweets
            .iter()
            .filter(|t| t.via_search && !t.via_stream)
            .count();
        let stream_only = disco
            .tweets
            .iter()
            .filter(|t| !t.via_search && t.via_stream)
            .count();
        assert!(both > 0, "feeds overlap");
        assert!(search_only > 0, "search sees tweets the stream lost");
        assert!(stream_only > 0, "stream sees tweets search misses");
    }

    #[test]
    fn control_drain_collects_sample() {
        let (mut eco, mut net, mut disco) = setup();
        let t = eco.window.start_time() + SimDuration::days(1);
        disco.drain_sample(&mut net, &mut eco, t).unwrap();
        assert!(!disco.control.is_empty());
        assert!(disco.control.iter().all(|t| t.is_control));
        // A second drain for the same period adds nothing.
        let n = disco.control.len();
        disco.drain_sample(&mut net, &mut eco, t).unwrap();
        assert_eq!(disco.control.len(), n);
    }

    #[test]
    fn groups_deduplicate_across_tweets() {
        let (mut eco, mut net, mut disco) = setup();
        let end = eco.window.start_time() + SimDuration::days(3);
        let mut t = eco.window.start_time() + SimDuration::hours(1);
        while t < end {
            disco.run_search(&mut net, &mut eco, t).unwrap();
            t += SimDuration::hours(6);
        }
        assert!(disco.tweets.len() > disco.group_count(), "URLs repeat");
        // Every discovered group is resolvable by key and consistent.
        for g in &disco.groups {
            let found = disco.group_by_key(&g.invite.dedup_key()).unwrap();
            assert_eq!(found.invite, g.invite);
            assert!(found.first_tweet_at <= found.discovered_at);
        }
    }
}
