//! The quarantine ledger: provenance-tagged records of every wire body
//! the collectors *rejected* instead of ingesting.
//!
//! A hostile or bit-rotted response must never abort the campaign and
//! must never leak into an analysis table. When a collector's decode of a
//! successful (`200 OK`) body fails — grammar damage, a type violation, a
//! count-header mismatch, or an identity echo that does not match the
//! request (a cross-document splice) — the collector files a
//! [`QuarantineEntry`] carrying the service, the exact request, the study
//! day, a typed [`QuarantineCode`], and a bounded excerpt of the
//! offending body, then performs at most **one** immediate same-day
//! re-fetch. A second failure files a second entry and the datum is
//! handled by the component's existing loss machinery (monitor gap
//! ledger, stream/sample backfill queues, skipped collection fetches) —
//! quarantine records *why* data is missing, the loss ledgers record
//! *that* it is missing.
//!
//! The ledger persists through checkpoints (since snapshot format v3) and is
//! merged into [`Dataset::quarantine`](crate::dataset::Dataset) in
//! component order (discovery → monitor → joiner), so a resumed campaign
//! reproduces it bit-identically.

use crate::error::CoreError;
use chatlens_platforms::wire::WireError;
use chatlens_simnet::time::SimTime;
use chatlens_simnet::transport::Request;

/// Bound on the stored body excerpt: enough to diagnose the corruption
/// by eye, small enough that a hostile run cannot balloon the snapshot.
pub const MAX_QUARANTINED_BODY: usize = 256;

/// Why a body was quarantined — one code per failure class, so audits
/// and reports can aggregate without string-matching `detail`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum QuarantineCode {
    /// The document's kind line named a different document.
    WrongKind,
    /// A line did not scan as `key: value`.
    MalformedLine,
    /// A required field was absent.
    MissingField,
    /// A numeric field did not parse.
    BadNumber,
    /// The body tripped an allocation guard (line or value budget).
    TooLarge,
    /// A scalar field appeared more than once.
    DuplicateField,
    /// The self-describing field count disagreed with the body.
    CountMismatch,
    /// An identity echo (invite code, group id, query host, window) did
    /// not match the request — the body belongs to a different resource.
    SpliceMismatch,
    /// A field-level payload (encoded tweet, message, member id) failed
    /// to decode even though the envelope was well-formed.
    BadPayload,
}

impl QuarantineCode {
    /// Stable lower-case label (used by reports and `repro audit`).
    pub fn label(self) -> &'static str {
        match self {
            QuarantineCode::WrongKind => "wrong-kind",
            QuarantineCode::MalformedLine => "malformed-line",
            QuarantineCode::MissingField => "missing-field",
            QuarantineCode::BadNumber => "bad-number",
            QuarantineCode::TooLarge => "too-large",
            QuarantineCode::DuplicateField => "duplicate-field",
            QuarantineCode::CountMismatch => "count-mismatch",
            QuarantineCode::SpliceMismatch => "splice-mismatch",
            QuarantineCode::BadPayload => "bad-payload",
        }
    }

    /// Classify a decode error into its quarantine code.
    pub fn of(err: &CoreError) -> QuarantineCode {
        match err {
            CoreError::Wire(w) => match w {
                WireError::WrongType { .. } => QuarantineCode::WrongKind,
                WireError::Empty | WireError::MalformedLine(_) => QuarantineCode::MalformedLine,
                WireError::MissingField(_) => QuarantineCode::MissingField,
                WireError::BadNumber(_, _) => QuarantineCode::BadNumber,
                WireError::TooLarge { .. } => QuarantineCode::TooLarge,
                WireError::DuplicateField(_) => QuarantineCode::DuplicateField,
                WireError::CountMismatch { .. } => QuarantineCode::CountMismatch,
            },
            CoreError::Protocol(msg) if msg.starts_with("cross-document splice") => {
                QuarantineCode::SpliceMismatch
            }
            _ => QuarantineCode::BadPayload,
        }
    }
}

/// One rejected body, with full provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Service name, in [`SERVICE_NAMES`](crate::net::SERVICE_NAMES)
    /// vocabulary (`"twitter"`, `"whatsapp"`, `"telegram"`, `"discord"`).
    pub service: String,
    /// The request the body answered, rendered as
    /// `endpoint?key=value&key=value` (parameters in key order).
    pub endpoint: String,
    /// Dedup key of the group the request concerned; empty for feed
    /// requests with no single group.
    pub group: String,
    /// Zero-based study day of the fetch.
    pub day: u32,
    /// Failure class.
    pub code: QuarantineCode,
    /// Human-readable error detail (the decode error's display form).
    pub detail: String,
    /// The offending body, truncated to [`MAX_QUARANTINED_BODY`] bytes.
    pub body: String,
}

impl QuarantineEntry {
    /// Build an entry from a failed decode. `group` is the dedup key /
    /// group id the request concerned (empty where none applies).
    pub fn new(
        service: &str,
        req: &Request,
        group: &str,
        day: u32,
        err: &CoreError,
        body: &str,
    ) -> QuarantineEntry {
        QuarantineEntry {
            service: service.to_string(),
            endpoint: render_request(req),
            group: group.to_string(),
            day,
            code: QuarantineCode::of(err),
            detail: err.to_string(),
            body: truncate_body(body),
        }
    }
}

/// Render a request as `endpoint?k=v&k=v` (params are sorted by key, so
/// the rendering is canonical).
fn render_request(req: &Request) -> String {
    let mut out = req.endpoint.clone().into_owned();
    for (i, (k, v)) in req.params.iter().enumerate() {
        out.push(if i == 0 { '?' } else { '&' });
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out
}

/// Truncate a body to the storage bound on a char boundary.
fn truncate_body(body: &str) -> String {
    if body.len() <= MAX_QUARANTINED_BODY {
        return body.to_string();
    }
    let mut end = MAX_QUARANTINED_BODY;
    while !body.is_char_boundary(end) {
        end -= 1;
    }
    body[..end].to_string()
}

/// Service name of a messaging platform, in
/// [`SERVICE_NAMES`](crate::net::SERVICE_NAMES) vocabulary.
pub fn service_name(platform: chatlens_platforms::id::PlatformKind) -> &'static str {
    match platform {
        chatlens_platforms::id::PlatformKind::WhatsApp => "whatsapp",
        chatlens_platforms::id::PlatformKind::Telegram => "telegram",
        chatlens_platforms::id::PlatformKind::Discord => "discord",
    }
}

/// Zero-based study day of `now` relative to the window start (provenance
/// for quarantine entries; saturates rather than panicking on a
/// pre-window instant).
pub fn day_of(window_start: SimTime, now: SimTime) -> u32 {
    (now.as_secs().saturating_sub(window_start.as_secs()) / 86_400) as u32
}

/// [`day_of`], clamped into the study window. The joiner paces its
/// collection fetches at one virtual second each, so a large final-day
/// collection can tick its cursor past the last midnight; those fetches
/// still belong to the last study day.
pub fn day_within(window: &chatlens_simnet::time::StudyWindow, now: SimTime) -> u32 {
    day_of(window.start_time(), now).min(window.num_days().saturating_sub(1) as u32)
}

/// Compare every identity echo a document carries against the request
/// parameter of the same name. Documents echo the binding parameters of
/// the resource they describe (invite `code`, `group` id, query `host`,
/// stream `from`/`to`/`page`); a mismatch means the body answers a
/// *different* request — a cross-document splice — no matter how
/// well-formed it is. Parameters the document does not echo (credentials
/// like `account`, cursors like `since_id`) are not checked.
pub fn verify_echoes(
    doc: &chatlens_platforms::wire::WireView<'_>,
    req: &Request,
) -> Result<(), CoreError> {
    for (key, want) in &req.params {
        if let Some(got) = doc.get(key) {
            if got != want {
                return Err(CoreError::Protocol(format!(
                    "cross-document splice: {key} echoed {got:?} for request {want:?}"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_platforms::wire::WireDoc;

    #[test]
    fn entries_render_requests_canonically() {
        let req = Request::new("twitter/search")
            .with("host", "chat.whatsapp.com")
            .with("page", "2");
        let err = CoreError::Wire(WireError::MissingField("size"));
        let e = QuarantineEntry::new("twitter", &req, "", 4, &err, "tw-search\nn: 0");
        assert_eq!(e.endpoint, "twitter/search?host=chat.whatsapp.com&page=2");
        assert_eq!(e.code, QuarantineCode::MissingField);
        assert_eq!(e.day, 4);
        assert!(e.detail.contains("size"));
    }

    #[test]
    fn bodies_are_truncated_on_char_boundaries() {
        let body = "é".repeat(MAX_QUARANTINED_BODY); // 2 bytes per char
        let e = QuarantineEntry::new(
            "twitter",
            &Request::new("twitter/stream"),
            "",
            0,
            &CoreError::Protocol("x".into()),
            &body,
        );
        assert!(e.body.len() <= MAX_QUARANTINED_BODY);
        assert!(e.body.chars().all(|c| c == 'é'));
    }

    #[test]
    fn splice_detection_compares_echoes_to_params() {
        let doc = WireDoc::new("wa-landing")
            .field("code", "AAA")
            .field("size", 10);
        let body = doc.render();
        let parsed = WireDoc::parse_as(&body, "wa-landing").unwrap();
        let matching = Request::new("whatsapp/landing").with("code", "AAA");
        assert!(verify_echoes(&parsed, &matching).is_ok());
        let spliced = Request::new("whatsapp/landing").with("code", "BBB");
        let err = verify_echoes(&parsed, &spliced).unwrap_err();
        assert_eq!(QuarantineCode::of(&err), QuarantineCode::SpliceMismatch);
    }

    #[test]
    fn unechoed_params_are_not_checked() {
        let body = WireDoc::new("tg-history").field("group", 7u64).render();
        let parsed = WireDoc::parse_as(&body, "tg-history").unwrap();
        let req = Request::new("telegram/api/history")
            .with("group", "7")
            .with("account", "3"); // credentials are never echoed
        assert!(verify_echoes(&parsed, &req).is_ok());
    }

    #[test]
    fn day_provenance_is_window_relative() {
        let start = SimTime(86_400 * 10);
        assert_eq!(day_of(start, start), 0);
        assert_eq!(day_of(start, SimTime(86_400 * 13 + 5)), 3);
        assert_eq!(day_of(start, SimTime(0)), 0, "saturates");
    }
}
