//! Error type for the collection pipeline.

use chatlens_platforms::wire::WireError;
use chatlens_simnet::transport::TransportError;
use std::fmt;

/// Anything that can go wrong while collecting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The transport gave up (retries exhausted, rate budget blown).
    Transport(TransportError),
    /// A response body failed to parse.
    Wire(WireError),
    /// The far end answered something protocol-violating (e.g. a join
    /// response without a group id).
    Protocol(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Transport(e) => write!(f, "transport: {e}"),
            CoreError::Wire(e) => write!(f, "wire: {e}"),
            CoreError::Protocol(s) => write!(f, "protocol: {s}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Transport(e) => Some(e),
            CoreError::Wire(e) => Some(e),
            CoreError::Protocol(_) => None,
        }
    }
}

impl From<TransportError> for CoreError {
    fn from(e: TransportError) -> Self {
        CoreError::Transport(e)
    }
}

impl From<WireError> for CoreError {
    fn from(e: WireError) -> Self {
        CoreError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(TransportError::RateBudgetExhausted);
        assert!(e.to_string().contains("transport"));
        assert!(std::error::Error::source(&e).is_some());
        let e = CoreError::from(WireError::Empty);
        assert!(e.to_string().contains("wire"));
        let e = CoreError::Protocol("weird".into());
        assert!(e.to_string().contains("weird"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
