//! Hard memory budget with deterministic cold-partition spill.
//!
//! A campaign that outgrows memory must degrade gracefully, not die in
//! an untyped allocator abort. This module provides the three pieces:
//!
//! 1. [`SpillableLog`] — an append-only log whose cold *prefix* can be
//!    evicted to disk while every global index stays valid. The
//!    discovery tweet and control logs are stored in one of these.
//! 2. [`MemoryBudget`] — the accountant. It tracks the encoded-size
//!    resident bytes of the big stores (the world
//!    [`TweetStore`](chatlens_twitter::store) floor, the per-day
//!    collected partitions, the columnar timeline store, fold ledgers)
//!    and, at every day boundary, evicts the coldest eligible
//!    day-partitions until the budget holds. Eviction order is a pure
//!    function of campaign state — coldest (lowest) day first, and days
//!    are already tie-broken by construction since each day is one
//!    partition — never of wall-clock or allocator behavior.
//! 3. [`BudgetError`] — the typed refusal at the bottom of the
//!    degradation ladder: spill what is eligible, and if the budget
//!    still cannot hold, return an error instead of aborting.
//!
//! # Why evicted partitions are frozen (the eligibility rule)
//!
//! A day-partition `p` is *eligible* for eviction after completed day
//! `d` iff
//!
//! * `p + RESIDENCY_DAYS <= d`, and
//! * `p < day_of(w.from)` for every pending backfill window `w`.
//!
//! The discovery merge path (`Discovery::ingest` on a `tweet_index`
//! hit) mutates the `via_search` / `via_stream` flags of a previously
//! collected tweet, so a partition may only be spilled once no future
//! merge can target it. Search redelivers tweets posted within
//! `SEARCH_WINDOW` (7 days) of *now*; such a tweet's original
//! collection day is at least its post day, which is `> d - 7` for any
//! future day `> d`. A pending stream/sample backfill window
//! `(from, to)` redelivers tweets posted in `[from, to]`, whose
//! original collection day is `>= day_of(from)`. Under the rule above
//! neither can reach a spilled partition, so spilled data is immutable
//! — which is also why a resume can fault partitions back by checksum
//! and trust them byte-for-byte.
//!
//! # Spill envelope and torn-file handling
//!
//! Each evicted day becomes one snapshot file (`dayNNN.part`) in the
//! spill directory, encoded with the ordinary checkpoint envelope
//! (magic, format version, length, SHA-256 trailer) via
//! [`encode_snapshot`]. All spill I/O rides the [`Vfs`], so it composes
//! with `--disk-fault flaky|torn`: after every write the file is read
//! back and compared to the encoded bytes, and a partition is only
//! dropped from memory once the read-back verifies. Torn or damaged
//! files are detected, rewritten (bounded retries), and every incident
//! is appended to `spill.ledger`.

use crate::discovery::{CollectedTweet, Discovery};
use crate::fold::DayMark;
use chatlens_checkpoint::{
    decode_snapshot, encode_snapshot, load_from_file_with, persist_struct, save_to_file_with,
    CheckpointError, FaultVfs, Persist, RealVfs, Vfs, Writer,
};
use chatlens_simnet::fault::DiskFaultProfile;
use chatlens_simnet::hash::sha256;
use chatlens_simnet::metrics::{keys, Metrics};
use chatlens_twitter::Tweet;
use std::fmt;
use std::ops::Range;
use std::path::{Path, PathBuf};

/// Days a partition must age before it is eligible for eviction. One
/// more than the 7-day search lookback window, so no future search
/// redelivery can merge into a spilled partition (see the module doc).
pub const RESIDENCY_DAYS: u32 = 8;

/// Write/read-back attempts per spill before the partition is kept
/// resident. With the torn profile's 25% fault rate, five attempts
/// bound the persistent-failure probability below 0.1%.
const SPILL_ATTEMPTS: u32 = 5;

/// Ledger file recording every spill incident, kept next to the
/// partitions. Written through [`RealVfs`] even under fault injection —
/// like the recovery ledger, it is the evidence log *about* faults.
pub const SPILL_LEDGER_FILE: &str = "spill.ledger";

// ---------------------------------------------------------------------------
// SpillableLog
// ---------------------------------------------------------------------------

/// An append-only log whose cold prefix may be spilled to disk.
///
/// Indices handed out by the log are *global*: `len()` counts spilled
/// and resident items alike, so every historical index (the discovery
/// `tweet_index`, day-mark cursors, fold ledger cursors) stays valid
/// across an eviction. Only the resident tail is addressable;
/// [`get_mut`](Self::get_mut) returns `None` for spilled indices, and
/// the slice accessors panic if asked to cross the spill boundary —
/// under the eligibility rule above, neither ever happens.
#[derive(Debug, Clone, PartialEq)]
pub struct SpillableLog<T> {
    /// Number of spilled items (the global index of `items[0]`).
    base: usize,
    /// Resident tail, in append order.
    items: Vec<T>,
}

impl<T> Default for SpillableLog<T> {
    fn default() -> Self {
        SpillableLog::new()
    }
}

impl<T> SpillableLog<T> {
    /// An empty, fully resident log.
    pub fn new() -> SpillableLog<T> {
        SpillableLog {
            base: 0,
            items: Vec::new(),
        }
    }

    /// A fully resident log over `items`.
    pub fn from_vec(items: Vec<T>) -> SpillableLog<T> {
        SpillableLog { base: 0, items }
    }

    /// Rebuild from a checkpoint: `base` spilled items plus the
    /// resident tail.
    pub fn from_parts(base: usize, items: Vec<T>) -> SpillableLog<T> {
        SpillableLog { base, items }
    }

    /// Append one item.
    pub fn push(&mut self, item: T) {
        self.items.push(item);
    }

    /// Total items ever appended (spilled + resident).
    pub fn len(&self) -> usize {
        self.base + self.items.len()
    }

    /// Whether nothing was ever appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of spilled items — the global index where the resident
    /// tail begins.
    pub fn base(&self) -> usize {
        self.base
    }

    /// The resident tail (global indices `base()..len()`).
    pub fn resident(&self) -> &[T] {
        &self.items
    }

    /// Item at global index `i`, if resident.
    pub fn get(&self, i: usize) -> Option<&T> {
        i.checked_sub(self.base).and_then(|r| self.items.get(r))
    }

    /// Mutable item at global index `i`, if resident. `None` means the
    /// item was spilled — callers relying on the eviction eligibility
    /// rule treat that as an invariant violation.
    pub fn get_mut(&mut self, i: usize) -> Option<&mut T> {
        i.checked_sub(self.base).and_then(|r| self.items.get_mut(r))
    }

    /// Slice of global index range `r`.
    ///
    /// # Panics
    /// Panics if the range starts before the spill boundary.
    pub fn slice(&self, r: Range<usize>) -> &[T] {
        assert!(
            r.start >= self.base,
            "global range {}..{} reaches below the spill boundary {}",
            r.start,
            r.end,
            self.base
        );
        &self.items[r.start - self.base..r.end - self.base]
    }

    /// A borrowed, `Copy` view of the log (for [`DayParts`]).
    ///
    /// [`DayParts`]: crate::fold::DayParts
    pub fn view(&self) -> LogView<'_, T> {
        LogView {
            base: self.base,
            items: &self.items,
        }
    }

    /// Iterate the resident tail.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// Drop every item below global index `upto` (they must have been
    /// durably spilled first). The prefix property — spilled items form
    /// one contiguous run from index 0 — is preserved by construction.
    pub fn spill_to(&mut self, upto: usize) {
        assert!(
            upto >= self.base && upto <= self.len(),
            "spill_to({upto}) outside [{}, {}]",
            self.base,
            self.len()
        );
        self.items.drain(..upto - self.base);
        self.base = upto;
    }

    /// The full log as one vector.
    ///
    /// # Panics
    /// Panics if a prefix was spilled — batch consumers (dataset
    /// assembly) are only reachable on unbudgeted runs.
    pub fn into_full_vec(self) -> Vec<T> {
        assert!(
            self.base == 0,
            "{} item(s) were spilled to disk; the full log is only \
             materializable on unbudgeted runs",
            self.base
        );
        self.items
    }
}

impl<'a, T> IntoIterator for &'a SpillableLog<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A borrowed view of a [`SpillableLog`] — `Copy`, like the slices it
/// replaces in [`DayParts`](crate::fold::DayParts).
#[derive(Debug)]
pub struct LogView<'a, T> {
    base: usize,
    items: &'a [T],
}

// Manual impls: a view is always Copy (it holds a shared slice), no
// `T: Copy` bound — the derive would demand one.
impl<T> Clone for LogView<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for LogView<'_, T> {}

impl<'a, T> LogView<'a, T> {
    /// A view over a fully resident slice (global indices start at 0).
    pub fn of_slice(items: &'a [T]) -> LogView<'a, T> {
        LogView { base: 0, items }
    }

    /// Total items (spilled + resident), mirroring
    /// [`SpillableLog::len`].
    pub fn len(&self) -> usize {
        self.base + self.items.len()
    }

    /// Whether nothing was ever appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of spilled items.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Slice of global index range `r`.
    ///
    /// # Panics
    /// Panics if the range starts before the spill boundary.
    pub fn slice(&self, r: Range<usize>) -> &'a [T] {
        assert!(
            r.start >= self.base,
            "global range {}..{} reaches below the spill boundary {}",
            r.start,
            r.end,
            self.base
        );
        &self.items[r.start - self.base..r.end - self.base]
    }

    /// The full prefix `0..len()` as one slice.
    ///
    /// # Panics
    /// Panics if a prefix was spilled; full-history consumers are only
    /// reachable on unbudgeted runs.
    pub fn full(&self) -> &'a [T] {
        self.slice(0..self.len())
    }

    /// A view truncated to the global prefix `0..upto`.
    pub fn truncated(&self, upto: usize) -> LogView<'a, T> {
        assert!(upto >= self.base && upto <= self.len());
        LogView {
            base: self.base,
            items: &self.items[..upto - self.base],
        }
    }
}

// ---------------------------------------------------------------------------
// Policy, errors, persisted state
// ---------------------------------------------------------------------------

/// The budget ceiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetLimit {
    /// Hard ceiling in bytes on accounted resident size.
    Bytes(u64),
    /// Minimum viable budget: evict every eligible partition every day.
    /// This is the tightest deterministic residency the subsystem can
    /// offer, used by the budget-sweep experiments and CI smoke.
    Min,
}

/// Where and how to spill.
#[derive(Debug, Clone)]
pub struct BudgetPolicy {
    /// The ceiling.
    pub limit: BudgetLimit,
    /// Directory for spill partitions and the spill ledger.
    pub dir: PathBuf,
    /// Disk-fault injection profile for spill I/O (composes with the
    /// checkpoint `--disk-fault` story; the ledger itself always rides
    /// the real filesystem).
    pub disk_fault: DiskFaultProfile,
}

impl BudgetPolicy {
    /// A calm-disk policy with the given limit.
    pub fn new(limit: BudgetLimit, dir: impl Into<PathBuf>) -> BudgetPolicy {
        BudgetPolicy {
            limit,
            dir: dir.into(),
            disk_fault: DiskFaultProfile::Calm,
        }
    }

    /// The virtual filesystem spill I/O runs through. Faulty profiles
    /// fork the deterministic `("checkpoint", "disk")` RNG stream keyed
    /// by the campaign seed, exactly like checkpoint I/O.
    pub fn vfs(&self, seed: u64) -> Box<dyn Vfs> {
        match self.disk_fault {
            DiskFaultProfile::Calm => Box::new(RealVfs),
            profile => Box::new(FaultVfs::new(seed, profile.rates())),
        }
    }
}

/// Typed refusal: the bottom rung of the degradation ladder. A budgeted
/// campaign never aborts on memory pressure — it spills what is
/// eligible and otherwise returns one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetError {
    /// The budget is below the irreducible accounting floor (the world
    /// tweet store), so no amount of spilling can satisfy it.
    TooSmall {
        /// Requested budget in bytes.
        budget: u64,
        /// Irreducible floor in bytes.
        floor: u64,
    },
    /// Every eligible partition is spilled and the resident set still
    /// exceeds the budget.
    Exceeded {
        /// Accounted resident bytes after maximal eviction.
        resident: u64,
        /// The budget in bytes.
        budget: u64,
        /// Number of completed study days at refusal.
        day: u32,
    },
    /// A partition could not be durably spilled within the retry bound
    /// (persistent disk faults), and dropping it unverified would risk
    /// the data.
    SpillFailed {
        /// The day-partition that would not persist.
        day: u32,
        /// Attempts made.
        attempts: u32,
    },
    /// A spill partition failed verification at fault-back or resume
    /// (checksum/count mismatch against the manifest).
    Damaged {
        /// The day-partition.
        day: u32,
        /// What went wrong.
        detail: String,
    },
    /// A resume's budget policy is incompatible with the budget state
    /// recorded in the snapshot.
    ResumeMismatch(String),
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::TooSmall { budget, floor } => write!(
                f,
                "memory budget of {budget} B is below the irreducible floor of {floor} B \
                 (the world tweet store cannot be spilled)"
            ),
            BudgetError::Exceeded {
                resident,
                budget,
                day,
            } => write!(
                f,
                "resident set of {resident} B exceeds the {budget} B budget after day {day} \
                 with every eligible partition already spilled"
            ),
            BudgetError::SpillFailed { day, attempts } => write!(
                f,
                "day {day} partition could not be durably spilled after {attempts} attempt(s)"
            ),
            BudgetError::Damaged { day, detail } => {
                write!(f, "day {day} spill partition damaged: {detail}")
            }
            BudgetError::ResumeMismatch(msg) => write!(f, "budget resume mismatch: {msg}"),
        }
    }
}

impl std::error::Error for BudgetError {}

/// Manifest entry for one spilled day-partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillPartition {
    /// Zero-based study day the partition covers.
    pub day: u32,
    /// Collected tweets in the partition.
    pub tweets: u64,
    /// Control tweets in the partition.
    pub control: u64,
    /// Size of the encoded partition file in bytes.
    pub encoded_bytes: u64,
    /// SHA-256 of the complete partition file.
    pub sha256: Vec<u8>,
}

persist_struct!(SpillPartition {
    day,
    tweets,
    control,
    encoded_bytes,
    sha256,
});

/// The budget accountant's persisted state (checkpoint format v6,
/// `CampaignState::budget`). Everything needed so a kill/resume under a
/// budget replays to byte-identical reports: the limit, the accounting
/// floor, the per-day encoded sizes (including spilled days), the spill
/// manifest, and the observability counters.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetState {
    /// Byte ceiling; `u64::MAX` encodes [`BudgetLimit::Min`].
    pub limit_bytes: u64,
    /// Whether the limit is the minimum-viable mode.
    pub min_mode: bool,
    /// Irreducible floor (world tweet store) in bytes.
    pub floor: u64,
    /// Encoded bytes of tweets collected on each completed day.
    pub day_tweet_bytes: Vec<u64>,
    /// Encoded bytes of control tweets collected on each completed day.
    pub day_control_bytes: Vec<u64>,
    /// Spilled day-partitions, ascending day (always a prefix `0..n`).
    pub manifest: Vec<SpillPartition>,
    /// Partitions evicted so far.
    pub evictions: u64,
    /// Partitions faulted back from disk so far.
    pub faults: u64,
    /// Total encoded bytes spilled.
    pub spilled_bytes: u64,
    /// Torn/damaged spill files detected (and recovered from).
    pub torn_detected: u64,
    /// Peak accounted resident bytes observed at any boundary.
    pub resident_peak: u64,
}

persist_struct!(BudgetState {
    limit_bytes,
    min_mode,
    floor,
    day_tweet_bytes,
    day_control_bytes,
    manifest,
    evictions,
    faults,
    spilled_bytes,
    torn_detected,
    resident_peak,
});

/// One spilled day-partition's payload: the day's append run of the
/// discovery tweet and control logs, wrapped in the standard snapshot
/// envelope on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct SpillPartitionData {
    /// Zero-based study day.
    pub day: u32,
    /// Tweets first collected on this day (global append order).
    pub tweets: Vec<CollectedTweet>,
    /// Control tweets collected on this day (global append order).
    pub control: Vec<Tweet>,
}

persist_struct!(SpillPartitionData {
    day,
    tweets,
    control,
});

// ---------------------------------------------------------------------------
// Spill ledger
// ---------------------------------------------------------------------------

/// What happened to a spill file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillIncidentKind {
    /// `write_atomic` returned an error (no space, rename failure).
    WriteFailed,
    /// The write reported success but the read-back did not match the
    /// encoded bytes — a torn or short write landed (or nothing did).
    TornDetected,
    /// A read returned damaged bytes (bit rot) and was retried.
    ReadDamaged,
    /// A rewrite after a detected incident verified successfully.
    Rewritten,
    /// The partition could not be durably spilled within the retry
    /// bound and was kept resident.
    KeptResident,
}

impl Persist for SpillIncidentKind {
    fn save(&self, w: &mut Writer) {
        w.put_u8(match self {
            SpillIncidentKind::WriteFailed => 0,
            SpillIncidentKind::TornDetected => 1,
            SpillIncidentKind::ReadDamaged => 2,
            SpillIncidentKind::Rewritten => 3,
            SpillIncidentKind::KeptResident => 4,
        });
    }
    fn load(
        r: &mut chatlens_checkpoint::Reader<'_>,
    ) -> Result<Self, chatlens_checkpoint::CheckpointError> {
        Ok(match r.get_u8()? {
            0 => SpillIncidentKind::WriteFailed,
            1 => SpillIncidentKind::TornDetected,
            2 => SpillIncidentKind::ReadDamaged,
            3 => SpillIncidentKind::Rewritten,
            4 => SpillIncidentKind::KeptResident,
            n => {
                return Err(chatlens_checkpoint::CheckpointError::Malformed(format!(
                    "unknown spill incident kind {n}"
                )))
            }
        })
    }
}

impl fmt::Display for SpillIncidentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SpillIncidentKind::WriteFailed => "write-failed",
            SpillIncidentKind::TornDetected => "torn-detected",
            SpillIncidentKind::ReadDamaged => "read-damaged",
            SpillIncidentKind::Rewritten => "rewritten",
            SpillIncidentKind::KeptResident => "kept-resident",
        })
    }
}

/// One entry in the spill ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct SpillIncident {
    /// The day-partition involved.
    pub day: u32,
    /// Partition file name.
    pub file: String,
    /// What happened.
    pub kind: SpillIncidentKind,
    /// 1-based attempt number within the bounded retry loop.
    pub attempt: u32,
}

persist_struct!(SpillIncident {
    day,
    file,
    kind,
    attempt,
});

/// Load the spill ledger from a spill directory (empty if absent).
pub fn load_spill_ledger(dir: &Path) -> Vec<SpillIncident> {
    load_from_file_with(&mut RealVfs, &dir.join(SPILL_LEDGER_FILE)).unwrap_or_default()
}

// ---------------------------------------------------------------------------
// MemoryBudget
// ---------------------------------------------------------------------------

/// Per-run budget statistics, surfaced by the CLI and the `mem` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetStats {
    /// The byte ceiling, `None` for [`BudgetLimit::Min`].
    pub limit: Option<u64>,
    /// Irreducible floor (world tweet store) in bytes.
    pub floor: u64,
    /// Accounted resident bytes at the final boundary.
    pub resident_final: u64,
    /// Peak accounted resident bytes at any boundary.
    pub resident_peak: u64,
    /// Total encoded bytes spilled.
    pub spilled_bytes: u64,
    /// Spilled day-partitions on disk.
    pub partitions: u64,
    /// Eviction operations performed.
    pub evictions: u64,
    /// Partitions faulted back from disk.
    pub faults: u64,
    /// Torn/damaged spill incidents detected.
    pub torn_detected: u64,
}

/// The memory-budget accountant: encoded-size accounting, deterministic
/// cold-partition eviction, verified spill I/O, transparent fault-back.
pub struct MemoryBudget {
    limit: BudgetLimit,
    dir: PathBuf,
    vfs: Box<dyn Vfs>,
    floor: u64,
    day_tweet_bytes: Vec<u64>,
    day_control_bytes: Vec<u64>,
    manifest: Vec<SpillPartition>,
    evictions: u64,
    faults: u64,
    spilled_bytes: u64,
    torn_detected: u64,
    resident_now: u64,
    resident_peak: u64,
    pending_incidents: Vec<SpillIncident>,
}

impl fmt::Debug for MemoryBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryBudget")
            .field("limit", &self.limit)
            .field("dir", &self.dir)
            .field("floor", &self.floor)
            .field("spilled_days", &self.manifest.len())
            .field("resident_now", &self.resident_now)
            .finish_non_exhaustive()
    }
}

impl MemoryBudget {
    /// Attach a budget to a fresh campaign. `floor` is the irreducible
    /// accounted size (the world tweet store's
    /// [`encoded_bytes`](chatlens_twitter::store::TweetStore::encoded_bytes)).
    /// Fails fast with [`BudgetError::TooSmall`] if the ceiling is
    /// below the floor.
    pub fn attach(
        policy: &BudgetPolicy,
        seed: u64,
        floor: u64,
    ) -> Result<MemoryBudget, BudgetError> {
        if let BudgetLimit::Bytes(limit) = policy.limit {
            if limit < floor {
                return Err(BudgetError::TooSmall {
                    budget: limit,
                    floor,
                });
            }
        }
        Ok(MemoryBudget {
            limit: policy.limit,
            dir: policy.dir.clone(),
            vfs: policy.vfs(seed),
            floor,
            day_tweet_bytes: Vec::new(),
            day_control_bytes: Vec::new(),
            manifest: Vec::new(),
            evictions: 0,
            faults: 0,
            spilled_bytes: 0,
            torn_detected: 0,
            resident_now: floor,
            resident_peak: floor,
            pending_incidents: Vec::new(),
        })
    }

    /// Rebuild the accountant from a v6 snapshot. The policy's limit
    /// must match the snapshot's (a budgeted snapshot resumed under a
    /// different ceiling would diverge from the uninterrupted run).
    pub fn resume(
        state: &BudgetState,
        policy: &BudgetPolicy,
        seed: u64,
    ) -> Result<MemoryBudget, BudgetError> {
        let snapshot_limit = if state.min_mode {
            BudgetLimit::Min
        } else {
            BudgetLimit::Bytes(state.limit_bytes)
        };
        if policy.limit != snapshot_limit {
            return Err(BudgetError::ResumeMismatch(format!(
                "snapshot was taken under {:?}, resume requested {:?}",
                snapshot_limit, policy.limit
            )));
        }
        Ok(MemoryBudget {
            limit: policy.limit,
            dir: policy.dir.clone(),
            vfs: policy.vfs(seed),
            floor: state.floor,
            day_tweet_bytes: state.day_tweet_bytes.clone(),
            day_control_bytes: state.day_control_bytes.clone(),
            manifest: state.manifest.clone(),
            evictions: state.evictions,
            faults: state.faults,
            spilled_bytes: state.spilled_bytes,
            torn_detected: state.torn_detected,
            resident_now: state.floor,
            resident_peak: state.resident_peak,
            pending_incidents: Vec::new(),
        })
    }

    /// Capture the persisted state for a checkpoint.
    pub fn state(&self) -> BudgetState {
        let (limit_bytes, min_mode) = match self.limit {
            BudgetLimit::Bytes(b) => (b, false),
            BudgetLimit::Min => (u64::MAX, true),
        };
        BudgetState {
            limit_bytes,
            min_mode,
            floor: self.floor,
            day_tweet_bytes: self.day_tweet_bytes.clone(),
            day_control_bytes: self.day_control_bytes.clone(),
            manifest: self.manifest.clone(),
            evictions: self.evictions,
            faults: self.faults,
            spilled_bytes: self.spilled_bytes,
            torn_detected: self.torn_detected,
            resident_peak: self.resident_peak,
        }
    }

    /// The spill manifest (ascending day).
    pub fn manifest(&self) -> &[SpillPartition] {
        &self.manifest
    }

    /// Current statistics.
    pub fn stats(&self) -> BudgetStats {
        BudgetStats {
            limit: match self.limit {
                BudgetLimit::Bytes(b) => Some(b),
                BudgetLimit::Min => None,
            },
            floor: self.floor,
            resident_final: self.resident_now,
            resident_peak: self.resident_peak,
            spilled_bytes: self.spilled_bytes,
            partitions: self.manifest.len() as u64,
            evictions: self.evictions,
            faults: self.faults,
            torn_detected: self.torn_detected,
        }
    }

    /// The budget counters as a metrics registry (the `budget.*` keys).
    /// Kept in the accountant's own registry, never the dataset's: the
    /// campaign report's counter digest is a frozen byte contract and a
    /// budgeted run must reproduce an unbudgeted run's bytes exactly.
    pub fn metrics(&self) -> Metrics {
        let mut m = Metrics::new();
        m.add(keys::BUDGET_RESIDENT_BYTES, self.resident_now);
        m.add(keys::BUDGET_RESIDENT_PEAK_BYTES, self.resident_peak);
        m.add(keys::BUDGET_SPILLED_BYTES, self.spilled_bytes);
        m.add(keys::BUDGET_EVICTIONS, self.evictions);
        m.add(keys::BUDGET_FAULTS, self.faults);
        m.add(keys::BUDGET_TORN_DETECTED, self.torn_detected);
        m
    }

    fn partition_path(&self, day: u32) -> PathBuf {
        self.dir.join(format!("day{day:03}.part"))
    }

    fn ledger(&mut self, day: u32, kind: SpillIncidentKind, attempt: u32) {
        let file = format!("day{day:03}.part");
        if matches!(
            kind,
            SpillIncidentKind::TornDetected | SpillIncidentKind::ReadDamaged
        ) {
            self.torn_detected += 1;
        }
        self.pending_incidents.push(SpillIncident {
            day,
            file,
            kind,
            attempt,
        });
    }

    /// Flush buffered incidents to `spill.ledger` (append semantics:
    /// read, extend, rewrite — like the chain recovery ledger, always
    /// on the real filesystem).
    fn flush_ledger(&mut self) {
        if self.pending_incidents.is_empty() {
            return;
        }
        let mut entries = load_spill_ledger(&self.dir);
        entries.append(&mut self.pending_incidents);
        let path = self.dir.join(SPILL_LEDGER_FILE);
        if let Err(e) = save_to_file_with(&mut RealVfs, &path, &entries) {
            eprintln!("# spill ledger write failed: {e}");
        }
    }

    /// Accounted resident bytes right now: floor + resident day
    /// partitions + the boundary charges passed to the last
    /// [`enforce`](Self::enforce).
    pub fn resident(&self) -> u64 {
        self.resident_now
    }

    fn resident_partitions(&self) -> u64 {
        let spilled = self.manifest.len();
        self.day_tweet_bytes[spilled..].iter().sum::<u64>()
            + self.day_control_bytes[spilled..].iter().sum::<u64>()
    }

    /// Day-boundary enforcement, called after each completed study day
    /// (and therefore never on the request hot path):
    ///
    /// 1. charge the just-completed day's appends at encoded size;
    /// 2. evict eligible cold partitions — all of them under
    ///    [`BudgetLimit::Min`], until the ceiling holds under
    ///    [`BudgetLimit::Bytes`];
    /// 3. if the ceiling still does not hold, refuse with a typed
    ///    [`BudgetError`] (never abort).
    pub fn enforce(
        &mut self,
        completed_days: u32,
        marks: &[DayMark],
        discovery: &mut Discovery,
        timeline_bytes: u64,
        fold_bytes: u64,
    ) -> Result<(), BudgetError> {
        debug_assert_eq!(marks.len(), completed_days as usize);
        // 1. Charge newly completed days (normally exactly one).
        while self.day_tweet_bytes.len() < completed_days as usize {
            let d = self.day_tweet_bytes.len();
            let (tw_lo, ct_lo) = if d == 0 {
                (0, 0)
            } else {
                (marks[d - 1].tweets as usize, marks[d - 1].control as usize)
            };
            let (tw_hi, ct_hi) = (marks[d].tweets as usize, marks[d].control as usize);
            let mut w = Writer::new();
            for ct in discovery.tweets.slice(tw_lo..tw_hi) {
                ct.save(&mut w);
            }
            self.day_tweet_bytes.push(w.len() as u64);
            let mut w = Writer::new();
            for tw in discovery.control.slice(ct_lo..ct_hi) {
                tw.save(&mut w);
            }
            self.day_control_bytes.push(w.len() as u64);
        }

        // 2. Evict cold partitions, coldest (lowest day) first. The
        // order is a pure function of campaign state: day indices,
        // mark cursors and pending-window days — never wall-clock,
        // never allocator behavior.
        let age_limit = completed_days.saturating_sub(RESIDENCY_DAYS);
        let eligible_end = match discovery.min_pending_window_day() {
            Some(d) => age_limit.min(d),
            None => age_limit,
        };
        let over = |resident: u64, limit: BudgetLimit| match limit {
            BudgetLimit::Bytes(b) => resident > b,
            BudgetLimit::Min => true,
        };
        let mut resident = self.floor + self.resident_partitions() + timeline_bytes + fold_bytes;
        let mut spill_stuck: Option<(u32, u32)> = None;
        while over(resident, self.limit) && (self.manifest.len() as u32) < eligible_end {
            let day = self.manifest.len() as u32;
            match self.spill_partition(day, marks, discovery) {
                Ok(()) => {
                    resident =
                        self.floor + self.resident_partitions() + timeline_bytes + fold_bytes;
                }
                Err(attempts) => {
                    // Keep the partition resident; the prefix property
                    // forbids skipping ahead to a warmer day.
                    self.ledger(day, SpillIncidentKind::KeptResident, attempts);
                    spill_stuck = Some((day, attempts));
                    break;
                }
            }
        }
        self.flush_ledger();
        self.resident_now = resident;
        self.resident_peak = self.resident_peak.max(resident);
        if let BudgetLimit::Bytes(b) = self.limit {
            if resident > b {
                if let Some((day, attempts)) = spill_stuck {
                    return Err(BudgetError::SpillFailed { day, attempts });
                }
                if (self.manifest.len() as u32) >= eligible_end {
                    return Err(BudgetError::Exceeded {
                        resident,
                        budget: b,
                        day: completed_days,
                    });
                }
            }
        }
        Ok(())
    }

    /// Spill one day-partition with verified, bounded-retry I/O. Only
    /// on a successful read-back verification are the items dropped
    /// from the resident log. Returns the attempt count on persistent
    /// failure.
    fn spill_partition(
        &mut self,
        day: u32,
        marks: &[DayMark],
        discovery: &mut Discovery,
    ) -> Result<(), u32> {
        let d = day as usize;
        let (tw_lo, ct_lo) = if d == 0 {
            (0, 0)
        } else {
            (marks[d - 1].tweets as usize, marks[d - 1].control as usize)
        };
        let (tw_hi, ct_hi) = (marks[d].tweets as usize, marks[d].control as usize);
        assert_eq!(
            tw_lo,
            discovery.tweets.base(),
            "spill must advance the contiguous cold prefix"
        );
        let data = SpillPartitionData {
            day,
            tweets: discovery.tweets.slice(tw_lo..tw_hi).to_vec(),
            control: discovery.control.slice(ct_lo..ct_hi).to_vec(),
        };
        let bytes = encode_snapshot(&data);
        let path = self.partition_path(day);
        let mut attempt = 0u32;
        while attempt < SPILL_ATTEMPTS {
            attempt += 1;
            if let Err(_e) = self.vfs.write_atomic(&path, &bytes) {
                self.ledger(day, SpillIncidentKind::WriteFailed, attempt);
                continue;
            }
            // Read back and verify before dropping anything from
            // memory. A read mismatch is either read-side bit rot (the
            // file is fine — retry the read) or a torn/short write
            // that landed (rewrite). Two reads disambiguate: bit rot
            // flips a bit in the returned buffer only.
            let mut verified = false;
            let mut torn = false;
            for _ in 0..2 {
                match self.vfs.read(&path) {
                    Ok(file) if file == bytes => {
                        verified = true;
                        break;
                    }
                    Ok(_) => {
                        torn = true;
                        self.ledger(day, SpillIncidentKind::ReadDamaged, attempt);
                    }
                    Err(_) => {
                        torn = true;
                        self.ledger(day, SpillIncidentKind::TornDetected, attempt);
                    }
                }
            }
            if verified {
                if attempt > 1 {
                    self.ledger(day, SpillIncidentKind::Rewritten, attempt);
                }
                discovery.tweets.spill_to(tw_hi);
                discovery.control.spill_to(ct_hi);
                self.manifest.push(SpillPartition {
                    day,
                    tweets: (tw_hi - tw_lo) as u64,
                    control: (ct_hi - ct_lo) as u64,
                    encoded_bytes: bytes.len() as u64,
                    sha256: sha256(&bytes).to_vec(),
                });
                self.evictions += 1;
                self.spilled_bytes += bytes.len() as u64;
                return Ok(());
            }
            if torn {
                self.ledger(day, SpillIncidentKind::TornDetected, attempt);
            }
        }
        Err(attempt)
    }

    /// Fault one spilled partition back from disk, verifying it
    /// against the manifest (checksum, counts). Damaged reads are
    /// retried (read-side bit rot leaves the file intact) and
    /// ledgered; a persistent mismatch is a typed error.
    pub fn read_partition(&mut self, day: u32) -> Result<SpillPartitionData, BudgetError> {
        let entry = self
            .manifest
            .iter()
            .find(|p| p.day == day)
            .cloned()
            .ok_or_else(|| BudgetError::Damaged {
                day,
                detail: "not in the spill manifest".into(),
            })?;
        let path = self.partition_path(day);
        let mut last: Option<String> = None;
        for attempt in 1..=SPILL_ATTEMPTS {
            let file = match self.vfs.read(&path) {
                Ok(f) => f,
                Err(e) => {
                    self.ledger(day, SpillIncidentKind::ReadDamaged, attempt);
                    last = Some(e.to_string());
                    continue;
                }
            };
            if sha256(&file).as_slice() != entry.sha256.as_slice() {
                self.ledger(day, SpillIncidentKind::ReadDamaged, attempt);
                last = Some("checksum mismatch".into());
                continue;
            }
            match decode_snapshot::<SpillPartitionData>(&file) {
                Ok(data) => {
                    if data.day != day
                        || data.tweets.len() as u64 != entry.tweets
                        || data.control.len() as u64 != entry.control
                    {
                        self.flush_ledger();
                        return Err(BudgetError::Damaged {
                            day,
                            detail: "manifest/count mismatch".into(),
                        });
                    }
                    self.faults += 1;
                    self.flush_ledger();
                    return Ok(data);
                }
                Err(e) => {
                    self.ledger(day, SpillIncidentKind::ReadDamaged, attempt);
                    last = Some(e.to_string());
                }
            }
        }
        self.flush_ledger();
        Err(BudgetError::Damaged {
            day,
            detail: last.unwrap_or_else(|| "unreadable".into()),
        })
    }

    /// Re-register the ids of spilled tweets and control tweets into
    /// the discovery dedup indexes after a resume. Each manifest
    /// partition is faulted exactly once, in day order, and the global
    /// append indices are reconstructed arithmetically.
    pub fn reindex_spilled(&mut self, discovery: &mut Discovery) -> Result<(), BudgetError> {
        let days: Vec<u32> = self.manifest.iter().map(|p| p.day).collect();
        let mut next_global = 0usize;
        for day in days {
            let data = self.read_partition(day)?;
            let ids = data
                .tweets
                .iter()
                .enumerate()
                .map(|(i, ct)| (ct.tweet.id.0, next_global + i))
                .collect::<Vec<_>>();
            next_global += data.tweets.len();
            let control_ids = data.control.iter().map(|t| t.id.0).collect::<Vec<_>>();
            discovery.index_spilled(ids, control_ids);
        }
        debug_assert_eq!(next_global, discovery.tweets.base());
        Ok(())
    }
}

/// Checkpoint-compatible error conversion for spill I/O plumbed
/// through checkpoint entry points.
impl From<CheckpointError> for BudgetError {
    fn from(e: CheckpointError) -> BudgetError {
        BudgetError::Damaged {
            day: u32::MAX,
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spillable_log_global_indexing() {
        let mut log = SpillableLog::from_vec(vec![10, 11, 12, 13, 14]);
        assert_eq!(log.len(), 5);
        assert_eq!(log.slice(1..3), &[11, 12]);
        log.spill_to(2);
        assert_eq!(log.len(), 5);
        assert_eq!(log.base(), 2);
        assert_eq!(log.get(1), None);
        assert_eq!(log.get(2), Some(&12));
        assert_eq!(log.get_mut(4), Some(&mut 14));
        assert_eq!(log.slice(2..5), &[12, 13, 14]);
        log.push(15);
        assert_eq!(log.len(), 6);
        assert_eq!(log.resident(), &[12, 13, 14, 15]);
        let v = log.view();
        assert_eq!(v.len(), 6);
        assert_eq!(v.slice(3..5), &[13, 14]);
        assert_eq!(v.truncated(4).len(), 4);
    }

    #[test]
    #[should_panic(expected = "spill boundary")]
    fn spillable_log_slice_below_base_panics() {
        let mut log = SpillableLog::from_vec(vec![1, 2, 3]);
        log.spill_to(2);
        let _ = log.slice(0..3);
    }

    #[test]
    #[should_panic(expected = "spilled to disk")]
    fn into_full_vec_panics_when_spilled() {
        let mut log = SpillableLog::from_vec(vec![1, 2, 3]);
        log.spill_to(1);
        let _ = log.into_full_vec();
    }

    #[test]
    fn budget_state_round_trips() {
        let state = BudgetState {
            limit_bytes: 1 << 20,
            min_mode: false,
            floor: 4096,
            day_tweet_bytes: vec![100, 200],
            day_control_bytes: vec![10, 20],
            manifest: vec![SpillPartition {
                day: 0,
                tweets: 3,
                control: 1,
                encoded_bytes: 111,
                sha256: vec![7; 32],
            }],
            evictions: 1,
            faults: 2,
            spilled_bytes: 111,
            torn_detected: 0,
            resident_peak: 5000,
        };
        let bytes = encode_snapshot(&state);
        let back: BudgetState = decode_snapshot(&bytes).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn too_small_budget_is_typed() {
        let policy = BudgetPolicy::new(BudgetLimit::Bytes(10), "/tmp/never-used");
        let err = MemoryBudget::attach(&policy, 1, 1000).unwrap_err();
        assert_eq!(
            err,
            BudgetError::TooSmall {
                budget: 10,
                floor: 1000
            }
        );
    }

    #[test]
    fn incident_kind_round_trips() {
        for kind in [
            SpillIncidentKind::WriteFailed,
            SpillIncidentKind::TornDetected,
            SpillIncidentKind::ReadDamaged,
            SpillIncidentKind::Rewritten,
            SpillIncidentKind::KeptResident,
        ] {
            let mut w = Writer::new();
            kind.save(&mut w);
            let bytes = w.into_bytes();
            let mut r = chatlens_checkpoint::Reader::new(&bytes);
            assert_eq!(SpillIncidentKind::load(&mut r).unwrap(), kind);
        }
    }
}
