//! The campaign orchestrator: wires discovery, monitoring, and joining to
//! one discrete-event timeline and runs the full 38-day study.
//!
//! Daily rhythm (§3):
//! * every hour at :00 — Search API round (six hosts, paginated);
//! * every hour at :30 — Streaming API drain for the elapsed hour;
//! * daily at 22:40 — 1% sample drain into the control dataset;
//! * daily at 23:10 — monitor round over every known, unrevoked group
//!   (placed late so groups discovered earlier the same day get their
//!   first observation on their discovery day, as in §3.2);
//! * once, on `join_day` at 12:00 — join the sampled groups;
//! * once, at the end of the final day — collect member lists, profiles
//!   and message histories from every joined group.

use crate::dataset::Dataset;
use crate::discovery::Discovery;
use crate::joiner::Joiner;
use crate::monitor::Monitor;
use crate::net::Net;
use crate::pii::PiiStore;
use chatlens_platforms::id::PlatformKind;
use chatlens_simnet::fault::FaultInjector;
use chatlens_simnet::metrics::Metrics;
use chatlens_simnet::par::Pool;
use chatlens_simnet::rng::Rng;
use chatlens_simnet::time::SimDuration;
use chatlens_simnet::Engine;
use chatlens_workload::{Ecosystem, ScenarioConfig};

/// Knobs of the collection campaign itself (as opposed to the world it
/// observes). Defaults follow the paper.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Zero-based study day on which groups are joined.
    pub join_day: u32,
    /// Hours between Search API rounds (1 = the paper's hourly cadence).
    pub search_interval_hours: u32,
    /// Days between monitor rounds (1 = daily, §3.2).
    pub monitor_interval_days: u32,
    /// Use the Search API feed (ablation: the paper merges both feeds
    /// because each alone is incomplete).
    pub use_search: bool,
    /// Use the Streaming API feed.
    pub use_stream: bool,
    /// How the join sample is drawn (§3.3 uses uniform sampling).
    pub join_strategy: crate::joiner::JoinStrategy,
    /// Transport fault model for every client.
    pub faults: FaultInjector,
    /// Seed for campaign-side randomness (join sampling, client jitter) —
    /// separate from the world seed so the same world can be re-collected
    /// differently.
    pub seed: u64,
    /// Worker threads for the deterministic parallel runtime
    /// ([`chatlens_simnet::par::Pool`]). Only wall-clock time depends on
    /// this; the dataset is bit-identical at any value.
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            join_day: 10,
            search_interval_hours: 1,
            monitor_interval_days: 1,
            use_search: true,
            use_stream: true,
            join_strategy: crate::joiner::JoinStrategy::default(),
            faults: FaultInjector::new(0.01, 0.005),
            seed: 0xC011_EC70,
            threads: default_threads(),
        }
    }
}

/// Default worker-thread count: 1, unless overridden by the
/// `CHATLENS_THREADS` environment variable. Because the parallel runtime
/// is deterministic, CI runs the whole test suite under
/// `CHATLENS_THREADS=8` and every exact-value assertion must still hold.
fn default_threads() -> usize {
    std::env::var("CHATLENS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Campaign events on the virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Search,
    StreamDrain,
    SampleDrain,
    Monitor { day: u32 },
    Join,
    Collect,
}

/// Run the full study over a freshly built ecosystem with default
/// campaign settings.
pub fn run_study(scenario: ScenarioConfig) -> Dataset {
    run_study_with(scenario, CampaignConfig::default())
}

/// Run the full study with explicit campaign settings. Returns the
/// assembled [`Dataset`].
pub fn run_study_with(scenario: ScenarioConfig, campaign: CampaignConfig) -> Dataset {
    let mut eco = Ecosystem::build(scenario);
    run_study_on(&mut eco, campaign)
}

/// Run the campaign against an existing ecosystem (used by ablation
/// benches that re-collect the same world under different settings; the
/// ecosystem's materialized histories are deterministic per group, so
/// re-use is safe).
pub fn run_study_on(eco: &mut Ecosystem, campaign: CampaignConfig) -> Dataset {
    let window = eco.window;
    let start = window.start_time();
    let end = window.end_time();
    let mut net = Net::new(campaign.seed, start, campaign.faults);
    let mut rng = Rng::new(campaign.seed ^ 0x9E37_79B9);
    let mut discovery = Discovery::new(start);
    let pool = Pool::new(campaign.threads);
    let mut monitor = Monitor::with_pool(pool);
    let mut joiner = Joiner::new();
    let mut pii = PiiStore::new();
    let mut metrics = Metrics::new();
    let mut engine: Engine<Ev> = Engine::new(start);

    // Schedule the whole campaign up front (the event mix is static).
    let total_hours = window.num_days() * 24;
    for h in 0..total_hours {
        if campaign.use_search && h % u64::from(campaign.search_interval_hours.max(1)) == 0 {
            engine.schedule_at(start + SimDuration::hours(h), Ev::Search);
        }
        if campaign.use_stream {
            engine.schedule_at(
                start + SimDuration::hours(h) + SimDuration::minutes(30),
                Ev::StreamDrain,
            );
        }
    }
    for d in 0..window.num_days() {
        engine.schedule_at(
            start + SimDuration::days(d) + SimDuration::hours(22) + SimDuration::minutes(40),
            Ev::SampleDrain,
        );
        if d % u64::from(campaign.monitor_interval_days.max(1)) == 0 {
            engine.schedule_at(
                start + SimDuration::days(d) + SimDuration::hours(23) + SimDuration::minutes(10),
                Ev::Monitor { day: d as u32 },
            );
        }
    }
    engine.schedule_at(
        start + SimDuration::days(u64::from(campaign.join_day)) + SimDuration::hours(12),
        Ev::Join,
    );
    engine.schedule_at(
        end.checked_sub(SimDuration::minutes(20)).expect("window"),
        Ev::Collect,
    );

    engine.run_until(end, |eng, ev| {
        let now = eng.now();
        match ev {
            Ev::Search => {
                metrics.incr("campaign.search_rounds");
                metrics.time_stage("search", || {
                    discovery
                        .run_search(&mut net, eco, now)
                        .expect("search round")
                });
                metrics.observe(
                    "discovery.groups_known",
                    discovery.group_count() as f64,
                    &[1e2, 1e3, 1e4, 1e5, 1e6],
                );
            }
            Ev::StreamDrain => {
                metrics.incr("campaign.stream_drains");
                metrics.time_stage("stream", || {
                    discovery
                        .drain_stream(&mut net, eco, now)
                        .expect("stream drain")
                });
            }
            Ev::SampleDrain => {
                metrics.incr("campaign.sample_drains");
                metrics.time_stage("sample", || {
                    discovery
                        .drain_sample(&mut net, eco, now)
                        .expect("sample drain")
                });
            }
            Ev::Monitor { day } => {
                metrics.incr("campaign.monitor_rounds");
                metrics.time_stage("monitor", || {
                    monitor
                        .run_day(&mut net, eco, &discovery, now, day, Some(&mut pii))
                        .expect("monitor round")
                });
            }
            Ev::Join => {
                metrics.time_stage("join", || {
                    for kind in PlatformKind::ALL {
                        let budget = eco.config.join_budget_scaled(kind);
                        let timelines = &monitor.timelines;
                        joiner
                            .join_phase_with(
                                &mut net,
                                eco,
                                &discovery,
                                kind,
                                budget,
                                now,
                                &mut rng,
                                campaign.join_strategy,
                                &|key| {
                                    timelines
                                        .get(key)
                                        .and_then(|t| t.size_span())
                                        .map(|(_, last)| last)
                                },
                            )
                            .expect("join phase");
                    }
                });
            }
            Ev::Collect => {
                metrics.time_stage("collect", || {
                    joiner
                        .collect_phase(&mut net, eco, now, &mut pii)
                        .expect("collect phase")
                });
            }
        }
    });

    metrics.add("transport.attempts", net.total_attempts());
    metrics.add("discovery.tweets_collected", discovery.tweets.len() as u64);
    metrics.add("discovery.groups_discovered", discovery.groups.len() as u64);
    metrics.add("discovery.failed_requests", discovery.failed_requests);
    metrics.add("join.dead_at_join", joiner.dead_at_join);
    metrics.add("join.joined_groups", joiner.joined.len() as u64);
    metrics.add("join.failed_fetches", joiner.failed_fetches);

    let mut ds = Dataset::assemble(window, discovery, monitor.timelines, joiner, pii);
    ds.metrics = metrics;
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The full tiny campaign is the expensive fixture here; run it once
    /// and share it across tests.
    fn tiny_dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| run_study(ScenarioConfig::tiny()))
    }

    #[test]
    fn full_campaign_produces_everything() {
        let ds = tiny_dataset();
        assert!(!ds.tweets.is_empty());
        assert!(!ds.control.is_empty());
        assert!(!ds.groups.is_empty());
        assert!(!ds.timelines.is_empty());
        assert!(!ds.joined.is_empty());
        assert!(ds.bot_join_rejected);
        assert!(ds.pii.wa_total_phones() > 0);
        // Every platform is represented.
        for kind in PlatformKind::ALL {
            let s = ds.summary(kind);
            assert!(s.tweets > 0, "{kind} tweets");
            assert!(s.group_urls > 0, "{kind} urls");
            assert!(s.joined_groups > 0, "{kind} joined");
            assert!(s.messages > 0, "{kind} messages");
        }
    }

    #[test]
    fn discovery_covers_most_of_the_world() {
        let ds = tiny_dataset();
        let cfg = ScenarioConfig::tiny();
        for kind in PlatformKind::ALL {
            let expected = cfg.scaled(cfg.platform(kind).n_group_urls) as f64;
            let found = ds.summary(kind).group_urls as f64;
            let coverage = found / expected;
            assert!(
                coverage > 0.9,
                "{kind}: discovered {found} of {expected} ({coverage:.2})"
            );
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = run_study(ScenarioConfig::at_scale(0.003));
        let b = run_study(ScenarioConfig::at_scale(0.003));
        assert_eq!(a.tweets.len(), b.tweets.len());
        assert_eq!(a.groups.len(), b.groups.len());
        assert_eq!(a.joined.len(), b.joined.len());
        assert_eq!(a.pii.wa_total_phones(), b.pii.wa_total_phones());
        assert_eq!(a.totals(), b.totals());
    }

    #[test]
    fn thread_count_never_changes_the_dataset() {
        let run = |threads: usize| {
            run_study_with(
                ScenarioConfig::at_scale(0.003),
                CampaignConfig {
                    threads,
                    ..CampaignConfig::default()
                },
            )
        };
        let serial = run(1);
        // Stage timings were recorded (values are wall-clock and therefore
        // uncomparable, but the counters must exist).
        assert!(serial.metrics.get("stage.search.runs") > 0);
        assert!(serial.metrics.get("stage.monitor.runs") > 0);
        for threads in [2, 8] {
            let par = run(threads);
            assert_eq!(par.totals(), serial.totals(), "{threads} threads");
            assert_eq!(par.tweets.len(), serial.tweets.len());
            assert_eq!(par.timelines, serial.timelines, "{threads} threads");
            assert_eq!(
                par.pii.wa_total_phones(),
                serial.pii.wa_total_phones(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn joined_budgets_respected() {
        let ds = tiny_dataset();
        let cfg = ScenarioConfig::tiny();
        for kind in PlatformKind::ALL {
            let budget = cfg.join_budget_scaled(kind);
            let joined = ds.summary(kind).joined_groups;
            assert!(joined <= budget, "{kind}: {joined} > {budget}");
        }
    }

    #[test]
    fn monitor_saw_discord_die_young() {
        let ds = tiny_dataset();
        let dc: Vec<_> = ds
            .groups
            .iter()
            .filter(|g| g.platform == PlatformKind::Discord)
            .collect();
        let dead_on_arrival = dc
            .iter()
            .filter(|g| ds.timeline_of(g).is_some_and(|t| t.dead_on_arrival()))
            .count() as f64
            / dc.len() as f64;
        assert!(
            dead_on_arrival > 0.4,
            "Discord dead-on-arrival share {dead_on_arrival}"
        );
    }
}
