//! The campaign orchestrator: wires discovery, monitoring, and joining to
//! one discrete-event timeline and runs the full 38-day study.
//!
//! Daily rhythm (§3):
//! * every hour at :00 — Search API round (six hosts, paginated);
//! * every hour at :30 — Streaming API drain for the elapsed hour;
//! * daily at 22:40 — 1% sample drain into the control dataset;
//! * daily at 23:10 — monitor round over every known, unrevoked group
//!   (placed late so groups discovered earlier the same day get their
//!   first observation on their discovery day, as in §3.2);
//! * once, on `join_day` at 12:00 — join the sampled groups;
//! * once, at the end of the final day — collect member lists, profiles
//!   and message histories from every joined group.
//!
//! # Checkpointing
//!
//! The campaign advances one study day at a time (an internal `Runner`
//! owns the event loop), and a day boundary is a *quiescent point*: no
//! event is ever scheduled in the final second of a day, so the whole
//! mutable state of the campaign is capturable there as a
//! [`CampaignState`]. [`run_study_checkpointed`] saves one snapshot per
//! [`CheckpointPolicy`] interval (and on unwind, if configured);
//! [`resume_study`] rebuilds the world from the scenario, replays the
//! delta, and continues — producing a dataset byte-identical to an
//! uninterrupted run.
//!
//! # Incremental analysis
//!
//! The `*_folded` entry points thread a [`FoldDriver`] through the day
//! loop: after every completed day the driver hands each registered
//! [`DayFold`](crate::fold::DayFold) a borrowed slice of the day's
//! appends, so analyses maintain compact per-day state instead of
//! replaying history at campaign end. Folded state rides inside the
//! snapshot (`CampaignState::folds`), making incremental runs
//! killable/resumable like batch runs — `tests/fold_parity.rs` proves
//! the final report fragments byte-identical either way.

use crate::budget::{BudgetError, BudgetPolicy, BudgetStats, MemoryBudget};
use crate::dataset::{
    render_campaign_report, Dataset, PlatformSummary, ReportInputs, TweetRollupBuilder,
};
use crate::discovery::Discovery;
use crate::fold::{DayMark, DayParts, FoldDriver};
use crate::joiner::Joiner;
use crate::monitor::Monitor;
use crate::net::Net;
use crate::pii::PiiStore;
use crate::state::{
    CampaignState, DiscoveryState, EngineState, JoinerState, MonitorState, PiiState,
};
use chatlens_checkpoint::{
    chain, save_to_file_with, CheckpointError, FaultVfs, RealVfs, Recovered, Vfs,
};
use chatlens_platforms::id::PlatformKind;
use chatlens_simnet::fault::{
    CorruptionProfile, DiskFaultProfile, FaultInjector, FaultProfile, FaultSchedule, OutageSpec,
};
use chatlens_simnet::metrics::{keys, Metrics};
use chatlens_simnet::par::Pool;
use chatlens_simnet::rng::Rng;
use chatlens_simnet::time::{SimDuration, SimTime, StudyWindow};
use chatlens_simnet::Engine;
use chatlens_workload::{Ecosystem, ScenarioConfig};
use std::fmt;
use std::path::PathBuf;

/// Knobs of the collection campaign itself (as opposed to the world it
/// observes). Defaults follow the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Zero-based study day on which groups are joined.
    pub join_day: u32,
    /// Hours between Search API rounds (1 = the paper's hourly cadence).
    pub search_interval_hours: u32,
    /// Days between monitor rounds (1 = daily, §3.2).
    pub monitor_interval_days: u32,
    /// Use the Search API feed (ablation: the paper merges both feeds
    /// because each alone is incomplete).
    pub use_search: bool,
    /// Use the Streaming API feed.
    pub use_stream: bool,
    /// How the join sample is drawn (§3.3 uses uniform sampling).
    pub join_strategy: crate::joiner::JoinStrategy,
    /// Transport fault model for every client.
    pub faults: FaultInjector,
    /// Correlated-failure profile layered over `faults`: `Calm` is the
    /// plain i.i.d. model (bit-identical to the pre-profile behavior),
    /// `Bursty` adds a Gilbert–Elliott bad-state chain, `Outage` also
    /// schedules service blackouts (explicit via `outages`, or the stock
    /// storm when none are given).
    pub profile: FaultProfile,
    /// Explicit per-service outage windows, in [`SERVICE_NAMES`] order
    /// (Twitter, WhatsApp, Telegram, Discord). `None` = no scheduled
    /// outage for that service.
    ///
    /// [`SERVICE_NAMES`]: crate::net::SERVICE_NAMES
    pub outages: [Option<OutageSpec>; 4],
    /// Payload-corruption regime (`repro run --corruption`), orthogonal
    /// to `profile`: faults shape whether responses arrive, corruption
    /// shapes what arrives inside the successful ones. `Calm` draws
    /// nothing from any RNG, so it is bit-identical to older builds.
    pub corruption: CorruptionProfile,
    /// Seed for campaign-side randomness (join sampling, client jitter) —
    /// separate from the world seed so the same world can be re-collected
    /// differently.
    pub seed: u64,
    /// Worker threads for the deterministic parallel runtime
    /// ([`chatlens_simnet::par::Pool`]). Only wall-clock time depends on
    /// this; the dataset is bit-identical at any value.
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            join_day: 10,
            search_interval_hours: 1,
            monitor_interval_days: 1,
            use_search: true,
            use_stream: true,
            join_strategy: crate::joiner::JoinStrategy::default(),
            faults: FaultInjector::new(0.01, 0.005),
            profile: FaultProfile::Calm,
            outages: [None; 4],
            corruption: CorruptionProfile::Calm,
            seed: 0xC011_EC70,
            threads: default_threads(),
        }
    }
}

/// Derive the four per-service [`FaultSchedule`]s from the campaign
/// knobs. Used by both the fresh and the restored [`Runner`] paths, so a
/// resumed campaign rebuilds exactly the schedules the snapshot ran
/// under (the schedules themselves are pure config, not state).
///
/// Under [`FaultProfile::Outage`] with no explicit `outages` specs, the
/// stock storm applies: a 3-day WhatsApp blackout starting day 12 and a
/// 2-day Discord credential ban starting day 20.
fn fault_schedules(campaign: &CampaignConfig, start: SimTime) -> [FaultSchedule; 4] {
    let mut specs = campaign.outages;
    if campaign.profile == FaultProfile::Outage && specs.iter().all(Option::is_none) {
        specs[1] = Some(OutageSpec {
            start_day: 12,
            days: 3,
            ban: false,
        });
        specs[3] = Some(OutageSpec {
            start_day: 20,
            days: 2,
            ban: true,
        });
    }
    specs.map(|spec| FaultSchedule {
        base: campaign.faults,
        burst: campaign.profile.burst(),
        outages: spec.iter().map(|s| s.window(start)).collect(),
    })
}

/// Default worker-thread count: 1, unless overridden by the
/// `CHATLENS_THREADS` environment variable. Because the parallel runtime
/// is deterministic, CI runs the whole test suite under
/// `CHATLENS_THREADS=8` and every exact-value assertion must still hold.
fn default_threads() -> usize {
    std::env::var("CHATLENS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Campaign events on the virtual timeline. Public because snapshots
/// persist the pending event queue (see [`crate::state`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignEvent {
    /// Hourly Search API round over the six query hosts.
    Search,
    /// Half-hourly Streaming API drain.
    StreamDrain,
    /// Daily 1%-sample drain into the control dataset.
    SampleDrain,
    /// Daily monitor round; carries the zero-based study day.
    Monitor {
        /// Zero-based study day of this round.
        day: u32,
    },
    /// The one-time join phase on `join_day`.
    Join,
    /// The end-of-study collection pass over joined groups.
    Collect,
    /// Daily gap-aware backfill: retry queued stream/sample windows and
    /// the day's failed monitor fetches; carries the zero-based study day.
    Backfill {
        /// Zero-based study day of this round.
        day: u32,
    },
}

/// When and where to write snapshots during a checkpointed run.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Directory snapshots are written into (created on first save).
    pub dir: PathBuf,
    /// Save every N completed study days; `0` disables interval saves.
    pub every_days: u32,
    /// Also save (best-effort) if the campaign unwinds mid-run — a panic
    /// in a handler, for instance — so the run is resumable from the last
    /// completed day rather than its last interval snapshot.
    pub on_drop: bool,
    /// Which storage fault regime snapshot I/O runs under. `Calm` (the
    /// default) is the real filesystem; `Flaky`/`Torn` route saves and
    /// loads through a deterministic [`FaultVfs`] whose injected damage
    /// the chain-recovery resume path must survive.
    pub disk_fault: DiskFaultProfile,
}

impl CheckpointPolicy {
    /// Save into `dir` after every completed day, and on unwind.
    pub fn daily(dir: impl Into<PathBuf>) -> CheckpointPolicy {
        CheckpointPolicy {
            dir: dir.into(),
            every_days: 1,
            on_drop: true,
            disk_fault: DiskFaultProfile::Calm,
        }
    }

    /// Path of the snapshot written after `day` completed days.
    pub fn snapshot_path(&self, day: u32) -> PathBuf {
        self.dir.join(format!("day{day:03}.ckpt"))
    }

    /// The filesystem snapshot I/O goes through under this policy: the
    /// real one under `Calm`, a deterministic fault injector seeded from
    /// the campaign seed (via the registered `("checkpoint", "disk")`
    /// stream) otherwise.
    pub fn vfs(&self, seed: u64) -> Box<dyn Vfs> {
        match self.disk_fault {
            DiskFaultProfile::Calm => Box::new(RealVfs),
            profile => Box::new(FaultVfs::new(seed, profile.rates())),
        }
    }
}

/// Run the full study over a freshly built ecosystem with default
/// campaign settings.
pub fn run_study(scenario: ScenarioConfig) -> Dataset {
    run_study_with(scenario, CampaignConfig::default())
}

/// Run the full study with explicit campaign settings. Returns the
/// assembled [`Dataset`].
pub fn run_study_with(scenario: ScenarioConfig, campaign: CampaignConfig) -> Dataset {
    let mut eco = Ecosystem::build(scenario);
    run_study_on(&mut eco, campaign)
}

/// Run the campaign against an existing ecosystem (used by ablation
/// benches that re-collect the same world under different settings; the
/// ecosystem's materialized histories are deterministic per group, so
/// re-use is safe).
pub fn run_study_on(eco: &mut Ecosystem, campaign: CampaignConfig) -> Dataset {
    let mut runner = Runner::new(eco.window, campaign);
    let days = eco.window.num_days() as u32;
    while runner.day < days {
        runner.step_day(eco);
    }
    runner.finish(eco)
}

/// Run the full study, saving a [`CampaignState`] snapshot per the
/// policy. The result is identical to [`run_study_with`]; only the
/// snapshot side effects differ. Fails only on snapshot I/O.
pub fn run_study_checkpointed(
    scenario: ScenarioConfig,
    campaign: CampaignConfig,
    policy: &CheckpointPolicy,
) -> Result<Dataset, CheckpointError> {
    let eco = Ecosystem::build(scenario);
    let runner = Runner::new(eco.window, campaign);
    run_guarded(runner, eco, policy, None)
}

/// Run a checkpointed campaign but halt cleanly after `days` completed
/// study days, leaving the snapshot chain (and nothing else) on disk.
/// Returns the number of days actually completed. This is the
/// deterministic "kill at a day boundary" behind `repro run
/// --halt-after-day`, which the crash-storm smoke uses to interrupt a
/// campaign mid-flight without racing a real signal.
pub fn run_study_days_checkpointed(
    scenario: ScenarioConfig,
    campaign: CampaignConfig,
    policy: &CheckpointPolicy,
    days: u32,
) -> Result<u32, CheckpointError> {
    let eco = Ecosystem::build(scenario);
    let runner = Runner::new(eco.window, campaign);
    let until = days.min(eco.window.num_days() as u32);
    let (runner, _eco) = run_guarded_until(runner, eco, policy, None, until)?;
    Ok(runner.day)
}

/// Walk the checkpoint chain in `policy.dir` backwards to the newest
/// valid snapshot (see [`chain::recover_latest`]), persisting every
/// skipped link into the directory's recovery ledger. Snapshot reads go
/// through the policy's (possibly fault-injected) filesystem; the ledger
/// append always goes through the real one, so the fault domain cannot
/// erase its own audit trail. `up_to` bounds the walk ("resume as of day
/// N"); `None` recovers from the newest on-disk evidence. A `Recovered`
/// with `state: None` means no link survived — start fresh.
pub fn recover_latest_state(
    policy: &CheckpointPolicy,
    seed: u64,
    up_to: Option<u32>,
) -> Result<Recovered<CampaignState>, CheckpointError> {
    let mut vfs = policy.vfs(seed);
    let recovered = chain::recover_latest::<CampaignState>(vfs.as_mut(), &policy.dir, up_to)?;
    chain::append_ledger(&policy.dir, &recovered.skipped)?;
    Ok(recovered)
}

/// Resume a snapshotted campaign and run it to completion. The returned
/// dataset is byte-identical to the uninterrupted run's (modulo the
/// wall-clock `.micros` metrics, which [`Metrics::strip_wall_clock`]
/// normalizes).
pub fn resume_study(state: &CampaignState) -> Dataset {
    let (mut eco, mut runner) = rebuild(state);
    let days = runner.window.num_days() as u32;
    while runner.day < days {
        runner.step_day(&mut eco);
    }
    runner.finish(&mut eco)
}

/// Resume a snapshotted campaign, advance at most `days` study days, and
/// return the new snapshot state. Building block for the equivalence
/// tests (resume day N, run one day, compare against the day-N+1
/// snapshot of an uninterrupted run).
pub fn resume_study_days(state: &CampaignState, days: u32) -> CampaignState {
    let (mut eco, mut runner) = rebuild(state);
    let total = runner.window.num_days() as u32;
    let target = runner.day.saturating_add(days).min(total);
    while runner.day < target {
        runner.step_day(&mut eco);
    }
    runner.state(&eco)
}

/// Resume a snapshotted campaign and run it to completion with snapshot
/// saves per the policy (i.e. a resumed run is itself resumable).
pub fn resume_study_checkpointed(
    state: &CampaignState,
    policy: &CheckpointPolicy,
) -> Result<Dataset, CheckpointError> {
    let (eco, runner) = rebuild(state);
    run_guarded(runner, eco, policy, None)
}

/// Why a budgeted (and possibly checkpointed) campaign refused to
/// continue. Both arms are typed refusals — a budgeted campaign
/// degrades (spill, then refuse) and never aborts.
#[derive(Debug)]
pub enum StudyError {
    /// Snapshot I/O failed under a non-tolerant disk-fault profile.
    Checkpoint(CheckpointError),
    /// The memory accountant refused: ceiling below the floor,
    /// un-evictable working set over the ceiling, or damaged spill data.
    Budget(BudgetError),
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            StudyError::Budget(e) => write!(f, "budget: {e}"),
        }
    }
}

impl std::error::Error for StudyError {}

impl From<CheckpointError> for StudyError {
    fn from(e: CheckpointError) -> StudyError {
        StudyError::Checkpoint(e)
    }
}

impl From<BudgetError> for StudyError {
    fn from(e: BudgetError) -> StudyError {
        StudyError::Budget(e)
    }
}

/// The output of a budgeted campaign. There is no [`Dataset`]: a
/// budgeted run streams its report from spilled partitions plus the
/// resident tail instead of materializing the full tweet log, so the
/// report (byte-identical to the unbudgeted run's) and the Table 2
/// totals are the deliverables, with the accountant's final statistics
/// alongside.
#[derive(Debug)]
pub struct BudgetedRun {
    /// The canonical campaign report — byte-identical to
    /// [`Dataset::campaign_report`] of an unbudgeted run.
    pub report: String,
    /// Table 2 bottom row.
    pub totals: PlatformSummary,
    /// Final accountant statistics (resident peak, spill volume, …).
    pub stats: BudgetStats,
    /// The `budget.*` metric registry (kept out of the report's frozen
    /// counter digest).
    pub metrics: Metrics,
}

/// Run the full study under a hard memory budget: day partitions of the
/// collected logs are spilled coldest-first through the budget policy's
/// (possibly fault-injected) filesystem whenever the accounted resident
/// size exceeds the ceiling, and the report is streamed at the end. The
/// report is byte-identical to [`run_study_with`]'s
/// [`Dataset::campaign_report`].
pub fn run_study_budgeted(
    scenario: ScenarioConfig,
    campaign: CampaignConfig,
    budget: &BudgetPolicy,
) -> Result<BudgetedRun, StudyError> {
    let eco = Ecosystem::build(scenario);
    let mut runner = Runner::new(eco.window, campaign);
    runner.attach_budget(budget, &eco)?;
    let days = eco.window.num_days() as u32;
    let (runner, mut eco) = run_budgeted_until(runner, eco, None, days)?;
    Ok(runner.finish_budgeted(&mut eco)?)
}

/// [`run_study_budgeted`] with snapshot saves per the checkpoint policy.
/// Snapshots carry the accountant's state (checkpoint format v6), so a
/// killed budgeted run resumes — under the same budget — to a
/// byte-identical report.
pub fn run_study_budgeted_checkpointed(
    scenario: ScenarioConfig,
    campaign: CampaignConfig,
    policy: &CheckpointPolicy,
    budget: &BudgetPolicy,
) -> Result<BudgetedRun, StudyError> {
    let eco = Ecosystem::build(scenario);
    let mut runner = Runner::new(eco.window, campaign);
    runner.attach_budget(budget, &eco)?;
    let days = eco.window.num_days() as u32;
    let (runner, mut eco) = run_budgeted_until(runner, eco, Some(policy), days)?;
    Ok(runner.finish_budgeted(&mut eco)?)
}

/// Run a budgeted, checkpointed campaign but halt cleanly after `days`
/// completed study days (the budgeted `--halt-after-day`). Returns the
/// number of days actually completed.
pub fn run_study_days_budgeted(
    scenario: ScenarioConfig,
    campaign: CampaignConfig,
    policy: &CheckpointPolicy,
    budget: &BudgetPolicy,
    days: u32,
) -> Result<u32, StudyError> {
    let eco = Ecosystem::build(scenario);
    let mut runner = Runner::new(eco.window, campaign);
    runner.attach_budget(budget, &eco)?;
    let until = days.min(eco.window.num_days() as u32);
    let (runner, _eco) = run_budgeted_until(runner, eco, Some(policy), until)?;
    Ok(runner.day)
}

/// Resume a budgeted campaign from a v6 snapshot and run it to
/// completion (no further snapshot saves). The budget policy must carry
/// the snapshot's ceiling ([`BudgetError::ResumeMismatch`] otherwise);
/// spilled-partition dedup indexes are rebuilt by faulting each
/// manifest partition exactly once.
pub fn resume_study_budgeted(
    state: &CampaignState,
    budget: &BudgetPolicy,
) -> Result<BudgetedRun, StudyError> {
    let (eco, runner) = rebuild_budgeted(state, budget)?;
    let days = runner.window.num_days() as u32;
    let (runner, mut eco) = run_budgeted_until(runner, eco, None, days)?;
    Ok(runner.finish_budgeted(&mut eco)?)
}

/// [`resume_study_budgeted`] with snapshot saves per the checkpoint
/// policy (a resumed budgeted run is itself resumable).
pub fn resume_study_budgeted_checkpointed(
    state: &CampaignState,
    policy: &CheckpointPolicy,
    budget: &BudgetPolicy,
) -> Result<BudgetedRun, StudyError> {
    let (eco, runner) = rebuild_budgeted(state, budget)?;
    let days = runner.window.num_days() as u32;
    let (runner, mut eco) = run_budgeted_until(runner, eco, Some(policy), days)?;
    Ok(runner.finish_budgeted(&mut eco)?)
}

/// [`rebuild`] plus budget-accountant restoration: resume the
/// accountant from the snapshot's budget state and re-register the
/// spilled tweet/control ids into the discovery dedup indexes.
fn rebuild_budgeted(
    state: &CampaignState,
    budget: &BudgetPolicy,
) -> Result<(Ecosystem, Runner), StudyError> {
    let (eco, mut runner) = rebuild(state);
    let bs = state.budget.as_ref().ok_or_else(|| {
        StudyError::Budget(BudgetError::ResumeMismatch(
            "snapshot carries no budget state: it was written by an unbudgeted run; \
             resume it without --mem-budget"
                .into(),
        ))
    })?;
    let mut accountant = MemoryBudget::resume(bs, budget, runner.campaign.seed)?;
    accountant.reindex_spilled(&mut runner.discovery)?;
    runner.budget = Some(accountant);
    Ok((eco, runner))
}

/// The budgeted day loop: step, enforce the budget at the day boundary
/// (spill first, typed refusal only if spilling cannot satisfy the
/// ceiling), then snapshot per the policy. Mirrors [`run_guarded_until`]
/// without the unwind guard — budgeted runs stop at clean boundaries or
/// refuse with a typed error, never mid-day.
fn run_budgeted_until(
    mut runner: Runner,
    mut eco: Ecosystem,
    policy: Option<&CheckpointPolicy>,
    until: u32,
) -> Result<(Runner, Ecosystem), StudyError> {
    let seed = runner.campaign.seed;
    let mut vfs = policy.map(|p| p.vfs(seed));
    while runner.day < until {
        runner.step_day(&mut eco);
        runner.enforce_budget(0)?;
        if let (Some(policy), Some(vfs)) = (policy, vfs.as_mut()) {
            if policy.every_days > 0 && runner.day.is_multiple_of(policy.every_days) {
                let state = runner.state(&eco);
                let path = policy.snapshot_path(runner.day);
                if let Err(err) = save_to_file_with(vfs.as_mut(), &path, &state) {
                    if policy.disk_fault.tolerates_save_failures() {
                        // Injected fault: costs chain durability, never
                        // the run (recovery walks past the hole).
                        eprintln!("# snapshot save failed (injected): {err}");
                    } else {
                        return Err(StudyError::Checkpoint(err));
                    }
                }
            }
        }
    }
    Ok((runner, eco))
}

/// Run the full study while folding every completed day into `driver`'s
/// incremental analyses. The returned dataset is identical to
/// [`run_study_with`]'s; the analysis results live in the driver — call
/// [`FoldDriver::finish`] afterwards for the report fragments.
pub fn run_study_folded(
    scenario: ScenarioConfig,
    campaign: CampaignConfig,
    driver: &mut FoldDriver,
) -> Dataset {
    let mut eco = Ecosystem::build(scenario);
    let mut runner = Runner::new(eco.window, campaign);
    let days = eco.window.num_days() as u32;
    while runner.day < days {
        runner.step_day(&mut eco);
        driver.fold_day(&runner.parts());
    }
    runner.finish(&mut eco)
}

/// [`run_study_folded`] with snapshot saves per the policy. Every
/// snapshot carries the driver's [`FoldLedger`](crate::fold::FoldLedger),
/// so the run resumes via [`resume_study_folded`] without replaying any
/// raw history.
pub fn run_study_folded_checkpointed(
    scenario: ScenarioConfig,
    campaign: CampaignConfig,
    policy: &CheckpointPolicy,
    driver: &mut FoldDriver,
) -> Result<Dataset, CheckpointError> {
    let eco = Ecosystem::build(scenario);
    let runner = Runner::new(eco.window, campaign);
    run_guarded(runner, eco, policy, Some(driver))
}

/// Resume a snapshotted incremental campaign: restore `driver`'s folds
/// from the snapshot's ledger (auditing day and cursor agreement), then
/// run — and fold — the remaining days.
///
/// # Panics
/// Panics if the snapshot carries no fold ledger (it was written by a
/// batch run — resume it with [`resume_study`] instead, or re-run
/// incrementally from scratch), if the ledger does not match the
/// driver's registered folds, or if the ledger's cursors disagree with
/// the snapshot's collections.
pub fn resume_study_folded(state: &CampaignState, driver: &mut FoldDriver) -> Dataset {
    let (mut eco, mut runner) = rebuild_folded(state, driver);
    let days = runner.window.num_days() as u32;
    while runner.day < days {
        runner.step_day(&mut eco);
        driver.fold_day(&runner.parts());
    }
    runner.finish(&mut eco)
}

/// [`resume_study_folded`] with snapshot saves per the policy (a resumed
/// incremental run is itself resumable).
///
/// # Panics
/// As [`resume_study_folded`].
pub fn resume_study_folded_checkpointed(
    state: &CampaignState,
    policy: &CheckpointPolicy,
    driver: &mut FoldDriver,
) -> Result<Dataset, CheckpointError> {
    let (eco, runner) = rebuild_folded(state, driver);
    run_guarded(runner, eco, policy, Some(driver))
}

/// [`rebuild`] plus fold-ledger restoration and audit.
fn rebuild_folded(state: &CampaignState, driver: &mut FoldDriver) -> (Ecosystem, Runner) {
    let (eco, runner) = rebuild(state);
    let ledger = state.folds.as_ref().expect(
        "snapshot carries no fold ledger: it was written by a batch run; \
         resume it in batch mode or re-run incrementally from scratch",
    );
    driver
        .restore(ledger)
        .expect("fold ledger does not match this build's registered folds");
    assert_eq!(
        driver.days_folded(),
        state.day,
        "fold ledger day count disagrees with snapshot day"
    );
    assert_eq!(
        (
            ledger.tweets_seen,
            ledger.control_seen,
            ledger.groups_seen,
            ledger.joined_seen,
        ),
        (
            runner.discovery.tweets.len() as u64,
            runner.discovery.control.len() as u64,
            runner.discovery.groups.len() as u64,
            runner.joiner.joined.len() as u64,
        ),
        "fold ledger cursors disagree with the snapshot's collections"
    );
    (eco, runner)
}

/// Rebuild the world and the runner from a snapshot: the ecosystem is
/// re-derived from the scenario (deterministic), the campaign's mutations
/// are replayed from the delta, and every pipeline component is restored.
fn rebuild(state: &CampaignState) -> (Ecosystem, Runner) {
    let mut eco = Ecosystem::build(state.scenario.clone());
    eco.apply_delta(&state.delta);
    let runner = Runner::from_state(state, eco.window);
    // A snapshot can decode cleanly (magic, version, checksum all good)
    // and still describe a state no campaign can reach; audit the
    // restored components before running a single event on top of them.
    let violations = crate::audit::audit_components(
        runner.window.num_days() as u32,
        &runner.discovery,
        &runner.monitor,
        &runner.joiner,
    );
    assert!(
        violations.is_empty(),
        "restored snapshot violates campaign invariants: {violations:#?}"
    );
    assert_eq!(
        runner.marks.len(),
        state.day as usize,
        "snapshot must carry one day mark per completed day"
    );
    (eco, runner)
}

/// Drive a runner to completion under a checkpoint policy, optionally
/// folding each completed day into an incremental-analysis driver (whose
/// ledger then rides inside every snapshot, including the drop-save).
fn run_guarded(
    runner: Runner,
    eco: Ecosystem,
    policy: &CheckpointPolicy,
    driver: Option<&mut FoldDriver>,
) -> Result<Dataset, CheckpointError> {
    let days = runner.window.num_days() as u32;
    let (runner, mut eco) = run_guarded_until(runner, eco, policy, driver, days)?;
    Ok(runner.finish(&mut eco))
}

/// The guarded day loop, stopping after `until` completed days (callers
/// pass the full window length for a complete run). Returns the runner
/// and ecosystem so the caller decides between final assembly and a
/// mid-campaign halt.
fn run_guarded_until(
    runner: Runner,
    eco: Ecosystem,
    policy: &CheckpointPolicy,
    driver: Option<&mut FoldDriver>,
    until: u32,
) -> Result<(Runner, Ecosystem), CheckpointError> {
    let seed = runner.campaign.seed;
    let mut guard = RunGuard {
        runner: Some(runner),
        eco: Some(eco),
        policy,
        driver,
        vfs: policy.vfs(seed),
    };
    loop {
        let runner = guard.runner.as_mut().expect("runner present until taken");
        let eco = guard.eco.as_mut().expect("eco present until taken");
        if runner.day >= until {
            break;
        }
        runner.step_day(eco);
        if let Some(driver) = guard.driver.as_deref_mut() {
            driver.fold_day(&runner.parts());
        }
        if policy.every_days > 0 && runner.day.is_multiple_of(policy.every_days) {
            let state = match guard.driver.as_deref() {
                Some(driver) => runner.state_with_folds(eco, driver),
                None => runner.state(eco),
            };
            let path = policy.snapshot_path(runner.day);
            if let Err(err) = save_to_file_with(guard.vfs.as_mut(), &path, &state) {
                if policy.disk_fault.tolerates_save_failures() {
                    // An injected fault costs durability (the chain gets
                    // a hole recovery must walk past), never the run.
                    eprintln!("# snapshot save failed (injected): {err}");
                } else {
                    return Err(err);
                }
            }
        }
    }
    // Disarm the drop guard before handing the pair back.
    let runner = guard.runner.take().expect("runner");
    let eco = guard.eco.take().expect("eco");
    drop(guard);
    Ok((runner, eco))
}

/// Owns the runner across the checkpointed loop so an unwind (a panic in
/// an event handler) still leaves a snapshot of the last completed day on
/// disk. Disarmed by `take`-ing the fields before final assembly.
struct RunGuard<'p, 'd> {
    runner: Option<Runner>,
    eco: Option<Ecosystem>,
    policy: &'p CheckpointPolicy,
    driver: Option<&'d mut FoldDriver>,
    vfs: Box<dyn Vfs>,
}

impl Drop for RunGuard<'_, '_> {
    fn drop(&mut self) {
        if !self.policy.on_drop {
            return;
        }
        if let (Some(runner), Some(eco)) = (self.runner.as_ref(), self.eco.as_ref()) {
            // Best-effort: never panic (or surface I/O errors) mid-unwind.
            let state = match self.driver.as_deref() {
                Some(driver) => runner.state_with_folds(eco, driver),
                None => runner.state(eco),
            };
            let _ = save_to_file_with(
                self.vfs.as_mut(),
                &self.policy.snapshot_path(runner.day),
                &state,
            );
        }
    }
}

/// The live campaign: every mutable component plus the event timeline,
/// advanced one study day at a time so day boundaries are capturable.
struct Runner {
    window: StudyWindow,
    campaign: CampaignConfig,
    /// Completed study days (== the next day index to execute).
    day: u32,
    engine: Engine<CampaignEvent>,
    net: Net,
    rng: Rng,
    discovery: Discovery,
    monitor: Monitor,
    joiner: Joiner,
    pii: PiiStore,
    metrics: Metrics,
    /// One mark per completed day: collection-vector lengths at the day
    /// boundary. Recorded unconditionally (batch and incremental runs
    /// produce identical datasets and snapshots, folds aside).
    marks: Vec<DayMark>,
    /// The memory accountant of a budgeted run (`None` on the unbudgeted
    /// paths, which never spill and assemble datasets in memory).
    budget: Option<MemoryBudget>,
}

impl Runner {
    /// A fresh campaign over `window` with the whole event mix scheduled
    /// up front (it is static — nothing schedules during the run).
    fn new(window: StudyWindow, campaign: CampaignConfig) -> Runner {
        let start = window.start_time();
        let end = window.end_time();
        let mut engine: Engine<CampaignEvent> = Engine::new(start);

        let total_hours = window.num_days() * 24;
        for h in 0..total_hours {
            if campaign.use_search && h % u64::from(campaign.search_interval_hours.max(1)) == 0 {
                engine.schedule_at(start + SimDuration::hours(h), CampaignEvent::Search);
            }
            if campaign.use_stream {
                engine.schedule_at(
                    start + SimDuration::hours(h) + SimDuration::minutes(30),
                    CampaignEvent::StreamDrain,
                );
            }
        }
        for d in 0..window.num_days() {
            engine.schedule_at(
                start + SimDuration::days(d) + SimDuration::hours(22) + SimDuration::minutes(40),
                CampaignEvent::SampleDrain,
            );
            if d % u64::from(campaign.monitor_interval_days.max(1)) == 0 {
                engine.schedule_at(
                    start
                        + SimDuration::days(d)
                        + SimDuration::hours(23)
                        + SimDuration::minutes(10),
                    CampaignEvent::Monitor { day: d as u32 },
                );
            }
            // Backfill after the day's monitor round and last stream
            // drain, still inside the day (quiescent boundary intact).
            engine.schedule_at(
                start + SimDuration::days(d) + SimDuration::hours(23) + SimDuration::minutes(40),
                CampaignEvent::Backfill { day: d as u32 },
            );
        }
        engine.schedule_at(
            start + SimDuration::days(u64::from(campaign.join_day)) + SimDuration::hours(12),
            CampaignEvent::Join,
        );
        engine.schedule_at(
            end.checked_sub(SimDuration::minutes(20)).expect("window"),
            CampaignEvent::Collect,
        );

        Runner {
            window,
            campaign,
            day: 0,
            engine,
            net: Net::with_corruption(
                campaign.seed,
                start,
                fault_schedules(&campaign, start),
                campaign.corruption.schedule(),
            ),
            rng: Rng::new(campaign.seed ^ 0x9E37_79B9),
            discovery: Discovery::new(start),
            monitor: Monitor::with_pool(Pool::new(campaign.threads)),
            joiner: Joiner::new(),
            pii: PiiStore::new(),
            metrics: Metrics::new(),
            marks: Vec::new(),
            budget: None,
        }
    }

    /// Execute every event of the next study day. The day's deadline is
    /// its final second (23:59:59) — no campaign event is ever scheduled
    /// there, so running to it is equivalent to running through the day
    /// as part of one uninterrupted `run_until`.
    fn step_day(&mut self, eco: &mut Ecosystem) {
        let deadline = (self.window.start_time() + SimDuration::days(u64::from(self.day) + 1))
            .checked_sub(SimDuration::secs(1))
            .expect("window");
        let Runner {
            engine,
            campaign,
            net,
            rng,
            discovery,
            monitor,
            joiner,
            pii,
            metrics,
            ..
        } = self;
        engine.run_until(deadline, |eng, ev| {
            handle_event(
                ev,
                eng.now(),
                eco,
                campaign,
                net,
                rng,
                discovery,
                monitor,
                joiner,
                pii,
                metrics,
            );
        });
        self.day += 1;
        self.marks.push(DayMark {
            day: self.day - 1,
            tweets: self.discovery.tweets.len() as u64,
            control: self.discovery.control.len() as u64,
            groups: self.discovery.groups.len() as u64,
            joined: self.joiner.joined.len() as u64,
        });
        // Day boundaries are quiescent points, so the cross-component
        // invariants must hold here; debug builds prove it after every
        // day, release campaigns skip the sweep.
        #[cfg(debug_assertions)]
        {
            let violations = crate::audit::audit_components(
                self.window.num_days() as u32,
                &self.discovery,
                &self.monitor,
                &self.joiner,
            );
            assert!(
                violations.is_empty(),
                "invariant audit failed after day {}: {violations:#?}",
                self.day - 1
            );
        }
    }

    /// Run any remaining events (the final day's tail past 23:59:59 holds
    /// none, but resumed runners may still be mid-campaign), record the
    /// end-of-run metrics, and assemble the dataset.
    fn finish(mut self, eco: &mut Ecosystem) -> Dataset {
        self.drain_tail(eco);
        self.record_final_metrics();
        let mut ds = Dataset::assemble(
            self.window,
            self.discovery,
            self.monitor.timelines,
            self.monitor.gaps,
            self.monitor.quarantine,
            self.joiner,
            self.pii,
            self.marks,
        );
        ds.metrics = self.metrics;
        ds
    }

    /// Run any events left past the final day boundary (a complete run
    /// has none; a resumed mid-campaign runner may).
    fn drain_tail(&mut self, eco: &mut Ecosystem) {
        let end = self.window.end_time();
        {
            let Runner {
                engine,
                campaign,
                net,
                rng,
                discovery,
                monitor,
                joiner,
                pii,
                metrics,
                ..
            } = self;
            engine.run_until(end, |eng, ev| {
                handle_event(
                    ev,
                    eng.now(),
                    eco,
                    campaign,
                    net,
                    rng,
                    discovery,
                    monitor,
                    joiner,
                    pii,
                    metrics,
                );
            });
        }
    }

    /// Record the end-of-run metrics (part of the frozen counter digest,
    /// so the batch and budgeted paths share it).
    fn record_final_metrics(&mut self) {
        self.metrics
            .add(keys::TRANSPORT_ATTEMPTS, self.net.total_attempts());
        let (opened, fast_fails) = self.net.breaker_totals();
        self.metrics.add(keys::TRANSPORT_BREAKER_OPENED, opened);
        self.metrics
            .add(keys::TRANSPORT_BREAKER_FAST_FAILS, fast_fails);
        self.metrics
            .add(keys::MONITOR_GAP_DAYS, self.monitor.gap_days());
        self.metrics.add(
            keys::DISCOVERY_UNRECOVERED_WINDOWS,
            self.discovery.pending_windows() as u64,
        );
        self.metrics.add(
            keys::DISCOVERY_TWEETS_COLLECTED,
            self.discovery.tweets.len() as u64,
        );
        self.metrics.add(
            keys::DISCOVERY_GROUPS_DISCOVERED,
            self.discovery.groups.len() as u64,
        );
        self.metrics.add(
            keys::DISCOVERY_FAILED_REQUESTS,
            self.discovery.failed_requests,
        );
        self.metrics
            .add(keys::JOIN_DEAD_AT_JOIN, self.joiner.dead_at_join);
        self.metrics
            .add(keys::JOIN_JOINED_GROUPS, self.joiner.joined.len() as u64);
        self.metrics
            .add(keys::JOIN_FAILED_FETCHES, self.joiner.failed_fetches);
        self.metrics
            .add(keys::TRANSPORT_CORRUPTED, self.net.corrupted_total());
        self.metrics.add(
            keys::QUARANTINE_ENTRIES,
            (self.discovery.quarantine.len()
                + self.monitor.quarantine.len()
                + self.joiner.quarantine.len()) as u64,
        );
    }

    /// Attach a memory accountant to this runner. The floor is the
    /// simulated world's tweet store at encoded size — the irreducible
    /// working set no eviction can shrink.
    fn attach_budget(&mut self, policy: &BudgetPolicy, eco: &Ecosystem) -> Result<(), BudgetError> {
        let floor = eco.twitter.encoded_bytes();
        self.budget = Some(MemoryBudget::attach(policy, self.campaign.seed, floor)?);
        Ok(())
    }

    /// Day-boundary budget enforcement (no-op on unbudgeted runners).
    /// The accountant is taken out of the runner for the call so it can
    /// mutate the discovery logs it accounts for.
    fn enforce_budget(&mut self, fold_bytes: u64) -> Result<(), BudgetError> {
        let Some(mut budget) = self.budget.take() else {
            return Ok(());
        };
        let timeline_bytes = self.monitor.timelines.encoded_bytes();
        let result = budget.enforce(
            self.day,
            &self.marks,
            &mut self.discovery,
            timeline_bytes,
            fold_bytes,
        );
        self.budget = Some(budget);
        result
    }

    /// Stream the campaign report without ever assembling the full
    /// dataset in memory: spilled day-partitions are faulted back one at
    /// a time (tweets pass, then control pass — the frozen digest
    /// layout), the resident tails follow, and the resident stores
    /// render as usual. Byte-identical to [`Runner::finish`]'s
    /// [`Dataset::campaign_report`] by construction — both funnel
    /// through `render_campaign_report`.
    fn finish_budgeted(mut self, eco: &mut Ecosystem) -> Result<BudgetedRun, BudgetError> {
        self.drain_tail(eco);
        self.record_final_metrics();
        let mut budget = self
            .budget
            .take()
            .expect("budgeted runner has an accountant");

        let mut quarantine = std::mem::take(&mut self.discovery.quarantine);
        quarantine.extend(std::mem::take(&mut self.monitor.quarantine));
        quarantine.extend(std::mem::take(&mut self.joiner.quarantine));

        let days: Vec<u32> = budget.manifest().iter().map(|p| p.day).collect();
        let mut rb = TweetRollupBuilder::new();
        for &day in &days {
            let part = budget.read_partition(day)?;
            for ct in &part.tweets {
                rb.add_tweet(ct);
            }
        }
        for ct in self.discovery.tweets.resident() {
            rb.add_tweet(ct);
        }
        for &day in &days {
            let part = budget.read_partition(day)?;
            for tw in &part.control {
                rb.add_control(tw);
            }
        }
        for tw in self.discovery.control.resident() {
            rb.add_control(tw);
        }
        let rollup = rb.finish();

        let inputs = ReportInputs {
            window: self.window,
            groups: &self.discovery.groups,
            interner: &self.discovery.interner,
            timelines: &self.monitor.timelines,
            gaps: &self.monitor.gaps,
            quarantine: &quarantine,
            joined: &self.joiner.joined,
            pii: &self.pii,
            extraction: self.discovery.stats,
            failed_requests: self.discovery.failed_requests,
            accounts_used: self.joiner.accounts_used,
            bot_join_rejected: self.joiner.bot_join_rejected,
            metrics: &self.metrics,
        };
        let report = render_campaign_report(&rollup, &inputs);
        let totals = inputs.totals_with(&rollup);
        Ok(BudgetedRun {
            report,
            totals,
            stats: budget.stats(),
            metrics: budget.metrics(),
        })
    }

    /// Capture the full campaign state (valid at a day boundary).
    fn state(&self, eco: &Ecosystem) -> CampaignState {
        CampaignState {
            scenario: eco.config.clone(),
            campaign: self.campaign,
            day: self.day,
            engine: EngineState::capture(&self.engine),
            rng: self.rng.state(),
            clients: self.net.export_state(),
            discovery: DiscoveryState::capture(&self.discovery),
            monitor: MonitorState::capture(&self.monitor),
            joiner: JoinerState::capture(&self.joiner),
            pii: PiiState::capture(&self.pii),
            metrics: self.metrics.clone(),
            marks: self.marks.clone(),
            folds: None,
            delta: eco.export_delta(),
            budget: self.budget.as_ref().map(|b| b.state()),
        }
    }

    /// Capture the full campaign state including the fold ledger of an
    /// incremental run's driver.
    fn state_with_folds(&self, eco: &Ecosystem, driver: &FoldDriver) -> CampaignState {
        let mut state = self.state(eco);
        state.folds = Some(driver.ledger());
        state
    }

    /// Borrow the live collections for per-day fold slicing.
    fn parts(&self) -> DayParts<'_> {
        DayParts {
            window: self.window,
            tweets: self.discovery.tweets.view(),
            control: self.discovery.control.view(),
            groups: &self.discovery.groups,
            joined: &self.joiner.joined,
            interner: self.discovery.interner(),
            timelines: &self.monitor.timelines,
            gaps: &self.monitor.gaps,
            pii: &self.pii,
        }
    }

    /// Restore a runner from a snapshot. `window` comes from the rebuilt
    /// ecosystem; the transport clients are rebuilt with their original
    /// configuration and then overwritten with the snapshotted state.
    fn from_state(state: &CampaignState, window: StudyWindow) -> Runner {
        let campaign = state.campaign;
        let start = window.start_time();
        let mut net = Net::with_corruption(
            campaign.seed,
            start,
            fault_schedules(&campaign, start),
            campaign.corruption.schedule(),
        );
        net.restore_state(state.clients.clone());
        Runner {
            window,
            campaign,
            day: state.day,
            engine: state.engine.restore(),
            net,
            rng: Rng::from_state(state.rng),
            discovery: state.discovery.restore(start),
            monitor: state.monitor.restore(Pool::new(campaign.threads)),
            joiner: state.joiner.restore(),
            pii: state.pii.restore(),
            metrics: state.metrics.clone(),
            marks: state.marks.clone(),
            budget: None,
        }
    }
}

/// One campaign event, dispatched against the pipeline components. Free
/// function (rather than a `Runner` method) so `step_day` can lend the
/// engine to `run_until` while the handler mutates the other fields.
#[allow(clippy::too_many_arguments)]
fn handle_event(
    ev: CampaignEvent,
    now: SimTime,
    eco: &mut Ecosystem,
    campaign: &CampaignConfig,
    net: &mut Net,
    rng: &mut Rng,
    discovery: &mut Discovery,
    monitor: &mut Monitor,
    joiner: &mut Joiner,
    pii: &mut PiiStore,
    metrics: &mut Metrics,
) {
    match ev {
        CampaignEvent::Search => {
            metrics.incr(keys::CAMPAIGN_SEARCH_ROUNDS);
            metrics.time_stage(keys::STAGE_SEARCH, || {
                discovery.run_search(net, eco, now).expect("search round")
            });
            metrics.observe(
                keys::DISCOVERY_GROUPS_KNOWN,
                discovery.group_count() as f64,
                &[1e2, 1e3, 1e4, 1e5, 1e6],
            );
        }
        CampaignEvent::StreamDrain => {
            metrics.incr(keys::CAMPAIGN_STREAM_DRAINS);
            metrics.time_stage(keys::STAGE_STREAM, || {
                discovery.drain_stream(net, eco, now).expect("stream drain")
            });
        }
        CampaignEvent::SampleDrain => {
            metrics.incr(keys::CAMPAIGN_SAMPLE_DRAINS);
            metrics.time_stage(keys::STAGE_SAMPLE, || {
                discovery.drain_sample(net, eco, now).expect("sample drain")
            });
        }
        CampaignEvent::Monitor { day } => {
            metrics.incr(keys::CAMPAIGN_MONITOR_ROUNDS);
            metrics.time_stage(keys::STAGE_MONITOR, || {
                monitor
                    .run_day(net, eco, discovery, now, day, Some(pii))
                    .expect("monitor round")
            });
        }
        CampaignEvent::Join => {
            metrics.time_stage(keys::STAGE_JOIN, || {
                for kind in PlatformKind::ALL {
                    let budget = eco.config.join_budget_scaled(kind);
                    let disco: &Discovery = discovery;
                    let timelines = &monitor.timelines;
                    joiner
                        .join_phase_with(
                            net,
                            eco,
                            disco,
                            kind,
                            budget,
                            now,
                            rng,
                            campaign.join_strategy,
                            &|key| {
                                disco
                                    .slot_of_key(key)
                                    .and_then(|slot| timelines.get(slot))
                                    .and_then(|t| t.size_span())
                                    .map(|(_, last)| last)
                            },
                        )
                        .expect("join phase");
                }
            });
        }
        CampaignEvent::Collect => {
            metrics.time_stage(keys::STAGE_COLLECT, || {
                joiner
                    .collect_phase(net, eco, now, pii)
                    .expect("collect phase")
            });
        }
        CampaignEvent::Backfill { day } => {
            metrics.incr(keys::CAMPAIGN_BACKFILL_ROUNDS);
            metrics.time_stage(keys::STAGE_BACKFILL, || {
                discovery.backfill(net, eco, now).expect("stream backfill");
                monitor
                    .backfill_day(net, eco, discovery, now, day, Some(pii))
                    .expect("monitor backfill");
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The full tiny campaign is the expensive fixture here; run it once
    /// and share it across tests.
    fn tiny_dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| run_study(ScenarioConfig::tiny()))
    }

    #[test]
    fn full_campaign_produces_everything() {
        let ds = tiny_dataset();
        assert!(!ds.tweets.is_empty());
        assert!(!ds.control.is_empty());
        assert!(!ds.groups.is_empty());
        assert!(!ds.timelines.is_empty());
        assert!(!ds.joined.is_empty());
        assert!(ds.bot_join_rejected);
        assert!(ds.pii.wa_total_phones() > 0);
        // Every platform is represented.
        for kind in PlatformKind::ALL {
            let s = ds.summary(kind);
            assert!(s.tweets > 0, "{kind} tweets");
            assert!(s.group_urls > 0, "{kind} urls");
            assert!(s.joined_groups > 0, "{kind} joined");
            assert!(s.messages > 0, "{kind} messages");
        }
    }

    #[test]
    fn discovery_covers_most_of_the_world() {
        let ds = tiny_dataset();
        let cfg = ScenarioConfig::tiny();
        for kind in PlatformKind::ALL {
            let expected = cfg.scaled(cfg.platform(kind).n_group_urls) as f64;
            let found = ds.summary(kind).group_urls as f64;
            let coverage = found / expected;
            assert!(
                coverage > 0.9,
                "{kind}: discovered {found} of {expected} ({coverage:.2})"
            );
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = run_study(ScenarioConfig::at_scale(0.003));
        let b = run_study(ScenarioConfig::at_scale(0.003));
        assert_eq!(a.tweets.len(), b.tweets.len());
        assert_eq!(a.groups.len(), b.groups.len());
        assert_eq!(a.joined.len(), b.joined.len());
        assert_eq!(a.pii.wa_total_phones(), b.pii.wa_total_phones());
        assert_eq!(a.totals(), b.totals());
    }

    #[test]
    fn thread_count_never_changes_the_dataset() {
        let run = |threads: usize| {
            run_study_with(
                ScenarioConfig::at_scale(0.003),
                CampaignConfig {
                    threads,
                    ..CampaignConfig::default()
                },
            )
        };
        let serial = run(1);
        // Stage timings were recorded (values are wall-clock and therefore
        // uncomparable, but the counters must exist).
        assert!(serial.metrics.get("stage.search.runs") > 0);
        assert!(serial.metrics.get("stage.monitor.runs") > 0);
        for threads in [2, 8] {
            let par = run(threads);
            assert_eq!(par.totals(), serial.totals(), "{threads} threads");
            assert_eq!(par.tweets.len(), serial.tweets.len());
            assert_eq!(par.timelines, serial.timelines, "{threads} threads");
            assert_eq!(
                par.pii.wa_total_phones(),
                serial.pii.wa_total_phones(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn joined_budgets_respected() {
        let ds = tiny_dataset();
        let cfg = ScenarioConfig::tiny();
        for kind in PlatformKind::ALL {
            let budget = cfg.join_budget_scaled(kind);
            let joined = ds.summary(kind).joined_groups;
            assert!(joined <= budget, "{kind}: {joined} > {budget}");
        }
    }

    #[test]
    fn monitor_saw_discord_die_young() {
        let ds = tiny_dataset();
        let dc: Vec<_> = ds
            .groups
            .iter()
            .filter(|g| g.platform == PlatformKind::Discord)
            .collect();
        let dead_on_arrival = dc
            .iter()
            .filter(|g| ds.timeline_of(g).is_some_and(|t| t.dead_on_arrival()))
            .count() as f64
            / dc.len() as f64;
        assert!(
            dead_on_arrival > 0.4,
            "Discord dead-on-arrival share {dead_on_arrival}"
        );
    }

    #[test]
    fn snapshot_resume_matches_uninterrupted() {
        // Capture mid-campaign, rebuild the world from scratch, and run
        // the rest: the dataset must match an uninterrupted run exactly
        // (wall-clock stage timings aside).
        let scenario = ScenarioConfig::at_scale(0.003);
        let mut full = run_study(scenario.clone());

        let mut eco = Ecosystem::build(scenario);
        let mut runner = Runner::new(eco.window, CampaignConfig::default());
        for _ in 0..3 {
            runner.step_day(&mut eco);
        }
        let state = runner.state(&eco);
        drop((runner, eco));
        let mut resumed = resume_study(&state);

        full.metrics.strip_wall_clock();
        resumed.metrics.strip_wall_clock();
        assert_eq!(full, resumed);
    }
}
