//! The assembled campaign output — everything the analyses consume.

use crate::discovery::{CollectedTweet, Discovery, DiscoveryRecord};
use crate::joiner::JoinedGroup;
use crate::monitor::GroupTimeline;
use crate::pii::PiiStore;
use crate::quarantine::QuarantineEntry;
use chatlens_platforms::id::PlatformKind;
use chatlens_simnet::time::StudyWindow;
use chatlens_twitter::Tweet;
use std::collections::BTreeMap;

/// Per-platform roll-up of Table 2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlatformSummary {
    /// Tweets carrying this platform's URLs (dedup by tweet id).
    pub tweets: u64,
    /// Distinct tweet authors.
    pub twitter_users: u64,
    /// Distinct group URLs discovered.
    pub group_urls: u64,
    /// Groups joined.
    pub joined_groups: u64,
    /// Messages collected from joined groups.
    pub messages: u64,
    /// Total members across joined groups (the paper's "Messaging
    /// Platforms #Users" column: group sizes for the API platforms, the
    /// member list for WhatsApp).
    pub platform_users: u64,
}

/// The full campaign output. `PartialEq` compares every collected record
/// — it exists for the resume-equivalence tests, which assert a resumed
/// campaign's dataset equals an uninterrupted run's (after normalizing
/// wall-clock timings with
/// [`Metrics::strip_wall_clock`](chatlens_simnet::metrics::Metrics::strip_wall_clock)).
#[derive(Debug, PartialEq)]
pub struct Dataset {
    /// The collection window.
    pub window: StudyWindow,
    /// Collected pattern-matched tweets with provenance.
    pub tweets: Vec<CollectedTweet>,
    /// The control sample.
    pub control: Vec<Tweet>,
    /// Discovered groups in discovery order.
    pub groups: Vec<DiscoveryRecord>,
    /// Monitor timelines keyed by dedup key. A `BTreeMap` so any
    /// future iteration over it is dataset-ordered, never hasher-ordered
    /// (lint rule D2).
    pub timelines: BTreeMap<String, GroupTimeline>,
    /// The gap ledger: study days on which a group could not be observed
    /// even after backfill (outages, persistent transport failure), keyed
    /// by dedup key with days ascending. Lifetime/staleness analyses
    /// treat these as censored — an unobserved day is never an
    /// observation.
    pub gaps: BTreeMap<String, Vec<u32>>,
    /// The quarantine ledger: every wire body the collectors rejected,
    /// with typed error and provenance, in component order (discovery →
    /// monitor → joiner). Nothing in it ever reaches the tables above —
    /// it records *why* data is missing, the gap/failure counters record
    /// *that* it is missing.
    pub quarantine: Vec<QuarantineEntry>,
    /// Joined groups with members and messages.
    pub joined: Vec<JoinedGroup>,
    /// PII exposure accounting.
    pub pii: PiiStore,
    /// URL-extraction totals.
    pub extraction: crate::patterns::ExtractionStats,
    /// Transport requests that failed after retries.
    pub failed_requests: u64,
    /// Accounts opened per platform.
    pub accounts_used: [u16; 3],
    /// Whether the Discord bot-join probe was refused.
    pub bot_join_rejected: bool,
    /// Campaign-health counters and histograms (request volumes, rounds
    /// executed, discovery progress).
    pub metrics: chatlens_simnet::metrics::Metrics,
}

impl Dataset {
    /// Assemble from the campaign components.
    pub(crate) fn assemble(
        window: StudyWindow,
        discovery: Discovery,
        timelines: BTreeMap<String, GroupTimeline>,
        gaps: BTreeMap<String, Vec<u32>>,
        monitor_quarantine: Vec<QuarantineEntry>,
        joiner: crate::joiner::Joiner,
        pii: PiiStore,
    ) -> Dataset {
        let mut quarantine = discovery.quarantine;
        quarantine.extend(monitor_quarantine);
        quarantine.extend(joiner.quarantine);
        Dataset {
            window,
            extraction: discovery.stats,
            failed_requests: discovery.failed_requests,
            tweets: discovery.tweets,
            control: discovery.control,
            groups: discovery.groups,
            timelines,
            gaps,
            quarantine,
            accounts_used: joiner.accounts_used,
            bot_join_rejected: joiner.bot_join_rejected,
            joined: joiner.joined,
            pii,
            metrics: chatlens_simnet::metrics::Metrics::new(),
        }
    }

    /// Tweets that carry at least one URL of `kind` (a tweet sharing two
    /// platforms counts toward both, like Table 2's per-platform rows).
    pub fn tweets_of(&self, kind: PlatformKind) -> impl Iterator<Item = &CollectedTweet> {
        self.tweets.iter().filter(move |t| {
            t.tweet
                .urls
                .iter()
                .filter_map(|u| chatlens_platforms::invite::parse_invite_url(u))
                .any(|inv| inv.platform() == kind)
        })
    }

    /// Joined groups of one platform.
    pub fn joined_of(&self, kind: PlatformKind) -> impl Iterator<Item = &JoinedGroup> {
        self.joined.iter().filter(move |j| j.platform == kind)
    }

    /// Monitor timeline of a discovered group.
    pub fn timeline_of(&self, rec: &DiscoveryRecord) -> Option<&GroupTimeline> {
        self.timelines.get(&rec.invite.dedup_key())
    }

    /// The Table 2 roll-up for one platform.
    pub fn summary(&self, kind: PlatformKind) -> PlatformSummary {
        let mut tweets = 0u64;
        let mut authors = std::collections::HashSet::new();
        for t in self.tweets_of(kind) {
            tweets += 1;
            authors.insert(t.tweet.author);
        }
        let group_urls = self.groups.iter().filter(|g| g.platform == kind).count() as u64;
        let mut joined_groups = 0u64;
        let mut messages = 0u64;
        let mut platform_users = 0u64;
        for jg in self.joined_of(kind) {
            joined_groups += 1;
            messages += jg.messages.len() as u64;
            platform_users += match kind {
                // WhatsApp: the member list itself.
                PlatformKind::WhatsApp => jg.members.len() as u64,
                // API platforms: the group size reported by the monitor at
                // the last alive observation (the paper reads totals off
                // group metadata, not member lists).
                _ => self
                    .timelines
                    .get(&jg.key)
                    .and_then(|t| t.size_span())
                    .map(|(_, last)| u64::from(last))
                    .unwrap_or(0),
            };
        }
        PlatformSummary {
            tweets,
            twitter_users: authors.len() as u64,
            group_urls,
            joined_groups,
            messages,
            platform_users,
        }
    }

    /// Totals across platforms plus the distinct-author union (Table 2's
    /// bottom row counts each tweet/author once).
    pub fn totals(&self) -> PlatformSummary {
        let mut authors = std::collections::HashSet::new();
        for t in &self.tweets {
            authors.insert(t.tweet.author);
        }
        let per: Vec<PlatformSummary> = PlatformKind::ALL
            .into_iter()
            .map(|k| self.summary(k))
            .collect();
        PlatformSummary {
            tweets: self.tweets.len() as u64,
            twitter_users: authors.len() as u64,
            group_urls: self.groups.len() as u64,
            joined_groups: per.iter().map(|p| p.joined_groups).sum(),
            messages: per.iter().map(|p| p.messages).sum(),
            platform_users: per.iter().map(|p| p.platform_users).sum(),
        }
    }
}
