//! The assembled campaign output — everything the analyses consume.

use crate::budget::LogView;
use crate::discovery::{CollectedTweet, Discovery, DiscoveryRecord};
use crate::fold::{DayMark, DayParts, DaySlice};
use crate::intern::Interner;
use crate::joiner::JoinedGroup;
use crate::monitor::{GapLedger, GroupTimeline, ObservedStatus, TimelineStore};
use crate::patterns::ExtractionStats;
use crate::pii::PiiStore;
use crate::quarantine::QuarantineEntry;
use chatlens_platforms::id::PlatformKind;
use chatlens_simnet::hash::{to_hex, Sha256};
use chatlens_simnet::metrics::Metrics;
use chatlens_simnet::time::StudyWindow;
use chatlens_twitter::Tweet;
use std::collections::{BTreeMap, HashSet};
use std::fmt::Write as _;

/// Per-platform roll-up of Table 2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlatformSummary {
    /// Tweets carrying this platform's URLs (dedup by tweet id).
    pub tweets: u64,
    /// Distinct tweet authors.
    pub twitter_users: u64,
    /// Distinct group URLs discovered.
    pub group_urls: u64,
    /// Groups joined.
    pub joined_groups: u64,
    /// Messages collected from joined groups.
    pub messages: u64,
    /// Total members across joined groups (the paper's "Messaging
    /// Platforms #Users" column: group sizes for the API platforms, the
    /// member list for WhatsApp).
    pub platform_users: u64,
}

/// The full campaign output. `PartialEq` compares every collected record
/// — it exists for the resume-equivalence tests, which assert a resumed
/// campaign's dataset equals an uninterrupted run's (after normalizing
/// wall-clock timings with
/// [`Metrics::strip_wall_clock`](chatlens_simnet::metrics::Metrics::strip_wall_clock)).
#[derive(Debug, PartialEq)]
pub struct Dataset {
    /// The collection window.
    pub window: StudyWindow,
    /// Collected pattern-matched tweets with provenance.
    pub tweets: Vec<CollectedTweet>,
    /// The control sample.
    pub control: Vec<Tweet>,
    /// Discovered groups in discovery order.
    pub groups: Vec<DiscoveryRecord>,
    /// The group symbol table: dedup keys interned in discovery order,
    /// so a key's sym index is its slot in `groups` (and in `timelines`
    /// and `gaps`).
    pub interner: Interner,
    /// Monitor timelines, indexed by discovery slot. Iteration is always
    /// slot- (= discovery-) ordered, never hasher-ordered (lint rule D2).
    pub timelines: TimelineStore,
    /// The gap ledger: study days on which a group could not be observed
    /// even after backfill (outages, persistent transport failure),
    /// indexed by discovery slot with days ascending. Lifetime/staleness
    /// analyses treat these as censored — an unobserved day is never an
    /// observation.
    pub gaps: GapLedger,
    /// The quarantine ledger: every wire body the collectors rejected,
    /// with typed error and provenance, in component order (discovery →
    /// monitor → joiner). Nothing in it ever reaches the tables above —
    /// it records *why* data is missing, the gap/failure counters record
    /// *that* it is missing.
    pub quarantine: Vec<QuarantineEntry>,
    /// Joined groups with members and messages.
    pub joined: Vec<JoinedGroup>,
    /// PII exposure accounting.
    pub pii: PiiStore,
    /// URL-extraction totals.
    pub extraction: crate::patterns::ExtractionStats,
    /// Transport requests that failed after retries.
    pub failed_requests: u64,
    /// Accounts opened per platform.
    pub accounts_used: [u16; 3],
    /// Whether the Discord bot-join probe was refused.
    pub bot_join_rejected: bool,
    /// Campaign-health counters and histograms (request volumes, rounds
    /// executed, discovery progress).
    pub metrics: chatlens_simnet::metrics::Metrics,
    /// Per-day collection cursor marks, one per completed study day —
    /// the boundaries [`Dataset::day_slice`] cuts at. Not rendered by
    /// [`Dataset::campaign_report`] (the frozen byte contract).
    pub marks: Vec<DayMark>,
}

impl Dataset {
    /// Assemble from the campaign components.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        window: StudyWindow,
        discovery: Discovery,
        timelines: TimelineStore,
        gaps: GapLedger,
        monitor_quarantine: Vec<QuarantineEntry>,
        joiner: crate::joiner::Joiner,
        pii: PiiStore,
        marks: Vec<DayMark>,
    ) -> Dataset {
        let mut quarantine = discovery.quarantine;
        quarantine.extend(monitor_quarantine);
        quarantine.extend(joiner.quarantine);
        Dataset {
            window,
            extraction: discovery.stats,
            failed_requests: discovery.failed_requests,
            // Batch assembly needs the full logs in memory; budgeted
            // campaigns stream their report instead of assembling
            // (`into_full_vec` refuses loudly if a prefix was spilled).
            tweets: discovery.tweets.into_full_vec(),
            control: discovery.control.into_full_vec(),
            groups: discovery.groups,
            interner: discovery.interner,
            timelines,
            gaps,
            quarantine,
            accounts_used: joiner.accounts_used,
            bot_join_rejected: joiner.bot_join_rejected,
            joined: joiner.joined,
            pii,
            metrics: chatlens_simnet::metrics::Metrics::new(),
            marks,
        }
    }

    /// A borrowed [`DaySlice`] view of day `day`: the collections as
    /// they stood at that day's boundary, cut at the recorded
    /// [`DayMark`]s (no per-day data is ever cloned). Cumulative stores
    /// (timelines, gaps, PII) are exposed in their final form; timelines
    /// slice by day via binary search
    /// ([`GroupTimeline::status_on`](crate::monitor::GroupTimeline::status_on)).
    /// `None` if `day` has no recorded mark.
    pub fn day_slice(&self, day: u32) -> Option<DaySlice<'_>> {
        let cur = self.marks.get(day as usize)?;
        debug_assert_eq!(cur.day, day, "marks must be day-indexed");
        let zero = DayMark {
            day: 0,
            tweets: 0,
            control: 0,
            groups: 0,
            joined: 0,
        };
        let prev = match day.checked_sub(1) {
            Some(d) => *self.marks.get(d as usize)?,
            None => zero,
        };
        let parts = DayParts {
            window: self.window,
            tweets: LogView::of_slice(&self.tweets),
            control: LogView::of_slice(&self.control),
            groups: &self.groups,
            joined: &self.joined,
            interner: &self.interner,
            timelines: &self.timelines,
            gaps: &self.gaps,
            pii: &self.pii,
        };
        Some(parts.slice_between(day, &prev, cur))
    }

    /// Tweets that carry at least one URL of `kind` (a tweet sharing two
    /// platforms counts toward both, like Table 2's per-platform rows).
    pub fn tweets_of(&self, kind: PlatformKind) -> impl Iterator<Item = &CollectedTweet> {
        self.tweets.iter().filter(move |t| {
            t.tweet
                .urls
                .iter()
                .filter_map(|u| chatlens_platforms::invite::parse_invite_url(u))
                .any(|inv| inv.platform() == kind)
        })
    }

    /// Joined groups of one platform.
    pub fn joined_of(&self, kind: PlatformKind) -> impl Iterator<Item = &JoinedGroup> {
        self.joined.iter().filter(move |j| j.platform == kind)
    }

    /// Slot (= interned sym index) of a group, by dedup key.
    pub fn slot_of_key(&self, key: &str) -> Option<usize> {
        self.interner.get(key).map(|s| s.index())
    }

    /// Monitor timeline of the group at `slot` (its discovery index).
    pub fn timeline_at(&self, slot: usize) -> Option<&GroupTimeline> {
        self.timelines.get(slot)
    }

    /// Monitor timeline of a discovered group.
    pub fn timeline_of(&self, rec: &DiscoveryRecord) -> Option<&GroupTimeline> {
        self.slot_of_key(&rec.invite.dedup_key())
            .and_then(|slot| self.timelines.get(slot))
    }

    /// The Table 2 roll-up for one platform.
    pub fn summary(&self, kind: PlatformKind) -> PlatformSummary {
        let mut tweets = 0u64;
        let mut authors = std::collections::HashSet::new();
        for t in self.tweets_of(kind) {
            tweets += 1;
            authors.insert(t.tweet.author);
        }
        let group_urls = self.groups.iter().filter(|g| g.platform == kind).count() as u64;
        let mut joined_groups = 0u64;
        let mut messages = 0u64;
        let mut platform_users = 0u64;
        for jg in self.joined_of(kind) {
            joined_groups += 1;
            messages += jg.messages.len() as u64;
            platform_users += match kind {
                // WhatsApp: the member list itself.
                PlatformKind::WhatsApp => jg.members.len() as u64,
                // API platforms: the group size reported by the monitor at
                // the last alive observation (the paper reads totals off
                // group metadata, not member lists).
                _ => self
                    .slot_of_key(&jg.key)
                    .and_then(|slot| self.timelines.get(slot))
                    .and_then(|t| t.size_span())
                    .map(|(_, last)| u64::from(last))
                    .unwrap_or(0),
            };
        }
        PlatformSummary {
            tweets,
            twitter_users: authors.len() as u64,
            group_urls,
            joined_groups,
            messages,
            platform_users,
        }
    }

    /// Render the canonical campaign report: a deterministic, versioned
    /// text rendering of *everything* the campaign collected — totals,
    /// per-platform roll-ups, and SHA-256 digests over each table's full
    /// canonical serialization.
    ///
    /// This is the byte contract the golden differential suite
    /// (`tests/golden.rs`) locks: any representation change that alters a
    /// collected datum, a ledger entry, or an iteration order visible in
    /// the output changes these bytes. The format is frozen — fixtures
    /// were recorded before the interned/columnar storage rewrite and the
    /// optimised pipeline must keep reproducing them exactly.
    pub fn campaign_report(&self) -> String {
        let mut rb = TweetRollupBuilder::new();
        for ct in &self.tweets {
            rb.add_tweet(ct);
        }
        for tw in &self.control {
            rb.add_control(tw);
        }
        render_campaign_report(&rb.finish(), &self.report_inputs())
    }

    /// The non-tweet report inputs, borrowed from this dataset.
    pub(crate) fn report_inputs(&self) -> ReportInputs<'_> {
        ReportInputs {
            window: self.window,
            groups: &self.groups,
            interner: &self.interner,
            timelines: &self.timelines,
            gaps: &self.gaps,
            quarantine: &self.quarantine,
            joined: &self.joined,
            pii: &self.pii,
            extraction: self.extraction,
            failed_requests: self.failed_requests,
            accounts_used: self.accounts_used,
            bot_join_rejected: self.bot_join_rejected,
            metrics: &self.metrics,
        }
    }

    /// Totals across platforms plus the distinct-author union (Table 2's
    /// bottom row counts each tweet/author once).
    pub fn totals(&self) -> PlatformSummary {
        let mut authors = std::collections::HashSet::new();
        for t in &self.tweets {
            authors.insert(t.tweet.author);
        }
        let per: Vec<PlatformSummary> = PlatformKind::ALL
            .into_iter()
            .map(|k| self.summary(k))
            .collect();
        PlatformSummary {
            tweets: self.tweets.len() as u64,
            twitter_users: authors.len() as u64,
            group_urls: self.groups.len() as u64,
            joined_groups: per.iter().map(|p| p.joined_groups).sum(),
            messages: per.iter().map(|p| p.messages).sum(),
            platform_users: per.iter().map(|p| p.platform_users).sum(),
        }
    }
}

/// Per-tweet roll-up accumulated in one streaming pass: counts, author
/// sets, per-platform tweet/user columns, and the tweets digest. Built
/// either from the assembled dataset (batch) or by streaming spilled
/// day-partitions in order (budgeted runs) — byte-identical either way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TweetRollup {
    /// Collected tweets (global count).
    pub tweets_total: u64,
    /// Distinct tweet authors.
    pub twitter_users: u64,
    /// `(tweets, users)` per platform, indexed by `PlatformKind::index`.
    pub per_kind: [(u64, u64); 3],
    /// Control tweets (global count).
    pub control_total: u64,
    /// The frozen tweets digest (tweet lines then control lines).
    pub tweets_sha: String,
}

/// Streaming builder for [`TweetRollup`]: one partition's worth of
/// tweets in memory at a time, constant-size accumulator state.
pub(crate) struct TweetRollupBuilder {
    hasher: Sha256,
    line: String,
    authors: HashSet<u32>,
    kind_authors: [HashSet<u32>; 3],
    kind_tweets: [u64; 3],
    tweets_total: u64,
    control_total: u64,
    control_phase: bool,
}

impl TweetRollupBuilder {
    pub(crate) fn new() -> TweetRollupBuilder {
        TweetRollupBuilder {
            hasher: Sha256::new(),
            line: String::new(),
            authors: HashSet::new(),
            kind_authors: [HashSet::new(), HashSet::new(), HashSet::new()],
            kind_tweets: [0; 3],
            tweets_total: 0,
            control_total: 0,
            control_phase: false,
        }
    }

    /// Add one collected tweet. All collected tweets arrive in global
    /// append order, before the first control tweet — the frozen digest
    /// layout.
    pub(crate) fn add_tweet(&mut self, ct: &CollectedTweet) {
        assert!(!self.control_phase, "tweets must precede control tweets");
        self.tweets_total += 1;
        self.authors.insert(ct.tweet.author.0);
        let mut kinds = [false; 3];
        for url in &ct.tweet.urls {
            if let Some(inv) = chatlens_platforms::invite::parse_invite_url(url) {
                kinds[inv.platform().index()] = true;
            }
        }
        for (i, hit) in kinds.into_iter().enumerate() {
            if hit {
                self.kind_tweets[i] += 1;
                self.kind_authors[i].insert(ct.tweet.author.0);
            }
        }
        self.line.clear();
        writeln!(
            self.line,
            "{}|seen={}|search={}|stream={}|control={}",
            ct.tweet.encode(),
            ct.seen_at.as_secs(),
            ct.via_search,
            ct.via_stream,
            ct.tweet.is_control
        )
        .unwrap();
        self.hasher.update(self.line.as_bytes());
    }

    /// Add one control tweet (global append order, after every
    /// collected tweet).
    pub(crate) fn add_control(&mut self, tw: &Tweet) {
        self.control_phase = true;
        self.control_total += 1;
        self.line.clear();
        writeln!(self.line, "ctl {}|control={}", tw.encode(), tw.is_control).unwrap();
        self.hasher.update(self.line.as_bytes());
    }

    pub(crate) fn finish(self) -> TweetRollup {
        let mut per_kind = [(0u64, 0u64); 3];
        for (i, slot) in per_kind.iter_mut().enumerate() {
            *slot = (self.kind_tweets[i], self.kind_authors[i].len() as u64);
        }
        TweetRollup {
            tweets_total: self.tweets_total,
            twitter_users: self.authors.len() as u64,
            per_kind,
            control_total: self.control_total,
            tweets_sha: to_hex(&self.hasher.finalize()),
        }
    }
}

/// The non-tweet inputs of the campaign report: every store that stays
/// resident under a memory budget, borrowed from wherever it lives
/// (the assembled dataset, or the live runner on a budgeted run).
pub(crate) struct ReportInputs<'a> {
    pub window: StudyWindow,
    pub groups: &'a [DiscoveryRecord],
    pub interner: &'a Interner,
    pub timelines: &'a TimelineStore,
    pub gaps: &'a GapLedger,
    pub quarantine: &'a [QuarantineEntry],
    pub joined: &'a [JoinedGroup],
    pub pii: &'a PiiStore,
    pub extraction: ExtractionStats,
    pub failed_requests: u64,
    pub accounts_used: [u16; 3],
    pub bot_join_rejected: bool,
    pub metrics: &'a Metrics,
}

impl ReportInputs<'_> {
    /// Group/join/message roll-up for one platform; the tweet columns
    /// come from the [`TweetRollup`].
    fn store_summary(&self, kind: PlatformKind) -> PlatformSummary {
        let group_urls = self.groups.iter().filter(|g| g.platform == kind).count() as u64;
        let mut joined_groups = 0u64;
        let mut messages = 0u64;
        let mut platform_users = 0u64;
        for jg in self.joined.iter().filter(|j| j.platform == kind) {
            joined_groups += 1;
            messages += jg.messages.len() as u64;
            platform_users += match kind {
                // WhatsApp: the member list itself.
                PlatformKind::WhatsApp => jg.members.len() as u64,
                // API platforms: the group size reported by the monitor
                // at the last alive observation.
                _ => self
                    .interner
                    .get(&jg.key)
                    .map(|s| s.index())
                    .and_then(|slot| self.timelines.get(slot))
                    .and_then(|t| t.size_span())
                    .map(|(_, last)| u64::from(last))
                    .unwrap_or(0),
            };
        }
        PlatformSummary {
            tweets: 0,
            twitter_users: 0,
            group_urls,
            joined_groups,
            messages,
            platform_users,
        }
    }

    /// The Table 2 bottom row, combining the streamed tweet roll-up
    /// with the resident stores.
    pub(crate) fn totals_with(&self, rollup: &TweetRollup) -> PlatformSummary {
        let per: Vec<PlatformSummary> = PlatformKind::ALL
            .into_iter()
            .map(|k| self.store_summary(k))
            .collect();
        PlatformSummary {
            tweets: rollup.tweets_total,
            twitter_users: rollup.twitter_users,
            group_urls: self.groups.len() as u64,
            joined_groups: per.iter().map(|p| p.joined_groups).sum(),
            messages: per.iter().map(|p| p.messages).sum(),
            platform_users: per.iter().map(|p| p.platform_users).sum(),
        }
    }
}

/// Render the canonical campaign report from a streamed tweet roll-up
/// plus the resident stores. [`Dataset::campaign_report`] (batch) and
/// the budgeted streaming path both funnel through here, so the two
/// are byte-identical by construction.
pub(crate) fn render_campaign_report(rollup: &TweetRollup, inp: &ReportInputs<'_>) -> String {
    // Hash a canonical multi-line serialization built by `f`.
    fn digest(f: impl FnOnce(&mut String)) -> String {
        let mut buf = String::new();
        f(&mut buf);
        let mut h = Sha256::new();
        h.update(buf.as_bytes());
        to_hex(&h.finalize())
    }

    let mut out = String::new();
    writeln!(out, "chatlens campaign report v1").unwrap();
    writeln!(out, "window_days: {}", inp.window.num_days()).unwrap();
    let t = inp.totals_with(rollup);
    writeln!(
        out,
        "totals: tweets={} users={} group_urls={} joined={} messages={} members={}",
        t.tweets, t.twitter_users, t.group_urls, t.joined_groups, t.messages, t.platform_users
    )
    .unwrap();
    for kind in PlatformKind::ALL {
        let s = inp.store_summary(kind);
        let (tweets, users) = rollup.per_kind[kind.index()];
        writeln!(
            out,
            "platform {}: tweets={} users={} group_urls={} joined={} messages={} members={}",
            kind.name(),
            tweets,
            users,
            s.group_urls,
            s.joined_groups,
            s.messages,
            s.platform_users
        )
        .unwrap();
    }
    writeln!(
        out,
        "extraction: urls_seen={} invites={} rejected={}",
        inp.extraction.urls_seen, inp.extraction.invites, inp.extraction.rejected
    )
    .unwrap();
    writeln!(out, "failed_requests: {}", inp.failed_requests).unwrap();
    writeln!(
        out,
        "accounts: wa={} tg={} dc={}",
        inp.accounts_used[0], inp.accounts_used[1], inp.accounts_used[2]
    )
    .unwrap();
    writeln!(out, "bot_join_rejected: {}", inp.bot_join_rejected).unwrap();
    writeln!(out, "control_tweets: {}", rollup.control_total).unwrap();
    writeln!(out, "tweets_sha256: {}", rollup.tweets_sha).unwrap();

    // Discovered groups, in discovery order.
    let groups_sha = digest(|buf| {
        for rec in inp.groups {
            writeln!(
                buf,
                "{}|url={}|at={}|tweet_at={}",
                rec.invite.dedup_key(),
                rec.invite.url(),
                rec.discovered_at.as_secs(),
                rec.first_tweet_at.as_secs()
            )
            .unwrap();
        }
    });
    writeln!(out, "groups_sha256: {groups_sha}").unwrap();

    // Monitor timelines: every observation and all landing metadata,
    // walked in discovery order (the canonical group order).
    let mut obs = 0u64;
    let mut revoked = 0u64;
    let mut failed = 0u64;
    let timelines_sha = digest(|buf| {
        for (slot, rec) in inp.groups.iter().enumerate() {
            let Some(tl) = inp.timelines.get(slot) else {
                continue;
            };
            write!(buf, "{}", rec.invite.dedup_key()).unwrap();
            if let Some(v) = &tl.title {
                write!(buf, "|title={v}").unwrap();
            }
            if let Some(v) = &tl.tg_kind {
                write!(buf, "|kind={v}").unwrap();
            }
            if let Some(v) = tl.dc_created_day {
                write!(buf, "|created={v}").unwrap();
            }
            if let Some(v) = tl.dc_creator {
                write!(buf, "|creator={v}").unwrap();
            }
            if let Some(v) = &tl.wa_creator_cc {
                write!(buf, "|cc={v}").unwrap();
            }
            if let Some(v) = &tl.wa_creator_hash {
                write!(buf, "|creator_hash={v}").unwrap();
            }
            buf.push('\n');
            for o in tl.iter() {
                obs += 1;
                match o.status {
                    ObservedStatus::Alive { size, online } => {
                        writeln!(buf, "  {} alive {size} {online}", o.day).unwrap()
                    }
                    ObservedStatus::Revoked => {
                        revoked += 1;
                        writeln!(buf, "  {} revoked", o.day).unwrap()
                    }
                    ObservedStatus::Failed => {
                        failed += 1;
                        writeln!(buf, "  {} failed", o.day).unwrap()
                    }
                }
            }
        }
    });
    writeln!(
        out,
        "timelines: groups={} observations={obs} revoked={revoked} failed={failed}",
        inp.timelines.len()
    )
    .unwrap();
    writeln!(out, "timelines_sha256: {timelines_sha}").unwrap();

    // Gap ledger, walked in discovery order.
    let mut gap_groups = 0u64;
    let mut gap_days = 0u64;
    let gaps_sha = digest(|buf| {
        for (slot, rec) in inp.groups.iter().enumerate() {
            let Some(days) = inp.gaps.get(slot) else {
                continue;
            };
            let key = rec.invite.dedup_key();
            gap_groups += 1;
            gap_days += days.len() as u64;
            write!(buf, "{key}:").unwrap();
            for d in days {
                write!(buf, " {d}").unwrap();
            }
            buf.push('\n');
        }
    });
    writeln!(out, "gaps: groups={gap_groups} days={gap_days}").unwrap();
    writeln!(out, "gaps_sha256: {gaps_sha}").unwrap();

    // Joined groups: membership and full message logs, in join order.
    let joined_sha = digest(|buf| {
        for jg in inp.joined {
            writeln!(
                buf,
                "{}|{}|gid={}|at={}|created={:?}|list={}",
                jg.key,
                jg.platform.name(),
                jg.group_id.0,
                jg.joined_at.as_secs(),
                jg.created_day,
                jg.member_list_available
            )
            .unwrap();
            for m in &jg.members {
                writeln!(
                    buf,
                    "  m {:?} {:?} {:?} {:?}",
                    m.user_id, m.phone_hash, m.country, m.linked
                )
                .unwrap();
            }
            for msg in &jg.messages {
                writeln!(
                    buf,
                    "  g {} {} {}",
                    msg.at.as_secs(),
                    msg.sender.0,
                    msg.kind.index()
                )
                .unwrap();
            }
        }
    });
    writeln!(out, "joined_sha256: {joined_sha}").unwrap();

    // Quarantine ledger, in ledger (component) order, plus per-code
    // counts in label order.
    let mut by_code: BTreeMap<&'static str, u64> = BTreeMap::new();
    let quarantine_sha = digest(|buf| {
        for e in inp.quarantine {
            *by_code.entry(e.code.label()).or_insert(0) += 1;
            writeln!(
                buf,
                "{}|{}|{}|day={}|{}|{}|{:?}",
                e.service,
                e.endpoint,
                e.group,
                e.day,
                e.code.label(),
                e.detail,
                e.body
            )
            .unwrap();
        }
    });
    writeln!(out, "quarantine: entries={}", inp.quarantine.len()).unwrap();
    for (label, n) in &by_code {
        writeln!(out, "quarantine[{label}]: {n}").unwrap();
    }
    writeln!(out, "quarantine_sha256: {quarantine_sha}").unwrap();

    // PII store: unordered sets rendered sorted (canonical form).
    let pii_sha = digest(|buf| {
        let mut wa_creators: Vec<&String> = inp.pii.wa_creator_hashes.iter().collect();
        wa_creators.sort();
        let mut wa_members: Vec<&String> = inp.pii.wa_member_hashes.iter().collect();
        wa_members.sort();
        let mut tg_users: Vec<&u32> = inp.pii.tg_users_observed.iter().collect();
        tg_users.sort();
        let mut tg_phones: Vec<&String> = inp.pii.tg_phone_hashes.iter().collect();
        tg_phones.sort();
        let mut dc_users: Vec<&u32> = inp.pii.dc_users_observed.iter().collect();
        dc_users.sort();
        let mut dc_linked: Vec<&u32> = inp.pii.dc_users_with_link.iter().collect();
        dc_linked.sort();
        writeln!(buf, "wa_creators {wa_creators:?}").unwrap();
        writeln!(buf, "wa_countries {:?}", inp.pii.wa_creator_countries).unwrap();
        writeln!(buf, "wa_members {wa_members:?}").unwrap();
        writeln!(buf, "tg_users {tg_users:?}").unwrap();
        writeln!(buf, "tg_phones {tg_phones:?}").unwrap();
        writeln!(buf, "dc_users {dc_users:?}").unwrap();
        writeln!(buf, "dc_linked {dc_linked:?}").unwrap();
        writeln!(buf, "dc_counts {:?}", inp.pii.dc_linked_counts).unwrap();
    });
    writeln!(out, "pii_sha256: {pii_sha}").unwrap();

    // Deterministic counters (wall-clock timings excluded by name).
    let counters_sha = digest(|buf| {
        for (name, v) in inp.metrics.counters() {
            if name.ends_with(".micros") {
                continue;
            }
            writeln!(buf, "{name}={v}").unwrap();
        }
    });
    writeln!(out, "counters_sha256: {counters_sha}").unwrap();
    out
}
