//! Checkpointable campaign state: the [`CampaignState`] snapshot payload
//! and its conversions to/from the live pipeline components.
//!
//! A snapshot captures exactly what the campaign *mutates*; everything
//! derivable from `(seed, config)` — the world population, the tweet
//! store, lookup indexes — is rebuilt on resume instead of being stored.
//! The split per component:
//!
//! | component | stored | rebuilt |
//! |-----------|--------|---------|
//! | engine    | clock, event count, pending events | — |
//! | transport | 4 × bucket fill / RNG position / trace | client configs |
//! | discovery | tweets, groups, symbol table, cursors, stats | tweet index, key→sym map |
//! | monitor   | timelines, terminal slots, gap ledger | parse pool |
//! | joiner    | joined groups, account counters | — |
//! | pii       | hashes and counts (sorted) | `HashSet` form |
//! | ecosystem | [`EcosystemDelta`] | the whole world |
//!
//! Unordered sets are exported in sorted order, so the same logical state
//! always encodes to the same bytes — snapshot files of equal states are
//! byte-equal, which the determinism suite exploits directly.

use crate::budget::{BudgetState, SpillableLog};
use crate::discovery::{CollectedTweet, Discovery, DiscoveryRecord};
use crate::fold::{DayMark, FoldLedger};
use crate::joiner::{JoinStrategy, JoinedGroup, Joiner, MemberRecord};
use crate::monitor::{GapLedger, GroupTimeline, Monitor, ObservedStatus, TimelineStore};
use crate::patterns::ExtractionStats;
use crate::pii::PiiStore;
use crate::quarantine::{QuarantineCode, QuarantineEntry};
use crate::study::{CampaignConfig, CampaignEvent};
use chatlens_checkpoint::{persist_struct, CheckpointError, Persist, Reader, Writer};
use chatlens_simnet::metrics::Metrics;
use chatlens_simnet::par::Pool;
use chatlens_simnet::time::SimTime;
use chatlens_simnet::transport::ClientState;
use chatlens_simnet::Engine;
use chatlens_twitter::Tweet;
use chatlens_workload::ecosystem::EcosystemDelta;
use chatlens_workload::ScenarioConfig;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// The virtual clock and pending event queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineState {
    /// Clock position (the day-boundary instant at a scheduled save).
    pub now: SimTime,
    /// Lifetime count of processed events.
    pub processed: u64,
    /// Pending events in delivery order, as exported by
    /// [`Engine::pending_events`].
    pub pending: Vec<(SimTime, CampaignEvent)>,
}

impl EngineState {
    /// Capture an engine's restorable state.
    pub fn capture(engine: &Engine<CampaignEvent>) -> EngineState {
        EngineState {
            now: engine.now(),
            processed: engine.processed(),
            pending: engine.pending_events(),
        }
    }

    /// Rebuild the engine. Pending events are re-scheduled in order, so
    /// fresh sequence numbers reproduce the original pop order.
    pub fn restore(&self) -> Engine<CampaignEvent> {
        Engine::restore(self.now, self.processed, self.pending.clone())
    }
}

// A custom impl rather than `persist_struct!`: the pending queue must be
// validated against `now` on load, because `Engine::restore` treats a
// past-dated event as a logic bug and panics — a malformed snapshot has
// to fail before reaching it.
impl Persist for EngineState {
    fn save(&self, w: &mut Writer) {
        self.now.save(w);
        self.processed.save(w);
        self.pending.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let now = SimTime::load(r)?;
        let processed = u64::load(r)?;
        let pending = Vec::<(SimTime, CampaignEvent)>::load(r)?;
        if pending.iter().any(|&(at, _)| at < now) {
            return Err(CheckpointError::Malformed(
                "pending event scheduled before the snapshot clock".into(),
            ));
        }
        if pending.windows(2).any(|w| w[0].0 > w[1].0) {
            return Err(CheckpointError::Malformed(
                "pending events out of delivery order".into(),
            ));
        }
        Ok(EngineState {
            now,
            processed,
            pending,
        })
    }
}

/// The discovery component's accumulated data and feed cursors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveryState {
    /// Per-host Search API `since_id` watermarks.
    pub since_id: [Option<u64>; 6],
    /// Resident tail of the collected tweet log (v6: a budgeted run may
    /// have spilled the cold prefix to disk; `tweets_base` counts it).
    pub tweets: Vec<CollectedTweet>,
    /// Resident tail of the control-sample log (see `control_base`).
    pub control: Vec<Tweet>,
    /// Spilled tweet-prefix length: the global index of `tweets[0]`.
    /// Zero on unbudgeted runs.
    pub tweets_base: u64,
    /// Spilled control-prefix length, like `tweets_base`.
    pub control_base: u64,
    /// Discovered groups in discovery order.
    pub groups: Vec<DiscoveryRecord>,
    /// URL extraction totals.
    pub stats: ExtractionStats,
    /// Last Streaming API drain instant.
    pub last_stream_drain: SimTime,
    /// Last 1%-sample drain instant.
    pub last_sample_drain: SimTime,
    /// Transport failures that cost data.
    pub failed_requests: u64,
    /// Stream windows queued for backfill.
    pub pending_stream: Vec<(SimTime, SimTime)>,
    /// Sample windows queued for backfill.
    pub pending_sample: Vec<(SimTime, SimTime)>,
    /// Rejected feed bodies with provenance.
    pub quarantine: Vec<QuarantineEntry>,
    /// The group-key symbol table in interning order. Symbol `i` is the
    /// dedup key of `groups[i]` — the snapshot carries it explicitly so a
    /// loader can verify the dense-id invariant instead of assuming it.
    pub symbols: Vec<String>,
}

// A custom impl rather than `persist_struct!`: group slots double as
// interned symbol ids everywhere downstream (timelines, gap ledger), so
// a snapshot whose symbol table disagrees with its group list would
// silently attach observations to the wrong groups. Validate the
// correspondence at load, before any component is rebuilt on top of it.
impl Persist for DiscoveryState {
    fn save(&self, w: &mut Writer) {
        self.since_id.save(w);
        self.tweets.save(w);
        self.control.save(w);
        self.groups.save(w);
        self.stats.save(w);
        self.last_stream_drain.save(w);
        self.last_sample_drain.save(w);
        self.failed_requests.save(w);
        self.pending_stream.save(w);
        self.pending_sample.save(w);
        self.quarantine.save(w);
        self.symbols.save(w);
        self.tweets_base.save(w);
        self.control_base.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let since_id = <[Option<u64>; 6]>::load(r)?;
        let tweets = Vec::<CollectedTweet>::load(r)?;
        let control = Vec::<Tweet>::load(r)?;
        let groups = Vec::<DiscoveryRecord>::load(r)?;
        let stats = ExtractionStats::load(r)?;
        let last_stream_drain = SimTime::load(r)?;
        let last_sample_drain = SimTime::load(r)?;
        let failed_requests = u64::load(r)?;
        let pending_stream = Vec::<(SimTime, SimTime)>::load(r)?;
        let pending_sample = Vec::<(SimTime, SimTime)>::load(r)?;
        let quarantine = Vec::<QuarantineEntry>::load(r)?;
        let symbols = Vec::<String>::load(r)?;
        let tweets_base = u64::load(r)?;
        let control_base = u64::load(r)?;
        if symbols.len() != groups.len() {
            return Err(CheckpointError::Malformed(format!(
                "symbol table has {} entries for {} groups",
                symbols.len(),
                groups.len()
            )));
        }
        for (i, (sym, g)) in symbols.iter().zip(&groups).enumerate() {
            if *sym != g.invite.dedup_key() {
                return Err(CheckpointError::Malformed(format!(
                    "symbol {i} is {sym:?} but group {i} has key {:?}",
                    g.invite.dedup_key()
                )));
            }
        }
        Ok(DiscoveryState {
            since_id,
            tweets,
            control,
            tweets_base,
            control_base,
            groups,
            stats,
            last_stream_drain,
            last_sample_drain,
            failed_requests,
            pending_stream,
            pending_sample,
            quarantine,
            symbols,
        })
    }
}

impl DiscoveryState {
    /// Capture a discovery component.
    pub fn capture(d: &Discovery) -> DiscoveryState {
        let (since_id, last_stream_drain, last_sample_drain) = d.cursors();
        DiscoveryState {
            since_id,
            tweets: d.tweets.resident().to_vec(),
            control: d.control.resident().to_vec(),
            tweets_base: d.tweets.base() as u64,
            control_base: d.control.base() as u64,
            groups: d.groups.clone(),
            stats: d.stats,
            last_stream_drain,
            last_sample_drain,
            failed_requests: d.failed_requests,
            pending_stream: d.pending_stream.clone(),
            pending_sample: d.pending_sample.clone(),
            quarantine: d.quarantine.clone(),
            symbols: d.interner().symbols().to_vec(),
        }
    }

    /// Rebuild the component (lookup indexes are derived on the way in;
    /// `start` is the window start, pure config the quarantine ledger
    /// stamps day provenance against).
    pub fn restore(&self, start: SimTime) -> Discovery {
        Discovery::from_parts(
            start,
            self.since_id,
            SpillableLog::from_parts(self.tweets_base as usize, self.tweets.clone()),
            SpillableLog::from_parts(self.control_base as usize, self.control.clone()),
            self.groups.clone(),
            self.stats,
            self.last_stream_drain,
            self.last_sample_drain,
            self.failed_requests,
            self.pending_stream.clone(),
            self.pending_sample.clone(),
            self.quarantine.clone(),
        )
    }
}

/// The monitor's per-group timelines and terminal set.
///
/// Keys are *group slots* (discovery-order indexes, equal to the interned
/// symbol ids carried by [`DiscoveryState::symbols`]), not dedup-key
/// strings. Only populated slots are written, in ascending slot order, so
/// padding `None` slots never affect the encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorState {
    /// `(slot, timeline)` pairs for groups with at least one observation,
    /// ascending by slot.
    pub timelines: Vec<(u32, GroupTimeline)>,
    /// Slots no longer polled (observed revoked), ascending.
    pub terminal: Vec<u32>,
    /// `(slot, censored days)` pairs for groups with at least one gap,
    /// ascending by slot.
    pub gaps: Vec<(u32, Vec<u32>)>,
    /// Rejected landing/invite bodies with provenance.
    pub quarantine: Vec<QuarantineEntry>,
}

persist_struct!(MonitorState {
    timelines,
    terminal,
    gaps,
    quarantine
});

impl MonitorState {
    /// Capture a monitor.
    pub fn capture(m: &Monitor) -> MonitorState {
        MonitorState {
            timelines: m.timelines.entries(),
            terminal: m.terminal_slots(),
            gaps: m.gaps.entries(),
            quarantine: m.quarantine.clone(),
        }
    }

    /// Rebuild the monitor around `pool` (thread count is a run-time
    /// choice, not state — any value yields the same observations).
    pub fn restore(&self, pool: Pool) -> Monitor {
        Monitor::from_parts(
            TimelineStore::from_entries(self.timelines.clone()),
            self.terminal.clone(),
            GapLedger::from_entries(self.gaps.clone()),
            self.quarantine.clone(),
            pool,
        )
    }
}

/// The joiner's ledger of joined groups and account bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinerState {
    /// Joined groups with their collected contents.
    pub joined: Vec<JoinedGroup>,
    /// Accounts opened per platform.
    pub accounts_used: [u16; 3],
    /// Join attempts refused because the URL was dead.
    pub dead_at_join: u64,
    /// Whether the Discord bot-join probe was rejected.
    pub bot_join_rejected: bool,
    /// Collection fetches lost to transport failures.
    pub failed_fetches: u64,
    /// Rejected join/collection bodies with provenance.
    pub quarantine: Vec<QuarantineEntry>,
}

persist_struct!(JoinerState {
    joined,
    accounts_used,
    dead_at_join,
    bot_join_rejected,
    failed_fetches,
    quarantine
});

impl JoinerState {
    /// Capture a joiner.
    pub fn capture(j: &Joiner) -> JoinerState {
        JoinerState {
            joined: j.joined.clone(),
            accounts_used: j.accounts_used,
            dead_at_join: j.dead_at_join,
            bot_join_rejected: j.bot_join_rejected,
            failed_fetches: j.failed_fetches,
            quarantine: j.quarantine.clone(),
        }
    }

    /// Rebuild the joiner.
    pub fn restore(&self) -> Joiner {
        Joiner {
            joined: self.joined.clone(),
            accounts_used: self.accounts_used,
            dead_at_join: self.dead_at_join,
            bot_join_rejected: self.bot_join_rejected,
            failed_fetches: self.failed_fetches,
            quarantine: self.quarantine.clone(),
        }
    }
}

/// The PII store with every unordered set flattened to a sorted `Vec`, so
/// the encoding is canonical (equal stores → equal bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PiiState {
    /// WhatsApp creator phone hashes, sorted.
    pub wa_creator_hashes: Vec<String>,
    /// WhatsApp creator country-code counts.
    pub wa_creator_countries: BTreeMap<String, u64>,
    /// WhatsApp member phone hashes, sorted.
    pub wa_member_hashes: Vec<String>,
    /// Telegram user ids observed, sorted.
    pub tg_users_observed: Vec<u32>,
    /// Telegram phone hashes, sorted.
    pub tg_phone_hashes: Vec<String>,
    /// Discord user ids observed, sorted.
    pub dc_users_observed: Vec<u32>,
    /// Discord users with a connected account, sorted.
    pub dc_users_with_link: Vec<u32>,
    /// Connected-account counts per external platform.
    pub dc_linked_counts: BTreeMap<String, u64>,
}

persist_struct!(PiiState {
    wa_creator_hashes,
    wa_creator_countries,
    wa_member_hashes,
    tg_users_observed,
    tg_phone_hashes,
    dc_users_observed,
    dc_users_with_link,
    dc_linked_counts
});

impl PiiState {
    /// Capture a PII store, sorting every set.
    pub fn capture(p: &PiiStore) -> PiiState {
        PiiState {
            wa_creator_hashes: sorted_strings(p.wa_creator_hashes.iter()),
            wa_creator_countries: p.wa_creator_countries.clone(),
            wa_member_hashes: sorted_strings(p.wa_member_hashes.iter()),
            tg_users_observed: sorted_ids(p.tg_users_observed.iter()),
            tg_phone_hashes: sorted_strings(p.tg_phone_hashes.iter()),
            dc_users_observed: sorted_ids(p.dc_users_observed.iter()),
            dc_users_with_link: sorted_ids(p.dc_users_with_link.iter()),
            dc_linked_counts: p.dc_linked_counts.clone(),
        }
    }

    /// Rebuild the store (`Vec`s fold back into hash sets).
    pub fn restore(&self) -> PiiStore {
        PiiStore {
            wa_creator_hashes: self.wa_creator_hashes.iter().cloned().collect(),
            wa_creator_countries: self.wa_creator_countries.clone(),
            wa_member_hashes: self.wa_member_hashes.iter().cloned().collect(),
            tg_users_observed: self.tg_users_observed.iter().copied().collect(),
            tg_phone_hashes: self.tg_phone_hashes.iter().cloned().collect(),
            dc_users_observed: self.dc_users_observed.iter().copied().collect(),
            dc_users_with_link: self.dc_users_with_link.iter().copied().collect(),
            dc_linked_counts: self.dc_linked_counts.clone(),
        }
    }
}

/// Sort a set of strings into a canonical `Vec` (via `BTreeSet`, lint D2).
fn sorted_strings<'a>(it: impl Iterator<Item = &'a String>) -> Vec<String> {
    it.cloned()
        .collect::<BTreeSet<String>>()
        .into_iter()
        .collect()
}

/// Sort a set of ids into a canonical `Vec` (via `BTreeSet`, lint D2).
fn sorted_ids<'a>(it: impl Iterator<Item = &'a u32>) -> Vec<u32> {
    it.copied().collect::<BTreeSet<u32>>().into_iter().collect()
}

// Core enums and records referenced by the states above.

impl Persist for CampaignEvent {
    fn save(&self, w: &mut Writer) {
        match self {
            CampaignEvent::Search => w.put_u8(0),
            CampaignEvent::StreamDrain => w.put_u8(1),
            CampaignEvent::SampleDrain => w.put_u8(2),
            CampaignEvent::Monitor { day } => {
                w.put_u8(3);
                day.save(w);
            }
            CampaignEvent::Join => w.put_u8(4),
            CampaignEvent::Collect => w.put_u8(5),
            CampaignEvent::Backfill { day } => {
                w.put_u8(6);
                day.save(w);
            }
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match r.get_u8()? {
            0 => Ok(CampaignEvent::Search),
            1 => Ok(CampaignEvent::StreamDrain),
            2 => Ok(CampaignEvent::SampleDrain),
            3 => Ok(CampaignEvent::Monitor { day: u32::load(r)? }),
            4 => Ok(CampaignEvent::Join),
            5 => Ok(CampaignEvent::Collect),
            6 => Ok(CampaignEvent::Backfill { day: u32::load(r)? }),
            n => Err(CheckpointError::Malformed(format!("CampaignEvent tag {n}"))),
        }
    }
}

impl Persist for JoinStrategy {
    fn save(&self, w: &mut Writer) {
        match self {
            JoinStrategy::Uniform => w.put_u8(0),
            JoinStrategy::SizeBiased => w.put_u8(1),
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match r.get_u8()? {
            0 => Ok(JoinStrategy::Uniform),
            1 => Ok(JoinStrategy::SizeBiased),
            n => Err(CheckpointError::Malformed(format!("JoinStrategy tag {n}"))),
        }
    }
}

impl Persist for ObservedStatus {
    fn save(&self, w: &mut Writer) {
        match self {
            ObservedStatus::Alive { size, online } => {
                w.put_u8(0);
                size.save(w);
                online.save(w);
            }
            ObservedStatus::Revoked => w.put_u8(1),
            ObservedStatus::Failed => w.put_u8(2),
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match r.get_u8()? {
            0 => Ok(ObservedStatus::Alive {
                size: u32::load(r)?,
                online: u32::load(r)?,
            }),
            1 => Ok(ObservedStatus::Revoked),
            2 => Ok(ObservedStatus::Failed),
            n => Err(CheckpointError::Malformed(format!(
                "ObservedStatus tag {n}"
            ))),
        }
    }
}

impl Persist for QuarantineCode {
    fn save(&self, w: &mut Writer) {
        w.put_u8(match self {
            QuarantineCode::WrongKind => 0,
            QuarantineCode::MalformedLine => 1,
            QuarantineCode::MissingField => 2,
            QuarantineCode::BadNumber => 3,
            QuarantineCode::TooLarge => 4,
            QuarantineCode::DuplicateField => 5,
            QuarantineCode::CountMismatch => 6,
            QuarantineCode::SpliceMismatch => 7,
            QuarantineCode::BadPayload => 8,
        });
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match r.get_u8()? {
            0 => Ok(QuarantineCode::WrongKind),
            1 => Ok(QuarantineCode::MalformedLine),
            2 => Ok(QuarantineCode::MissingField),
            3 => Ok(QuarantineCode::BadNumber),
            4 => Ok(QuarantineCode::TooLarge),
            5 => Ok(QuarantineCode::DuplicateField),
            6 => Ok(QuarantineCode::CountMismatch),
            7 => Ok(QuarantineCode::SpliceMismatch),
            8 => Ok(QuarantineCode::BadPayload),
            n => Err(CheckpointError::Malformed(format!(
                "QuarantineCode tag {n}"
            ))),
        }
    }
}

persist_struct!(QuarantineEntry {
    service,
    endpoint,
    group,
    day,
    code,
    detail,
    body
});

// A custom impl rather than `persist_struct!`: the timeline's day and
// status columns are parallel arrays with a strictly-increasing day
// invariant that every binary-search lookup relies on. A snapshot that
// breaks either property must fail at load, not at first query.
impl Persist for GroupTimeline {
    fn save(&self, w: &mut Writer) {
        self.days.save(w);
        self.statuses.save(w);
        self.title.save(w);
        self.tg_kind.save(w);
        self.dc_created_day.save(w);
        self.dc_creator.save(w);
        self.wa_creator_cc.save(w);
        self.wa_creator_hash.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let days = Vec::<u32>::load(r)?;
        let statuses = Vec::<ObservedStatus>::load(r)?;
        if days.len() != statuses.len() {
            return Err(CheckpointError::Malformed(format!(
                "timeline has {} days but {} statuses",
                days.len(),
                statuses.len()
            )));
        }
        if days.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CheckpointError::Malformed(
                "timeline day column not strictly increasing".into(),
            ));
        }
        Ok(GroupTimeline {
            days,
            statuses,
            title: Option::<String>::load(r)?,
            tg_kind: Option::<String>::load(r)?,
            dc_created_day: Option::<i64>::load(r)?,
            dc_creator: Option::<u32>::load(r)?,
            wa_creator_cc: Option::<String>::load(r)?,
            wa_creator_hash: Option::<String>::load(r)?,
        })
    }
}
persist_struct!(DiscoveryRecord {
    invite,
    platform,
    discovered_at,
    first_tweet_at
});
persist_struct!(CollectedTweet {
    tweet,
    seen_at,
    via_search,
    via_stream
});
persist_struct!(ExtractionStats {
    urls_seen,
    invites,
    rejected
});
persist_struct!(MemberRecord {
    user_id,
    phone_hash,
    country,
    linked
});
persist_struct!(JoinedGroup {
    platform,
    key,
    group_id,
    joined_at,
    created_day,
    members,
    member_list_available,
    messages
});
persist_struct!(CampaignConfig {
    join_day,
    search_interval_hours,
    monitor_interval_days,
    use_search,
    use_stream,
    join_strategy,
    faults,
    profile,
    outages,
    corruption,
    seed,
    threads
});

/// Everything needed to resume a campaign mid-flight: the scenario (to
/// rebuild the world), the campaign knobs, and the mutated state of every
/// pipeline component at a day boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignState {
    /// World scenario — resume rebuilds the ecosystem from this.
    pub scenario: ScenarioConfig,
    /// Campaign knobs. `threads` may be changed before resuming; the
    /// dataset is bit-identical at any value.
    pub campaign: CampaignConfig,
    /// Number of completed study days (also the next day index to run).
    pub day: u32,
    /// Clock and pending events.
    pub engine: EngineState,
    /// Campaign RNG stream position (join sampling).
    pub rng: [u64; 4],
    /// Transport clients: Twitter, WhatsApp, Telegram, Discord.
    pub clients: [ClientState; 4],
    /// Discovery ledger and cursors.
    pub discovery: DiscoveryState,
    /// Monitor timelines and terminal set.
    pub monitor: MonitorState,
    /// Join ledger.
    pub joiner: JoinerState,
    /// PII accounting (sorted canonical form).
    pub pii: PiiState,
    /// Metrics registry. Counters ending `.micros` are wall-clock and
    /// differ across runs; [`Metrics::strip_wall_clock`] normalizes.
    pub metrics: Metrics,
    /// Per-day collection cursor marks, one per completed day (format
    /// v5). Recorded by every run — they delimit day slices for the
    /// incremental analysis folds and `Dataset::day_slice`.
    pub marks: Vec<DayMark>,
    /// Folded analysis state (format v5). `Some` when the snapshot was
    /// written by an incremental (`--analysis incremental`) run; batch
    /// runs write `None`. Resuming incrementally requires it — the
    /// folds' inputs are never replayed from raw history.
    pub folds: Option<FoldLedger>,
    /// Campaign-mutated slice of the ecosystem.
    pub delta: EcosystemDelta,
    /// Memory-budget accountant state (format v6). `Some` when the
    /// snapshot was written under `--mem-budget`; carries the limit,
    /// accounting floor, per-day encoded sizes and the spill-partition
    /// manifest so a resume stays byte-identical.
    pub budget: Option<BudgetState>,
}

persist_struct!(CampaignState {
    scenario,
    campaign,
    day,
    engine,
    rng,
    clients,
    discovery,
    monitor,
    joiner,
    pii,
    metrics,
    marks,
    folds,
    delta,
    budget
});

/// Human-readable digest of a snapshot for `repro checkpoint inspect`,
/// rendered as JSON via the workspace serializer (the `counters` map is
/// the workspace's one serialized map — `config_io` grew map support for
/// it).
#[derive(Debug, Serialize)]
pub struct SnapshotSummary {
    /// Snapshot format generation
    /// ([`chatlens_checkpoint::FORMAT_VERSION`]).
    pub format_version: u32,
    /// Completed study days.
    pub day: u32,
    /// Virtual clock, seconds since the simulation epoch.
    pub sim_now_secs: u64,
    /// Events processed so far.
    pub events_processed: u64,
    /// Events still pending.
    pub events_pending: usize,
    /// Pattern-matched tweets collected.
    pub tweets_collected: usize,
    /// Control-sample tweets collected.
    pub control_tweets: usize,
    /// Groups discovered.
    pub groups_discovered: usize,
    /// Groups with at least one monitor observation.
    pub groups_monitored: usize,
    /// Groups joined.
    pub groups_joined: usize,
    /// World seed of the scenario.
    pub world_seed: u64,
    /// Campaign seed.
    pub campaign_seed: u64,
    /// Worker threads the saved run used.
    pub threads: usize,
    /// Payload-corruption profile the saved run used.
    pub corruption: String,
    /// Quarantined bodies in the discovery ledger.
    pub quarantined_discovery: usize,
    /// Quarantined bodies in the monitor ledger.
    pub quarantined_monitor: usize,
    /// Quarantined bodies in the joiner ledger.
    pub quarantined_joiner: usize,
    /// Analyses carried in the fold ledger (0 for batch snapshots).
    pub folds: usize,
    /// Encoded fold-state bytes, keyed by fold name (empty for batch
    /// snapshots). The `repro checkpoint inspect` per-fold size report.
    pub fold_state_bytes: BTreeMap<String, u64>,
    /// Spilled day-partitions on disk (0 for unbudgeted snapshots).
    pub spill_partitions: usize,
    /// Total encoded bytes across all spill partitions.
    pub spill_bytes: u64,
    /// Per-day spill inventory: `dayNNN` → encoded partition bytes
    /// (empty for unbudgeted snapshots).
    pub spill_day_bytes: BTreeMap<String, u64>,
    /// Deterministic metric counters (wall-clock timings excluded).
    pub counters: BTreeMap<String, u64>,
}

impl CampaignState {
    /// Build the inspect digest for this snapshot.
    pub fn summary(&self) -> SnapshotSummary {
        SnapshotSummary {
            format_version: chatlens_checkpoint::FORMAT_VERSION,
            day: self.day,
            sim_now_secs: self.engine.now.0,
            events_processed: self.engine.processed,
            events_pending: self.engine.pending.len(),
            tweets_collected: self.discovery.tweets.len() + self.discovery.tweets_base as usize,
            control_tweets: self.discovery.control.len() + self.discovery.control_base as usize,
            groups_discovered: self.discovery.groups.len(),
            groups_monitored: self.monitor.timelines.len(),
            groups_joined: self.joiner.joined.len(),
            world_seed: self.scenario.seed,
            campaign_seed: self.campaign.seed,
            threads: self.campaign.threads,
            corruption: self.campaign.corruption.name().to_string(),
            quarantined_discovery: self.discovery.quarantine.len(),
            quarantined_monitor: self.monitor.quarantine.len(),
            quarantined_joiner: self.joiner.quarantine.len(),
            folds: self.folds.as_ref().map_or(0, |l| l.entries.len()),
            fold_state_bytes: self
                .folds
                .as_ref()
                .map(|l| {
                    l.state_sizes()
                        .map(|(name, bytes)| (name.to_string(), bytes))
                        .collect()
                })
                .unwrap_or_default(),
            spill_partitions: self.budget.as_ref().map_or(0, |b| b.manifest.len()),
            spill_bytes: self
                .budget
                .as_ref()
                .map_or(0, |b| b.manifest.iter().map(|p| p.encoded_bytes).sum()),
            spill_day_bytes: self
                .budget
                .as_ref()
                .map(|b| {
                    b.manifest
                        .iter()
                        .map(|p| (format!("day{:03}", p.day), p.encoded_bytes))
                        .collect()
                })
                .unwrap_or_default(),
            counters: self
                .metrics
                .counters()
                .filter(|(name, _)| !name.ends_with(".micros"))
                .map(|(name, v)| (name.to_string(), v))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_checkpoint::{decode_snapshot, encode_snapshot};

    #[test]
    fn pii_state_round_trips_and_is_sorted() {
        let mut store = PiiStore::new();
        store.record_wa_creator("+5511999990000", "BR");
        store.record_wa_creator("+4915112345678", "DE");
        store.record_wa_member("+5511999990001");
        store.record_tg_user(9, Some("+34600000000"));
        store.record_tg_user(3, None);
        store.record_dc_user(7, &["steam".to_string(), "twitch".to_string()]);
        store.record_dc_user(2, &[]);
        let state = PiiState::capture(&store);
        assert!(state.tg_users_observed.windows(2).all(|w| w[0] < w[1]));
        assert!(state.wa_creator_hashes.windows(2).all(|w| w[0] < w[1]));
        let back: PiiState = decode_snapshot(&encode_snapshot(&state)).unwrap();
        assert_eq!(back, state);
        let restored = state.restore();
        assert_eq!(PiiState::capture(&restored), state);
    }

    #[test]
    fn engine_state_rejects_impossible_queues() {
        // An event before the clock.
        let mut w = chatlens_checkpoint::Writer::new();
        SimTime(100).save(&mut w);
        5u64.save(&mut w);
        vec![(SimTime(50), CampaignEvent::Join)].save(&mut w);
        let bytes = w.into_bytes();
        assert!(matches!(
            EngineState::load(&mut chatlens_checkpoint::Reader::new(&bytes)),
            Err(CheckpointError::Malformed(_))
        ));
        // Events out of delivery order.
        let mut w = chatlens_checkpoint::Writer::new();
        SimTime(10).save(&mut w);
        0u64.save(&mut w);
        vec![
            (SimTime(30), CampaignEvent::Search),
            (SimTime(20), CampaignEvent::Collect),
        ]
        .save(&mut w);
        let bytes = w.into_bytes();
        assert!(matches!(
            EngineState::load(&mut chatlens_checkpoint::Reader::new(&bytes)),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn campaign_events_round_trip() {
        let events = vec![
            CampaignEvent::Search,
            CampaignEvent::StreamDrain,
            CampaignEvent::SampleDrain,
            CampaignEvent::Monitor { day: 17 },
            CampaignEvent::Join,
            CampaignEvent::Collect,
        ];
        let back: Vec<CampaignEvent> = decode_snapshot(&encode_snapshot(&events)).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn campaign_config_round_trips() {
        let config = CampaignConfig::default();
        let back: CampaignConfig = decode_snapshot(&encode_snapshot(&config)).unwrap();
        assert_eq!(back.join_day, config.join_day);
        assert_eq!(back.seed, config.seed);
        assert_eq!(back.threads, config.threads);
        assert_eq!(back.faults, config.faults);
    }

    #[test]
    fn monitor_state_round_trips_sparse_slots() {
        let mut tl = GroupTimeline::default();
        tl.push(
            3,
            ObservedStatus::Alive {
                size: 10,
                online: 2,
            },
        );
        tl.push(5, ObservedStatus::Revoked);
        let state = MonitorState {
            timelines: vec![(4, tl)],
            terminal: vec![4],
            gaps: vec![(4, vec![1, 2])],
            quarantine: Vec::new(),
        };
        let back: MonitorState = decode_snapshot(&encode_snapshot(&state)).unwrap();
        assert_eq!(back, state);
        // restore → capture drops nothing and re-sorts nothing: slots 0-3
        // are padding in the store, absent from the re-captured entries.
        let restored = state.restore(Pool::new(1));
        assert_eq!(MonitorState::capture(&restored), state);
    }

    #[test]
    fn timeline_snapshots_reject_broken_columns() {
        // Day and status columns of different lengths.
        let mut w = chatlens_checkpoint::Writer::new();
        vec![1u32, 2].save(&mut w);
        vec![ObservedStatus::Revoked].save(&mut w);
        for _ in 0..6 {
            Option::<String>::None.save(&mut w);
        }
        let bytes = w.into_bytes();
        assert!(matches!(
            GroupTimeline::load(&mut chatlens_checkpoint::Reader::new(&bytes)),
            Err(CheckpointError::Malformed(_))
        ));
        // A day column that is not strictly increasing.
        let mut w = chatlens_checkpoint::Writer::new();
        vec![2u32, 2].save(&mut w);
        vec![ObservedStatus::Revoked, ObservedStatus::Revoked].save(&mut w);
        for _ in 0..6 {
            Option::<String>::None.save(&mut w);
        }
        let bytes = w.into_bytes();
        assert!(matches!(
            GroupTimeline::load(&mut chatlens_checkpoint::Reader::new(&bytes)),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn discovery_snapshots_reject_symbol_drift() {
        let invite =
            chatlens_platforms::invite::parse_invite_url("https://discord.com/invite/abc123XY")
                .unwrap();
        let rec = DiscoveryRecord {
            platform: invite.platform(),
            invite,
            discovered_at: SimTime(0),
            first_tweet_at: SimTime(0),
        };
        let good_key = rec.invite.dedup_key();
        let mut state = DiscoveryState {
            since_id: [None; 6],
            tweets: Vec::new(),
            control: Vec::new(),
            groups: vec![rec],
            stats: ExtractionStats::default(),
            last_stream_drain: SimTime(0),
            last_sample_drain: SimTime(0),
            failed_requests: 0,
            pending_stream: Vec::new(),
            pending_sample: Vec::new(),
            quarantine: Vec::new(),
            symbols: vec![good_key.clone()],
            tweets_base: 0,
            control_base: 0,
        };
        let back: DiscoveryState = decode_snapshot(&encode_snapshot(&state)).unwrap();
        assert_eq!(back, state);
        // A symbol that disagrees with its group's dedup key.
        state.symbols = vec!["0:WRONG".to_string()];
        assert!(matches!(
            decode_snapshot::<DiscoveryState>(&encode_snapshot(&state)),
            Err(CheckpointError::Malformed(_))
        ));
        // A symbol table of the wrong length.
        state.symbols = vec![good_key, "1:EXTRA".to_string()];
        assert!(matches!(
            decode_snapshot::<DiscoveryState>(&encode_snapshot(&state)),
            Err(CheckpointError::Malformed(_))
        ));
    }

    mod properties {
        use crate::intern::Interner;
        use chatlens_checkpoint::{decode_snapshot, encode_snapshot};
        use proptest::{collection::vec, prop_assert_eq, proptest};

        proptest! {
            /// The interner survives the real snapshot codec: persist the
            /// symbol column, decode it, rebuild with `from_symbols`, and
            /// every id/string mapping is intact.
            #[test]
            fn interner_round_trips_through_snapshot_codec(
                words in vec("[a-z0-9:]{1,12}", 0..48),
            ) {
                let mut t = Interner::new();
                for w in &words {
                    t.intern(w);
                }
                let bytes = encode_snapshot(&t.symbols().to_vec());
                let back: Vec<String> = decode_snapshot(&bytes).unwrap();
                prop_assert_eq!(back.as_slice(), t.symbols());
                let rebuilt = Interner::from_symbols(back);
                prop_assert_eq!(&rebuilt, &t);
                for w in &words {
                    prop_assert_eq!(rebuilt.get(w), t.get(w));
                }
            }
        }
    }
}
