//! The dataset invariant auditor: structural checks that hold for every
//! campaign, regardless of seed, thread count, fault model, or payload
//! corruption.
//!
//! Byzantine-payload hardening moves failure from "the campaign crashes"
//! to "the datum is quarantined" — which is only safe if nothing damaged
//! ever *does* reach the analysis tables. The auditor is the proof
//! obligation: a suite of cross-component invariants over the assembled
//! [`Dataset`] (or the live components at a day boundary) whose
//! violations carry a typed [`AuditCode`] and the offending group key, so
//! a failure names the broken table row rather than a stack frame.
//!
//! The auditor runs in three places:
//!
//! 1. **Day boundaries, debug builds** — [`crate::study`]'s runner audits
//!    the live components after every completed study day
//!    (`debug_assertions` only; release campaigns pay nothing).
//! 2. **Resume** — every `resume_study*` entry point audits the restored
//!    components before continuing, so a snapshot that decodes cleanly
//!    but violates campaign invariants is caught at the boundary.
//! 3. **`repro audit <snapshot>`** — the CLI resumes a checkpoint to a
//!    full dataset and prints every violation (exit code 1 if any).

use crate::dataset::Dataset;
use crate::discovery::Discovery;
use crate::joiner::{JoinedGroup, Joiner};
use crate::monitor::{GapLedger, Monitor, ObservedStatus, TimelineStore};
use crate::quarantine::QuarantineEntry;
use std::collections::BTreeSet;

/// Which invariant a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AuditCode {
    /// A timeline's observation days are not strictly increasing.
    NonMonotoneTimeline,
    /// An observation follows a `Revoked` one (revocation is terminal).
    ObservationAfterRevoked,
    /// A monitored key that discovery never produced (membership must be
    /// a subset of the discovered population).
    TimelineUnknownGroup,
    /// A joined group whose invite discovery never produced.
    JoinedUnknownGroup,
    /// A gap-ledger day with no matching `Failed` observation — the gap
    /// ledger says a day is censored, the timeline disagrees.
    GapWithoutFailedObservation,
    /// A gap-ledger slot that does not resolve in the group symbol table
    /// (the ledger references a group discovery never interned).
    GapUnknownGroup,
    /// A gap ledger that is not strictly ascending (unsorted or
    /// duplicated days).
    GapLedgerNotAscending,
    /// A quarantine entry dated outside the study window.
    QuarantineDayOutOfWindow,
    /// A quarantine entry naming a group discovery never produced.
    QuarantineUnknownGroup,
    /// A joined group with collected messages but no monitor timeline —
    /// every joined group was discovered and monitored, so messages
    /// without observations mean a record went missing.
    MessagesWithoutTimeline,
}

impl AuditCode {
    /// Stable kebab-case label (CLI output, reports).
    pub fn label(self) -> &'static str {
        match self {
            AuditCode::NonMonotoneTimeline => "non-monotone-timeline",
            AuditCode::ObservationAfterRevoked => "observation-after-revoked",
            AuditCode::TimelineUnknownGroup => "timeline-unknown-group",
            AuditCode::JoinedUnknownGroup => "joined-unknown-group",
            AuditCode::GapWithoutFailedObservation => "gap-without-failed-observation",
            AuditCode::GapUnknownGroup => "gap-unknown-group",
            AuditCode::GapLedgerNotAscending => "gap-ledger-not-ascending",
            AuditCode::QuarantineDayOutOfWindow => "quarantine-day-out-of-window",
            AuditCode::QuarantineUnknownGroup => "quarantine-unknown-group",
            AuditCode::MessagesWithoutTimeline => "messages-without-timeline",
        }
    }
}

/// One broken invariant, anchored to the group it concerns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Which invariant broke.
    pub code: AuditCode,
    /// Dedup key of the offending group (empty when the violation is not
    /// about a single group).
    pub group: String,
    /// Human-readable specifics (days, counts, entry positions).
    pub detail: String,
}

impl AuditViolation {
    fn new(code: AuditCode, group: &str, detail: String) -> AuditViolation {
        AuditViolation {
            code,
            group: group.to_string(),
            detail,
        }
    }

    /// Render as `code group: detail` for CLI output.
    pub fn render(&self) -> String {
        if self.group.is_empty() {
            format!("{}: {}", self.code.label(), self.detail)
        } else {
            format!("{} [{}]: {}", self.code.label(), self.group, self.detail)
        }
    }
}

/// Audit an assembled dataset. Returns every violation found (empty =
/// all invariants hold).
pub fn audit_dataset(ds: &Dataset) -> Vec<AuditViolation> {
    let keys = ds.interner.symbols();
    let mut out = Vec::new();
    check_timelines(&ds.timelines, keys, &mut out);
    check_gaps(&ds.gaps, &ds.timelines, keys, &mut out);
    check_quarantine(
        &ds.quarantine,
        ds.window.num_days() as u32,
        &|key| ds.slot_of_key(key),
        &mut out,
    );
    check_joined(
        &ds.joined,
        &|key| ds.slot_of_key(key),
        &ds.timelines,
        &mut out,
    );
    out
}

/// Audit the live pipeline components (day boundaries, resume). Same
/// invariants as [`audit_dataset`], evaluated before assembly.
pub fn audit_components(
    num_days: u32,
    discovery: &Discovery,
    monitor: &Monitor,
    joiner: &Joiner,
) -> Vec<AuditViolation> {
    let keys = discovery.interner().symbols();
    let mut out = Vec::new();
    check_timelines(&monitor.timelines, keys, &mut out);
    check_gaps(&monitor.gaps, &monitor.timelines, keys, &mut out);
    for ledger in [
        &discovery.quarantine,
        &monitor.quarantine,
        &joiner.quarantine,
    ] {
        check_quarantine(
            ledger,
            num_days,
            &|key| discovery.slot_of_key(key),
            &mut out,
        );
    }
    check_joined(
        &joiner.joined,
        &|key| discovery.slot_of_key(key),
        &monitor.timelines,
        &mut out,
    );
    out
}

/// The dedup key a slot resolves to in the symbol table, or a
/// `slot N` placeholder for a slot the table does not cover.
fn slot_label(keys: &[String], slot: usize) -> String {
    keys.get(slot)
        .cloned()
        .unwrap_or_else(|| format!("slot {slot}"))
}

fn check_timelines(timelines: &TimelineStore, keys: &[String], out: &mut Vec<AuditViolation>) {
    for (slot, tl) in timelines.iter() {
        let key = slot_label(keys, slot);
        if slot >= keys.len() {
            out.push(AuditViolation::new(
                AuditCode::TimelineUnknownGroup,
                &key,
                "monitored but never discovered".to_string(),
            ));
        }
        for pair in tl.days().windows(2) {
            if pair[1] <= pair[0] {
                out.push(AuditViolation::new(
                    AuditCode::NonMonotoneTimeline,
                    &key,
                    format!("day {} follows day {}", pair[1], pair[0]),
                ));
            }
        }
        if let Some(at) = tl.iter().position(|o| o.status == ObservedStatus::Revoked) {
            if at + 1 != tl.len() {
                out.push(AuditViolation::new(
                    AuditCode::ObservationAfterRevoked,
                    &key,
                    format!(
                        "{} observation(s) after revocation on day {}",
                        tl.len() - at - 1,
                        tl.days()[at]
                    ),
                ));
            }
        }
    }
}

fn check_gaps(
    gaps: &GapLedger,
    timelines: &TimelineStore,
    keys: &[String],
    out: &mut Vec<AuditViolation>,
) {
    for (slot, days) in gaps.iter() {
        let key = slot_label(keys, slot);
        if slot >= keys.len() {
            out.push(AuditViolation::new(
                AuditCode::GapUnknownGroup,
                &key,
                "gap ledger references a group outside the symbol table".to_string(),
            ));
        }
        if days.windows(2).any(|w| w[1] <= w[0]) {
            out.push(AuditViolation::new(
                AuditCode::GapLedgerNotAscending,
                &key,
                format!("{days:?}"),
            ));
        }
        let failed_days: BTreeSet<u32> = timelines
            .get(slot)
            .map(|tl| {
                tl.iter()
                    .filter(|o| o.status == ObservedStatus::Failed)
                    .map(|o| o.day)
                    .collect()
            })
            .unwrap_or_default();
        for day in days {
            if !failed_days.contains(day) {
                out.push(AuditViolation::new(
                    AuditCode::GapWithoutFailedObservation,
                    &key,
                    format!("gap day {day} has no Failed observation"),
                ));
            }
        }
    }
}

fn check_quarantine(
    ledger: &[QuarantineEntry],
    num_days: u32,
    slot_of: &dyn Fn(&str) -> Option<usize>,
    out: &mut Vec<AuditViolation>,
) {
    for entry in ledger {
        if entry.day >= num_days {
            out.push(AuditViolation::new(
                AuditCode::QuarantineDayOutOfWindow,
                &entry.group,
                format!(
                    "{} entry dated day {} in a {}-day window",
                    entry.code.label(),
                    entry.day,
                    num_days
                ),
            ));
        }
        if !entry.group.is_empty() && slot_of(&entry.group).is_none() {
            out.push(AuditViolation::new(
                AuditCode::QuarantineUnknownGroup,
                &entry.group,
                format!("{} entry for an undiscovered group", entry.code.label()),
            ));
        }
    }
}

fn check_joined(
    joined: &[JoinedGroup],
    slot_of: &dyn Fn(&str) -> Option<usize>,
    timelines: &TimelineStore,
    out: &mut Vec<AuditViolation>,
) {
    for jg in joined {
        let slot = slot_of(&jg.key);
        if slot.is_none() {
            out.push(AuditViolation::new(
                AuditCode::JoinedUnknownGroup,
                &jg.key,
                "joined but never discovered".to_string(),
            ));
        }
        if !jg.messages.is_empty() && slot.and_then(|s| timelines.get(s)).is_none() {
            out.push(AuditViolation::new(
                AuditCode::MessagesWithoutTimeline,
                &jg.key,
                format!("{} message(s) but no monitor timeline", jg.messages.len()),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::GroupTimeline;
    use crate::study::{run_study_with, CampaignConfig};
    use chatlens_simnet::fault::CorruptionProfile;
    use chatlens_workload::ScenarioConfig;

    // Built by direct field access: the auditor exists to catch shapes
    // the public `push` API refuses to construct.
    fn timeline(days: &[(u32, ObservedStatus)]) -> GroupTimeline {
        GroupTimeline {
            days: days.iter().map(|&(d, _)| d).collect(),
            statuses: days.iter().map(|&(_, s)| s).collect(),
            ..GroupTimeline::default()
        }
    }

    fn store(slot: u32, tl: GroupTimeline) -> TimelineStore {
        TimelineStore::from_entries(vec![(slot, tl)])
    }

    const ALIVE: ObservedStatus = ObservedStatus::Alive {
        size: 10,
        online: 1,
    };

    #[test]
    fn monotone_and_terminal_violations_are_detected() {
        let keys = vec!["g1".to_string()];
        let mut out = Vec::new();
        check_timelines(
            &store(0, timeline(&[(3, ALIVE), (3, ALIVE)])),
            &keys,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, AuditCode::NonMonotoneTimeline);

        out.clear();
        check_timelines(
            &store(
                0,
                timeline(&[(1, ALIVE), (2, ObservedStatus::Revoked), (3, ALIVE)]),
            ),
            &keys,
            &mut out,
        );
        assert_eq!(out[0].code, AuditCode::ObservationAfterRevoked);
        assert_eq!(out[0].group, "g1");
    }

    #[test]
    fn membership_must_be_subset_of_population() {
        // A timeline at a slot the symbol table does not cover.
        let mut out = Vec::new();
        check_timelines(&store(0, timeline(&[(0, ALIVE)])), &[], &mut out);
        assert_eq!(out[0].code, AuditCode::TimelineUnknownGroup);
        assert_eq!(out[0].group, "slot 0");
    }

    #[test]
    fn gap_days_need_failed_observations() {
        let keys = vec!["g".to_string()];
        let timelines = store(0, timeline(&[(0, ALIVE), (1, ObservedStatus::Failed)]));
        let mut gaps = GapLedger::new();
        gaps.push(0, 1);
        gaps.push(0, 2);
        let mut out = Vec::new();
        check_gaps(&gaps, &timelines, &keys, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].code, AuditCode::GapWithoutFailedObservation);
        assert_eq!(out[0].group, "g");
        assert!(out[0].detail.contains("day 2"));

        // An out-of-order ledger, built behind the API's ascending guard.
        let gaps = GapLedger {
            slots: vec![vec![2, 1]],
        };
        out.clear();
        check_gaps(&gaps, &timelines, &keys, &mut out);
        assert!(out
            .iter()
            .any(|v| v.code == AuditCode::GapLedgerNotAscending));
    }

    #[test]
    fn gap_slots_must_resolve_in_the_symbol_table() {
        // Slot 3 has censored days but the interner only knows one group:
        // the ledger references a group that was never interned.
        let keys = vec!["g".to_string()];
        let mut gaps = GapLedger::new();
        gaps.push(3, 7);
        let mut out = Vec::new();
        check_gaps(&gaps, &TimelineStore::new(), &keys, &mut out);
        let codes: Vec<AuditCode> = out.iter().map(|v| v.code).collect();
        assert!(codes.contains(&AuditCode::GapUnknownGroup), "{out:?}");
        assert!(out.iter().any(|v| v.group == "slot 3"));
    }

    #[test]
    fn quarantine_provenance_is_checked() {
        let entry = QuarantineEntry {
            service: "whatsapp".to_string(),
            endpoint: "whatsapp/landing?code=x".to_string(),
            group: "wa:x".to_string(),
            day: 40,
            code: crate::quarantine::QuarantineCode::MissingField,
            detail: "missing".to_string(),
            body: String::new(),
        };
        let mut out = Vec::new();
        check_quarantine(&[entry], 38, &|_| None, &mut out);
        let codes: Vec<AuditCode> = out.iter().map(|v| v.code).collect();
        assert!(codes.contains(&AuditCode::QuarantineDayOutOfWindow));
        assert!(codes.contains(&AuditCode::QuarantineUnknownGroup));
    }

    #[test]
    fn hostile_campaign_passes_the_full_audit() {
        let campaign = CampaignConfig {
            corruption: CorruptionProfile::Hostile,
            ..CampaignConfig::default()
        };
        let ds = run_study_with(ScenarioConfig::tiny(), campaign);
        let violations = audit_dataset(&ds);
        assert!(violations.is_empty(), "{violations:#?}");
        assert!(
            !ds.quarantine.is_empty(),
            "a hostile run must quarantine something"
        );
    }
}
