//! The dataset invariant auditor: structural checks that hold for every
//! campaign, regardless of seed, thread count, fault model, or payload
//! corruption.
//!
//! Byzantine-payload hardening moves failure from "the campaign crashes"
//! to "the datum is quarantined" — which is only safe if nothing damaged
//! ever *does* reach the analysis tables. The auditor is the proof
//! obligation: a suite of cross-component invariants over the assembled
//! [`Dataset`] (or the live components at a day boundary) whose
//! violations carry a typed [`AuditCode`] and the offending group key, so
//! a failure names the broken table row rather than a stack frame.
//!
//! The auditor runs in three places:
//!
//! 1. **Day boundaries, debug builds** — [`crate::study`]'s runner audits
//!    the live components after every completed study day
//!    (`debug_assertions` only; release campaigns pay nothing).
//! 2. **Resume** — every `resume_study*` entry point audits the restored
//!    components before continuing, so a snapshot that decodes cleanly
//!    but violates campaign invariants is caught at the boundary.
//! 3. **`repro audit <snapshot>`** — the CLI resumes a checkpoint to a
//!    full dataset and prints every violation (exit code 1 if any).

use crate::dataset::Dataset;
use crate::discovery::Discovery;
use crate::joiner::{JoinedGroup, Joiner};
use crate::monitor::{GroupTimeline, Monitor, ObservedStatus};
use crate::quarantine::QuarantineEntry;
use std::collections::{BTreeMap, BTreeSet};

/// Which invariant a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AuditCode {
    /// A timeline's observation days are not strictly increasing.
    NonMonotoneTimeline,
    /// An observation follows a `Revoked` one (revocation is terminal).
    ObservationAfterRevoked,
    /// A monitored key that discovery never produced (membership must be
    /// a subset of the discovered population).
    TimelineUnknownGroup,
    /// A joined group whose invite discovery never produced.
    JoinedUnknownGroup,
    /// A gap-ledger day with no matching `Failed` observation — the gap
    /// ledger says a day is censored, the timeline disagrees.
    GapWithoutFailedObservation,
    /// A gap ledger that is not strictly ascending (unsorted or
    /// duplicated days).
    GapLedgerNotAscending,
    /// A quarantine entry dated outside the study window.
    QuarantineDayOutOfWindow,
    /// A quarantine entry naming a group discovery never produced.
    QuarantineUnknownGroup,
    /// A joined group with collected messages but no monitor timeline —
    /// every joined group was discovered and monitored, so messages
    /// without observations mean a record went missing.
    MessagesWithoutTimeline,
}

impl AuditCode {
    /// Stable kebab-case label (CLI output, reports).
    pub fn label(self) -> &'static str {
        match self {
            AuditCode::NonMonotoneTimeline => "non-monotone-timeline",
            AuditCode::ObservationAfterRevoked => "observation-after-revoked",
            AuditCode::TimelineUnknownGroup => "timeline-unknown-group",
            AuditCode::JoinedUnknownGroup => "joined-unknown-group",
            AuditCode::GapWithoutFailedObservation => "gap-without-failed-observation",
            AuditCode::GapLedgerNotAscending => "gap-ledger-not-ascending",
            AuditCode::QuarantineDayOutOfWindow => "quarantine-day-out-of-window",
            AuditCode::QuarantineUnknownGroup => "quarantine-unknown-group",
            AuditCode::MessagesWithoutTimeline => "messages-without-timeline",
        }
    }
}

/// One broken invariant, anchored to the group it concerns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Which invariant broke.
    pub code: AuditCode,
    /// Dedup key of the offending group (empty when the violation is not
    /// about a single group).
    pub group: String,
    /// Human-readable specifics (days, counts, entry positions).
    pub detail: String,
}

impl AuditViolation {
    fn new(code: AuditCode, group: &str, detail: String) -> AuditViolation {
        AuditViolation {
            code,
            group: group.to_string(),
            detail,
        }
    }

    /// Render as `code group: detail` for CLI output.
    pub fn render(&self) -> String {
        if self.group.is_empty() {
            format!("{}: {}", self.code.label(), self.detail)
        } else {
            format!("{} [{}]: {}", self.code.label(), self.group, self.detail)
        }
    }
}

/// Audit an assembled dataset. Returns every violation found (empty =
/// all invariants hold).
pub fn audit_dataset(ds: &Dataset) -> Vec<AuditViolation> {
    let discovered: BTreeSet<String> = ds.groups.iter().map(|r| r.invite.dedup_key()).collect();
    let mut out = Vec::new();
    check_timelines(&ds.timelines, &discovered, &mut out);
    check_gaps(&ds.gaps, &ds.timelines, &mut out);
    check_quarantine(
        &ds.quarantine,
        ds.window.num_days() as u32,
        &discovered,
        &mut out,
    );
    check_joined(&ds.joined, &discovered, &ds.timelines, &mut out);
    out
}

/// Audit the live pipeline components (day boundaries, resume). Same
/// invariants as [`audit_dataset`], evaluated before assembly.
pub fn audit_components(
    num_days: u32,
    discovery: &Discovery,
    monitor: &Monitor,
    joiner: &Joiner,
) -> Vec<AuditViolation> {
    let discovered: BTreeSet<String> = discovery
        .groups
        .iter()
        .map(|r| r.invite.dedup_key())
        .collect();
    let mut out = Vec::new();
    check_timelines(&monitor.timelines, &discovered, &mut out);
    check_gaps(&monitor.gaps, &monitor.timelines, &mut out);
    for ledger in [
        &discovery.quarantine,
        &monitor.quarantine,
        &joiner.quarantine,
    ] {
        check_quarantine(ledger, num_days, &discovered, &mut out);
    }
    check_joined(&joiner.joined, &discovered, &monitor.timelines, &mut out);
    out
}

fn check_timelines(
    timelines: &BTreeMap<String, GroupTimeline>,
    discovered: &BTreeSet<String>,
    out: &mut Vec<AuditViolation>,
) {
    for (key, tl) in timelines {
        if !discovered.contains(key) {
            out.push(AuditViolation::new(
                AuditCode::TimelineUnknownGroup,
                key,
                "monitored but never discovered".to_string(),
            ));
        }
        for pair in tl.observations.windows(2) {
            if pair[1].day <= pair[0].day {
                out.push(AuditViolation::new(
                    AuditCode::NonMonotoneTimeline,
                    key,
                    format!("day {} follows day {}", pair[1].day, pair[0].day),
                ));
            }
        }
        if let Some(at) = tl
            .observations
            .iter()
            .position(|o| o.status == ObservedStatus::Revoked)
        {
            if at + 1 != tl.observations.len() {
                out.push(AuditViolation::new(
                    AuditCode::ObservationAfterRevoked,
                    key,
                    format!(
                        "{} observation(s) after revocation on day {}",
                        tl.observations.len() - at - 1,
                        tl.observations[at].day
                    ),
                ));
            }
        }
    }
}

fn check_gaps(
    gaps: &BTreeMap<String, Vec<u32>>,
    timelines: &BTreeMap<String, GroupTimeline>,
    out: &mut Vec<AuditViolation>,
) {
    for (key, days) in gaps {
        if days.windows(2).any(|w| w[1] <= w[0]) {
            out.push(AuditViolation::new(
                AuditCode::GapLedgerNotAscending,
                key,
                format!("{days:?}"),
            ));
        }
        let failed_days: BTreeSet<u32> = timelines
            .get(key)
            .map(|tl| {
                tl.observations
                    .iter()
                    .filter(|o| o.status == ObservedStatus::Failed)
                    .map(|o| o.day)
                    .collect()
            })
            .unwrap_or_default();
        for day in days {
            if !failed_days.contains(day) {
                out.push(AuditViolation::new(
                    AuditCode::GapWithoutFailedObservation,
                    key,
                    format!("gap day {day} has no Failed observation"),
                ));
            }
        }
    }
}

fn check_quarantine(
    ledger: &[QuarantineEntry],
    num_days: u32,
    discovered: &BTreeSet<String>,
    out: &mut Vec<AuditViolation>,
) {
    for entry in ledger {
        if entry.day >= num_days {
            out.push(AuditViolation::new(
                AuditCode::QuarantineDayOutOfWindow,
                &entry.group,
                format!(
                    "{} entry dated day {} in a {}-day window",
                    entry.code.label(),
                    entry.day,
                    num_days
                ),
            ));
        }
        if !entry.group.is_empty() && !discovered.contains(&entry.group) {
            out.push(AuditViolation::new(
                AuditCode::QuarantineUnknownGroup,
                &entry.group,
                format!("{} entry for an undiscovered group", entry.code.label()),
            ));
        }
    }
}

fn check_joined(
    joined: &[JoinedGroup],
    discovered: &BTreeSet<String>,
    timelines: &BTreeMap<String, GroupTimeline>,
    out: &mut Vec<AuditViolation>,
) {
    for jg in joined {
        if !discovered.contains(&jg.key) {
            out.push(AuditViolation::new(
                AuditCode::JoinedUnknownGroup,
                &jg.key,
                "joined but never discovered".to_string(),
            ));
        }
        if !jg.messages.is_empty() && !timelines.contains_key(&jg.key) {
            out.push(AuditViolation::new(
                AuditCode::MessagesWithoutTimeline,
                &jg.key,
                format!("{} message(s) but no monitor timeline", jg.messages.len()),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::Observation;
    use crate::study::{run_study_with, CampaignConfig};
    use chatlens_simnet::fault::CorruptionProfile;
    use chatlens_workload::ScenarioConfig;

    fn timeline(days: &[(u32, ObservedStatus)]) -> GroupTimeline {
        GroupTimeline {
            observations: days
                .iter()
                .map(|&(day, status)| Observation { day, status })
                .collect(),
            ..GroupTimeline::default()
        }
    }

    const ALIVE: ObservedStatus = ObservedStatus::Alive {
        size: 10,
        online: 1,
    };

    #[test]
    fn monotone_and_terminal_violations_are_detected() {
        let discovered: BTreeSet<String> = ["g1".to_string()].into();
        let mut timelines = BTreeMap::new();
        timelines.insert("g1".to_string(), timeline(&[(3, ALIVE), (3, ALIVE)]));
        let mut out = Vec::new();
        check_timelines(&timelines, &discovered, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, AuditCode::NonMonotoneTimeline);

        timelines.insert(
            "g1".to_string(),
            timeline(&[(1, ALIVE), (2, ObservedStatus::Revoked), (3, ALIVE)]),
        );
        out.clear();
        check_timelines(&timelines, &discovered, &mut out);
        assert_eq!(out[0].code, AuditCode::ObservationAfterRevoked);
        assert_eq!(out[0].group, "g1");
    }

    #[test]
    fn membership_must_be_subset_of_population() {
        let discovered = BTreeSet::new();
        let mut timelines = BTreeMap::new();
        timelines.insert("ghost".to_string(), timeline(&[(0, ALIVE)]));
        let mut out = Vec::new();
        check_timelines(&timelines, &discovered, &mut out);
        assert_eq!(out[0].code, AuditCode::TimelineUnknownGroup);
    }

    #[test]
    fn gap_days_need_failed_observations() {
        let mut timelines = BTreeMap::new();
        timelines.insert(
            "g".to_string(),
            timeline(&[(0, ALIVE), (1, ObservedStatus::Failed)]),
        );
        let mut gaps = BTreeMap::new();
        gaps.insert("g".to_string(), vec![1, 2]);
        let mut out = Vec::new();
        check_gaps(&gaps, &timelines, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].code, AuditCode::GapWithoutFailedObservation);
        assert!(out[0].detail.contains("day 2"));

        gaps.insert("g".to_string(), vec![2, 1]);
        out.clear();
        check_gaps(&gaps, &timelines, &mut out);
        assert!(out
            .iter()
            .any(|v| v.code == AuditCode::GapLedgerNotAscending));
    }

    #[test]
    fn quarantine_provenance_is_checked() {
        let entry = QuarantineEntry {
            service: "whatsapp".to_string(),
            endpoint: "whatsapp/landing?code=x".to_string(),
            group: "wa:x".to_string(),
            day: 40,
            code: crate::quarantine::QuarantineCode::MissingField,
            detail: "missing".to_string(),
            body: String::new(),
        };
        let mut out = Vec::new();
        check_quarantine(&[entry], 38, &BTreeSet::new(), &mut out);
        let codes: Vec<AuditCode> = out.iter().map(|v| v.code).collect();
        assert!(codes.contains(&AuditCode::QuarantineDayOutOfWindow));
        assert!(codes.contains(&AuditCode::QuarantineUnknownGroup));
    }

    #[test]
    fn hostile_campaign_passes_the_full_audit() {
        let campaign = CampaignConfig {
            corruption: CorruptionProfile::Hostile,
            ..CampaignConfig::default()
        };
        let ds = run_study_with(ScenarioConfig::tiny(), campaign);
        let violations = audit_dataset(&ds);
        assert!(violations.is_empty(), "{violations:#?}");
        assert!(
            !ds.quarantine.is_empty(),
            "a hostile run must quarantine something"
        );
    }
}
