//! The collector's network stack: one [`Client`] per credential, with a
//! helper that mounts the right simulated service per call.
//!
//! The paper's tooling held one credential per platform (§3.3); here each
//! gets its own transport client with its own rate budget, fault stream
//! and trace. Client rates are set to what a small scraper fleet sustains
//! (the paper scraped hundreds of thousands of landing pages per day).

use crate::error::CoreError;
use chatlens_platforms::id::PlatformKind;
use chatlens_simnet::fault::{CorruptionSchedule, FaultInjector, FaultSchedule};
use chatlens_simnet::rng::Rng;
use chatlens_simnet::time::{SimDuration, SimTime};
use chatlens_simnet::transport::{Client, ClientConfig, ClientState, Request, Response, Router};
use chatlens_workload::Ecosystem;

/// The four clients of the campaign.
pub struct Net {
    twitter: Client,
    platforms: [Client; 3],
}

/// Index of each service in a `[T; 4]` schedule/state array: Twitter,
/// WhatsApp, Telegram, Discord. The platform entries line up with
/// [`PlatformKind::index`] shifted by one.
pub const SERVICE_NAMES: [&str; 4] = ["twitter", "whatsapp", "telegram", "discord"];

impl Net {
    /// Build the client set. `faults` applies to every client (the same
    /// backbone); `seed` decorrelates their latency/backoff streams.
    pub fn new(seed: u64, start: SimTime, faults: FaultInjector) -> Net {
        let calm = FaultSchedule::calm(faults);
        Net::with_schedules(
            seed,
            start,
            [calm.clone(), calm.clone(), calm.clone(), calm],
        )
    }

    /// Build the client set with one full [`FaultSchedule`] per service, in
    /// [`SERVICE_NAMES`] order. This is how a campaign expresses correlated
    /// failures: bursts and outages are per-credential, so a WhatsApp
    /// blackout cannot perturb the Telegram client's streams.
    pub fn with_schedules(seed: u64, start: SimTime, schedules: [FaultSchedule; 4]) -> Net {
        Net::with_corruption(seed, start, schedules, CorruptionSchedule::none())
    }

    /// Build the client set with per-service fault schedules *and* a
    /// payload-corruption schedule applied to every client. The corruption
    /// stream is per-client (forked from each client's own RNG), so the
    /// same bodies are mangled regardless of thread count or the other
    /// services' traffic. A [`CorruptionSchedule::none`] is a strict
    /// no-op, keeping calm campaigns bit-identical to older builds.
    pub fn with_corruption(
        seed: u64,
        start: SimTime,
        schedules: [FaultSchedule; 4],
        corruption: CorruptionSchedule,
    ) -> Net {
        let mut rng = Rng::new(seed);
        let scraper = ClientConfig {
            max_attempts: 4,
            rate_per_sec: 400.0,
            burst: 2_000.0,
            breaker_threshold: 5,
            breaker_cooldown: SimDuration::secs(1_800),
            ..ClientConfig::default()
        };
        let api = ClientConfig {
            max_attempts: 6, // rate-limit retries need headroom
            rate_per_sec: 50.0,
            burst: 200.0,
            breaker_threshold: 5,
            breaker_cooldown: SimDuration::secs(1_800),
            ..ClientConfig::default()
        };
        let [tw, wa, tg, dc] = schedules;
        Net {
            twitter: Client::with_schedule(api.clone(), tw, rng.fork("twitter"), start)
                .with_corruption(corruption),
            platforms: [
                Client::with_schedule(scraper.clone(), wa, rng.fork("whatsapp"), start)
                    .with_corruption(corruption),
                Client::with_schedule(api, tg, rng.fork("telegram"), start)
                    .with_corruption(corruption),
                Client::with_schedule(scraper, dc, rng.fork("discord"), start)
                    .with_corruption(corruption),
            ],
        }
    }

    /// A fault-free client set (tests, calibration runs).
    pub fn reliable(seed: u64, start: SimTime) -> Net {
        Net::new(seed, start, FaultInjector::none())
    }

    /// Issue a request to the Twitter APIs.
    pub fn twitter(
        &mut self,
        eco: &mut Ecosystem,
        now: SimTime,
        req: &Request,
    ) -> Result<Response, CoreError> {
        let mut router = Router::new();
        router.mount("twitter", &mut eco.twitter);
        Ok(self.twitter.call(&mut router, now, req)?)
    }

    /// Issue a request to one messaging platform's frontend/API.
    pub fn platform(
        &mut self,
        eco: &mut Ecosystem,
        kind: PlatformKind,
        now: SimTime,
        req: &Request,
    ) -> Result<Response, CoreError> {
        let i = kind.index();
        let mut router = Router::new();
        let mount = match kind {
            PlatformKind::WhatsApp => "whatsapp",
            PlatformKind::Telegram => "telegram",
            PlatformKind::Discord => "discord",
        };
        router.mount(mount, &mut eco.platforms[i]);
        Ok(self.platforms[i].call(&mut router, now, req)?)
    }

    /// Export all four clients' mutable state for a checkpoint, in the
    /// fixed order Twitter, WhatsApp, Telegram, Discord.
    pub fn export_state(&self) -> [ClientState; 4] {
        [
            self.twitter.state(),
            self.platforms[0].state(),
            self.platforms[1].state(),
            self.platforms[2].state(),
        ]
    }

    /// Restore all four clients from a checkpoint export. The `Net` must
    /// have been rebuilt with [`Net::new`] under the same seed and fault
    /// model so each client's configuration matches its saved state.
    pub fn restore_state(&mut self, states: [ClientState; 4]) {
        let [tw, wa, tg, dc] = states;
        self.twitter.restore_state(tw);
        self.platforms[0].restore_state(wa);
        self.platforms[1].restore_state(tg);
        self.platforms[2].restore_state(dc);
    }

    /// Total successful responses whose body was corrupted in flight,
    /// across all clients (campaign health; compare against the
    /// quarantine ledger sizes).
    pub fn corrupted_total(&self) -> u64 {
        self.twitter.corrupted() + self.platforms.iter().map(|c| c.corrupted()).sum::<u64>()
    }

    /// Total transport attempts across all clients (campaign health).
    pub fn total_attempts(&self) -> u64 {
        self.twitter.trace().len() + self.platforms.iter().map(|c| c.trace().len()).sum::<u64>()
    }

    /// Total circuit-breaker openings and fast-failed calls across all
    /// clients, for the campaign metrics.
    pub fn breaker_totals(&self) -> (u64, u64) {
        let mut opened = self.twitter.trace().breaker_opened();
        let mut fast = self.twitter.trace().breaker_fast_fails();
        for c in &self.platforms {
            opened += c.trace().breaker_opened();
            fast += c.trace().breaker_fast_fails();
        }
        (opened, fast)
    }

    /// Borrow a platform client's trace (diagnostics).
    pub fn platform_trace(&self, kind: PlatformKind) -> &chatlens_simnet::trace::TraceRecorder {
        self.platforms[kind.index()].trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_simnet::transport::Status;
    use chatlens_workload::ScenarioConfig;

    #[test]
    fn clients_reach_all_services() {
        let mut eco = Ecosystem::build(ScenarioConfig::tiny());
        let start = eco.window.start_time();
        let mut net = Net::reliable(1, start);
        // Twitter search works.
        let resp = net
            .twitter(&mut eco, start, &Request::new("twitter/search"))
            .unwrap();
        assert_eq!(resp.status, Status::Ok);
        // Each platform's public metadata endpoint answers (with 404 for a
        // bogus code, which is a *successful* transport outcome).
        for (kind, ep) in [
            (PlatformKind::WhatsApp, "whatsapp/landing"),
            (PlatformKind::Telegram, "telegram/web"),
            (PlatformKind::Discord, "discord/api/invite"),
        ] {
            let resp = net
                .platform(&mut eco, kind, start, &Request::new(ep).with("code", "zzz"))
                .unwrap();
            assert_eq!(resp.status, Status::NotFound, "{kind}");
        }
        assert_eq!(net.total_attempts(), 4);
    }

    #[test]
    fn platform_traces_are_separate() {
        let mut eco = Ecosystem::build(ScenarioConfig::tiny());
        let start = eco.window.start_time();
        let mut net = Net::reliable(2, start);
        net.platform(
            &mut eco,
            PlatformKind::WhatsApp,
            start,
            &Request::new("whatsapp/landing").with("code", "x"),
        )
        .unwrap();
        assert_eq!(net.platform_trace(PlatformKind::WhatsApp).len(), 1);
        assert_eq!(net.platform_trace(PlatformKind::Telegram).len(), 0);
    }
}
