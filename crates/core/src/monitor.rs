//! Daily group-metadata monitoring (§3.2).
//!
//! From the day a group is discovered until its URL is found revoked, the
//! monitor fetches its public metadata once per day: the WhatsApp landing
//! page (title, size, creator country + phone — hashed on arrival), the
//! Telegram web page (title, size, online count, group-vs-channel), or
//! the Discord invite API (title, size, online, creator, creation date).

use crate::discovery::{Discovery, DiscoveryRecord};
use crate::error::CoreError;
use crate::net::Net;
use crate::pii::PiiStore;
use crate::quarantine::{service_name, verify_echoes, QuarantineEntry};
use chatlens_platforms::id::PlatformKind;
use chatlens_platforms::wire::WireDoc;
use chatlens_simnet::par::Pool;
use chatlens_simnet::time::SimTime;
use chatlens_simnet::transport::{Request, Status};
use chatlens_workload::Ecosystem;
use std::collections::BTreeMap;

/// What the monitor saw for one group on one day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservedStatus {
    /// Landing page served: the group is alive with these counts.
    Alive {
        /// Member count shown.
        size: u32,
        /// Online count shown (0 where the platform shows none).
        online: u32,
    },
    /// The URL is revoked/expired (410).
    Revoked,
    /// Transport failed after retries; no information for the day.
    Failed,
}

/// One day's observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Zero-based study-day index.
    pub day: u32,
    /// What was seen.
    pub status: ObservedStatus,
}

/// Everything the monitor learned about one group over the campaign.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupTimeline {
    /// Daily observations, in day order (stops after `Revoked`).
    pub observations: Vec<Observation>,
    /// Title from the first successful fetch.
    pub title: Option<String>,
    /// Telegram: `"group"` or `"channel"`.
    pub tg_kind: Option<String>,
    /// Discord: creation day number from the invite API.
    pub dc_created_day: Option<i64>,
    /// Discord: creator user id from the invite API.
    pub dc_creator: Option<u32>,
    /// WhatsApp: creator country code from the landing page.
    pub wa_creator_cc: Option<String>,
    /// WhatsApp: SHA-256 of the creator's phone (the only creator identity
    /// available; used by §5's creators-per-group analysis).
    pub wa_creator_hash: Option<String>,
}

impl GroupTimeline {
    /// First observation, if any.
    pub fn first(&self) -> Option<&Observation> {
        self.observations.first()
    }

    /// Whether the group was ever observed revoked.
    pub fn saw_revoked(&self) -> bool {
        self.observations
            .iter()
            .any(|o| o.status == ObservedStatus::Revoked)
    }

    /// Whether the *first* observation was already a revocation — the
    /// "revoked before our first observation" bucket of Fig 6.
    pub fn dead_on_arrival(&self) -> bool {
        matches!(
            self.first(),
            Some(Observation {
                status: ObservedStatus::Revoked,
                ..
            })
        )
    }

    /// `(first, last)` sizes over the alive observations (Fig 7).
    pub fn size_span(&self) -> Option<(u32, u32)> {
        let mut first = None;
        let mut last = None;
        for o in &self.observations {
            if let ObservedStatus::Alive { size, .. } = o.status {
                if first.is_none() {
                    first = Some(size);
                }
                last = Some(size);
            }
        }
        Some((first?, last?))
    }

    /// Day index of the observed revocation, if any.
    pub fn revoked_day(&self) -> Option<u32> {
        self.observations
            .iter()
            .find(|o| o.status == ObservedStatus::Revoked)
            .map(|o| o.day)
    }

    /// Number of days the group was observed alive.
    pub fn alive_days(&self) -> u32 {
        self.observations
            .iter()
            .filter(|o| matches!(o.status, ObservedStatus::Alive { .. }))
            .count() as u32
    }
}

/// One group's fetch outcome for the day, carried from the serial
/// transport phase into the parse/apply phases.
enum Fetch {
    /// Transport failed after retries, or the server answered with a
    /// non-terminal error status.
    Failed,
    /// The URL is revoked/expired (410).
    Gone,
    /// Landing page served: the raw body, and which wire document kind it
    /// must decode as.
    Body(String, &'static str),
}

/// The monitoring component.
#[derive(Default)]
pub struct Monitor {
    /// Timelines keyed by the group's dedup key (`BTreeMap` so every
    /// traversal is discovery-key-ordered — lint rule D2).
    pub timelines: BTreeMap<String, GroupTimeline>,
    /// Keys that reached a terminal state (revoked) — no longer polled.
    terminal: std::collections::HashSet<String>,
    /// The gap ledger: study days on which a group could not be observed
    /// even after the same-day backfill retry (keyed by dedup key, days
    /// ascending). Lifetime analyses treat these days as *censored* —
    /// "we could not look" is recorded as exactly that, never as an
    /// observation.
    pub gaps: BTreeMap<String, Vec<u32>>,
    /// Rejected landing-page bodies with provenance (see
    /// [`crate::quarantine`]). A quarantined fetch is handled like a
    /// transport failure: one immediate re-fetch, then the day-end
    /// backfill retry, then the gap ledger.
    pub quarantine: Vec<QuarantineEntry>,
    /// Pool used to decode landing pages in parallel.
    pool: Pool,
}

impl Monitor {
    /// A fresh monitor (single-threaded parsing).
    pub fn new() -> Monitor {
        Monitor::default()
    }

    /// A monitor that decodes landing pages on `pool`. The thread count
    /// never changes what the monitor records — see [`Monitor::run_day`].
    pub fn with_pool(pool: Pool) -> Monitor {
        Monitor {
            pool,
            ..Monitor::default()
        }
    }

    /// Export the terminal (no-longer-polled) keys in sorted order for a
    /// checkpoint.
    pub fn terminal_keys(&self) -> Vec<String> {
        let sorted: std::collections::BTreeSet<String> = self.terminal.iter().cloned().collect();
        sorted.into_iter().collect()
    }

    /// Rebuild a monitor from checkpointed parts: the timelines, the
    /// terminal keys (as exported by [`Monitor::terminal_keys`]), and the
    /// parse pool to resume with.
    pub fn from_parts(
        timelines: BTreeMap<String, GroupTimeline>,
        terminal: Vec<String>,
        gaps: BTreeMap<String, Vec<u32>>,
        quarantine: Vec<QuarantineEntry>,
        pool: Pool,
    ) -> Monitor {
        Monitor {
            timelines,
            // lint:allow(D2) `terminal` is the sorted Vec parameter here, not the set field
            terminal: terminal.into_iter().collect(),
            gaps,
            quarantine,
            pool,
        }
    }

    /// Total censored group-days in the gap ledger.
    pub fn gap_days(&self) -> u64 {
        self.gaps.values().map(|v| v.len() as u64).sum()
    }

    /// Run one daily round over every discovered, not-yet-revoked group.
    /// `day` is the zero-based study-day index. When `pii` is given,
    /// WhatsApp creator phone numbers coming off the landing pages are
    /// hashed into it (the landing page is the only pre-join source of
    /// creator phones, §6).
    ///
    /// The round runs in three phases so the pool can help without
    /// touching determinism: a **serial fetch** in discovery order (every
    /// transport call advances the shared network/ecosystem RNG and
    /// rate-limiter state, so its order is fixed), a **parallel parse**
    /// of the fetched bodies (pure, and merged back in input order by the
    /// pool's contract), and a **serial apply** of the parsed documents to
    /// the timelines, again in discovery order.
    pub fn run_day(
        &mut self,
        net: &mut Net,
        eco: &mut Ecosystem,
        discovery: &Discovery,
        now: SimTime,
        day: u32,
        mut pii: Option<&mut PiiStore>,
    ) -> Result<(), CoreError> {
        // Phase 1 — serial fetch. Iterate over a snapshot of keys:
        // discovery keeps growing, but today's round covers what is known
        // right now. Group keys are unique within `discovery.groups`, so
        // deferring the terminal-set update to the apply phase cannot
        // change which groups get fetched today.
        let mut fetched: Vec<(usize, Fetch)> = Vec::new();
        for (i, rec) in discovery.groups.iter().enumerate() {
            if self.terminal.contains(&rec.invite.dedup_key()) {
                continue;
            }
            let (doc_kind, req) = probe(rec);
            let outcome = match net.platform(eco, rec.platform, now, &req) {
                Err(_) => Fetch::Failed,
                Ok(resp) => match resp.status {
                    Status::Ok => Fetch::Body(resp.body, doc_kind),
                    Status::Gone => Fetch::Gone,
                    _ => Fetch::Failed,
                },
            };
            fetched.push((i, outcome));
        }

        // Phase 2 — parallel decode: decoding a landing page (envelope,
        // identity echo, field extraction) depends only on the body and
        // the group's identity, so bodies decode concurrently on the
        // pool into ready-to-apply `Landing` values. Decoding fully
        // *before* applying means a body that goes bad halfway through
        // mutates nothing.
        let parsed: Vec<Option<Result<Landing, CoreError>>> =
            self.pool.par_map(&fetched, |(i, outcome)| match outcome {
                Fetch::Body(body, doc_kind) => {
                    let rec = &discovery.groups[*i];
                    let (_, req) = probe(rec);
                    Some(decode_landing(body, doc_kind, rec.platform, &req))
                }
                Fetch::Failed | Fetch::Gone => None,
            });

        // The outcome of the bounded same-day re-fetch of a quarantined
        // body (phase 3 below).
        enum Refetch {
            Alive(Landing),
            Revoked,
            Failed,
        }

        // Phase 3 — serial apply, in the same discovery order as phase 1.
        for ((i, outcome), decoded) in fetched.iter().zip(parsed) {
            let rec = &discovery.groups[*i];
            let key = rec.invite.dedup_key();
            match outcome {
                Fetch::Failed => {
                    self.timelines
                        .entry(key)
                        .or_default()
                        .observations
                        .push(Observation {
                            day,
                            status: ObservedStatus::Failed,
                        });
                }
                Fetch::Gone => {
                    self.timelines
                        .entry(key.clone())
                        .or_default()
                        .observations
                        .push(Observation {
                            day,
                            status: ObservedStatus::Revoked,
                        });
                    self.terminal.insert(key);
                }
                Fetch::Body(body, doc_kind) => {
                    match decoded.expect("body outcomes were decoded in phase 2") {
                        Ok(landing) => {
                            let timeline = self.timelines.entry(key).or_default();
                            let status = apply_landing(timeline, rec.platform, &landing, &mut pii);
                            timeline.observations.push(Observation { day, status });
                        }
                        Err(err) => {
                            // Hostile body: quarantine it with provenance,
                            // then re-fetch once immediately — corruption
                            // is usually transient damage, not a dead URL.
                            let (_, req) = probe(rec);
                            self.quarantine.push(QuarantineEntry::new(
                                service_name(rec.platform),
                                &req,
                                &key,
                                day,
                                &err,
                                body,
                            ));
                            let retried = match net.platform(eco, rec.platform, now, &req) {
                                Err(_) => Refetch::Failed,
                                Ok(resp) => match resp.status {
                                    Status::Gone => Refetch::Revoked,
                                    Status::Ok => {
                                        match decode_landing(
                                            &resp.body,
                                            doc_kind,
                                            rec.platform,
                                            &req,
                                        ) {
                                            Ok(l) => Refetch::Alive(l),
                                            Err(err2) => {
                                                self.quarantine.push(QuarantineEntry::new(
                                                    service_name(rec.platform),
                                                    &req,
                                                    &key,
                                                    day,
                                                    &err2,
                                                    &resp.body,
                                                ));
                                                Refetch::Failed
                                            }
                                        }
                                    }
                                    _ => Refetch::Failed,
                                },
                            };
                            let timeline = self.timelines.entry(key.clone()).or_default();
                            match retried {
                                Refetch::Alive(landing) => {
                                    let status =
                                        apply_landing(timeline, rec.platform, &landing, &mut pii);
                                    timeline.observations.push(Observation { day, status });
                                }
                                Refetch::Revoked => {
                                    timeline.observations.push(Observation {
                                        day,
                                        status: ObservedStatus::Revoked,
                                    });
                                    self.terminal.insert(key);
                                }
                                // Both fetches damaged or lost: record a
                                // Failed day; the day-end backfill retries
                                // once more, and a repeated failure lands
                                // the day in the gap ledger — censored,
                                // never fabricated.
                                Refetch::Failed => {
                                    timeline.observations.push(Observation {
                                        day,
                                        status: ObservedStatus::Failed,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Same-day retry of every group whose monitor fetch failed today.
    /// A success *replaces* the day's `Failed` observation in place (days
    /// stay strictly increasing); a revocation does the same and marks the
    /// group terminal; a repeated failure appends the day to the group's
    /// gap ledger — the day is censored, never fabricated.
    pub fn backfill_day(
        &mut self,
        net: &mut Net,
        eco: &mut Ecosystem,
        discovery: &Discovery,
        now: SimTime,
        day: u32,
        mut pii: Option<&mut PiiStore>,
    ) -> Result<(), CoreError> {
        // Discovery order, like `run_day`, so the transport call sequence
        // is a deterministic function of the campaign state.
        for rec in discovery.groups.iter() {
            let key = rec.invite.dedup_key();
            if self.terminal.contains(&key) {
                continue;
            }
            let needs_retry = self.timelines.get(&key).is_some_and(|tl| {
                tl.observations
                    .last()
                    .is_some_and(|o| o.day == day && o.status == ObservedStatus::Failed)
            });
            if !needs_retry {
                continue;
            }
            let (doc_kind, req) = probe(rec);
            let outcome = match net.platform(eco, rec.platform, now, &req) {
                Err(_) => Fetch::Failed,
                Ok(resp) => match resp.status {
                    Status::Ok => Fetch::Body(resp.body, doc_kind),
                    Status::Gone => Fetch::Gone,
                    _ => Fetch::Failed,
                },
            };
            match outcome {
                Fetch::Failed => {
                    self.gaps.entry(key).or_default().push(day);
                }
                Fetch::Gone => {
                    let timeline = self.timelines.get_mut(&key).expect("checked above");
                    timeline
                        .observations
                        .last_mut()
                        .expect("needs_retry saw an observation")
                        .status = ObservedStatus::Revoked;
                    self.terminal.insert(key);
                }
                Fetch::Body(body, doc_kind) => {
                    match decode_landing(&body, doc_kind, rec.platform, &req) {
                        Ok(landing) => {
                            let timeline = self.timelines.get_mut(&key).expect("checked above");
                            let status = apply_landing(timeline, rec.platform, &landing, &mut pii);
                            timeline
                                .observations
                                .last_mut()
                                .expect("needs_retry saw an observation")
                                .status = status;
                        }
                        Err(err) => {
                            // The backfill fetch came back hostile too:
                            // quarantine it and censor the day — this was
                            // the last retry, and the Failed observation
                            // stays in place.
                            self.quarantine.push(QuarantineEntry::new(
                                service_name(rec.platform),
                                &req,
                                &key,
                                day,
                                &err,
                                &body,
                            ));
                            self.gaps.entry(key).or_default().push(day);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Borrow a group's timeline by dedup key.
    pub fn timeline(&self, key: &str) -> Option<&GroupTimeline> {
        self.timelines.get(key)
    }
}

/// Monitor probe for one group: endpoint, expected wire-document kind,
/// and the request (invite code included — the landing page echoes it, so
/// a spliced body is detectable). Shared by the daily round, the
/// same-day re-fetch, and the backfill retry.
fn probe(rec: &DiscoveryRecord) -> (&'static str, Request) {
    let (endpoint, doc_kind) = match rec.platform {
        PlatformKind::WhatsApp => ("whatsapp/landing", "wa-landing"),
        PlatformKind::Telegram => ("telegram/web", "tg-web"),
        PlatformKind::Discord => ("discord/api/invite", "dc-invite"),
    };
    let req = Request::new(endpoint).with("code", rec.invite.code.clone());
    (doc_kind, req)
}

/// A fully decoded, validated landing page — everything `run_day` may
/// write to a timeline, extracted *before* any mutation so a body that
/// fails validation halfway through cannot leave a partial write (e.g. a
/// title from a document whose size field was garbage).
struct Landing {
    size: u32,
    online: u32,
    title: Option<String>,
    tg_kind: Option<String>,
    dc_created_day: Option<i64>,
    dc_creator: Option<u32>,
    wa_creator_cc: Option<String>,
    wa_creator_phone: Option<String>,
}

/// Decode one landing-page body. Pure: envelope and kind check, identity
/// echo check (the page echoes the invite `code` it describes — a
/// mismatch means a cross-document splice), then per-platform field
/// extraction. Errors carry the exact [`WireError`]/protocol cause for
/// the quarantine ledger.
fn decode_landing(
    body: &str,
    doc_kind: &str,
    platform: PlatformKind,
    req: &Request,
) -> Result<Landing, CoreError> {
    let doc = WireDoc::parse_as(
        body,
        match platform {
            PlatformKind::WhatsApp => "wa-landing",
            PlatformKind::Telegram => "tg-web",
            PlatformKind::Discord => "dc-invite",
        },
    )?;
    debug_assert_eq!(doc.kind, doc_kind);
    verify_echoes(&doc, req)?;
    let size = doc.req_u64("size")? as u32;
    let online = doc.opt_u64("online")?.unwrap_or(0) as u32;
    let title = doc.get("title").map(str::to_string);
    let mut landing = Landing {
        size,
        online,
        title,
        tg_kind: None,
        dc_created_day: None,
        dc_creator: None,
        wa_creator_cc: None,
        wa_creator_phone: None,
    };
    match platform {
        PlatformKind::WhatsApp => {
            landing.wa_creator_cc = Some(doc.req("creator_cc")?.to_string());
            landing.wa_creator_phone = Some(doc.req("creator_phone")?.to_string());
        }
        PlatformKind::Telegram => {
            landing.tg_kind = doc.get("kind").map(str::to_string);
        }
        PlatformKind::Discord => {
            landing.dc_created_day = Some(doc.req_i64("created_day")?);
            landing.dc_creator = Some(doc.req_u64("creator")? as u32);
        }
    }
    Ok(landing)
}

/// Apply one validated landing page to a timeline: first-seen metadata,
/// platform specifics, PII accounting. Infallible by construction —
/// validation already happened in [`decode_landing`]. Returns the day's
/// observed status. Shared by the daily round and the backfill retry so
/// both record exactly the same facts.
fn apply_landing(
    timeline: &mut GroupTimeline,
    platform: PlatformKind,
    landing: &Landing,
    pii: &mut Option<&mut PiiStore>,
) -> ObservedStatus {
    if timeline.title.is_none() {
        timeline.title = landing.title.clone();
    }
    match platform {
        PlatformKind::WhatsApp => {
            if timeline.wa_creator_cc.is_none() {
                timeline.wa_creator_cc = landing.wa_creator_cc.clone();
            }
            if timeline.wa_creator_hash.is_none() {
                timeline.wa_creator_hash = landing
                    .wa_creator_phone
                    .as_deref()
                    .map(crate::pii::hash_phone);
            }
            if let (Some(pii), Some(phone), Some(cc)) = (
                pii.as_deref_mut(),
                landing.wa_creator_phone.as_deref(),
                landing.wa_creator_cc.as_deref(),
            ) {
                pii.record_wa_creator(phone, cc);
            }
        }
        PlatformKind::Telegram => {
            if timeline.tg_kind.is_none() {
                timeline.tg_kind = landing.tg_kind.clone();
            }
        }
        PlatformKind::Discord => {
            if timeline.dc_created_day.is_none() {
                timeline.dc_created_day = landing.dc_created_day;
                timeline.dc_creator = landing.dc_creator;
            }
        }
    }
    ObservedStatus::Alive {
        size: landing.size,
        online: landing.online,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_simnet::time::SimDuration;
    use chatlens_workload::ScenarioConfig;

    fn setup() -> (Ecosystem, Net, Discovery, Monitor) {
        let eco = Ecosystem::build(ScenarioConfig::tiny());
        let start = eco.window.start_time();
        let net = Net::reliable(11, start);
        let disco = Discovery::new(start);
        (eco, net, disco, Monitor::new())
    }

    #[test]
    fn daily_rounds_build_timelines() {
        let (mut eco, mut net, mut disco, mut monitor) = setup();
        let t0 = eco.window.start_time() + SimDuration::hours(1);
        disco.run_search(&mut net, &mut eco, t0).unwrap();
        let n_groups = disco.group_count();
        assert!(n_groups > 0);
        for day in 0..3u32 {
            let t = eco.window.start_time()
                + SimDuration::days(u64::from(day))
                + SimDuration::hours(23);
            monitor
                .run_day(&mut net, &mut eco, &disco, t, day, None)
                .unwrap();
        }
        assert_eq!(monitor.timelines.len(), n_groups);
        // Groups observed alive on day 0 have three observations; revoked
        // ones stop early.
        for tl in monitor.timelines.values() {
            assert!(!tl.observations.is_empty());
            assert!(tl.observations.len() <= 3);
            if tl.observations.len() < 3 {
                assert!(tl.saw_revoked() || tl.first().is_none());
            }
            // Days are strictly increasing.
            assert!(tl.observations.windows(2).all(|w| w[0].day < w[1].day));
        }
    }

    #[test]
    fn revoked_groups_stop_being_polled() {
        let (mut eco, mut net, mut disco, mut monitor) = setup();
        let t0 = eco.window.start_time() + SimDuration::hours(1);
        disco.run_search(&mut net, &mut eco, t0).unwrap();
        for day in 0..2u32 {
            let t = eco.window.start_time()
                + SimDuration::days(u64::from(day))
                + SimDuration::hours(23);
            monitor
                .run_day(&mut net, &mut eco, &disco, t, day, None)
                .unwrap();
        }
        for tl in monitor.timelines.values() {
            if let Some(rd) = tl.revoked_day() {
                assert_eq!(
                    tl.observations.last().unwrap().day,
                    rd,
                    "no observations after revocation"
                );
            }
        }
    }

    #[test]
    fn discord_metadata_includes_creation_date() {
        let (mut eco, mut net, mut disco, mut monitor) = setup();
        let t0 = eco.window.start_time() + SimDuration::hours(1);
        disco.run_search(&mut net, &mut eco, t0).unwrap();
        monitor
            .run_day(
                &mut net,
                &mut eco,
                &disco,
                t0 + SimDuration::hours(22),
                0,
                None,
            )
            .unwrap();
        let mut dc_alive = 0;
        for rec in disco.groups_of(PlatformKind::Discord) {
            let tl = monitor.timeline(&rec.invite.dedup_key()).unwrap();
            if matches!(
                tl.first().map(|o| o.status),
                Some(ObservedStatus::Alive { .. })
            ) {
                assert!(tl.dc_created_day.is_some());
                assert!(tl.dc_creator.is_some());
                dc_alive += 1;
            }
        }
        assert!(dc_alive > 0, "some Discord invites alive on day 0");
    }

    #[test]
    fn pii_harvest_collects_creator_hashes() {
        let (mut eco, mut net, mut disco, mut monitor) = setup();
        let mut pii = PiiStore::new();
        let t0 = eco.window.start_time() + SimDuration::hours(1);
        disco.run_search(&mut net, &mut eco, t0).unwrap();
        monitor
            .run_day(
                &mut net,
                &mut eco,
                &disco,
                t0 + SimDuration::hours(22),
                0,
                Some(&mut pii),
            )
            .unwrap();
        let wa_alive = disco
            .groups_of(PlatformKind::WhatsApp)
            .filter(|r| {
                monitor
                    .timeline(&r.invite.dedup_key())
                    .is_some_and(|t| !t.dead_on_arrival())
            })
            .count();
        assert!(wa_alive > 0);
        assert!(!pii.wa_creator_hashes.is_empty());
        assert!(
            pii.wa_creator_hashes.len() <= wa_alive,
            "at most one hash per alive group (creators may repeat)"
        );
        assert!(!pii.wa_creator_countries.is_empty());
    }

    #[test]
    fn parse_pool_never_changes_observations() {
        let run = |threads: usize| {
            let (mut eco, mut net, mut disco, _) = setup();
            let mut monitor = Monitor::with_pool(Pool::new(threads));
            let t0 = eco.window.start_time() + SimDuration::hours(1);
            disco.run_search(&mut net, &mut eco, t0).unwrap();
            for day in 0..3u32 {
                let t = eco.window.start_time()
                    + SimDuration::days(u64::from(day))
                    + SimDuration::hours(23);
                monitor
                    .run_day(&mut net, &mut eco, &disco, t, day, None)
                    .unwrap();
            }
            monitor.timelines
        };
        let serial = run(1);
        assert!(!serial.is_empty());
        for threads in [2, 8] {
            assert_eq!(run(threads), serial, "{threads} threads");
        }
    }

    #[test]
    fn size_span_tracks_growth() {
        let mut tl = GroupTimeline::default();
        tl.observations.push(Observation {
            day: 0,
            status: ObservedStatus::Alive {
                size: 10,
                online: 0,
            },
        });
        tl.observations.push(Observation {
            day: 1,
            status: ObservedStatus::Failed,
        });
        tl.observations.push(Observation {
            day: 2,
            status: ObservedStatus::Alive {
                size: 25,
                online: 3,
            },
        });
        assert_eq!(tl.size_span(), Some((10, 25)));
        assert_eq!(tl.alive_days(), 2);
        assert!(!tl.dead_on_arrival());
        assert!(!tl.saw_revoked());
    }

    #[test]
    fn empty_timeline_helpers() {
        let tl = GroupTimeline::default();
        assert!(tl.first().is_none());
        assert_eq!(tl.size_span(), None);
        assert_eq!(tl.revoked_day(), None);
        assert!(!tl.dead_on_arrival());
    }
}
