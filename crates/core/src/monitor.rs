//! Daily group-metadata monitoring (§3.2).
//!
//! From the day a group is discovered until its URL is found revoked, the
//! monitor fetches its public metadata once per day: the WhatsApp landing
//! page (title, size, creator country + phone — hashed on arrival), the
//! Telegram web page (title, size, online count, group-vs-channel), or
//! the Discord invite API (title, size, online, creator, creation date).
//!
//! # Data layout
//!
//! The monitor is the campaign's hottest loop: every discovered group is
//! touched every remaining day. Storage is therefore *dense and
//! slot-indexed*: a group's identity inside the monitor is its discovery
//! slot (its index in `discovery.groups`, which equals its interned
//! [`Sym`](crate::intern::Sym)), never its dedup-key string. Timelines,
//! the terminal set, and the gap ledger are all `Vec`s indexed by slot,
//! so a steady-state day performs no string hashing, no tree walks, and
//! no per-group key allocation — the dedup key is only materialized on
//! the cold quarantine path, where an entry needs human-readable
//! provenance.

use crate::discovery::{Discovery, DiscoveryRecord};
use crate::error::CoreError;
use crate::net::Net;
use crate::pii::PiiStore;
use crate::quarantine::{service_name, verify_echoes, QuarantineEntry};
use chatlens_platforms::id::PlatformKind;
use chatlens_platforms::wire::WireDoc;
use chatlens_simnet::par::Pool;
use chatlens_simnet::time::SimTime;
use chatlens_simnet::transport::{Request, Status};
use chatlens_workload::Ecosystem;

/// What the monitor saw for one group on one day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservedStatus {
    /// Landing page served: the group is alive with these counts.
    Alive {
        /// Member count shown.
        size: u32,
        /// Online count shown (0 where the platform shows none).
        online: u32,
    },
    /// The URL is revoked/expired (410).
    Revoked,
    /// Transport failed after retries; no information for the day.
    Failed,
}

/// One day's observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Zero-based study-day index.
    pub day: u32,
    /// What was seen.
    pub status: ObservedStatus,
}

/// Everything the monitor learned about one group over the campaign.
///
/// Observations are stored *columnar*: a sorted day column and a parallel
/// status column. Days are strictly increasing by construction (one
/// observation per study day, appended in day order), so point lookups
/// are a binary search and day-range slices are two `partition_point`s —
/// no per-observation struct walk.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupTimeline {
    /// Observation days, strictly increasing.
    pub(crate) days: Vec<u32>,
    /// Status observed on each day in `days` (parallel column).
    pub(crate) statuses: Vec<ObservedStatus>,
    /// Title from the first successful fetch.
    pub title: Option<String>,
    /// Telegram: `"group"` or `"channel"`.
    pub tg_kind: Option<String>,
    /// Discord: creation day number from the invite API.
    pub dc_created_day: Option<i64>,
    /// Discord: creator user id from the invite API.
    pub dc_creator: Option<u32>,
    /// WhatsApp: creator country code from the landing page.
    pub wa_creator_cc: Option<String>,
    /// WhatsApp: SHA-256 of the creator's phone (the only creator identity
    /// available; used by §5's creators-per-group analysis).
    pub wa_creator_hash: Option<String>,
}

impl GroupTimeline {
    /// Append one day's observation. Days must arrive strictly
    /// increasing (the monitor visits each group once per study day).
    pub fn push(&mut self, day: u32, status: ObservedStatus) {
        debug_assert!(
            self.days.last().is_none_or(|&d| d < day),
            "observations must be appended in day order"
        );
        self.days.push(day);
        self.statuses.push(status);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.days.len()
    }

    /// Whether no day was ever observed.
    pub fn is_empty(&self) -> bool {
        self.days.is_empty()
    }

    /// The sorted day column.
    pub fn days(&self) -> &[u32] {
        &self.days
    }

    /// Walk the observations in day order.
    pub fn iter(&self) -> impl Iterator<Item = Observation> + '_ {
        self.days
            .iter()
            .zip(&self.statuses)
            .map(|(&day, &status)| Observation { day, status })
    }

    /// First observation, if any.
    pub fn first(&self) -> Option<Observation> {
        Some(Observation {
            day: *self.days.first()?,
            status: *self.statuses.first()?,
        })
    }

    /// Last observation, if any.
    pub fn last(&self) -> Option<Observation> {
        Some(Observation {
            day: *self.days.last()?,
            status: *self.statuses.last()?,
        })
    }

    /// Rewrite the status of the most recent observation (the backfill
    /// retry replaces a `Failed` day in place; days stay strictly
    /// increasing because no day is appended).
    pub(crate) fn set_last_status(&mut self, status: ObservedStatus) {
        let last = self
            .statuses
            .last_mut()
            .expect("set_last_status on an empty timeline");
        *last = status;
    }

    /// Point lookup: what was observed on `day`, if the group was
    /// observed that day at all. Binary search over the day column.
    pub fn status_on(&self, day: u32) -> Option<ObservedStatus> {
        let i = self.days.binary_search(&day).ok()?;
        Some(self.statuses[i])
    }

    /// Observations with `day <= last_day`, as a pair of column slices —
    /// a binary-search cut, not a scan.
    pub fn through(&self, last_day: u32) -> (&[u32], &[ObservedStatus]) {
        let end = self.days.partition_point(|&d| d <= last_day);
        (&self.days[..end], &self.statuses[..end])
    }

    /// Whether the group was ever observed revoked.
    pub fn saw_revoked(&self) -> bool {
        self.statuses.contains(&ObservedStatus::Revoked)
    }

    /// Whether the *first* observation was already a revocation — the
    /// "revoked before our first observation" bucket of Fig 6.
    pub fn dead_on_arrival(&self) -> bool {
        self.statuses.first() == Some(&ObservedStatus::Revoked)
    }

    /// `(first, last)` sizes over the alive observations (Fig 7).
    pub fn size_span(&self) -> Option<(u32, u32)> {
        let mut first = None;
        let mut last = None;
        for s in &self.statuses {
            if let ObservedStatus::Alive { size, .. } = s {
                if first.is_none() {
                    first = Some(*size);
                }
                last = Some(*size);
            }
        }
        Some((first?, last?))
    }

    /// Day index of the observed revocation, if any.
    pub fn revoked_day(&self) -> Option<u32> {
        let i = self
            .statuses
            .iter()
            .position(|s| *s == ObservedStatus::Revoked)?;
        Some(self.days[i])
    }

    /// Number of days the group was observed alive.
    pub fn alive_days(&self) -> u32 {
        self.statuses
            .iter()
            .filter(|s| matches!(s, ObservedStatus::Alive { .. }))
            .count() as u32
    }
}

/// Dense timeline storage, indexed by discovery slot (= interned group
/// sym). A slot is `Some` exactly when the group has at least one
/// observation, which preserves the semantics of the old
/// `BTreeMap<String, GroupTimeline>`: "present" means "monitored at
/// least once". Equality ignores trailing never-observed slots, so a
/// store that merely reserved more capacity compares equal.
#[derive(Debug, Clone, Default)]
pub struct TimelineStore {
    slots: Vec<Option<GroupTimeline>>,
}

impl TimelineStore {
    /// An empty store.
    pub fn new() -> TimelineStore {
        TimelineStore::default()
    }

    /// The timeline at `slot`, if the group was ever observed.
    pub fn get(&self, slot: usize) -> Option<&GroupTimeline> {
        self.slots.get(slot).and_then(|s| s.as_ref())
    }

    /// Mutable timeline at `slot`, if the group was ever observed.
    pub fn get_mut(&mut self, slot: usize) -> Option<&mut GroupTimeline> {
        self.slots.get_mut(slot).and_then(|s| s.as_mut())
    }

    /// The timeline at `slot`, created empty if absent (grows the store).
    pub fn ensure(&mut self, slot: usize) -> &mut GroupTimeline {
        if slot >= self.slots.len() {
            self.slots.resize_with(slot + 1, || None);
        }
        self.slots[slot].get_or_insert_with(GroupTimeline::default)
    }

    /// Number of groups with at least one observation.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether no group was ever observed.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Walk `(slot, timeline)` in slot (= discovery) order, observed
    /// groups only.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &GroupTimeline)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|tl| (i, tl)))
    }

    /// Export `(slot, timeline)` pairs, slot ascending, for a checkpoint.
    pub fn entries(&self) -> Vec<(u32, GroupTimeline)> {
        // lint:allow(D10) checkpoint export runs once per snapshot, not per request; the copy is the snapshot
        self.iter().map(|(i, tl)| (i as u32, tl.clone())).collect()
    }

    /// Encoded (checkpoint codec) size of every observed timeline, in
    /// bytes. This is the memory-budget accounting charge for the
    /// columnar store — a pure function of observation history, never of
    /// allocator behavior. Only computed at day boundaries under
    /// `--mem-budget`, so the walk stays off the request hot path.
    pub fn encoded_bytes(&self) -> u64 {
        use chatlens_checkpoint::codec::{Persist, Writer};
        let mut w = Writer::new();
        for (_, tl) in self.iter() {
            tl.save(&mut w);
        }
        w.len() as u64
    }

    /// Rebuild from checkpointed `(slot, timeline)` pairs.
    pub fn from_entries(entries: Vec<(u32, GroupTimeline)>) -> TimelineStore {
        let mut store = TimelineStore::new();
        for (slot, tl) in entries {
            *store.ensure(slot as usize) = tl;
        }
        store
    }
}

impl PartialEq for TimelineStore {
    fn eq(&self, other: &TimelineStore) -> bool {
        self.iter().eq(other.iter())
    }
}

/// Dense gap ledger, indexed by discovery slot: for each group, the study
/// days on which it could not be observed even after the backfill retry
/// (days ascending). A group "has gaps" exactly when its day list is
/// non-empty — empty lists are representation padding, invisible to
/// equality, counting, and iteration.
#[derive(Debug, Clone, Default)]
pub struct GapLedger {
    /// Censored days per slot; empty lists are padding. Crate-visible so
    /// the auditor's tests can construct the corrupt shapes the public
    /// API forbids.
    pub(crate) slots: Vec<Vec<u32>>,
}

impl GapLedger {
    /// An empty ledger.
    pub fn new() -> GapLedger {
        GapLedger::default()
    }

    /// The censored days of the group at `slot`, if it has any.
    pub fn get(&self, slot: usize) -> Option<&[u32]> {
        match self.slots.get(slot) {
            Some(days) if !days.is_empty() => Some(days),
            _ => None,
        }
    }

    /// Append a censored day for `slot` (grows the ledger).
    pub fn push(&mut self, slot: usize, day: u32) {
        if slot >= self.slots.len() {
            self.slots.resize_with(slot + 1, Vec::new);
        }
        debug_assert!(self.slots[slot].last().is_none_or(|&d| d < day));
        self.slots[slot].push(day);
    }

    /// Number of groups with at least one censored day.
    pub fn group_count(&self) -> usize {
        self.slots.iter().filter(|d| !d.is_empty()).count()
    }

    /// Total censored group-days.
    pub fn total_days(&self) -> u64 {
        self.slots.iter().map(|d| d.len() as u64).sum()
    }

    /// Whether the ledger records no censored day at all.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|d| d.is_empty())
    }

    /// Walk `(slot, days)` in slot order, gapped groups only.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[u32])> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.is_empty())
            .map(|(i, d)| (i, d.as_slice()))
    }

    /// Export `(slot, days)` pairs, slot ascending, for a checkpoint.
    pub fn entries(&self) -> Vec<(u32, Vec<u32>)> {
        self.iter().map(|(i, d)| (i as u32, d.to_vec())).collect()
    }

    /// Rebuild from checkpointed `(slot, days)` pairs.
    pub fn from_entries(entries: Vec<(u32, Vec<u32>)>) -> GapLedger {
        let mut ledger = GapLedger::new();
        for (slot, days) in entries {
            for day in days {
                ledger.push(slot as usize, day);
            }
        }
        ledger
    }
}

impl PartialEq for GapLedger {
    fn eq(&self, other: &GapLedger) -> bool {
        self.iter().eq(other.iter())
    }
}

/// One group's fetch outcome for the day, carried from the serial
/// transport phase into the parse/apply phases.
enum Fetch {
    /// Transport failed after retries, or the server answered with a
    /// non-terminal error status.
    Failed,
    /// The URL is revoked/expired (410).
    Gone,
    /// Landing page served: the probe request (kept for the echo check
    /// and a possible re-fetch, so it is built once per group-day), the
    /// raw body, and which wire document kind it must decode as.
    Body(Request, String, &'static str),
}

/// Reusable per-day scratch: the fetch-outcome buffer backing the three
/// phases of [`Monitor::run_day`]. Cleared and refilled each day, so the
/// steady state re-uses one allocation per campaign instead of one per
/// day.
#[derive(Default)]
struct DayScratch {
    fetched: Vec<(usize, Fetch)>,
}

/// The monitoring component.
#[derive(Default)]
pub struct Monitor {
    /// Per-group timelines, indexed by discovery slot.
    pub timelines: TimelineStore,
    /// Per-slot terminal flags (observed revoked — no longer polled).
    terminal: Vec<bool>,
    /// The gap ledger: study days on which a group could not be observed
    /// even after the same-day backfill retry, indexed by discovery slot,
    /// days ascending. Lifetime analyses treat these days as *censored* —
    /// "we could not look" is recorded as exactly that, never as an
    /// observation.
    pub gaps: GapLedger,
    /// Rejected landing-page bodies with provenance (see
    /// [`crate::quarantine`]). A quarantined fetch is handled like a
    /// transport failure: one immediate re-fetch, then the day-end
    /// backfill retry, then the gap ledger.
    pub quarantine: Vec<QuarantineEntry>,
    /// Pool used to decode landing pages in parallel.
    pool: Pool,
    /// Per-day scratch buffers (see [`DayScratch`]).
    scratch: DayScratch,
}

impl Monitor {
    /// A fresh monitor (single-threaded parsing).
    pub fn new() -> Monitor {
        Monitor::default()
    }

    /// A monitor that decodes landing pages on `pool`. The thread count
    /// never changes what the monitor records — see [`Monitor::run_day`].
    pub fn with_pool(pool: Pool) -> Monitor {
        Monitor {
            pool,
            ..Monitor::default()
        }
    }

    /// Export the terminal (no-longer-polled) slots, ascending, for a
    /// checkpoint.
    pub fn terminal_slots(&self) -> Vec<u32> {
        self.terminal
            .iter()
            .enumerate()
            .filter(|(_, &t)| t)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Whether the group at `slot` reached a terminal state.
    pub fn is_terminal(&self, slot: usize) -> bool {
        self.terminal.get(slot).copied().unwrap_or(false)
    }

    fn mark_terminal(&mut self, slot: usize) {
        if slot >= self.terminal.len() {
            self.terminal.resize(slot + 1, false);
        }
        self.terminal[slot] = true;
    }

    /// Rebuild a monitor from checkpointed parts: the timelines, the
    /// terminal slots (as exported by [`Monitor::terminal_slots`]), and
    /// the parse pool to resume with.
    pub fn from_parts(
        timelines: TimelineStore,
        terminal: Vec<u32>,
        gaps: GapLedger,
        quarantine: Vec<QuarantineEntry>,
        pool: Pool,
    ) -> Monitor {
        let mut monitor = Monitor {
            timelines,
            terminal: Vec::new(),
            gaps,
            quarantine,
            pool,
            scratch: DayScratch::default(),
        };
        for slot in terminal {
            monitor.mark_terminal(slot as usize);
        }
        monitor
    }

    /// Total censored group-days in the gap ledger.
    pub fn gap_days(&self) -> u64 {
        self.gaps.total_days()
    }

    /// Run one daily round over every discovered, not-yet-revoked group.
    /// `day` is the zero-based study-day index. When `pii` is given,
    /// WhatsApp creator phone numbers coming off the landing pages are
    /// hashed into it (the landing page is the only pre-join source of
    /// creator phones, §6).
    ///
    /// The round runs in three phases so the pool can help without
    /// touching determinism: a **serial fetch** in discovery order (every
    /// transport call advances the shared network/ecosystem RNG and
    /// rate-limiter state, so its order is fixed), a **parallel parse**
    /// of the fetched bodies (pure, and merged back in input order by the
    /// pool's contract), and a **serial apply** of the parsed documents to
    /// the timelines, again in discovery order.
    pub fn run_day(
        &mut self,
        net: &mut Net,
        eco: &mut Ecosystem,
        discovery: &Discovery,
        now: SimTime,
        day: u32,
        mut pii: Option<&mut PiiStore>,
    ) -> Result<(), CoreError> {
        // Phase 1 — serial fetch. Iterate over a snapshot of slots:
        // discovery keeps growing, but today's round covers what is known
        // right now. Slots are unique within `discovery.groups`, so
        // deferring the terminal-set update to the apply phase cannot
        // change which groups get fetched today.
        let mut fetched = std::mem::take(&mut self.scratch.fetched);
        fetched.clear();
        for (i, rec) in discovery.groups.iter().enumerate() {
            if self.is_terminal(i) {
                continue;
            }
            let (doc_kind, req) = probe(rec);
            let outcome = match net.platform(eco, rec.platform, now, &req) {
                Err(_) => Fetch::Failed,
                Ok(resp) => match resp.status {
                    Status::Ok => Fetch::Body(req, resp.body, doc_kind),
                    Status::Gone => Fetch::Gone,
                    _ => Fetch::Failed,
                },
            };
            fetched.push((i, outcome));
        }

        // Phase 2 — parallel decode: decoding a landing page (envelope,
        // identity echo, field extraction) depends only on the body and
        // the group's identity, so bodies decode concurrently on the
        // pool into ready-to-apply `Landing` values. Decoding fully
        // *before* applying means a body that goes bad halfway through
        // mutates nothing.
        let parsed: Vec<Option<Result<Landing, CoreError>>> =
            self.pool.par_map(&fetched, |(i, outcome)| match outcome {
                Fetch::Body(req, body, doc_kind) => {
                    let rec = &discovery.groups[*i];
                    Some(decode_landing(body, doc_kind, rec.platform, req))
                }
                Fetch::Failed | Fetch::Gone => None,
            });

        // The outcome of the bounded same-day re-fetch of a quarantined
        // body (phase 3 below).
        enum Refetch<'b> {
            Alive(Landing<'b>),
            Revoked,
            Failed,
        }

        // Phase 3 — serial apply, in the same discovery order as phase 1.
        // The group's slot is its identity: no key is materialized except
        // on the cold quarantine path below.
        for ((i, outcome), decoded) in fetched.iter().zip(parsed) {
            let i = *i;
            match outcome {
                Fetch::Failed => {
                    self.timelines.ensure(i).push(day, ObservedStatus::Failed);
                }
                Fetch::Gone => {
                    self.timelines.ensure(i).push(day, ObservedStatus::Revoked);
                    self.mark_terminal(i);
                }
                Fetch::Body(req, body, doc_kind) => {
                    let rec = &discovery.groups[i];
                    match decoded.expect("body outcomes were decoded in phase 2") {
                        Ok(landing) => {
                            let timeline = self.timelines.ensure(i);
                            let status = apply_landing(timeline, rec.platform, &landing, &mut pii);
                            timeline.push(day, status);
                        }
                        Err(err) => {
                            // Hostile body: quarantine it with provenance,
                            // then re-fetch once immediately — corruption
                            // is usually transient damage, not a dead URL.
                            let key = rec.invite.dedup_key();
                            self.quarantine.push(QuarantineEntry::new(
                                service_name(rec.platform),
                                req,
                                &key,
                                day,
                                &err,
                                body,
                            ));
                            // The re-fetched body lives in this outer slot
                            // so a `Refetch::Alive` landing (which borrows
                            // it) survives to the apply below.
                            let retry_body;
                            let retried = match net.platform(eco, rec.platform, now, req) {
                                Err(_) => Refetch::Failed,
                                Ok(resp) => match resp.status {
                                    Status::Gone => Refetch::Revoked,
                                    Status::Ok => {
                                        retry_body = resp.body;
                                        match decode_landing(
                                            &retry_body,
                                            doc_kind,
                                            rec.platform,
                                            req,
                                        ) {
                                            Ok(l) => Refetch::Alive(l),
                                            Err(err2) => {
                                                self.quarantine.push(QuarantineEntry::new(
                                                    service_name(rec.platform),
                                                    req,
                                                    &key,
                                                    day,
                                                    &err2,
                                                    &retry_body,
                                                ));
                                                Refetch::Failed
                                            }
                                        }
                                    }
                                    _ => Refetch::Failed,
                                },
                            };
                            match retried {
                                Refetch::Alive(landing) => {
                                    let timeline = self.timelines.ensure(i);
                                    let status =
                                        apply_landing(timeline, rec.platform, &landing, &mut pii);
                                    timeline.push(day, status);
                                }
                                Refetch::Revoked => {
                                    self.timelines.ensure(i).push(day, ObservedStatus::Revoked);
                                    self.mark_terminal(i);
                                }
                                // Both fetches damaged or lost: record a
                                // Failed day; the day-end backfill retries
                                // once more, and a repeated failure lands
                                // the day in the gap ledger — censored,
                                // never fabricated.
                                Refetch::Failed => {
                                    self.timelines.ensure(i).push(day, ObservedStatus::Failed);
                                }
                            }
                        }
                    }
                }
            }
        }
        self.scratch.fetched = fetched;
        self.scratch.fetched.clear();
        Ok(())
    }

    /// Same-day retry of every group whose monitor fetch failed today.
    /// A success *replaces* the day's `Failed` observation in place (days
    /// stay strictly increasing); a revocation does the same and marks the
    /// group terminal; a repeated failure appends the day to the group's
    /// gap ledger — the day is censored, never fabricated.
    pub fn backfill_day(
        &mut self,
        net: &mut Net,
        eco: &mut Ecosystem,
        discovery: &Discovery,
        now: SimTime,
        day: u32,
        mut pii: Option<&mut PiiStore>,
    ) -> Result<(), CoreError> {
        // Discovery order, like `run_day`, so the transport call sequence
        // is a deterministic function of the campaign state.
        for (i, rec) in discovery.groups.iter().enumerate() {
            if self.is_terminal(i) {
                continue;
            }
            let needs_retry = self.timelines.get(i).is_some_and(|tl| {
                tl.last()
                    .is_some_and(|o| o.day == day && o.status == ObservedStatus::Failed)
            });
            if !needs_retry {
                continue;
            }
            let (doc_kind, req) = probe(rec);
            let outcome = match net.platform(eco, rec.platform, now, &req) {
                Err(_) => Fetch::Failed,
                Ok(resp) => match resp.status {
                    Status::Ok => Fetch::Body(req, resp.body, doc_kind),
                    Status::Gone => Fetch::Gone,
                    _ => Fetch::Failed,
                },
            };
            match outcome {
                Fetch::Failed => {
                    self.gaps.push(i, day);
                }
                Fetch::Gone => {
                    self.timelines
                        .get_mut(i)
                        .expect("checked above")
                        .set_last_status(ObservedStatus::Revoked);
                    self.mark_terminal(i);
                }
                Fetch::Body(req, body, doc_kind) => {
                    match decode_landing(&body, doc_kind, rec.platform, &req) {
                        Ok(landing) => {
                            let timeline = self.timelines.get_mut(i).expect("checked above");
                            let status = apply_landing(timeline, rec.platform, &landing, &mut pii);
                            timeline.set_last_status(status);
                        }
                        Err(err) => {
                            // The backfill fetch came back hostile too:
                            // quarantine it and censor the day — this was
                            // the last retry, and the Failed observation
                            // stays in place.
                            self.quarantine.push(QuarantineEntry::new(
                                service_name(rec.platform),
                                &req,
                                &rec.invite.dedup_key(),
                                day,
                                &err,
                                &body,
                            ));
                            self.gaps.push(i, day);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Borrow the timeline of the group at `slot` (its discovery index /
    /// interned sym).
    pub fn timeline_at(&self, slot: usize) -> Option<&GroupTimeline> {
        self.timelines.get(slot)
    }
}

/// Monitor probe for one group: endpoint, expected wire-document kind,
/// and the request (invite code included — the landing page echoes it, so
/// a spliced body is detectable). Shared by the daily round, the
/// same-day re-fetch, and the backfill retry; built **once** per
/// group-day and threaded through all three uses.
fn probe(rec: &DiscoveryRecord) -> (&'static str, Request) {
    let (endpoint, doc_kind) = match rec.platform {
        PlatformKind::WhatsApp => ("whatsapp/landing", "wa-landing"),
        PlatformKind::Telegram => ("telegram/web", "tg-web"),
        PlatformKind::Discord => ("discord/api/invite", "dc-invite"),
    };
    // lint:allow(D10) Request::with takes ownership of the wire value; one short invite code per probe
    let req = Request::new(endpoint).with("code", rec.invite.code.clone());
    (doc_kind, req)
}

/// A fully decoded, validated landing page — everything `run_day` may
/// write to a timeline, extracted *before* any mutation so a body that
/// fails validation halfway through cannot leave a partial write (e.g. a
/// title from a document whose size field was garbage).
/// String fields borrow the fetched body (alive for the whole round), so
/// the steady-state daily probe of an already-known group allocates
/// nothing for them; timelines copy only on first observation.
struct Landing<'a> {
    size: u32,
    online: u32,
    title: Option<&'a str>,
    tg_kind: Option<&'a str>,
    dc_created_day: Option<i64>,
    dc_creator: Option<u32>,
    wa_creator_cc: Option<&'a str>,
    wa_creator_phone: Option<&'a str>,
}

/// Decode one landing-page body. Pure: envelope and kind check, identity
/// echo check (the page echoes the invite `code` it describes — a
/// mismatch means a cross-document splice), then per-platform field
/// extraction. Errors carry the exact [`WireError`]/protocol cause for
/// the quarantine ledger.
fn decode_landing<'a>(
    body: &'a str,
    doc_kind: &str,
    platform: PlatformKind,
    req: &Request,
) -> Result<Landing<'a>, CoreError> {
    let doc = WireDoc::parse_as(
        body,
        match platform {
            PlatformKind::WhatsApp => "wa-landing",
            PlatformKind::Telegram => "tg-web",
            PlatformKind::Discord => "dc-invite",
        },
    )?;
    debug_assert_eq!(doc.kind, doc_kind);
    verify_echoes(&doc, req)?;
    let size = doc.req_u64("size")? as u32;
    let online = doc.opt_u64("online")?.unwrap_or(0) as u32;
    let title = doc.get_in_body("title");
    let mut landing = Landing {
        size,
        online,
        title,
        tg_kind: None,
        dc_created_day: None,
        dc_creator: None,
        wa_creator_cc: None,
        wa_creator_phone: None,
    };
    match platform {
        PlatformKind::WhatsApp => {
            landing.wa_creator_cc = Some(doc.req_in_body("creator_cc")?);
            landing.wa_creator_phone = Some(doc.req_in_body("creator_phone")?);
        }
        PlatformKind::Telegram => {
            landing.tg_kind = doc.get_in_body("kind");
        }
        PlatformKind::Discord => {
            landing.dc_created_day = Some(doc.req_i64("created_day")?);
            landing.dc_creator = Some(doc.req_u64("creator")? as u32);
        }
    }
    Ok(landing)
}

/// Apply one validated landing page to a timeline: first-seen metadata,
/// platform specifics, PII accounting. Infallible by construction —
/// validation already happened in [`decode_landing`]. Returns the day's
/// observed status. Shared by the daily round and the backfill retry so
/// both record exactly the same facts.
fn apply_landing(
    timeline: &mut GroupTimeline,
    platform: PlatformKind,
    landing: &Landing<'_>,
    pii: &mut Option<&mut PiiStore>,
) -> ObservedStatus {
    if timeline.title.is_none() {
        timeline.title = landing.title.map(str::to_string);
    }
    match platform {
        PlatformKind::WhatsApp => {
            if timeline.wa_creator_cc.is_none() {
                timeline.wa_creator_cc = landing.wa_creator_cc.map(str::to_string);
            }
            if timeline.wa_creator_hash.is_none() {
                timeline.wa_creator_hash = landing.wa_creator_phone.map(crate::pii::hash_phone);
            }
            if let (Some(pii), Some(phone), Some(cc)) = (
                pii.as_deref_mut(),
                landing.wa_creator_phone,
                landing.wa_creator_cc,
            ) {
                pii.record_wa_creator(phone, cc);
            }
        }
        PlatformKind::Telegram => {
            if timeline.tg_kind.is_none() {
                timeline.tg_kind = landing.tg_kind.map(str::to_string);
            }
        }
        PlatformKind::Discord => {
            if timeline.dc_created_day.is_none() {
                timeline.dc_created_day = landing.dc_created_day;
                timeline.dc_creator = landing.dc_creator;
            }
        }
    }
    ObservedStatus::Alive {
        size: landing.size,
        online: landing.online,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_simnet::time::SimDuration;
    use chatlens_workload::ScenarioConfig;

    fn setup() -> (Ecosystem, Net, Discovery, Monitor) {
        let eco = Ecosystem::build(ScenarioConfig::tiny());
        let start = eco.window.start_time();
        let net = Net::reliable(11, start);
        let disco = Discovery::new(start);
        (eco, net, disco, Monitor::new())
    }

    #[test]
    fn daily_rounds_build_timelines() {
        let (mut eco, mut net, mut disco, mut monitor) = setup();
        let t0 = eco.window.start_time() + SimDuration::hours(1);
        disco.run_search(&mut net, &mut eco, t0).unwrap();
        let n_groups = disco.group_count();
        assert!(n_groups > 0);
        for day in 0..3u32 {
            let t = eco.window.start_time()
                + SimDuration::days(u64::from(day))
                + SimDuration::hours(23);
            monitor
                .run_day(&mut net, &mut eco, &disco, t, day, None)
                .unwrap();
        }
        assert_eq!(monitor.timelines.len(), n_groups);
        // Groups observed alive on day 0 have three observations; revoked
        // ones stop early.
        for (_, tl) in monitor.timelines.iter() {
            assert!(!tl.is_empty());
            assert!(tl.len() <= 3);
            if tl.len() < 3 {
                assert!(tl.saw_revoked() || tl.first().is_none());
            }
            // Days are strictly increasing.
            assert!(tl.days().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn revoked_groups_stop_being_polled() {
        let (mut eco, mut net, mut disco, mut monitor) = setup();
        let t0 = eco.window.start_time() + SimDuration::hours(1);
        disco.run_search(&mut net, &mut eco, t0).unwrap();
        for day in 0..2u32 {
            let t = eco.window.start_time()
                + SimDuration::days(u64::from(day))
                + SimDuration::hours(23);
            monitor
                .run_day(&mut net, &mut eco, &disco, t, day, None)
                .unwrap();
        }
        for (_, tl) in monitor.timelines.iter() {
            if let Some(rd) = tl.revoked_day() {
                assert_eq!(
                    tl.last().unwrap().day,
                    rd,
                    "no observations after revocation"
                );
            }
        }
    }

    #[test]
    fn discord_metadata_includes_creation_date() {
        let (mut eco, mut net, mut disco, mut monitor) = setup();
        let t0 = eco.window.start_time() + SimDuration::hours(1);
        disco.run_search(&mut net, &mut eco, t0).unwrap();
        monitor
            .run_day(
                &mut net,
                &mut eco,
                &disco,
                t0 + SimDuration::hours(22),
                0,
                None,
            )
            .unwrap();
        let mut dc_alive = 0;
        for (slot, rec) in disco.groups.iter().enumerate() {
            if rec.platform != PlatformKind::Discord {
                continue;
            }
            let tl = monitor.timeline_at(slot).unwrap();
            if matches!(
                tl.first().map(|o| o.status),
                Some(ObservedStatus::Alive { .. })
            ) {
                assert!(tl.dc_created_day.is_some());
                assert!(tl.dc_creator.is_some());
                dc_alive += 1;
            }
        }
        assert!(dc_alive > 0, "some Discord invites alive on day 0");
    }

    #[test]
    fn pii_harvest_collects_creator_hashes() {
        let (mut eco, mut net, mut disco, mut monitor) = setup();
        let mut pii = PiiStore::new();
        let t0 = eco.window.start_time() + SimDuration::hours(1);
        disco.run_search(&mut net, &mut eco, t0).unwrap();
        monitor
            .run_day(
                &mut net,
                &mut eco,
                &disco,
                t0 + SimDuration::hours(22),
                0,
                Some(&mut pii),
            )
            .unwrap();
        let wa_alive = disco
            .groups
            .iter()
            .enumerate()
            .filter(|(_, r)| r.platform == PlatformKind::WhatsApp)
            .filter(|(slot, _)| {
                monitor
                    .timeline_at(*slot)
                    .is_some_and(|t| !t.dead_on_arrival())
            })
            .count();
        assert!(wa_alive > 0);
        assert!(!pii.wa_creator_hashes.is_empty());
        assert!(
            pii.wa_creator_hashes.len() <= wa_alive,
            "at most one hash per alive group (creators may repeat)"
        );
        assert!(!pii.wa_creator_countries.is_empty());
    }

    #[test]
    fn parse_pool_never_changes_observations() {
        let run = |threads: usize| {
            let (mut eco, mut net, mut disco, _) = setup();
            let mut monitor = Monitor::with_pool(Pool::new(threads));
            let t0 = eco.window.start_time() + SimDuration::hours(1);
            disco.run_search(&mut net, &mut eco, t0).unwrap();
            for day in 0..3u32 {
                let t = eco.window.start_time()
                    + SimDuration::days(u64::from(day))
                    + SimDuration::hours(23);
                monitor
                    .run_day(&mut net, &mut eco, &disco, t, day, None)
                    .unwrap();
            }
            monitor.timelines
        };
        let serial = run(1);
        assert!(!serial.is_empty());
        for threads in [2, 8] {
            assert_eq!(run(threads), serial, "{threads} threads");
        }
    }

    #[test]
    fn size_span_tracks_growth() {
        let mut tl = GroupTimeline::default();
        tl.push(
            0,
            ObservedStatus::Alive {
                size: 10,
                online: 0,
            },
        );
        tl.push(1, ObservedStatus::Failed);
        tl.push(
            2,
            ObservedStatus::Alive {
                size: 25,
                online: 3,
            },
        );
        assert_eq!(tl.size_span(), Some((10, 25)));
        assert_eq!(tl.alive_days(), 2);
        assert!(!tl.dead_on_arrival());
        assert!(!tl.saw_revoked());
    }

    #[test]
    fn empty_timeline_helpers() {
        let tl = GroupTimeline::default();
        assert!(tl.first().is_none());
        assert_eq!(tl.size_span(), None);
        assert_eq!(tl.revoked_day(), None);
        assert!(!tl.dead_on_arrival());
    }

    #[test]
    fn columnar_lookups_binary_search_the_day_column() {
        let mut tl = GroupTimeline::default();
        for day in [2u32, 5, 9, 11] {
            tl.push(
                day,
                ObservedStatus::Alive {
                    size: day * 10,
                    online: 0,
                },
            );
        }
        assert_eq!(
            tl.status_on(5),
            Some(ObservedStatus::Alive {
                size: 50,
                online: 0
            })
        );
        assert_eq!(tl.status_on(6), None);
        let (days, statuses) = tl.through(9);
        assert_eq!(days, &[2, 5, 9]);
        assert_eq!(statuses.len(), 3);
        let all: Vec<Observation> = tl.iter().collect();
        assert_eq!(all.len(), 4);
        assert_eq!(all[3].day, 11);
    }

    #[test]
    fn dense_stores_ignore_padding_in_equality() {
        // `from_entries` with a sparse slot leaves earlier slots as
        // never-observed padding; a store that reached the same state
        // through `ensure` growth compares equal and round-trips.
        let mut tl = GroupTimeline::default();
        tl.push(0, ObservedStatus::Failed);
        let sparse = TimelineStore::from_entries(vec![(5, tl.clone())]);
        let mut grown = TimelineStore::new();
        *grown.ensure(5) = tl;
        assert_eq!(sparse, grown);
        assert_eq!(sparse.len(), 1);
        assert!(sparse.get(0).is_none());
        assert_eq!(
            TimelineStore::from_entries(sparse.entries()),
            sparse,
            "entries round-trip"
        );

        let mut g = GapLedger::new();
        let mut h = GapLedger::new();
        g.push(3, 7);
        h.push(3, 7);
        h.push(9, 1);
        assert_ne!(g, h);
        let h2 = GapLedger::from_entries(g.entries());
        assert_eq!(g, h2);
        assert_eq!(g.group_count(), 1);
        assert_eq!(g.total_days(), 1);
        assert_eq!(g.get(3), Some(&[7u32][..]));
        assert_eq!(g.get(4), None);
    }
}
