//! Property tests for the snapshot envelope and the [`Persist`] codec:
//! encode→decode is the identity for arbitrary values, and *no* damaged
//! input — truncated at any byte length, bit-flipped anywhere, or with
//! trailing garbage — ever decodes successfully or panics.

use std::collections::BTreeMap;

use chatlens_checkpoint::{decode_snapshot, encode_snapshot, persist_struct, Persist};
use proptest::prelude::*;
use proptest::{collection, option};

/// A composite exercising every codec shape: fixed-width ints, floats,
/// strings, sequences, options, tuples, maps, and nesting.
#[derive(Debug, Clone, PartialEq)]
struct Blob {
    a: u64,
    b: i64,
    c: String,
    d: Vec<u32>,
    e: Option<String>,
    f: Vec<(u64, String)>,
    g: f64,
    h: BTreeMap<String, u64>,
    i: Vec<u8>,
    j: bool,
}

persist_struct!(Blob {
    a,
    b,
    c,
    d,
    e,
    f,
    g,
    h,
    i,
    j
});

#[allow(clippy::too_many_arguments)]
fn blob(
    a: u64,
    b: i64,
    c: String,
    d: Vec<u32>,
    e: Option<String>,
    f: Vec<(u64, String)>,
    g: f64,
    h: Vec<(String, u64)>,
    j: bool,
) -> Blob {
    Blob {
        a,
        b,
        i: c.clone().into_bytes(),
        c,
        d,
        e,
        f,
        g,
        h: h.into_iter().collect(),
        j,
    }
}

proptest! {
    #[test]
    fn snapshot_round_trips_exactly(
        a in any::<u64>(),
        b in any::<i64>(),
        c in "\\PC*",
        d in collection::vec(any::<u32>(), 0..8),
        e in option::of("[a-z]{0,12}"),
        f in collection::vec((any::<u64>(), "[A-Za-z0-9]{0,6}"), 0..6),
        g in -1.0e12..1.0e12,
        h in collection::vec(("[a-z]{1,8}", any::<u64>()), 0..6),
        j in any::<bool>(),
    ) {
        let value = blob(a, b, c, d, e, f, g, h, j);
        let bytes = encode_snapshot(&value);
        let back: Blob = match decode_snapshot(&bytes) {
            Ok(v) => v,
            Err(e) => return Err(TestCaseError::fail(format!("decode failed: {e}"))),
        };
        prop_assert_eq!(&back, &value);
        // Canonical: re-encoding the decoded value reproduces the bytes.
        prop_assert_eq!(encode_snapshot(&back), bytes);
    }

    #[test]
    fn every_f64_bit_pattern_survives(bits in any::<u64>()) {
        // NaN payloads and signed zeros included: the codec stores the
        // IEEE-754 bit pattern, so compare bits, not float equality.
        let bytes = encode_snapshot(&f64::from_bits(bits));
        let back: f64 = decode_snapshot(&bytes).expect("round trip");
        prop_assert_eq!(back.to_bits(), bits);
    }

    #[test]
    fn truncation_at_every_length_is_rejected(
        a in any::<u64>(),
        c in "\\PC{0,16}",
        d in collection::vec(any::<u32>(), 0..5),
        j in any::<bool>(),
    ) {
        let value = blob(a, 0, c, d, None, Vec::new(), 0.5, Vec::new(), j);
        let bytes = encode_snapshot(&value);
        for len in 0..bytes.len() {
            prop_assert!(
                decode_snapshot::<Blob>(&bytes[..len]).is_err(),
                "prefix of {len}/{} bytes must not decode",
                bytes.len()
            );
        }
    }

    #[test]
    fn any_single_bit_flip_is_rejected(
        a in any::<u64>(),
        c in "[a-z]{0,16}",
        flip in any::<u64>(),
    ) {
        let value = blob(a, -1, c, Vec::new(), None, Vec::new(), 1.25, Vec::new(), true);
        let mut bytes = encode_snapshot(&value);
        let bit = (flip % (bytes.len() as u64 * 8)) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            decode_snapshot::<Blob>(&bytes).is_err(),
            "bit {bit} flipped must not decode"
        );
    }

    #[test]
    fn trailing_garbage_is_rejected(
        a in any::<u64>(),
        extra in collection::vec(any::<u8>(), 1..16),
    ) {
        let value = blob(a, 7, String::new(), Vec::new(), None, Vec::new(), 0.0, Vec::new(), false);
        let mut bytes = encode_snapshot(&value);
        bytes.extend(extra);
        prop_assert!(decode_snapshot::<Blob>(&bytes).is_err());
    }

    #[test]
    fn random_bytes_never_panic(bytes in collection::vec(any::<u8>(), 0..128)) {
        // Whatever the input, the decoder returns an error; reaching this
        // assertion at all proves no panic and no absurd allocation.
        prop_assert!(decode_snapshot::<Blob>(&bytes).is_err());
    }

    #[test]
    fn out_of_order_map_keys_are_rejected(
        k1 in "[a-m]{1,6}",
        k2 in "[n-z]{1,6}",
        v in any::<u64>(),
    ) {
        // Hand-encode a map with descending keys; the decoder must refuse
        // it (strictly-ascending keys are part of the canonical format).
        let mut w = chatlens_checkpoint::Writer::new();
        2u64.save(&mut w);
        k2.save(&mut w);
        v.save(&mut w);
        k1.save(&mut w);
        v.save(&mut w);
        let payload = w.into_bytes();
        let mut r = chatlens_checkpoint::Reader::new(&payload);
        prop_assert!(BTreeMap::<String, u64>::load(&mut r).is_err());
    }
}
