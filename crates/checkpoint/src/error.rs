//! The checkpoint error type: every way a snapshot can be unusable.

use std::fmt;

/// Why a snapshot could not be decoded (or written). Corrupt input is a
/// *diagnosable condition*, never a panic: each variant names what was
/// wrong so an operator can tell a stale file from a damaged one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The file does not start with the snapshot magic — not a checkpoint
    /// at all (or mangled by text-mode transfer).
    BadMagic,
    /// The snapshot was written by a different format generation.
    VersionMismatch {
        /// Version recorded in the file.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The payload's SHA-256 does not match: the file was corrupted after
    /// it was written.
    ChecksumMismatch,
    /// The input ended before the structure it promised was complete.
    Truncated,
    /// The bytes decoded structurally but described an impossible value
    /// (bad enum tag, invalid UTF-8, inconsistent lengths, ...).
    Malformed(String),
    /// An underlying filesystem operation failed.
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => {
                write!(f, "not a chatlens checkpoint (bad magic bytes)")
            }
            CheckpointError::VersionMismatch { found, expected } => write!(
                f,
                "snapshot format version {found} is not readable by this build (expected {expected})"
            ),
            CheckpointError::ChecksumMismatch => {
                write!(f, "snapshot checksum mismatch: the file is corrupted")
            }
            CheckpointError::Truncated => {
                write!(f, "snapshot is truncated: input ended mid-structure")
            }
            CheckpointError::Malformed(what) => write!(f, "snapshot is malformed: {what}"),
            CheckpointError::Io(what) => write!(f, "checkpoint i/o failed: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}
